//! Checkpoint/restart walkthrough: run an SCF with periodic snapshots,
//! "kill" it at the iteration cap, then resume a *brand-new* calculation
//! from the newest snapshot and finish — demonstrating the determinism
//! contract (the resumed run continues exactly where the first stopped,
//! same mixer history, same warm-started fragment wavefunctions).
//!
//! Also injects one transient fragment failure to show the supervision
//! side: the fault is retried on the deterministic ladder and reported
//! through the `ScfObserver`, and the run carries on.
//!
//! Run: `cargo run --example checkpoint_restart --release`

use ls3df::{
    CheckpointConfig, CheckpointPolicy, FragmentFault, InjectedFault, Ls3df, Ls3dfOptions,
    Ls3dfStep, Mixer, Passivation, PseudoTable, QuarantineRecord, ScfObserver,
};
use ls3df_atoms::{znte_supercell, ZNTE_LATTICE};
use std::path::Path;

/// Prints each iteration plus every checkpoint / fault-supervision event.
struct Console;

impl ScfObserver for Console {
    fn on_step(&mut self, step: &Ls3dfStep) {
        println!(
            "  iter {:>2}: ∫|ΔV| = {:>12.5e}, worst residual {:>9.2e}",
            step.iteration, step.dv_integral, step.worst_residual
        );
    }
    fn on_fragment_retry(&mut self, iteration: usize, fault: &FragmentFault) {
        println!("    [iter {iteration}] retried: {fault}");
    }
    fn on_fragment_quarantined(&mut self, iteration: usize, record: &QuarantineRecord) {
        println!("    [iter {iteration}] quarantined: {record}");
    }
    fn on_snapshot_written(&mut self, iteration: usize, path: &Path) {
        println!(
            "    [iter {iteration}] snapshot written: {}",
            path.display()
        );
    }
    fn on_snapshot_restored(&mut self, resumed_from_iteration: usize) {
        println!("  restored snapshot taken after iteration {resumed_from_iteration}");
    }
}

fn options(max_scf: usize) -> Ls3dfOptions {
    Ls3dfOptions {
        ecut: 2.0,
        piece_pts: [8, 8, 8],
        buffer_pts: [3, 3, 3],
        passivation: Passivation::PseudoH,
        wall_height: 1.5,
        n_extra_bands: 2,
        cg_steps: 5,
        mixer: Mixer::Kerker {
            alpha: 0.6,
            q0: 0.8,
        },
        max_scf,
        tol: 1e-3,
        pseudo: PseudoTable::default(),
        ..Default::default()
    }
}

fn main() {
    let structure = znte_supercell([2, 2, 2], ZNTE_LATTICE);
    let dir = std::env::temp_dir().join("ls3df-checkpoint-restart-example");
    let _ = std::fs::remove_dir_all(&dir);

    // Leg 1: four iterations with a snapshot after every one, then stop —
    // standing in for a job that hit its wall-clock limit or was killed.
    // One injected solver failure on fragment 3 shows the retry ladder.
    println!("leg 1: 4 iterations, snapshot every iteration, then 'killed'");
    let mut calc = Ls3df::builder(&structure)
        .fragments([2, 2, 2])
        .options(options(4))
        .checkpoint(CheckpointConfig {
            dir: dir.clone(),
            policy: CheckpointPolicy::EveryN(1),
            keep_last: 2,
        })
        .build()
        .expect("valid example geometry");
    calc.inject_fragment_fault(3, InjectedFault::SolverError, 1);
    let partial = calc.scf_with(Console);
    println!(
        "  …stopped after iteration {} (∫|ΔV| = {:.3e})\n",
        partial.history.last().map(|s| s.iteration).unwrap_or(0),
        partial.history.last().map(|s| s.dv_integral).unwrap_or(0.0)
    );

    // Leg 2: a fresh calculation object (fresh process in real life)
    // resumes from the newest snapshot and runs to the full cap. The
    // snapshot carries the density, potential, mixer history, and every
    // fragment's wavefunctions, so iteration 5 here is bit-identical to
    // iteration 5 of a run that was never stopped.
    let snapshot = ls3df::ckpt::latest_snapshot(&dir)
        .expect("readable snapshot directory")
        .expect("leg 1 wrote snapshots");
    println!("leg 2: resume from {} and finish", snapshot.display());
    let mut resumed = Ls3df::builder(&structure)
        .fragments([2, 2, 2])
        .options(options(8))
        .resume_from(&snapshot)
        .build()
        .expect("snapshot written by leg 1 must be resumable");
    let result = resumed.scf_with(Console);
    println!(
        "\ndone: {} total iterations on record, converged = {}, density integrates to {:.4}",
        result.history.len(),
        result.converged,
        result.rho.integrate()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
