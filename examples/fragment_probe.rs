//! Deep-dive probe of a single fragment: solve it to tight tolerance in
//! the converged direct potential and compare its region density with the
//! direct density point by point.
//!
//! Run: `cargo run --example fragment_probe --release`

use ls3df::core::{boundary_wall, fragment_atoms, Fragment, FragmentGrid, Passivation};
use ls3df::pw::{self, SolverOptions};
use ls3df_atoms::{topology_cutoff, Atom, Species, Structure};
use ls3df_pseudo::PseudoTable;

fn main() {
    let a = 6.5;
    let m = [3usize, 3, 3];
    let _piece_pts = 10usize;
    let buffer = 5usize;
    let ecut = 1.5;
    let table = PseudoTable::deep_well(2.0, 0.8);

    let mut atoms = Vec::new();
    for k in 0..m[2] {
        for j in 0..m[1] {
            for i in 0..m[0] {
                atoms.push(Atom {
                    species: Species::Zn,
                    pos: [
                        (i as f64 + 0.5) * a,
                        (j as f64 + 0.5) * a,
                        (k as f64 + 0.5) * a,
                    ],
                });
            }
        }
    }
    let s = Structure::new([3.0 * a, 3.0 * a, 3.0 * a], atoms);

    // Direct reference.
    let grid = ls3df_grid::Grid3::new([30, 30, 30], s.lengths);
    let pw_atoms: Vec<pw::PwAtom> = s
        .atoms
        .iter()
        .map(|at| {
            let p = table.get(at.species);
            pw::PwAtom {
                pos: at.pos,
                local: p.local,
                kb_rb: p.kb.rb,
                kb_energy: p.kb.e_kb,
            }
        })
        .collect();
    let sys = pw::DftSystem {
        grid: grid.clone(),
        ecut,
        atoms: pw_atoms,
    };
    let direct = pw::scf(
        &sys,
        &pw::ScfOptions {
            max_scf: 60,
            tol: 1e-5,
            ..Default::default()
        },
    );
    println!(
        "direct converged={} E={:.6}",
        direct.converged, direct.total_energy
    );

    // One fragment: the central 1×1×1 at corner (1,1,1).
    let fg = FragmentGrid::new(m, &grid, [buffer; 3]).expect("valid decomposition");
    let nbrs = s.neighbor_list_within(topology_cutoff(&s));
    for size in [[1usize, 1, 1], [2, 1, 1], [2, 2, 2]] {
        let f = Fragment::sign_alternating([1, 1, 1], size);
        let fa = fragment_atoms(&s, &nbrs, &fg, &f, Passivation::WallOnly, &table);
        let box_grid = fg.box_grid(&f);
        let basis = pw::PwBasis::new(box_grid.clone(), ecut);
        let nl = pw::NonlocalPotential::none(&basis);
        let mut vf = direct.v_eff.extract_subbox(fg.box_origin(&f), &box_grid);
        vf.add_scaled(1.0, &boundary_wall(&fg, &f, 1.5));
        let h = pw::Hamiltonian::new(&basis, vf, &nl);
        let n_occ = (fa.n_electrons / 2.0).ceil() as usize;
        let nb = n_occ + 3;
        let mut psi = pw::scf::random_start(nb, &basis, 3);
        let stats = pw::solve_all_band(
            &h,
            &mut psi,
            &SolverOptions {
                max_iter: 400,
                tol: 1e-8,
                ..Default::default()
            },
        );
        println!(
            "\nfragment {:?}: atoms={} n_e={} bands={} converged={} residual={:.1e}",
            size, fa.n_real, fa.n_electrons, nb, stats.converged, stats.residual
        );
        println!("  eigenvalues: {:?}", &stats.eigenvalues[..nb.min(6)]);

        // Fragment density, region part, vs direct density.
        let mut occ = vec![0.0; nb];
        let mut rem = fa.n_electrons;
        for o in occ.iter_mut() {
            let f = rem.min(2.0);
            *o = f;
            rem -= f;
        }
        let rho_f = pw::density::compute_density(&basis, &psi, &occ);
        // Line through the first region atom along x, in box coords.
        let off = fg.region_offset_in_box();
        let spacing = box_grid.spacing();
        let atom_box = fa.atoms[0].pos;
        let iy = (atom_box[1] / spacing[1]).round() as usize;
        let iz = (atom_box[2] / spacing[2]).round() as usize;
        let origin = fg.box_origin(&f);
        println!("  line through atom (box iy={iy} iz={iz}):");
        println!(
            "  {:>5} {:>12} {:>12} {:>9}",
            "ix", "rho_frag", "rho_direct", "ratio"
        );
        for ix in (0..box_grid.dims[0]).step_by(2) {
            let rf = rho_f.at(ix, iy, iz);
            let gd = direct.rho.at_wrapped(
                origin[0] + ix as i64,
                origin[1] + iy as i64,
                origin[2] + iz as i64,
            );
            let in_region = ix >= off[0] && ix < off[0] + fg.region_dims(&f)[0];
            println!(
                "  {:>5} {:>12.5e} {:>12.5e} {:>9.4} {}",
                ix,
                rf,
                gd,
                rf / gd.max(1e-300),
                if in_region { "R" } else { "" }
            );
        }
    }
}
