//! Band folding: why Γ-only supercells and k-sampled primitive cells are
//! the same physics.
//!
//! LS3DF (and the paper's large-supercell comparisons) work at the Γ point
//! of a large supercell. This example shows, with the real solver, that a
//! doubled supercell at Γ reproduces exactly the union of the primitive
//! cell's {Γ, X} spectra — so large supercells implicitly integrate the
//! Brillouin zone, which is why the paper's single-k-point 13,824-atom
//! cells are physically adequate.
//!
//! Run: `cargo run --example band_folding --release`

use ls3df::pw::{self, KPoint, NonlocalPotential, PwAtom, PwBasis, SolverOptions};
use ls3df_grid::{Grid3, RealField};
use ls3df_pseudo::LocalPotential;

fn main() {
    let a = 6.0;
    let ecut = 1.2;
    let v_of = |r: [f64; 3]| {
        -0.4 * ((2.0 * std::f64::consts::PI * r[0] / a).cos()
            + (2.0 * std::f64::consts::PI * r[1] / a).cos()
            + (2.0 * std::f64::consts::PI * r[2] / a).cos())
    };
    let atoms = vec![PwAtom {
        pos: [0.0; 3],
        local: LocalPotential {
            z: 2.0,
            rc: 1.0,
            a: 0.0,
            w: 1.0,
        },
        kb_rb: 1.0,
        kb_energy: 0.0,
    }];
    let opts = SolverOptions {
        max_iter: 300,
        tol: 1e-7,
        ..Default::default()
    };

    // Primitive cell at Γ and X.
    let prim_grid = Grid3::new([10, 10, 10], [a, a, a]);
    let prim_basis = PwBasis::new(prim_grid.clone(), ecut);
    let v_prim = RealField::from_fn(prim_grid, v_of);
    let kx = std::f64::consts::PI / a;
    let bands = pw::band_structure(
        &prim_basis,
        &v_prim,
        &atoms,
        &[
            KPoint {
                k: [0.0; 3],
                weight: 0.5,
            },
            KPoint {
                k: [kx, 0.0, 0.0],
                weight: 0.5,
            },
        ],
        6,
        &opts,
    );

    // Doubled supercell at Γ.
    let sup_grid = Grid3::new([20, 10, 10], [2.0 * a, a, a]);
    let sup_basis = PwBasis::new(sup_grid.clone(), ecut);
    let v_sup = RealField::from_fn(sup_grid, v_of);
    let nl = NonlocalPotential::none(&sup_basis);
    let h = pw::Hamiltonian::new(&sup_basis, v_sup, &nl);
    let mut psi = pw::scf::random_start(9, &sup_basis, 3);
    let sup = pw::solve_all_band(&h, &mut psi, &opts);

    let mut union: Vec<(f64, &str)> = bands[0]
        .iter()
        .map(|&e| (e, "Γ"))
        .chain(bands[1].iter().map(|&e| (e, "X")))
        .collect();
    union.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());

    println!("primitive cell (a = {a} Bohr) k-points vs doubled supercell at Γ:\n");
    println!(
        "{:>4} {:>14} {:>6} | {:>14} {:>10}",
        "band", "prim union", "from", "supercell Γ", "Δ (meV)"
    );
    for b in 0..8.min(sup.eigenvalues.len()) {
        let (e_u, src) = union[b];
        println!(
            "{:>4} {:>14.6} {:>6} | {:>14.6} {:>10.3}",
            b,
            e_u,
            src,
            sup.eigenvalues[b],
            (sup.eigenvalues[b] - e_u).abs() * 27211.4
        );
    }
    println!(
        "\nevery supercell level folds back to a primitive k-point level — large\n\
         supercells at Γ (the LS3DF setting) sample the Brillouin zone for free."
    );
}
