//! ZnTe₁₋ₓOₓ alloy structure study — the paper's §V/§VII material system,
//! on the structure side (fast; no SCF): random-alloy generation at the
//! paper's 3% oxygen fraction, Keating VFF relaxation, and the local
//! distortion statistics that drive the oxygen-state physics.
//!
//! Run: `cargo run --example znteo_alloy --release -- [m] [x_percent]`

use ls3df_atoms::{bond_stats, relax, topology_cutoff, znteo_alloy, Species, ZNTE_LATTICE};

fn main() {
    let m: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let x: f64 = std::env::args()
        .nth(2)
        .and_then(|v| v.parse().ok())
        .map(|p: f64| p / 100.0)
        .unwrap_or(0.03125);

    println!(
        "ZnTe(1-x)Ox alloys, {m}x{m}x{m} cells, x = {:.4} (paper: 3%)\n",
        x
    );
    println!(
        "{:>5} {:>16} {:>7} {:>22} {:>22} {:>10}",
        "seed", "formula", "steps", "Zn-O bonds (Bohr)", "Zn-Te bonds (Bohr)", "max disp"
    );

    for seed in 0..5u64 {
        let mut s = znteo_alloy([m, m, m], ZNTE_LATTICE, x, seed);
        let res = relax(&mut s, 1e-4, 4000);
        let nbrs = s.neighbor_list_within(topology_cutoff(&s));
        let zno = bond_stats(&s, &nbrs, Species::Zn, Species::O);
        let znte = bond_stats(&s, &nbrs, Species::Zn, Species::Te).unwrap();
        let zno_str = zno
            .map(|b| format!("{:.3} ± {:.3} ({})", b.mean, b.std_dev, b.count))
            .unwrap_or_else(|| "(no O)".into());
        println!(
            "{:>5} {:>16} {:>7} {:>22} {:>22} {:>9.3}",
            seed,
            s.formula(),
            res.steps,
            zno_str,
            format!("{:.3} ± {:.3}", znte.mean, znte.std_dev),
            res.max_displacement
        );
    }

    let ideal = 3.0_f64.sqrt() / 4.0 * ZNTE_LATTICE;
    println!("\nideal Zn–Te bond: {ideal:.3} Bohr; model Zn–O equilibrium: 3.742 Bohr");
    println!(
        "physics check: substitutional O pulls its four Zn neighbors inward (bond\n\
         contraction of ~1 Bohr) while the Zn–Te matrix stays near the bulk length —\n\
         this local distortion plus the deeper O potential is what creates the\n\
         oxygen-induced gap states the paper studies (its Fig. 7)."
    );
    println!(
        "\nnext: the full electronic-structure pipeline on these alloys is the fig6/fig7\n\
         bench binaries (LS3DF SCF + folded spectrum method)."
    );
}
