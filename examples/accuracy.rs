//! LS3DF vs direct DFT accuracy experiment (paper §V).
//!
//! The paper validates LS3DF by comparing against direct LDA on the same
//! system: "the total energy differed by only a few meV per atom", and
//! eigenenergies from the converged LS3DF potential differ by ~2 meV.
//! This example runs both methods on a small model crystal and reports the
//! same comparisons. The bench binary `accuracy` does the same on the
//! ZnTe systems.
//!
//! Run: `cargo run --example accuracy --release`

use ls3df::core::{Ls3df, Ls3dfOptions, Passivation};
use ls3df::pw::{self, Mixer, SolverOptions};
use ls3df_atoms::{Atom, Species, Structure};
use ls3df_pseudo::PseudoTable;

/// A simple-cubic crystal of closed-shell model atoms (He-like, Z = 2):
/// the minimal system with a guaranteed gap, ideal for validating the
/// fragment patching itself.
fn toy_crystal(m: [usize; 3], a: f64) -> Structure {
    let mut atoms = Vec::new();
    for k in 0..m[2] {
        for j in 0..m[1] {
            for i in 0..m[0] {
                atoms.push(Atom {
                    species: Species::Zn,
                    pos: [
                        (i as f64 + 0.5) * a,
                        (j as f64 + 0.5) * a,
                        (k as f64 + 0.5) * a,
                    ],
                });
            }
        }
    }
    Structure::new([m[0] as f64 * a, m[1] as f64 * a, m[2] as f64 * a], atoms)
}

fn main() {
    let m = [2usize, 2, 2];
    let a = 5.0;
    let ecut = 1.5;
    let piece_pts = 8;
    let s = toy_crystal(m, a);
    println!("system: {} ({} electrons)", s.formula(), s.num_electrons());

    // ---- Direct DFT reference -------------------------------------------
    let grid = ls3df_grid::Grid3::new(
        [m[0] * piece_pts, m[1] * piece_pts, m[2] * piece_pts],
        s.lengths,
    );
    let table = PseudoTable::deep_well(2.0, 0.8);
    let atoms: Vec<pw::PwAtom> = s
        .atoms
        .iter()
        .map(|at| {
            let p = table.get(at.species);
            pw::PwAtom {
                pos: at.pos,
                local: p.local,
                kb_rb: p.kb.rb,
                kb_energy: p.kb.e_kb,
            }
        })
        .collect();
    let sys = pw::DftSystem {
        grid: grid.clone(),
        ecut,
        atoms,
    };
    let t = std::time::Instant::now();
    let direct = pw::scf(
        &sys,
        &pw::ScfOptions {
            max_scf: 60,
            tol: 1e-5,
            n_extra_bands: 4,
            ..Default::default()
        },
    );
    println!(
        "direct DFT: converged={} in {} iterations ({:.1}s), E = {:.6} Ha",
        direct.converged,
        direct.history.len(),
        t.elapsed().as_secs_f64(),
        direct.total_energy
    );

    // ---- LS3DF ----------------------------------------------------------
    let wall = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.5);
    let buffer = std::env::args()
        .nth(2)
        .and_then(|v| v.parse().ok())
        .unwrap_or(3usize);
    let opts = Ls3dfOptions {
        ecut,
        piece_pts: [piece_pts; 3],
        buffer_pts: [buffer; 3],
        passivation: Passivation::WallOnly,
        wall_height: wall,
        n_extra_bands: 3,
        cg_steps: 5,
        fragment_tol: 1e-8,
        mixer: Mixer::Kerker {
            alpha: 0.7,
            q0: 1.0,
        },
        max_scf: 60,
        tol: 1e-4,
        pseudo: table,
        ..Default::default()
    };
    println!("LS3DF: wall={wall} buffer={buffer}");
    let t = std::time::Instant::now();
    let mut ls = Ls3df::builder(&s)
        .fragments(m)
        .options(opts)
        .build()
        .expect("valid accuracy-example geometry");
    println!("  {} fragments", ls.n_fragments());
    let res = ls.scf();
    println!(
        "  converged={} in {} iterations ({:.1}s)",
        res.converged,
        res.history.len(),
        t.elapsed().as_secs_f64()
    );
    for step in res.history.iter().take(3).chain(res.history.last()) {
        println!(
            "    iter {:2}: ∫|ΔV| = {:.3e}  [VF {:.2}s | PEtot_F {:.2}s | dens {:.2}s | POT {:.2}s]",
            step.iteration,
            step.dv_integral,
            step.timings.gen_vf,
            step.timings.petot_f,
            step.timings.gen_dens,
            step.timings.genpot
        );
    }

    // ---- Compare --------------------------------------------------------
    // 1) Patched density vs direct density.
    let drho = res.rho.diff(&direct.rho);
    let rho_err = drho.integrate_abs() / s.num_electrons();
    println!("density error  ∫|Δρ|/N_e = {:.3e}", rho_err);

    // 2) Eigenvalues of the full system in the converged LS3DF potential
    //    (the paper's §V methodology) vs the direct SCF eigenvalues.
    let basis = ls.global_basis();
    let nl = pw::NonlocalPotential::new(
        basis,
        &sys.atoms.iter().map(|a| a.pos).collect::<Vec<_>>(),
        |i, q| (-q * q * sys.atoms[i].kb_rb * sys.atoms[i].kb_rb / 2.0).exp(),
        &sys.atoms.iter().map(|a| a.kb_energy).collect::<Vec<_>>(),
    );
    let h = pw::Hamiltonian::new(basis, res.v_eff.clone(), &nl);
    let n_bands = direct.eigenvalues.len();
    let mut psi = pw::scf::random_start(n_bands, basis, 5);
    let stats = pw::solve_all_band(
        &h,
        &mut psi,
        &SolverOptions {
            max_iter: 200,
            tol: 1e-7,
            ..Default::default()
        },
    );
    let n_occ = sys.n_occupied();
    let mut max_occ_err: f64 = 0.0;
    for b in 0..n_occ {
        max_occ_err = max_occ_err.max((stats.eigenvalues[b] - direct.eigenvalues[b]).abs());
    }
    let gap_ls = stats.eigenvalues[n_occ] - stats.eigenvalues[n_occ - 1];
    let gap_direct = direct.eigenvalues[n_occ] - direct.eigenvalues[n_occ - 1];
    println!(
        "occupied eigenvalue error: max {:.2} meV ({:.3e} Ha)",
        max_occ_err * 27211.4,
        max_occ_err
    );
    println!(
        "band gap: LS3DF {:.4} Ha vs direct {:.4} Ha (Δ = {:.2} meV)",
        gap_ls,
        gap_direct,
        (gap_ls - gap_direct).abs() * 27211.4
    );
}
