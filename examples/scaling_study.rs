//! Scaling study: how an LS3DF production run is laid out on a machine.
//!
//! Uses the calibrated machine model to answer the practical questions the
//! paper's §VI discusses: how to pick the group size Np, what the
//! fragment-to-group load balance looks like, and where the time goes at
//! different concurrencies.
//!
//! Run: `cargo run --example scaling_study --release`

use ls3df::hpc::{
    iteration_time, jobs_for, lpt_imbalance, pct_peak, schedule, simulate_iteration, MachineSpec,
    Policy, Problem,
};

fn main() {
    let machine = MachineSpec::franklin();
    let problem = Problem::new(8, 6, 9); // the paper's strong-scaling system

    // 1) Choosing Np: the paper lands on Np = 40 for this system.
    println!("choosing the group size Np (8x6x9, 17,280 Franklin cores):");
    println!(
        "{:>6} {:>8} {:>12} {:>12}",
        "Np", "groups", "% of peak", "t/iter (s)"
    );
    for np in [10usize, 20, 40, 80, 160] {
        let t = iteration_time(&machine, &problem, 17_280, np);
        println!(
            "{:>6} {:>8} {:>11.1}% {:>12.1}",
            np,
            17_280 / np,
            pct_peak(&machine, &problem, 17_280, np) * 100.0,
            t.total()
        );
    }
    println!("(the paper: 'when the value of Np is increased beyond 40, the scaling within\n each group drops off, which drives the overall efficiency down')\n");

    // 2) Load balance: heterogeneous fragments over groups.
    println!("fragment load balance (LPT scheduling, 8x6x9 = 3,456 fragments):");
    println!("{:>8} {:>14} {:>14}", "groups", "imbalance", "phase eff.");
    for ng in [27usize, 108, 432, 1728, 3456] {
        let imb = lpt_imbalance(problem.m, ng);
        println!("{:>8} {:>14.4} {:>13.1}%", ng, imb, 100.0 / imb);
    }
    println!();

    // 3) Where the time goes across concurrency.
    println!("time breakdown per SCF iteration (8x6x9, Np = 40):");
    println!(
        "{:>8} {:>12} {:>10} {:>12}",
        "cores", "PEtot_F (s)", "comm (s)", "comm share"
    );
    for cores in [1080usize, 4320, 17_280] {
        let t = iteration_time(&machine, &problem, cores, 40);
        println!(
            "{:>8} {:>12.1} {:>10.2} {:>11.1}%",
            cores,
            t.petot_f,
            t.comm,
            100.0 * t.comm / t.total()
        );
    }
    println!("\n(the 27x volume prefactor of the fragment mix:)");
    let jobs = jobs_for([2, 2, 2]);
    let total: f64 = jobs.iter().map(|j| j.cost).sum();
    println!(
        "  {} fragments for 8 pieces of physical volume → {}x recomputation — the price\n  LS3DF pays for O(N) scaling and near-perfect parallelism.",
        jobs.len(),
        total / 8.0
    );
    let s = schedule(&jobs, 16, Policy::LongestFirst);
    println!(
        "  e.g. 64 fragments on 16 groups: imbalance {:.3} (LPT), {:.1}% phase efficiency",
        s.imbalance(),
        s.efficiency() * 100.0
    );

    // 4) Discrete-event walk of one iteration (vs the closed-form model).
    println!("\ndiscrete-event simulation of one SCF iteration (8x6x9, 17,280 cores, Np = 40):");
    let sim = simulate_iteration(&machine, &problem, 17_280, 40);
    println!(
        "  PEtot_F {:.1}s | Gen_VF+Gen_dens {:.2}s | GENPOT {:.2}s | total {:.1}s | utilization {:.1}%",
        sim.petot_wall,
        sim.comm_wall,
        sim.genpot_wall,
        sim.total_wall,
        sim.utilization * 100.0
    );
    let closed = iteration_time(&machine, &problem, 17_280, 40);
    println!(
        "  closed-form model total: {:.1}s (the two agree in the balanced regime)",
        closed.total()
    );
}
