//! Diagnostic: isolates the fragment-patching accuracy from SCF dynamics.
//!
//! Runs the direct DFT to convergence, then performs ONE LS3DF cycle in
//! the *converged* direct potential (fragments solved to high accuracy)
//! and compares the patched density against the direct density. If the
//! boundary-effect cancellation works, the patched density should closely
//! match — this is the core claim of the LS3DF method, independent of
//! outer-loop stability.
//!
//! Run: `cargo run --example patch_diagnostic --release [a] [wall] [buffer] [cg]`

use ls3df::core::{Ls3df, Ls3dfOptions, Passivation};
use ls3df::pw::{self, Mixer};
use ls3df_atoms::{Atom, Species, Structure};
use ls3df_pseudo::PseudoTable;

fn toy_crystal(m: [usize; 3], a: f64) -> Structure {
    let mut atoms = Vec::new();
    for k in 0..m[2] {
        for j in 0..m[1] {
            for i in 0..m[0] {
                atoms.push(Atom {
                    species: Species::Zn,
                    pos: [
                        (i as f64 + 0.5) * a,
                        (j as f64 + 0.5) * a,
                        (k as f64 + 0.5) * a,
                    ],
                });
            }
        }
    }
    Structure::new([m[0] as f64 * a, m[1] as f64 * a, m[2] as f64 * a], atoms)
}

fn main() {
    let a: f64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(6.5);
    let wall: f64 = std::env::args()
        .nth(2)
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.5);
    let buffer: usize = std::env::args()
        .nth(3)
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let cg: usize = std::env::args()
        .nth(4)
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let m: [usize; 3] = std::env::args()
        .nth(5)
        .and_then(|v| v.parse().ok())
        .map(|n: usize| [n, n, n])
        .unwrap_or([2, 2, 2]);
    let ecut = 1.5;
    let piece_pts: usize = std::env::args()
        .nth(6)
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let s = toy_crystal(m, a);

    // Direct reference.
    let grid = ls3df_grid::Grid3::new(
        [m[0] * piece_pts, m[1] * piece_pts, m[2] * piece_pts],
        s.lengths,
    );
    let table = PseudoTable::deep_well(2.0, 0.8);
    let atoms: Vec<pw::PwAtom> = s
        .atoms
        .iter()
        .map(|at| {
            let p = table.get(at.species);
            pw::PwAtom {
                pos: at.pos,
                local: p.local,
                kb_rb: p.kb.rb,
                kb_energy: p.kb.e_kb,
            }
        })
        .collect();
    let sys = pw::DftSystem {
        grid: grid.clone(),
        ecut,
        atoms,
    };
    let direct = pw::scf(
        &sys,
        &pw::ScfOptions {
            max_scf: 80,
            tol: 1e-6,
            n_extra_bands: 4,
            ..Default::default()
        },
    );
    let n_occ = sys.n_occupied();
    let gap = direct.eigenvalues[n_occ] - direct.eigenvalues[n_occ - 1];
    println!(
        "direct: converged={} gap={:.4} Ha ({:.2} eV)  E={:.6}",
        direct.converged,
        gap,
        gap * 27.2114,
        direct.total_energy
    );

    // One high-accuracy LS3DF cycle in the converged potential.
    let opts = Ls3dfOptions {
        ecut,
        piece_pts: [piece_pts; 3],
        buffer_pts: [buffer; 3],
        passivation: Passivation::WallOnly,
        wall_height: wall,
        n_extra_bands: 2,
        cg_steps: cg,
        fragment_tol: 1e-8,
        mixer: Mixer::Linear { alpha: 0.5 },
        max_scf: 1,
        tol: 1e-12,
        pseudo: table,
        ..Default::default()
    };
    // Start LS3DF directly from the converged direct-DFT potential.
    let mut ls = Ls3df::builder(&s)
        .fragments(m)
        .options(opts)
        .initial_potential(direct.v_eff.clone())
        .build()
        .expect("valid patch-diagnostic geometry");
    let t = std::time::Instant::now();
    let vfs = ls.gen_vf();
    let mut worst = f64::INFINITY;
    for round in 0..12 {
        worst = ls.petot_f(&vfs);
        println!(
            "  round {round}: worst fragment residual {worst:.2e} ({:.0}s)",
            t.elapsed().as_secs_f64()
        );
        if worst < 1e-5 {
            break;
        }
    }
    let rho = ls.gen_dens();
    println!(
        "one LS3DF cycle: {:.1}s, worst fragment residual {:.2e}",
        t.elapsed().as_secs_f64(),
        worst
    );

    let d = rho.diff(&direct.rho);
    println!(
        "patched density: ∫ρ = {:.6} (want {})",
        rho.integrate(),
        s.num_electrons()
    );
    println!(
        "density error: ∫|Δρ|/N_e = {:.3e}   max|Δρ|/max(ρ) = {:.3e}",
        d.integrate_abs() / s.num_electrons(),
        d.max_abs() / direct.rho.max()
    );
    // Where is the error? Report per-octant error to see boundary vs core.
    let v_out = ls.genpot(&rho);
    let dv = v_out.diff(&direct.v_eff).integrate_abs();
    println!("∫|V[ρ_patched] − V_direct| = {:.3e}", dv);
}
