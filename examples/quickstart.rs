//! Quickstart: the smallest end-to-end LS3DF calculation.
//!
//! Builds a ZnTe supercell, divides it into fragments, runs a few outer
//! SCF iterations of the four-step LS3DF loop (Gen_VF → PEtot_F →
//! Gen_dens → GENPOT), and prints the convergence trace — the minimal
//! "hello world" of the fragment method.
//!
//! Run: `cargo run --example quickstart --release`

use ls3df::{Ls3df, Ls3dfOptions, Mixer, Passivation, PseudoTable};
use ls3df_atoms::{znte_supercell, ZNTE_LATTICE};

fn main() {
    // A 2×2×2-cell ZnTe supercell: 64 atoms, 256 valence electrons.
    let structure = znte_supercell([2, 2, 2], ZNTE_LATTICE);
    println!(
        "structure: {} — {} atoms, {} electrons, box {:.2} Bohr",
        structure.formula(),
        structure.len(),
        structure.num_electrons(),
        structure.lengths[0]
    );

    // LS3DF with one eight-atom cell per piece (the paper's granularity),
    // scaled-down planewave settings for a laptop-class machine.
    let opts = Ls3dfOptions {
        ecut: 2.0,            // Hartree (paper: 50 Ryd = 25 Ha)
        piece_pts: [8, 8, 8], // grid per piece (paper: 40³)
        buffer_pts: [3, 3, 3],
        passivation: Passivation::PseudoH,
        wall_height: 1.5,
        n_extra_bands: 2,
        cg_steps: 5,
        mixer: Mixer::Kerker {
            alpha: 0.6,
            q0: 0.8,
        },
        max_scf: 8,
        tol: 1e-3,
        pseudo: PseudoTable::default(),
        ..Default::default()
    };

    let t = std::time::Instant::now();
    let mut calc = Ls3df::builder(&structure)
        .fragments([2, 2, 2])
        .options(opts)
        .build()
        .expect("valid quickstart geometry");
    println!(
        "fragments: {} (8 per piece corner: sizes 1×1×1 … 2×2×2 with ± weights)",
        calc.n_fragments()
    );

    let result = calc.scf();
    println!("\n iter    ∫|ΔV| (a.u.)   worst residual   PEtot_F time");
    for step in &result.history {
        println!(
            "{:>5}    {:>12.5e}   {:>14.2e}   {:>9.2}s",
            step.iteration, step.dv_integral, step.worst_residual, step.timings.petot_f
        );
    }
    println!(
        "\ntotal {:.0}s; patched density integrates to {:.4} electrons (expect {})",
        t.elapsed().as_secs_f64(),
        result.rho.integrate(),
        structure.num_electrons()
    );
    println!("next steps: examples/accuracy.rs (LS3DF vs direct DFT), the fig6/fig7 bench binaries\n(science runs), and `cargo run -p ls3df-bench --bin table1` (performance model).");
}
