//! Offline stand-in for the subset of the `rand` API the LS3DF workspace
//! uses: `StdRng::seed_from_u64`, the `Rng` sampling methods the shuffle
//! needs, and `SliceRandom::shuffle`.
//!
//! Only **seeded** construction is provided — there is deliberately no
//! `thread_rng`/`from_entropy`, which keeps every random draw in the
//! workspace reproducible (the `cargo xtask lint` `seeded-rng` rule
//! enforces the same property at the source level). The generator is
//! splitmix64-seeded xoshiro256**, which passes the statistical tests that
//! matter for alloy-site shuffling; it does **not** reproduce crates-io
//! `StdRng` streams bit-for-bit.

#![forbid(unsafe_code)]
/// A random number source (subset of `rand::RngCore` + `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `usize` in `[0, bound)` (`bound > 0`), via rejection
    /// sampling so the distribution is exactly uniform.
    fn gen_range_usize(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_range_usize: empty range");
        let bound = bound as u64;
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let r = self.next_u64();
            if r < zone {
                return (r % bound) as usize;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seeded construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// splitmix64 (same scheme the xoshiro reference code recommends).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range_usize(i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<usize> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(7);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50 items should not shuffle to identity"
        );
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
