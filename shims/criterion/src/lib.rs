//! Offline stand-in for the subset of the `criterion` API the LS3DF bench
//! harness uses: `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Timing is a simple warm-up + median-of-samples loop printed as plain
//! text — adequate for relative kernel comparisons (blocked vs naive GEMM
//! etc.), with none of the real criterion's statistics or HTML reports.

#![forbid(unsafe_code)]
use std::time::Instant;

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let mut g = self.benchmark_group("");
        g.bench_function(name, f);
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let label = self.qualify(id.into_benchmark_id());
        let mut b = Bencher {
            samples_ns: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&label);
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let label = self.qualify(id.into_benchmark_id());
        let mut b = Bencher {
            samples_ns: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        b.report(&label);
    }

    /// Finishes the group (report-only shim: nothing to flush).
    pub fn finish(self) {}

    fn qualify(&self, id: String) -> String {
        if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        }
    }
}

/// A function + parameter benchmark label.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter` labels.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Accepted benchmark identifiers (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The label text.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples_ns: Vec<u128>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, collecting `sample_size` samples after one warm-up run.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        black_box(f()); // warm-up (and keeps `f`'s result observable)
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(f());
            self.samples_ns.push(t.elapsed().as_nanos());
        }
    }

    fn report(&mut self, label: &str) {
        if self.samples_ns.is_empty() {
            println!("{label:<48} (no samples)");
            return;
        }
        self.samples_ns.sort_unstable();
        let median = self.samples_ns[self.samples_ns.len() / 2];
        let min = self.samples_ns[0];
        let max = self.samples_ns[self.samples_ns.len() - 1];
        println!(
            "{label:<48} median {} (min {}, max {}, n={})",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max),
            self.samples_ns.len()
        );
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Bundles benchmark functions into one runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7usize, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        assert!(runs >= 4, "warm-up + 3 samples expected, got {runs}");
    }
}
