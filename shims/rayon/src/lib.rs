//! Offline stand-in for the subset of the `rayon` API the LS3DF workspace
//! uses (`par_iter`, `par_iter_mut`, `into_par_iter`, `par_chunks`,
//! `par_chunks_mut`, `join`, `current_num_threads`, and the adapters
//! `map`/`zip`/`enumerate`/`filter`/`for_each`/`fold`/`reduce`/`collect`).
//!
//! The build container has no registry access, so the real crates-io rayon
//! cannot be resolved; this path dependency keeps the workspace compiling
//! and the API call sites unchanged — but unlike the original sequential
//! placeholder it now executes on a **real work-stealing thread pool**
//! (see [`mod@self::pool`] internals): persistent lazily-spawned workers with
//! per-worker deques, recursive splitting in [`join`], panic propagation,
//! and an `LS3DF_THREADS` env override (default: available parallelism;
//! `1` selects an exact sequential fallback with no worker threads).
//!
//! # Determinism
//!
//! Every adapter is **order-preserving by construction**: a parallel
//! pipeline is a materialized source vector plus a composed per-item
//! closure; workers split the source recursively, run the closure on
//! their halves, and the halves are concatenated back in source order.
//! Terminal reductions (`reduce`, `sum`, `fold`) then combine the ordered
//! results with thread-count-independent trees on the calling thread. The
//! schedule decides only *where* each item's closure runs — never the
//! shape of any floating-point summation — so results are bit-identical
//! across `LS3DF_THREADS` settings (the property the `ls3df-core::check`
//! invariant layer and `tests/ls3df_pipeline.rs` gate on). Heavy per-item
//! closures (`map`, `for_each`, `flat_map_iter`) execute on the workers;
//! only the cheap ordering/combining steps are sequential.

// This crate (with `ls3df::alloc_count`) is the workspace's audited
// unsafe surface: deny globally, allow per site with a SAFETY: comment.
#![deny(unsafe_code)]

mod pool;

pub use pool::Schedule;

/// Everything the workspace imports via `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParallelSlice, ParallelSliceMut};
}

/// The do-nothing pipeline stage of a freshly created [`ParIter`]
/// (a plain fn pointer, so source-only iterators need no boxing).
pub type IdentityPipe<T> = fn(T) -> T;

fn identity_pipe<T>() -> IdentityPipe<T> {
    std::convert::identity::<T>
}

/// Number of worker threads parallel work is spread across (`1` when the
/// pool is disabled via `LS3DF_THREADS=1` or on single-core hosts).
pub fn current_num_threads() -> usize {
    pool::global_num_threads()
}

/// Runs both closures, potentially in parallel on the pool, and returns
/// their results. A panic in either closure propagates to the caller
/// (after both have settled). With the pool disabled this is exactly
/// `(a(), b())`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    pool::global_join(a, b)
}

/// A parallel iterator: a materialized, source-ordered item vector plus a
/// composed per-item pipeline closure. Adapters compose the closure
/// lazily; terminal operations fan the pipeline out over the worker pool
/// and reassemble results in source order (see the crate docs for the
/// determinism argument).
pub struct ParIter<S, F> {
    src: Vec<S>,
    f: F,
}

impl<T: Send> ParIter<T, IdentityPipe<T>> {
    fn from_vec(src: Vec<T>) -> Self {
        ParIter {
            src,
            f: identity_pipe(),
        }
    }
}

impl<S, T, F> ParIter<S, F>
where
    S: Send,
    T: Send,
    F: Fn(S) -> T + Sync,
{
    /// Runs the pipeline over the pool, returning items in source order.
    fn run(self) -> Vec<T> {
        pool::map_vec(self.src, &self.f)
    }

    /// Applies `f` to every item (on the workers).
    pub fn map<U, G>(self, g: G) -> ParIter<S, impl Fn(S) -> U + Sync>
    where
        U: Send,
        G: Fn(T) -> U + Sync,
    {
        let f = self.f;
        ParIter {
            src: self.src,
            f: move |s| g(f(s)),
        }
    }

    /// Pairs items with those of another parallel iterator (truncating to
    /// the shorter source, like rayon's `zip`).
    #[allow(clippy::type_complexity)] // RPIT pipe composition; no alias possible
    pub fn zip<J>(
        self,
        other: J,
    ) -> ParIter<(S, J::Source), impl Fn((S, J::Source)) -> (T, J::Item) + Sync>
    where
        J: IntoParallelIterator,
    {
        let other = other.into_par_iter();
        let f = self.f;
        let g = other.f;
        ParIter {
            src: self.src.into_iter().zip(other.src).collect(),
            f: move |(a, b)| (f(a), g(b)),
        }
    }

    /// Pairs items with their (source-order) index.
    #[allow(clippy::type_complexity)] // RPIT pipe composition; no alias possible
    pub fn enumerate(self) -> ParIter<(usize, S), impl Fn((usize, S)) -> (usize, T) + Sync> {
        let f = self.f;
        ParIter {
            src: self.src.into_iter().enumerate().collect(),
            f: move |(i, s)| (i, f(s)),
        }
    }

    /// Keeps items satisfying the predicate. The pipeline built so far
    /// runs on the workers; the (cheap) predicate itself runs on the
    /// calling thread in source order, because filtering changes the item
    /// count and would otherwise break order-preserving splitting.
    pub fn filter<P>(self, p: P) -> ParIter<T, IdentityPipe<T>>
    where
        P: FnMut(&T) -> bool,
    {
        let mut p = p;
        ParIter::from_vec(self.run().into_iter().filter(|t| p(t)).collect())
    }

    /// Maps each item to a serial iterator and concatenates the results
    /// in source order. The mapping closure (the heavy part at every
    /// workspace call site) runs on the workers; only the concatenation
    /// is sequential.
    pub fn flat_map_iter<U, G>(self, g: G) -> ParIter<U::Item, IdentityPipe<U::Item>>
    where
        U: IntoIterator + Send,
        U::Item: Send,
        G: Fn(T) -> U + Sync,
    {
        let f = self.f;
        let composed = move |s| g(f(s));
        let groups: Vec<U> = pool::map_vec(self.src, &composed);
        ParIter::from_vec(groups.into_iter().flatten().collect())
    }

    /// Consumes the iterator, applying `f` to every item on the workers.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(T) + Sync,
    {
        let f = self.f;
        let composed = move |s| g(f(s));
        let _: Vec<()> = pool::map_vec(self.src, &composed);
    }

    /// Rayon-style fold: produces a parallel iterator of per-split
    /// accumulators. This shim always uses exactly **one** split folded in
    /// source order — a fixed summation shape, so the result cannot depend
    /// on the thread count (the pipeline feeding the fold still runs on
    /// the workers).
    pub fn fold<A, ID, G>(self, identity: ID, fold_op: G) -> ParIter<A, IdentityPipe<A>>
    where
        A: Send,
        ID: Fn() -> A,
        G: FnMut(A, T) -> A,
    {
        let acc = self.run().into_iter().fold(identity(), fold_op);
        ParIter::from_vec(vec![acc])
    }

    /// Reduces all items with `op`, starting from `identity()`, in source
    /// order (fixed left fold — schedule-independent by construction).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T,
        OP: FnMut(T, T) -> T,
    {
        self.run().into_iter().fold(identity(), op)
    }

    /// Sums all items in source order.
    pub fn sum<Out: std::iter::Sum<T>>(self) -> Out {
        self.run().into_iter().sum()
    }

    /// Collects items in source order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.run().into_iter().collect()
    }
}

/// Types convertible into a [`ParIter`] (`Vec`, ranges, slices, and
/// [`ParIter`] itself so `zip` accepts both).
pub trait IntoParallelIterator {
    /// Item type the resulting iterator yields.
    type Item: Send;
    /// Element type of the materialized source vector.
    type Source: Send;
    /// Pipeline closure mapping sources to items.
    type Pipe: Fn(Self::Source) -> Self::Item + Sync;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Source, Self::Pipe>;
}

impl<S, T, F> IntoParallelIterator for ParIter<S, F>
where
    S: Send,
    T: Send,
    F: Fn(S) -> T + Sync,
{
    type Item = T;
    type Source = S;
    type Pipe = F;
    fn into_par_iter(self) -> ParIter<S, F> {
        self
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Source = T;
    type Pipe = IdentityPipe<T>;
    fn into_par_iter(self) -> ParIter<T, IdentityPipe<T>> {
        ParIter::from_vec(self)
    }
}

impl<T: Send> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    type Source = T;
    type Pipe = IdentityPipe<T>;
    fn into_par_iter(self) -> ParIter<T, IdentityPipe<T>> {
        ParIter::from_vec(self.collect())
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Source = &'a T;
    type Pipe = IdentityPipe<&'a T>;
    fn into_par_iter(self) -> ParIter<&'a T, IdentityPipe<&'a T>> {
        ParIter::from_vec(self.iter().collect())
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Source = &'a T;
    type Pipe = IdentityPipe<&'a T>;
    fn into_par_iter(self) -> ParIter<&'a T, IdentityPipe<&'a T>> {
        ParIter::from_vec(self.iter().collect())
    }
}

/// `par_iter`/`par_chunks` on shared slices (and, via deref, `Vec`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel shared iteration.
    fn par_iter(&self) -> ParIter<&T, IdentityPipe<&T>>;
    /// Parallel iteration over `size`-sized chunks.
    fn par_chunks(&self, size: usize) -> ParIter<&[T], IdentityPipe<&[T]>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T, IdentityPipe<&T>> {
        ParIter::from_vec(self.iter().collect())
    }
    fn par_chunks(&self, size: usize) -> ParIter<&[T], IdentityPipe<&[T]>> {
        ParIter::from_vec(self.chunks(size).collect())
    }
}

/// `par_iter_mut`/`par_chunks_mut` on mutable slices (and, via deref, `Vec`).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel exclusive iteration.
    fn par_iter_mut(&mut self) -> ParIter<&mut T, IdentityPipe<&mut T>>;
    /// Parallel iteration over mutable `size`-sized chunks.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T], IdentityPipe<&mut [T]>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<&mut T, IdentityPipe<&mut T>> {
        ParIter::from_vec(self.iter_mut().collect())
    }
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T], IdentityPipe<&mut [T]>> {
        ParIter::from_vec(self.chunks_mut(size).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_reduce_matches_sequential() {
        let v: Vec<u64> = (0..100u64).collect();
        let s: u64 = v.par_iter().map(|&x| x * x).reduce(|| 0, |a, b| a + b);
        assert_eq!(s, (0..100u64).map(|x| x * x).sum::<u64>());
    }

    #[test]
    fn fold_then_reduce_single_split() {
        let total = (0..10usize)
            .into_par_iter()
            .fold(|| 0usize, |acc, x| acc + x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 45);
    }

    #[test]
    fn chunks_mut_preserves_order() {
        let mut v = vec![0usize; 12];
        v.par_chunks_mut(4).enumerate().for_each(|(i, c)| {
            for x in c.iter_mut() {
                *x = i;
            }
        });
        assert_eq!(v, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn zip_pairs_in_order() {
        let a = [1, 2, 3];
        let mut b = vec![10, 20, 30];
        b.par_iter_mut()
            .zip(a.par_iter())
            .for_each(|(x, &y)| *x += y);
        assert_eq!(b, vec![11, 22, 33]);
    }

    #[test]
    fn filter_and_flat_map_preserve_order() {
        let v: Vec<usize> = (0..20).collect();
        let out: Vec<usize> = v
            .into_par_iter()
            .map(|x| x * 3)
            .filter(|&x| x % 2 == 0)
            .flat_map_iter(|x| [x, x + 1])
            .collect();
        let expect: Vec<usize> = (0..20)
            .map(|x| x * 3)
            .filter(|&x| x % 2 == 0)
            .flat_map(|x| [x, x + 1])
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn large_map_preserves_order_and_bits() {
        // Large enough that a multi-thread pool actually splits it; the
        // result must still be the exact sequential-order concatenation.
        let src: Vec<f64> = (0..50_000).map(|i| (i as f64) * 1e-3).collect();
        let out: Vec<f64> = src.par_iter().map(|&x| (x.sin() + 1.5).ln()).collect();
        for (i, (&x, &y)) in src.iter().zip(&out).enumerate() {
            assert_eq!(
                y.to_bits(),
                (x.sin() + 1.5).ln().to_bits(),
                "item {i} diverged"
            );
        }
    }

    #[test]
    fn join_runs_both_sides() {
        let (a, b) = super::join(|| 2 + 2, || vec![1, 2, 3].len());
        assert_eq!(a, 4);
        assert_eq!(b, 3);
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
