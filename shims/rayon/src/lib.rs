//! Offline stand-in for the subset of the `rayon` API the LS3DF workspace
//! uses (`par_iter`, `par_iter_mut`, `into_par_iter`, `par_chunks`,
//! `par_chunks_mut`, `join`, `current_num_threads`, and the adapters
//! `map`/`zip`/`enumerate`/`filter`/`for_each`/`fold`/`reduce`/`collect`).
//!
//! The build container has no registry access, so the real crates-io rayon
//! cannot be resolved; this path dependency keeps the workspace compiling
//! and the API call sites unchanged. Execution is **deterministic
//! sequential**: every adapter preserves the natural item order, so
//! reductions are bit-identical from run to run — the property the
//! `ls3df-core::check` invariant layer tests. Swapping the real rayon back
//! in (one line in the root `Cargo.toml`) re-enables work stealing; the
//! fixed-order tree reductions in `ls3df-pw::density` and
//! `ls3df-core::scf` are written to stay deterministic under it.

/// Everything the workspace imports via `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParallelSlice, ParallelSliceMut};
}

/// Number of worker threads in the (sequential) pool.
pub fn current_num_threads() -> usize {
    1
}

/// Runs both closures and returns their results (sequentially, `a` first).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// A "parallel" iterator: a thin deterministic wrapper over a standard
/// iterator. Adapters mirror rayon's names and signatures closely enough
/// for the workspace call sites.
pub struct ParIter<I> {
    inner: I,
}

impl<I: Iterator> ParIter<I> {
    /// Applies `f` to every item.
    pub fn map<U, F: FnMut(I::Item) -> U>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter {
            inner: self.inner.map(f),
        }
    }

    /// Pairs items with those of another parallel iterator.
    pub fn zip<J>(self, other: J) -> ParIter<std::iter::Zip<I, J::Iter>>
    where
        J: IntoParallelIterator,
    {
        ParIter {
            inner: self.inner.zip(other.into_par_iter().inner),
        }
    }

    /// Pairs items with their index.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter {
            inner: self.inner.enumerate(),
        }
    }

    /// Keeps items satisfying the predicate.
    pub fn filter<P: FnMut(&I::Item) -> bool>(self, p: P) -> ParIter<std::iter::Filter<I, P>> {
        ParIter {
            inner: self.inner.filter(p),
        }
    }

    /// Maps each item to a serial iterator and concatenates the results.
    pub fn flat_map_iter<U, F>(self, f: F) -> ParIter<std::iter::FlatMap<I, U, F>>
    where
        U: IntoIterator,
        F: FnMut(I::Item) -> U,
    {
        ParIter {
            inner: self.inner.flat_map(f),
        }
    }

    /// Consumes the iterator, applying `f` to every item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.inner.for_each(f);
    }

    /// Rayon-style fold: produces a parallel iterator of per-split
    /// accumulators. The sequential pool has exactly one split, so this
    /// folds everything into a single accumulator.
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParIter<std::iter::Once<T>>
    where
        ID: Fn() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        ParIter {
            inner: std::iter::once(self.inner.fold(identity(), fold_op)),
        }
    }

    /// Reduces all items with `op`, starting from `identity()`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.inner.fold(identity(), op)
    }

    /// Sums all items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.inner.sum()
    }

    /// Collects items in order.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.inner.collect()
    }
}

/// Types convertible into a [`ParIter`] (`Vec`, ranges, slices, and
/// [`ParIter`] itself so `zip` accepts both).
pub trait IntoParallelIterator {
    /// Underlying sequential iterator type.
    type Iter: Iterator;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<I: Iterator> IntoParallelIterator for ParIter<I> {
    type Iter = I;
    fn into_par_iter(self) -> ParIter<I> {
        self
    }
}

impl<T> IntoParallelIterator for Vec<T> {
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

impl<T> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator,
{
    type Iter = std::ops::Range<T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter { inner: self }
    }
}

impl<'a, T> IntoParallelIterator for &'a [T] {
    type Iter = std::slice::Iter<'a, T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter { inner: self.iter() }
    }
}

impl<'a, T> IntoParallelIterator for &'a Vec<T> {
    type Iter = std::slice::Iter<'a, T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter { inner: self.iter() }
    }
}

/// `par_iter`/`par_chunks` on shared slices (and, via deref, `Vec`).
pub trait ParallelSlice<T> {
    /// Parallel shared iteration.
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
    /// Parallel iteration over `size`-sized chunks.
    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter { inner: self.iter() }
    }
    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter {
            inner: self.chunks(size),
        }
    }
}

/// `par_iter_mut`/`par_chunks_mut` on mutable slices (and, via deref, `Vec`).
pub trait ParallelSliceMut<T> {
    /// Parallel exclusive iteration.
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
    /// Parallel iteration over mutable `size`-sized chunks.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
        ParIter {
            inner: self.iter_mut(),
        }
    }
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter {
            inner: self.chunks_mut(size),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_reduce_matches_sequential() {
        let v: Vec<u64> = (0..100u64).collect();
        let s: u64 = v.par_iter().map(|&x| x * x).reduce(|| 0, |a, b| a + b);
        assert_eq!(s, (0..100u64).map(|x| x * x).sum::<u64>());
    }

    #[test]
    fn fold_then_reduce_single_split() {
        let total = (0..10usize)
            .into_par_iter()
            .fold(|| 0usize, |acc, x| acc + x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 45);
    }

    #[test]
    fn chunks_mut_preserves_order() {
        let mut v = vec![0usize; 12];
        v.par_chunks_mut(4).enumerate().for_each(|(i, c)| {
            for x in c.iter_mut() {
                *x = i;
            }
        });
        assert_eq!(v, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn zip_pairs_in_order() {
        let a = [1, 2, 3];
        let mut b = vec![10, 20, 30];
        b.par_iter_mut()
            .zip(a.par_iter())
            .for_each(|(x, &y)| *x += y);
        assert_eq!(b, vec![11, 22, 33]);
    }
}
