//! The work-stealing thread pool behind the `rayon` stand-in.
//!
//! Architecture (a deliberately small cousin of rayon's registry):
//!
//! * **Persistent workers.** The global pool spawns its OS threads the
//!   first time any parallel operation runs (never at program start) and
//!   keeps them for the life of the process, parked on a condvar when
//!   idle. Thread count comes from `LS3DF_THREADS` (default: available
//!   parallelism); a count of `1` disables the pool entirely and every
//!   driver takes the exact sequential path.
//! * **Per-worker deques + shared injector.** Each worker owns a deque:
//!   it pushes and pops split halves at the back (LIFO, cache-warm) while
//!   thieves and the injector drain from the front (FIFO, oldest = biggest
//!   task first — the chunked-injector variant of the Chase–Lev layout,
//!   with a mutex per deque instead of lock-free CAS: LS3DF tasks are
//!   fragment solves and FFT lines, microseconds to milliseconds each, so
//!   queue locking is noise).
//! * **Recursive splitting in `join`.** `join(a, b)` publishes `b` (local
//!   deque for workers, injector for external threads), runs `a` inline,
//!   then reclaims `b` if nobody took it — or *helps*, executing other
//!   queued jobs while waiting for the thief, so nested joins never
//!   deadlock the fixed-size pool.
//! * **Panic propagation.** A stolen job that panics is caught on the
//!   thief, carried back through its latch, and re-thrown on the owning
//!   thread via `resume_unwind` — a panic inside a `par_iter` closure
//!   (e.g. an `ls3df-core::check` invariant violation) surfaces in the
//!   caller exactly as it would sequentially, and the worker survives.
//!
//! Determinism contract: the pool only ever changes *where* a closure
//! runs, never *what* it computes or how results are ordered. All
//! reductions in the iterator layer combine materialized, source-ordered
//! results with thread-count-independent trees, so runs at
//! `LS3DF_THREADS` ∈ {1, 2, N} are bit-identical (gated by
//! `tests/ls3df_pipeline.rs`).
//!
//! That contract is additionally stress-tested by *schedule exploration*:
//! [`Schedule`] selects the order in which workers look for runnable
//! jobs, and the adversarial variants (`lifo-starve`, `all-steal`,
//! `reverse-park`) deliberately produce steal patterns the default order
//! never would. `cargo xtask schedules` re-runs the pool tests and a
//! short SCF under every variant and asserts bit-identical digests and
//! intact panic propagation — determinism that survives only on the
//! schedules the default policy happens to generate is not determinism.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// Recovers the data from a poisoned lock: a panicking job is caught and
/// reported through its latch, so the guarded state is always consistent.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Schedules
// ---------------------------------------------------------------------------

/// Work-selection order for the pool's workers.
///
/// [`Schedule::Default`] is the production order. The other variants are
/// *adversarial*: they are functionally equivalent (every queued job
/// still runs exactly once, panics still propagate) but force steal
/// patterns the default order never produces, so running the test suite
/// and an SCF digest under each explores genuinely different interleaved
/// executions of the same program. Fixed per pool at construction; the
/// lazily-created global pool reads `LS3DF_SCHEDULE` once.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Schedule {
    /// Production order: own deque back (LIFO, cache-warm) → injector →
    /// forward steal scan from `me + 1`.
    Default,
    /// Starves the LIFO fast path: workers drain their own deque
    /// oldest-first (FIFO), maximizing the distance between a split's
    /// publish and its execution — the join owner almost never reclaims.
    LifoStarve,
    /// Workers prefer anyone else's work: injector → steal scan → own
    /// deque last, so nearly every job crosses threads.
    AllSteal,
    /// Reverses the steal scan (victims visited in descending index
    /// order), so workers waking from the park loop probe the opposite
    /// victims from Default.
    ReversePark,
}

impl Schedule {
    /// Every schedule, Default first — the exploration matrix iterated by
    /// `cargo xtask schedules` and the pool's own tests.
    pub const ALL: [Schedule; 4] = [
        Schedule::Default,
        Schedule::LifoStarve,
        Schedule::AllSteal,
        Schedule::ReversePark,
    ];

    /// The `LS3DF_SCHEDULE` value selecting this schedule.
    pub fn name(self) -> &'static str {
        match self {
            Schedule::Default => "default",
            Schedule::LifoStarve => "lifo-starve",
            Schedule::AllSteal => "all-steal",
            Schedule::ReversePark => "reverse-park",
        }
    }

    fn parse(s: &str) -> Option<Schedule> {
        Schedule::ALL.iter().copied().find(|v| v.name() == s.trim())
    }

    /// Schedule from `LS3DF_SCHEDULE`. Unset or unrecognized values fall
    /// back to [`Schedule::Default`], so a production run can never land
    /// on an adversarial order by accident.
    pub fn from_env() -> Schedule {
        std::env::var("LS3DF_SCHEDULE")
            .ok()
            .and_then(|s| Schedule::parse(&s))
            .unwrap_or(Schedule::Default)
    }
}

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

/// A type-erased pointer to a [`StackJob`] living on some thread's stack.
///
/// The owner of the `StackJob` keeps it alive (and does not move it) until
/// the job's latch is set or the `JobRef` has been reclaimed from its
/// queue, so the pointer is always valid when `execute` runs.
#[derive(Clone, Copy)]
struct JobRef {
    data: *const (),
    // SAFETY: callers must pass `data` (still live) as the argument.
    execute: unsafe fn(*const ()),
}

// The pointed-to StackJob is Sync (all fields lock-protected) and stays
// alive until the job completes, per the JobRef contract above.
// SAFETY: given that contract, sending the raw pointer is sound.
#[allow(unsafe_code)]
unsafe impl Send for JobRef {}

/// A `FnOnce` job allocated on the owner's stack, with a latch the owner
/// blocks on when the job is stolen.
struct StackJob<F, R> {
    func: Mutex<Option<F>>,
    result: Mutex<Option<std::thread::Result<R>>>,
    latch: Latch,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    fn new(f: F) -> Self {
        StackJob {
            func: Mutex::new(Some(f)),
            result: Mutex::new(None),
            latch: Latch::new(),
        }
    }

    fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: (self as *const Self).cast::<()>(),
            execute: Self::execute,
        }
    }

    /// Entry point when a thief (or the worker loop) runs the job.
    ///
    /// SAFETY: `data` must come from [`StackJob::as_job_ref`] on a live
    /// job (the owner waits on the latch before the job can drop).
    #[allow(unsafe_code)]
    unsafe fn execute(data: *const ()) {
        // SAFETY: per the function contract, `data` points at a live
        // StackJob<F, R> created by as_job_ref on the owner's stack.
        let job = unsafe { &*data.cast::<Self>() };
        let Some(f) = lock(&job.func).take() else {
            return; // already reclaimed by the owner
        };
        let res = catch_unwind(AssertUnwindSafe(f));
        *lock(&job.result) = Some(res);
        job.latch.set();
    }

    /// Takes the closure back out (owner-side inline execution).
    fn reclaim_func(&self) -> Option<F> {
        lock(&self.func).take()
    }

    /// Takes the finished result; propagates a thief-side panic.
    fn unwrap_result(&self) -> R {
        match lock(&self.result).take() {
            Some(Ok(r)) => r,
            Some(Err(payload)) => resume_unwind(payload),
            // Unreachable by construction: the latch is only set after the
            // result slot is filled.
            None => resume_unwind(Box::new("rayon shim: latch set without result")),
        }
    }
}

/// One-shot completion flag with both a fast atomic probe (for the
/// help-while-waiting loop) and a blocking wait.
struct Latch {
    done: AtomicBool,
    mutex: Mutex<()>,
    cond: Condvar,
}

impl Latch {
    fn new() -> Self {
        Latch {
            done: AtomicBool::new(false),
            mutex: Mutex::new(()),
            cond: Condvar::new(),
        }
    }

    fn probe(&self) -> bool {
        // ORDERING: Acquire pairs with the Release store in `set`: a
        // thread that observes `done` also observes the result slot the
        // executing thread filled just before setting the flag.
        self.done.load(Ordering::Acquire)
    }

    fn set(&self) {
        // ORDERING: Release publishes the result written immediately
        // before the flag flip; paired with the Acquire load in `probe`.
        self.done.store(true, Ordering::Release);
        // Lock/unlock pairs the store with any waiter between its probe
        // and its wait, preventing a missed wakeup.
        drop(lock(&self.mutex));
        self.cond.notify_all();
    }

    /// Blocks briefly (the caller re-probes and helps between waits).
    fn wait_brief(&self) {
        let guard = lock(&self.mutex);
        if !self.probe() {
            let _ = self
                .cond
                .wait_timeout(guard, Duration::from_millis(1))
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

// ---------------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------------

thread_local! {
    /// Set once at worker startup: which pool this thread belongs to, and
    /// its queue index there.
    static WORKER: std::cell::RefCell<Option<(Arc<PoolState>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

struct PoolState {
    /// Per-worker deques. Owner end = back; steal end = front.
    queues: Vec<Mutex<VecDeque<JobRef>>>,
    /// Overflow/injection queue for jobs published by non-pool threads.
    injector: Mutex<VecDeque<JobRef>>,
    /// Idle workers park here (paired with `injector`'s mutex).
    sleep: Condvar,
    shutdown: AtomicBool,
    /// Work-selection order, fixed at pool construction.
    schedule: Schedule,
}

impl PoolState {
    /// Pops work in the pool's [`Schedule`] order (Default: own deque
    /// back, then injector, then steals). Whatever the order, a worker
    /// only ever *selects* among the same queued jobs — it never changes
    /// what any of them computes, which is exactly the independence the
    /// adversarial schedules stress.
    fn find_work(&self, me: Option<usize>) -> Option<JobRef> {
        match self.schedule {
            Schedule::Default => self
                .pop_own_back(me)
                .or_else(|| self.pop_injector())
                .or_else(|| self.steal(me, false)),
            Schedule::LifoStarve => self
                .pop_own_front(me)
                .or_else(|| self.pop_injector())
                .or_else(|| self.steal(me, false)),
            Schedule::AllSteal => self
                .pop_injector()
                .or_else(|| self.steal(me, false))
                .or_else(|| self.pop_own_back(me)),
            Schedule::ReversePark => self
                .pop_own_back(me)
                .or_else(|| self.pop_injector())
                .or_else(|| self.steal(me, true)),
        }
    }

    /// Owner end of the worker's own deque (LIFO, cache-warm).
    fn pop_own_back(&self, me: Option<usize>) -> Option<JobRef> {
        lock(&self.queues[me?]).pop_back()
    }

    /// LifoStarve's oldest-first drain of the worker's own deque.
    fn pop_own_front(&self, me: Option<usize>) -> Option<JobRef> {
        lock(&self.queues[me?]).pop_front()
    }

    fn pop_injector(&self) -> Option<JobRef> {
        lock(&self.injector).pop_front()
    }

    /// Scans the other workers' deques at the steal end (front, FIFO) —
    /// forward from `me + 1`, or in descending order when `reverse`.
    fn steal(&self, me: Option<usize>, reverse: bool) -> Option<JobRef> {
        let n = self.queues.len();
        let start = me.map_or(0, |i| i + 1);
        for k in 0..n {
            let victim = if reverse {
                (start + n - 1 - k) % n
            } else {
                (start + k) % n
            };
            if Some(victim) == me {
                continue;
            }
            if let Some(job) = lock(&self.queues[victim]).pop_front() {
                return Some(job);
            }
        }
        None
    }

    /// Publishes a job where the current thread is allowed to: the local
    /// deque for pool workers, the injector for everyone else.
    fn push(&self, me: Option<usize>, job: JobRef) {
        match me {
            Some(i) => lock(&self.queues[i]).push_back(job),
            None => lock(&self.injector).push_back(job),
        }
        self.sleep.notify_one();
    }

    /// Removes `job` from wherever `push` put it, if still queued.
    /// Returns true when the caller now exclusively owns the job.
    fn reclaim(&self, me: Option<usize>, job: JobRef) -> bool {
        let queue = match me {
            Some(i) => &self.queues[i],
            None => &self.injector,
        };
        let mut q = lock(queue);
        match q.iter().rposition(|j| std::ptr::eq(j.data, job.data)) {
            Some(pos) => {
                q.remove(pos);
                true
            }
            None => false,
        }
    }
}

/// A work-stealing pool. The workspace uses one lazily-created global
/// instance; unit tests build private pools with explicit thread counts.
pub(crate) struct Pool {
    state: Arc<PoolState>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    n_threads: usize,
}

impl Pool {
    /// Spawns `n` worker threads (`n ≥ 2`; a 1-thread "pool" is
    /// represented by no pool at all — the sequential fallback) using the
    /// schedule from the environment.
    pub(crate) fn new(n: usize) -> Self {
        Pool::with_schedule(n, Schedule::from_env())
    }

    /// Spawns `n` workers with an explicit work-selection order — the
    /// entry point of the schedule-exploration harness.
    pub(crate) fn with_schedule(n: usize, schedule: Schedule) -> Self {
        let n = n.max(2);
        let state = Arc::new(PoolState {
            queues: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            sleep: Condvar::new(),
            shutdown: AtomicBool::new(false),
            schedule,
        });
        let handles = (0..n)
            .map(|index| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("ls3df-worker-{index}"))
                    .spawn(move || worker_main(state, index))
            })
            .filter_map(Result::ok)
            .collect();
        Pool {
            state,
            handles: Mutex::new(handles),
            n_threads: n,
        }
    }

    pub(crate) fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// The queue index of the current thread, when it is a worker of
    /// *this* pool.
    fn current_index(&self) -> Option<usize> {
        WORKER.with(|w| match &*w.borrow() {
            Some((state, idx)) if Arc::ptr_eq(state, &self.state) => Some(*idx),
            _ => None,
        })
    }

    /// Runs `a` and `b`, potentially in parallel, returning both results.
    /// Either closure panicking re-raises that panic on the caller (after
    /// both have finished — a stolen `b` is never abandoned mid-flight).
    pub(crate) fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        let me = self.current_index();
        let job_b = StackJob::new(b);
        let ref_b = job_b.as_job_ref();
        self.state.push(me, ref_b);

        let ra = match catch_unwind(AssertUnwindSafe(a)) {
            Ok(v) => v,
            Err(payload) => {
                // `a` panicked with `b` still published: settle `b` before
                // unwinding so its stack slot stays valid for any thief.
                if !self.state.reclaim(me, ref_b) {
                    self.wait_helping(me, &job_b.latch);
                    let _ = lock(&job_b.result).take();
                }
                resume_unwind(payload);
            }
        };

        if self.state.reclaim(me, ref_b) {
            // Nobody stole `b`: run it inline (panics propagate directly).
            match job_b.reclaim_func() {
                Some(f) => (ra, f()),
                // reclaim() returning true guarantees exclusive ownership,
                // so the closure is still present; this arm is unreachable.
                None => (ra, job_b.unwrap_result()),
            }
        } else {
            // Stolen: help with other queued work while the thief runs it.
            self.wait_helping(me, &job_b.latch);
            (ra, job_b.unwrap_result())
        }
    }

    /// Waits for `latch`, executing any other available jobs meanwhile —
    /// the mechanism that keeps nested joins deadlock-free on a
    /// fixed-size pool.
    fn wait_helping(&self, me: Option<usize>, latch: &Latch) {
        while !latch.probe() {
            match self.state.find_work(me) {
                // SAFETY: every queued JobRef upholds the StackJob
                // liveness contract (its owner is blocked on the latch).
                #[allow(unsafe_code)]
                Some(job) => unsafe { (job.execute)(job.data) },
                None => latch.wait_brief(),
            }
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // ORDERING: Release pairs with the Acquire loads in worker_main,
        // so a worker observing shutdown also observes every write the
        // dropping thread made before it (the flag is the only signal).
        self.state.shutdown.store(true, Ordering::Release);
        self.state.sleep.notify_all();
        for handle in lock(&self.handles).drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_main(state: Arc<PoolState>, index: usize) {
    WORKER.with(|w| *w.borrow_mut() = Some((Arc::clone(&state), index)));
    loop {
        match state.find_work(Some(index)) {
            // SAFETY: queued JobRefs point at live StackJobs (owners wait
            // on their latches); execute catches panics internally.
            #[allow(unsafe_code)]
            Some(job) => unsafe { (job.execute)(job.data) },
            None => {
                // ORDERING: Acquire pairs with the Release store in
                // `Drop`, ordering this worker's exit after everything
                // the dropping thread did before raising the flag.
                if state.shutdown.load(Ordering::Acquire) {
                    // Push any buffered observability spans to the global
                    // sink before this worker thread (and its thread-local
                    // buffer) disappears. No-op unless `obs` is enabled.
                    ls3df_obs::flush_thread();
                    return;
                }
                // Going idle: hand buffered spans to the aggregator so a
                // report harvested while workers sleep sees all of them.
                ls3df_obs::flush_thread();
                // Park briefly on the injector condvar; the timeout
                // re-scans for steals published without a notification.
                let guard = lock(&state.injector);
                // ORDERING: Acquire, same pairing as the load above — the
                // re-check under the lock closes the race with a shutdown
                // raised between the first load and parking.
                if guard.is_empty() && !state.shutdown.load(Ordering::Acquire) {
                    let _ = state
                        .sleep
                        .wait_timeout(guard, Duration::from_millis(10))
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Global pool + drivers
// ---------------------------------------------------------------------------

static GLOBAL: OnceLock<Option<Pool>> = OnceLock::new();

/// Thread count from the environment: `LS3DF_THREADS` if set to a
/// positive integer, else the machine's available parallelism. `1`
/// selects the exact sequential fallback (no pool, no worker threads).
fn configured_threads() -> usize {
    let default = || {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    };
    match std::env::var("LS3DF_THREADS") {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default(),
        },
        Err(_) => default(),
    }
}

/// The lazily-created global pool; `None` in sequential mode.
pub(crate) fn global() -> Option<&'static Pool> {
    GLOBAL
        .get_or_init(|| {
            let n = configured_threads();
            (n > 1).then(|| Pool::new(n))
        })
        .as_ref()
}

/// Number of threads parallel work is spread across (1 = sequential).
pub(crate) fn global_num_threads() -> usize {
    global().map_or(1, Pool::n_threads)
}

/// `rayon::join` against the global pool (sequential when disabled).
pub(crate) fn global_join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match global() {
        Some(pool) => pool.join(a, b),
        None => {
            let ra = a();
            let rb = b();
            (ra, rb)
        }
    }
}

/// Splitting granularity: enough splits for stealing to balance load
/// (≈4 leaves per worker), never so many that task overhead dominates.
/// Affects scheduling only — results are ordered concatenations, so the
/// grain never changes a single bit of output.
fn grain_for(len: usize, threads: usize) -> usize {
    (len / (threads * 4)).max(1)
}

/// Maps `f` over `src` preserving order, fanning out over `pool` by
/// recursive halving. The sequential path (`pool = None`) is the exact
/// natural-order loop.
pub(crate) fn map_vec_on<S, T, F>(pool: Option<&Pool>, src: Vec<S>, f: &F) -> Vec<T>
where
    S: Send,
    T: Send,
    F: Fn(S) -> T + Sync,
{
    match pool {
        None => src.into_iter().map(f).collect(),
        Some(pool) => {
            let grain = grain_for(src.len(), pool.n_threads());
            map_split(pool, src, f, grain)
        }
    }
}

/// Order-preserving parallel map against the global pool.
pub(crate) fn map_vec<S, T, F>(src: Vec<S>, f: &F) -> Vec<T>
where
    S: Send,
    T: Send,
    F: Fn(S) -> T + Sync,
{
    map_vec_on(global(), src, f)
}

fn map_split<S, T, F>(pool: &Pool, mut src: Vec<S>, f: &F, grain: usize) -> Vec<T>
where
    S: Send,
    T: Send,
    F: Fn(S) -> T + Sync,
{
    if src.len() <= grain {
        return src.into_iter().map(f).collect();
    }
    let right = src.split_off(src.len() / 2);
    let (mut left, mut right) = pool.join(
        || map_split(pool, src, f, grain),
        || map_split(pool, right, f, grain),
    );
    left.append(&mut right);
    left
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn join_returns_both_results() {
        let pool = Pool::new(3);
        let (a, b) = pool.join(|| 6 * 7, || "ok".to_string());
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn nested_joins_complete_without_deadlock() {
        // A full binary recursion tree deeper than the worker count: only
        // help-while-waiting keeps this from deadlocking a 2-thread pool.
        let pool = Pool::new(2);
        fn sum(pool: &Pool, lo: u64, hi: u64) -> u64 {
            if hi - lo <= 4 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = pool.join(|| sum(pool, lo, mid), || sum(pool, mid, hi));
                a + b
            }
        }
        assert_eq!(sum(&pool, 0, 1000), (0..1000).sum::<u64>());
    }

    #[test]
    fn panic_in_b_propagates_to_caller() {
        let pool = Pool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.join(
                || std::thread::sleep(Duration::from_millis(5)),
                || panic!("boom in b"),
            )
        }));
        let payload = result.unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("boom in b"), "payload: {msg:?}");
    }

    #[test]
    fn panic_in_a_still_settles_b() {
        let pool = Pool::new(2);
        let b_ran = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.join(
                || panic!("boom in a"),
                || {
                    // ORDERING: SeqCst — test bookkeeping; the strongest
                    // order keeps the count outside any doubt for free.
                    b_ran.fetch_add(1, Ordering::SeqCst);
                },
            )
        }));
        assert!(result.is_err());
        // b either ran on a thief or was reclaimed-and-dropped; both are
        // legal, but the join must not leave it dangling in a queue.
        // ORDERING: SeqCst, matching the increment above.
        assert!(b_ran.load(Ordering::SeqCst) <= 1);
        // The pool must still be fully operational afterwards.
        let (x, y) = pool.join(|| 1, || 2);
        assert_eq!((x, y), (1, 2));
    }

    #[test]
    fn map_vec_on_pool_matches_sequential_bitwise() {
        let pool = Pool::new(4);
        let src: Vec<f64> = (0..1000).map(|i| (i as f64).sin()).collect();
        let f = |x: f64| (x * 1.000_000_1).exp().ln_1p();
        let seq: Vec<f64> = src.clone().into_iter().map(f).collect();
        let par: Vec<f64> = map_vec_on(Some(&pool), src, &f);
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.to_bits(), p.to_bits());
        }
    }

    #[test]
    fn pool_shutdown_joins_workers() {
        let pool = Pool::new(2);
        let (a, b) = pool.join(|| 1, || 2);
        assert_eq!(a + b, 3);
        drop(pool); // Drop joins the worker threads; must not hang.
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn schedule_names_round_trip_and_env_defaults() {
        for s in Schedule::ALL {
            assert_eq!(Schedule::parse(s.name()), Some(s));
        }
        assert_eq!(Schedule::parse(" all-steal "), Some(Schedule::AllSteal));
        assert_eq!(Schedule::parse("definitely-not-a-schedule"), None);
    }

    #[test]
    fn every_schedule_matches_sequential_bitwise() {
        // The determinism contract under adversarial work-selection: the
        // same map over the same source must be bit-identical no matter
        // which worker runs which half, on every explored schedule.
        let src: Vec<f64> = (0..800).map(|i| (i as f64).cos()).collect();
        let f = |x: f64| (x * 1.000_000_1).exp().ln_1p();
        let seq: Vec<f64> = src.clone().into_iter().map(f).collect();
        for schedule in Schedule::ALL {
            let pool = Pool::with_schedule(4, schedule);
            let par: Vec<f64> = map_vec_on(Some(&pool), src.clone(), &f);
            assert_eq!(seq.len(), par.len(), "schedule {}", schedule.name());
            for (s, p) in seq.iter().zip(&par) {
                assert_eq!(s.to_bits(), p.to_bits(), "schedule {}", schedule.name());
            }
        }
    }

    #[test]
    fn nested_joins_complete_under_every_schedule() {
        // The help-while-waiting deadlock-freedom argument must not
        // depend on the work-selection order (AllSteal in particular
        // makes the owner's reclaim almost always lose the race).
        fn sum(pool: &Pool, lo: u64, hi: u64) -> u64 {
            if hi - lo <= 4 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = pool.join(|| sum(pool, lo, mid), || sum(pool, mid, hi));
                a + b
            }
        }
        for schedule in Schedule::ALL {
            let pool = Pool::with_schedule(2, schedule);
            assert_eq!(
                sum(&pool, 0, 1000),
                (0..1000).sum::<u64>(),
                "schedule {}",
                schedule.name()
            );
        }
    }

    #[test]
    fn panic_propagates_under_every_schedule() {
        for schedule in Schedule::ALL {
            let pool = Pool::with_schedule(2, schedule);
            let result = catch_unwind(AssertUnwindSafe(|| {
                pool.join(
                    || std::thread::sleep(Duration::from_millis(2)),
                    || panic!("boom under {}", schedule.name()),
                )
            }));
            assert!(result.is_err(), "no panic under {}", schedule.name());
            // The pool survives the unwound job under every order.
            let (x, y) = pool.join(|| 1, || 2);
            assert_eq!((x, y), (1, 2), "schedule {}", schedule.name());
        }
    }

    #[test]
    fn grain_never_zero() {
        assert_eq!(grain_for(0, 8), 1);
        assert_eq!(grain_for(3, 8), 1);
        assert!(grain_for(1000, 4) >= 1);
    }
}
