//! Offline stand-in for the subset of the `proptest` API the LS3DF
//! workspace uses: the `proptest!` macro, `prop_assert!`-family macros,
//! range/tuple strategies, `prop_map`/`prop_flat_map`,
//! `prop::collection::vec`, and `prop::array::uniform3`.
//!
//! Cases are generated from a **fixed seed** (deterministic across runs —
//! the property `cargo xtask lint`'s `seeded-rng` rule enforces), so a
//! failure reproduces by just re-running the test. There is no shrinking:
//! on failure the macro panics with the case number and the assertion
//! message. The default case count is 64 per test (the real proptest uses
//! 256); tests override it with `ProptestConfig::with_cases`.

#![forbid(unsafe_code)]
pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + offset) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128 % span) as i128;
                    (*self.start() as i128 + offset) as $t
                }
            }
        )*};
    }
    int_range_strategy!(usize, u64, u32, i64, i32);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f64, f32);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies (`prop::collection`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A vector length specification: exact, or uniform in a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec-length range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies (`prop::array`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `[S::Value; 3]` with i.i.d. elements.
    pub struct UniformArray3<S> {
        element: S,
    }

    /// `prop::array::uniform3(element)`.
    pub fn uniform3<S: Strategy>(element: S) -> UniformArray3<S> {
        UniformArray3 { element }
    }

    impl<S: Strategy> Strategy for UniformArray3<S> {
        type Value = [S::Value; 3];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 3] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }
}

pub mod test_runner {
    //! Case generation and execution.

    /// Per-test configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property assertion.
    #[derive(Debug)]
    pub struct TestCaseError {
        /// Human-readable failure description.
        pub message: String,
    }

    impl TestCaseError {
        /// Builds a failure from any message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    /// Deterministic per-case random source (splitmix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x5DEECE66D,
            }
        }

        /// The next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Runs the cases of one `proptest!` test function.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Builds a runner with the given config.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Runs `body` once per case with a per-case deterministic RNG;
        /// panics (with the case index, so the failure is reproducible by
        /// re-running) on the first `Err`.
        pub fn run(&mut self, mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
            for case in 0..self.config.cases {
                let mut rng = TestRng::new(0x1_5EED_u64.wrapping_mul(case as u64 + 1));
                if let Err(e) = body(&mut rng) {
                    panic!(
                        "proptest case {}/{} failed: {}",
                        case + 1,
                        self.config.cases,
                        e.message
                    );
                }
            }
        }
    }
}

/// Everything the workspace imports via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` module path used inside `proptest!` bodies.
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    {
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    } => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    { $($rest:tt)* } => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`] — one test function per iteration.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    { cfg = $cfg:expr; } => {};
    {
        cfg = $cfg:expr;
        $(#[$meta:meta])+
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    } => {
        $(#[$meta])+
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            $(let $arg = $strat;)+
            runner.run(|__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&$arg, __rng);)+
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ...)`: fails the
/// current case (without aborting the process) when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if $cond {
        } else {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if $cond {
        } else {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(a, b)`: fails the current case when `a != b`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                lhs, rhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// `prop_assert_ne!(a, b)`: fails the current case when `a == b`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                lhs, rhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let x = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let y = (1usize..=4).generate(&mut rng);
            assert!((1..=4).contains(&y));
            let f = (-2.0..3.0f64).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let n = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut rng = TestRng::new(2);
        let s = crate::collection::vec(0u64..10, 3usize);
        assert_eq!(s.generate(&mut rng).len(), 3);
        let s = crate::collection::vec(0u64..10, 1usize..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn macro_roundtrip(a in 0u64..100, pair in (0.0..1.0f64, 1usize..=3)) {
            prop_assert!(a < 100);
            let (f, n) = pair;
            prop_assert!(f < 1.0, "f out of range: {f}");
            prop_assert_ne!(n, 0);
            prop_assert_eq!(n.min(3), n);
        }
    }

    proptest! {
        #[test]
        fn flat_map_dependent_generation(v in (1usize..=5).prop_flat_map(|n| {
            crate::collection::vec(0u64..10, n).prop_map(move |v| (n, v))
        })) {
            let (n, v) = v;
            prop_assert_eq!(v.len(), n);
        }
    }
}
