#!/bin/sh
# Tier-1 CI gate for ls3df-rs: formatting, clippy, the token-aware repo
# lint + its fixture corpus, tests, the zero-alloc and checkpoint/fault
# suites, schedule exploration (cargo xtask schedules), and the Miri
# unsafe-core gate (cargo xtask miri — skips loudly when Miri is not
# installed, e.g. in this offline container).
#
# Everything runs through `cargo xtask ci` (crates/xtask), which itself
# retries each cargo step with --offline when the registry is
# unreachable. The outer invocation is offline-safe too: all workspace
# dependencies are path crates (see shims/README.md), so building xtask
# never needs the network — we try the offline flag first and fall back
# to a plain invocation for cargo versions that reject it up front.
set -eu
cd "$(dirname "$0")"

if cargo --offline xtask ci; then
    exit 0
else
    status=$?
    # Distinguish "gate failed" from "cargo rejected --offline".
    if cargo --offline --version >/dev/null 2>&1; then
        exit "$status"
    fi
    exec cargo xtask ci
fi
