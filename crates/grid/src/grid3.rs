//! Periodic orthorhombic real-space grids.
//!
//! LS3DF supercells are `m1 × m2 × m3` stacks of cubic eight-atom
//! zinc-blende cells; both the global supercell and every fragment box are
//! described by a [`Grid3`]: grid dimensions plus physical box lengths.
//! The x grid index is fastest, matching `ls3df_fft::Fft3`.

/// A periodic orthorhombic box sampled on a regular grid (x fastest).
#[derive(Clone, Debug, PartialEq)]
pub struct Grid3 {
    /// Grid points along each axis.
    pub dims: [usize; 3],
    /// Physical box lengths (Bohr) along each axis.
    pub lengths: [f64; 3],
}

impl Grid3 {
    /// Creates a grid; panics on degenerate input.
    pub fn new(dims: [usize; 3], lengths: [f64; 3]) -> Self {
        assert!(dims.iter().all(|&n| n >= 1), "Grid3: dims must be ≥ 1");
        assert!(
            lengths.iter().all(|&l| l > 0.0 && l.is_finite()),
            "Grid3: lengths must be positive"
        );
        Grid3 { dims, lengths }
    }

    /// Cubic grid helper.
    pub fn cubic(n: usize, length: f64) -> Self {
        Grid3::new([n, n, n], [length, length, length])
    }

    /// Total number of grid points.
    #[inline]
    pub fn len(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// True only for the (disallowed) empty grid; kept for API hygiene.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Box volume (Bohr³).
    #[inline]
    pub fn volume(&self) -> f64 {
        self.lengths[0] * self.lengths[1] * self.lengths[2]
    }

    /// Volume element per grid point `dv = V / N`.
    #[inline]
    pub fn dv(&self) -> f64 {
        self.volume() / self.len() as f64
    }

    /// Grid spacing along each axis.
    #[inline]
    pub fn spacing(&self) -> [f64; 3] {
        [
            self.lengths[0] / self.dims[0] as f64,
            self.lengths[1] / self.dims[1] as f64,
            self.lengths[2] / self.dims[2] as f64,
        ]
    }

    /// Linear index of `(ix, iy, iz)` (no wrapping; debug-checked).
    #[inline(always)]
    pub fn index(&self, ix: usize, iy: usize, iz: usize) -> usize {
        debug_assert!(ix < self.dims[0] && iy < self.dims[1] && iz < self.dims[2]);
        (iz * self.dims[1] + iy) * self.dims[0] + ix
    }

    /// Linear index with periodic wrapping of possibly-negative indices.
    #[inline(always)]
    pub fn index_wrapped(&self, ix: i64, iy: i64, iz: i64) -> usize {
        let wx = ix.rem_euclid(self.dims[0] as i64) as usize;
        let wy = iy.rem_euclid(self.dims[1] as i64) as usize;
        let wz = iz.rem_euclid(self.dims[2] as i64) as usize;
        self.index(wx, wy, wz)
    }

    /// Inverse of [`Grid3::index`].
    #[inline]
    pub fn coords(&self, idx: usize) -> (usize, usize, usize) {
        debug_assert!(idx < self.len());
        let ix = idx % self.dims[0];
        let iy = (idx / self.dims[0]) % self.dims[1];
        let iz = idx / (self.dims[0] * self.dims[1]);
        (ix, iy, iz)
    }

    /// Physical position of a grid point (Bohr).
    #[inline]
    pub fn position(&self, ix: usize, iy: usize, iz: usize) -> [f64; 3] {
        let h = self.spacing();
        [ix as f64 * h[0], iy as f64 * h[1], iz as f64 * h[2]]
    }

    /// Minimum-image displacement from `a` to `b` under periodicity.
    pub fn min_image(&self, a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
        let mut d = [0.0; 3];
        for k in 0..3 {
            let l = self.lengths[k];
            let mut x = b[k] - a[k];
            x -= (x / l).round() * l;
            d[k] = x;
        }
        d
    }

    /// Minimum-image distance.
    pub fn distance(&self, a: [f64; 3], b: [f64; 3]) -> f64 {
        let d = self.min_image(a, b);
        (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt()
    }

    /// Reciprocal-lattice "frequency" of grid index `i` along axis `ax`:
    /// maps `0..n` to the signed FFT frequency `-n/2..n/2`.
    #[inline]
    pub fn freq(&self, i: usize, ax: usize) -> i64 {
        let n = self.dims[ax] as i64;
        let i = i as i64;
        if i <= n / 2 {
            i
        } else {
            i - n
        }
    }

    /// Reciprocal vector `G` (Bohr⁻¹) for grid index `(ix, iy, iz)`.
    #[inline]
    pub fn g_vector(&self, ix: usize, iy: usize, iz: usize) -> [f64; 3] {
        let two_pi = 2.0 * std::f64::consts::PI;
        [
            two_pi * self.freq(ix, 0) as f64 / self.lengths[0],
            two_pi * self.freq(iy, 1) as f64 / self.lengths[1],
            two_pi * self.freq(iz, 2) as f64 / self.lengths[2],
        ]
    }

    /// `|G|²` for grid index `(ix, iy, iz)`.
    #[inline]
    pub fn g2(&self, ix: usize, iy: usize, iz: usize) -> f64 {
        let g = self.g_vector(ix, iy, iz);
        g[0] * g[0] + g[1] * g[1] + g[2] * g[2]
    }

    /// Iterator over all `(ix, iy, iz)` triples in storage order.
    pub fn iter_points(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        let [n1, n2, _] = self.dims;
        (0..self.len()).map(move |idx| {
            let ix = idx % n1;
            let iy = (idx / n1) % n2;
            let iz = idx / (n1 * n2);
            (ix, iy, iz)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        let g = Grid3::new([4, 5, 6], [1.0, 2.0, 3.0]);
        for idx in 0..g.len() {
            let (x, y, z) = g.coords(idx);
            assert_eq!(g.index(x, y, z), idx);
        }
    }

    #[test]
    fn wrapped_indexing() {
        let g = Grid3::cubic(4, 1.0);
        assert_eq!(g.index_wrapped(-1, 0, 0), g.index(3, 0, 0));
        assert_eq!(g.index_wrapped(4, 5, -2), g.index(0, 1, 2));
    }

    #[test]
    fn volume_and_dv() {
        let g = Grid3::new([10, 10, 10], [2.0, 3.0, 5.0]);
        assert!((g.volume() - 30.0).abs() < 1e-14);
        assert!((g.dv() - 30.0 / 1000.0).abs() < 1e-14);
    }

    #[test]
    fn min_image_wraps() {
        let g = Grid3::cubic(8, 10.0);
        let d = g.min_image([9.0, 0.0, 0.0], [1.0, 0.0, 0.0]);
        assert!((d[0] - 2.0).abs() < 1e-14);
        assert!((g.distance([0.0, 0.0, 9.5], [0.0, 0.0, 0.5]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fft_frequencies_signed() {
        let g = Grid3::cubic(8, 1.0);
        let freqs: Vec<i64> = (0..8).map(|i| g.freq(i, 0)).collect();
        assert_eq!(freqs, vec![0, 1, 2, 3, 4, -3, -2, -1]);
    }

    #[test]
    fn g_vector_magnitude() {
        let l = 5.0;
        let g = Grid3::cubic(8, l);
        let gv = g.g_vector(1, 0, 0);
        assert!((gv[0] - 2.0 * std::f64::consts::PI / l).abs() < 1e-14);
        assert!((g.g2(0, 0, 0)).abs() < 1e-14);
    }

    #[test]
    fn iter_points_matches_storage_order() {
        let g = Grid3::new([3, 2, 2], [1.0, 1.0, 1.0]);
        let pts: Vec<_> = g.iter_points().collect();
        assert_eq!(pts.len(), g.len());
        assert_eq!(pts[0], (0, 0, 0));
        assert_eq!(pts[1], (1, 0, 0));
        assert_eq!(pts[3], (0, 1, 0));
        assert_eq!(pts[6], (0, 0, 1));
        for (idx, (x, y, z)) in pts.into_iter().enumerate() {
            assert_eq!(g.index(x, y, z), idx);
        }
    }

    #[test]
    #[should_panic(expected = "dims")]
    fn zero_dim_rejected() {
        let _ = Grid3::new([0, 4, 4], [1.0, 1.0, 1.0]);
    }
}
