//! Checkpoint I/O for fields, built on the `ls3df-ckpt` container.
//!
//! Long LS3DF runs (the fig6/fig7 science binaries) checkpoint the
//! converged global potential and density so post-processing (folded
//! spectrum, analysis) can restart without redoing the SCF. A saved field
//! is a one-section `ls3df-ckpt` snapshot — magic, format version, and a
//! CRC32 over the payload — written atomically (temp + fsync + rename),
//! so a torn or bit-rotted file is reported as a typed error instead of
//! feeding garbage samples into analysis.
//!
//! The pre-container format (bare `LS3DFFLD` magic + raw samples, no
//! checksum) is still readable: [`load_field`] auto-detects it and
//! [`load_field_legacy`] parses it. It is write-obsolete — nothing in the
//! workspace produces it anymore.

use crate::{Grid3, RealField};
use ls3df_ckpt::{AtomicWrite, ByteReader, ByteWriter, CkptError, SectionId, Snapshot};
use std::io;
use std::path::Path;

/// Section id holding the field payload inside a saved-field snapshot.
pub const FIELD_SECTION: SectionId = SectionId::new("FIELD");

/// Magic tag of the legacy (pre-container) field format.
const LEGACY_MAGIC: &[u8; 8] = b"LS3DFFLD";

/// Largest plausible per-axis grid dimension in a checkpoint.
const MAX_DIM: u64 = 100_000;

/// Errors from field checkpoint I/O.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The file is not a field checkpoint or is corrupt (legacy format).
    Format(String),
    /// Typed container-layer failure (bad magic, CRC mismatch, truncation…).
    Ckpt(CkptError),
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<CkptError> for IoError {
    fn from(e: CkptError) -> Self {
        IoError::Ckpt(e)
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Format(m) => write!(f, "bad checkpoint: {m}"),
            IoError::Ckpt(e) => write!(f, "bad checkpoint: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

/// Encodes a field into a section payload: `dims` (3×u64), `lengths`
/// (3×f64), then the raw little-endian samples. Bit-exact round trip.
pub fn encode_field(field: &RealField) -> Vec<u8> {
    let g = field.grid();
    let mut w = ByteWriter::with_capacity(48 + field.as_slice().len() * 8);
    for d in 0..3 {
        w.put_u64(g.dims[d] as u64);
    }
    for d in 0..3 {
        w.put_f64(g.lengths[d]);
    }
    w.put_f64_slice(field.as_slice());
    w.into_bytes()
}

/// Decodes a field from a section payload produced by [`encode_field`].
pub fn decode_field(payload: &[u8]) -> Result<RealField, CkptError> {
    let mut r = ByteReader::new(payload);
    let mut dims = [0usize; 3];
    for (d, slot) in dims.iter_mut().enumerate() {
        *slot = r.get_count(MAX_DIM, &format!("field dims[{d}]"))?;
    }
    let mut lengths = [0f64; 3];
    for (d, slot) in lengths.iter_mut().enumerate() {
        *slot = r.get_f64(&format!("field lengths[{d}]"))?;
    }
    if dims.contains(&0) {
        return Err(CkptError::Malformed {
            section: FIELD_SECTION.name(),
            detail: format!("implausible dims {dims:?}"),
        });
    }
    if lengths.iter().any(|&l| l <= 0.0 || !l.is_finite()) {
        return Err(CkptError::Malformed {
            section: FIELD_SECTION.name(),
            detail: format!("implausible lengths {lengths:?}"),
        });
    }
    let n = dims[0] * dims[1] * dims[2];
    let data = r.get_f64_vec(n, &format!("{n} field samples ({dims:?} grid)"))?;
    if r.remaining() != 0 {
        return Err(CkptError::Malformed {
            section: FIELD_SECTION.name(),
            detail: format!("{} trailing bytes after the samples", r.remaining()),
        });
    }
    Ok(RealField::from_vec(Grid3::new(dims, lengths), data))
}

/// Writes a field checkpoint: a one-section snapshot, placed atomically.
pub fn save_field(field: &RealField, path: &Path) -> Result<(), IoError> {
    let mut snap = Snapshot::new();
    snap.push(FIELD_SECTION, encode_field(field));
    let bytes = snap.encode()?;
    AtomicWrite::commit(path, &bytes)?;
    Ok(())
}

/// Reads a field checkpoint, auto-detecting the legacy `LS3DFFLD` format.
pub fn load_field(path: &Path) -> Result<RealField, IoError> {
    let bytes = ls3df_ckpt::read_bytes(path)?;
    if bytes.len() >= 8 && &bytes[..8] == LEGACY_MAGIC {
        return parse_legacy(&bytes);
    }
    let snap = Snapshot::decode(&bytes)?;
    Ok(decode_field(snap.require(FIELD_SECTION)?)?)
}

/// Reads a field in the legacy (pre-container, unchecksummed) format.
///
/// Deprecated: read-only support for checkpoints written before the
/// `ls3df-ckpt` container existed. New files always carry checksums;
/// re-save anything loaded through this path.
pub fn load_field_legacy(path: &Path) -> Result<RealField, IoError> {
    let bytes = ls3df_ckpt::read_bytes(path)?;
    parse_legacy(&bytes)
}

fn parse_legacy(bytes: &[u8]) -> Result<RealField, IoError> {
    let take8 = |pos: usize, what: &dyn Fn() -> String| -> Result<[u8; 8], IoError> {
        if bytes.len() < pos + 8 {
            return Err(IoError::Format(format!(
                "truncated while reading {}",
                what()
            )));
        }
        let mut u = [0u8; 8];
        u.copy_from_slice(&bytes[pos..pos + 8]);
        Ok(u)
    };
    let magic = take8(0, &|| "magic tag".into())?;
    if &magic != LEGACY_MAGIC {
        return Err(IoError::Format(format!(
            "wrong magic {:?} (expected {:?})",
            String::from_utf8_lossy(&magic),
            String::from_utf8_lossy(LEGACY_MAGIC)
        )));
    }
    let mut dims = [0usize; 3];
    for (d, slot) in dims.iter_mut().enumerate() {
        *slot =
            u64::from_le_bytes(take8(8 + 8 * d, &|| format!("header field dims[{d}]"))?) as usize;
    }
    let mut lengths = [0f64; 3];
    for (d, slot) in lengths.iter_mut().enumerate() {
        *slot = f64::from_le_bytes(take8(32 + 8 * d, &|| format!("header field lengths[{d}]"))?);
    }
    if dims.iter().any(|&d| d == 0 || d as u64 > MAX_DIM) {
        return Err(IoError::Format(format!("implausible dims {dims:?}")));
    }
    if lengths.iter().any(|&l| l <= 0.0 || !l.is_finite()) {
        return Err(IoError::Format(format!("implausible lengths {lengths:?}")));
    }
    let n = dims[0] * dims[1] * dims[2];
    let mut data = Vec::with_capacity(n);
    for i in 0..n {
        data.push(f64::from_le_bytes(take8(56 + 8 * i, &|| {
            format!("sample {i} of {n} ({dims:?} grid)")
        })?));
    }
    Ok(RealField::from_vec(Grid3::new(dims, lengths), data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ls3df_ckpt::CkptErrorKind;

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ls3df_io_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_legacy(field: &RealField, path: &Path) {
        // The retired writer, reproduced here so the read-only legacy
        // loader stays covered without shipping a legacy write path.
        let mut out = Vec::new();
        out.extend_from_slice(LEGACY_MAGIC);
        let g = field.grid();
        for d in 0..3 {
            out.extend_from_slice(&(g.dims[d] as u64).to_le_bytes());
        }
        for d in 0..3 {
            out.extend_from_slice(&g.lengths[d].to_le_bytes());
        }
        for &v in field.as_slice() {
            out.extend_from_slice(&v.to_le_bytes());
        }
        std::fs::write(path, out).unwrap();
    }

    #[test]
    fn roundtrip_preserves_field_exactly() {
        let g = Grid3::new([5, 7, 3], [2.0, 3.5, 1.25]);
        let f = RealField::from_fn(g, |r| (r[0] * 1.3).sin() + r[1] - 7.0 * r[2]);
        let path = tmpdir().join("field.ck");
        save_field(&f, &path).unwrap();
        let back = load_field(&path).unwrap();
        assert_eq!(back.grid(), f.grid());
        assert_eq!(back.as_slice(), f.as_slice());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage() {
        let path = tmpdir().join("garbage.ck");
        std::fs::write(&path, b"not a checkpoint at all").unwrap();
        match load_field(&path) {
            Err(IoError::Ckpt(e)) => assert_eq!(e.kind(), CkptErrorKind::BadMagic),
            other => panic!("expected BadMagic, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_sample_byte_is_caught_by_crc() {
        let g = Grid3::new([4, 4, 4], [1.0, 1.0, 1.0]);
        let f = RealField::from_fn(g, |r| r[0] + 2.0 * r[1]);
        let path = tmpdir().join("flipped.ck");
        save_field(&f, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01; // single bit, deep in the sample data
        std::fs::write(&path, &bytes).unwrap();
        match load_field(&path) {
            Err(IoError::Ckpt(e)) => assert_eq!(e.kind(), CkptErrorKind::CrcMismatch),
            other => panic!("expected CrcMismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_is_typed() {
        let g = Grid3::new([4, 4, 4], [1.0, 1.0, 1.0]);
        let f = RealField::from_fn(g, |r| r[0]);
        let path = tmpdir().join("truncated.ck");
        save_field(&f, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 24]).unwrap(); // drop 3 samples
        match load_field(&path) {
            Err(IoError::Ckpt(e)) => assert_eq!(e.kind(), CkptErrorKind::Truncated),
            other => panic!("expected Truncated, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = tmpdir().join("definitely_missing.ck");
        match load_field(&path) {
            Err(IoError::Ckpt(e)) => assert_eq!(e.kind(), CkptErrorKind::Io),
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn legacy_format_still_loads() {
        let g = Grid3::new([3, 5, 2], [1.5, 2.5, 0.75]);
        let f = RealField::from_fn(g, |r| r[0] * r[1] - r[2]);
        let path = tmpdir().join("legacy.ck");
        write_legacy(&f, &path);
        // Auto-detected by load_field…
        let back = load_field(&path).unwrap();
        assert_eq!(back.grid(), f.grid());
        assert_eq!(back.as_slice(), f.as_slice());
        // …and loadable through the explicit legacy entry point.
        let back2 = load_field_legacy(&path).unwrap();
        assert_eq!(back2.as_slice(), f.as_slice());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_truncation_names_the_missing_sample() {
        let g = Grid3::new([4, 4, 4], [1.0, 1.0, 1.0]);
        let f = RealField::from_fn(g, |r| r[0]);
        let path = tmpdir().join("legacy_truncated.ck");
        write_legacy(&f, &path);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 24]).unwrap(); // drop 3 samples
        match load_field(&path) {
            Err(IoError::Format(m)) => {
                assert!(m.contains("sample 61 of 64"), "context missing: {m}")
            }
            other => panic!("expected Format error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn atomic_save_leaves_no_temp_litter() {
        let dir = tmpdir().join("no_litter");
        std::fs::create_dir_all(&dir).unwrap();
        let g = Grid3::new([2, 2, 2], [1.0, 1.0, 1.0]);
        let f = RealField::from_fn(g, |r| r[0]);
        save_field(&f, &dir.join("a.ck")).unwrap();
        save_field(&f, &dir.join("a.ck")).unwrap(); // overwrite in place
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["a.ck".to_string()]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
