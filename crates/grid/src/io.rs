//! Minimal checkpoint I/O for fields.
//!
//! Long LS3DF runs (the fig6/fig7 science binaries) checkpoint the
//! converged global potential and density so post-processing (folded
//! spectrum, analysis) can restart without redoing the SCF. The format is
//! deliberately trivial: a magic tag, the grid header, then the raw
//! little-endian f64 samples.

use crate::{Grid3, RealField};
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"LS3DFFLD";

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The file is not a field checkpoint or is corrupt.
    Format(String),
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Format(m) => write!(f, "bad checkpoint: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

/// Writes a field checkpoint.
pub fn save_field(field: &RealField, path: &Path) -> Result<(), IoError> {
    let mut w = io::BufWriter::new(std::fs::File::create(path)?);
    w.write_all(MAGIC)?;
    let g = field.grid();
    for d in 0..3 {
        w.write_all(&(g.dims[d] as u64).to_le_bytes())?;
    }
    for d in 0..3 {
        w.write_all(&g.lengths[d].to_le_bytes())?;
    }
    for &v in field.as_slice() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Reads 8 bytes, naming the field being read when the file ends early —
/// "unexpected EOF" alone is useless for a multi-GB checkpoint.
fn read8(r: &mut impl Read, what: &dyn Fn() -> String) -> Result<[u8; 8], IoError> {
    let mut u = [0u8; 8];
    r.read_exact(&mut u).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            IoError::Format(format!("truncated while reading {}", what()))
        } else {
            IoError::Io(e)
        }
    })?;
    Ok(u)
}

/// Reads a field checkpoint.
pub fn load_field(path: &Path) -> Result<RealField, IoError> {
    let mut r = io::BufReader::new(std::fs::File::open(path)?);
    let magic = read8(&mut r, &|| "magic tag".into())?;
    if &magic != MAGIC {
        return Err(IoError::Format(format!(
            "wrong magic {:?} (expected {:?})",
            String::from_utf8_lossy(&magic),
            String::from_utf8_lossy(MAGIC)
        )));
    }
    let mut dims = [0usize; 3];
    for (d, slot) in dims.iter_mut().enumerate() {
        let u = read8(&mut r, &|| format!("header field dims[{d}]"))?;
        *slot = u64::from_le_bytes(u) as usize;
    }
    let mut lengths = [0f64; 3];
    for (d, slot) in lengths.iter_mut().enumerate() {
        let u = read8(&mut r, &|| format!("header field lengths[{d}]"))?;
        *slot = f64::from_le_bytes(u);
    }
    if dims.iter().any(|&d| d == 0 || d > 100_000) {
        return Err(IoError::Format(format!("implausible dims {dims:?}")));
    }
    if lengths.iter().any(|&l| l <= 0.0 || !l.is_finite()) {
        return Err(IoError::Format(format!("implausible lengths {lengths:?}")));
    }
    let n = dims[0] * dims[1] * dims[2];
    let mut data = Vec::with_capacity(n);
    for i in 0..n {
        let u = read8(&mut r, &|| format!("sample {i} of {n} ({dims:?} grid)"))?;
        data.push(f64::from_le_bytes(u));
    }
    Ok(RealField::from_vec(Grid3::new(dims, lengths), data))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_field_exactly() {
        let g = Grid3::new([5, 7, 3], [2.0, 3.5, 1.25]);
        let f = RealField::from_fn(g, |r| (r[0] * 1.3).sin() + r[1] - 7.0 * r[2]);
        let dir = std::env::temp_dir().join("ls3df_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("field.ck");
        save_field(&f, &path).unwrap();
        let back = load_field(&path).unwrap();
        assert_eq!(back.grid(), f.grid());
        assert_eq!(back.as_slice(), f.as_slice());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage() {
        let dir = std::env::temp_dir().join("ls3df_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.ck");
        std::fs::write(&path, b"not a checkpoint at all").unwrap();
        assert!(load_field(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_names_the_missing_sample() {
        let g = Grid3::new([4, 4, 4], [1.0, 1.0, 1.0]);
        let f = RealField::from_fn(g, |r| r[0]);
        let dir = std::env::temp_dir().join("ls3df_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.ck");
        save_field(&f, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 24]).unwrap(); // drop 3 samples
        match load_field(&path) {
            Err(IoError::Format(m)) => {
                assert!(m.contains("sample 61 of 64"), "context missing: {m}")
            }
            other => panic!("expected Format error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = std::env::temp_dir().join("ls3df_io_test/definitely_missing.ck");
        match load_field(&path) {
            Err(IoError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }
}
