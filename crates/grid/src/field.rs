//! Scalar fields on periodic grids and the sub-box data motions.
//!
//! A [`Field`] couples a buffer to its [`Grid3`]. The periodic sub-box
//! extraction/insertion operations here are exactly the serial kernels of
//! the paper's **Gen_VF** (slice the global potential into fragment boxes)
//! and **Gen_dens** (accumulate signed fragment densities back into the
//! global grid) steps.

use crate::Grid3;
use ls3df_math::{c64, Scalar};

/// A scalar field sampled on a periodic grid.
#[derive(Clone, Debug, PartialEq)]
pub struct Field<S: Scalar> {
    grid: Grid3,
    data: Vec<S>,
}

/// Real-valued field (densities, potentials).
pub type RealField = Field<f64>;
/// Complex-valued field (wavefunctions on the grid).
pub type ComplexField = Field<c64>;

impl<S: Scalar> Field<S> {
    /// Zero field on `grid`.
    pub fn zeros(grid: Grid3) -> Self {
        let n = grid.len();
        Field {
            grid,
            data: vec![S::ZERO; n],
        }
    }

    /// Field with every point set to `value`.
    pub fn constant(grid: Grid3, value: S) -> Self {
        let n = grid.len();
        Field {
            grid,
            data: vec![value; n],
        }
    }

    /// Builds a field from a function of the grid point position (Bohr).
    pub fn from_fn(grid: Grid3, mut f: impl FnMut([f64; 3]) -> S) -> Self {
        let mut data = Vec::with_capacity(grid.len());
        for (ix, iy, iz) in grid.iter_points() {
            data.push(f(grid.position(ix, iy, iz)));
        }
        Field { grid, data }
    }

    /// Wraps an existing buffer.
    pub fn from_vec(grid: Grid3, data: Vec<S>) -> Self {
        assert_eq!(data.len(), grid.len(), "Field::from_vec: length mismatch");
        Field { grid, data }
    }

    /// The grid this field lives on.
    #[inline]
    pub fn grid(&self) -> &Grid3 {
        &self.grid
    }

    /// Raw values.
    #[inline]
    pub fn as_slice(&self) -> &[S] {
        &self.data
    }

    /// Mutable raw values.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Consumes the field, returning the buffer.
    pub fn into_vec(self) -> Vec<S> {
        self.data
    }

    /// Value at `(ix, iy, iz)`.
    #[inline(always)]
    pub fn at(&self, ix: usize, iy: usize, iz: usize) -> S {
        self.data[self.grid.index(ix, iy, iz)]
    }

    /// Mutable value at `(ix, iy, iz)`.
    #[inline(always)]
    pub fn at_mut(&mut self, ix: usize, iy: usize, iz: usize) -> &mut S {
        let idx = self.grid.index(ix, iy, iz);
        &mut self.data[idx]
    }

    /// Value with periodic wrapping.
    #[inline]
    pub fn at_wrapped(&self, ix: i64, iy: i64, iz: i64) -> S {
        self.data[self.grid.index_wrapped(ix, iy, iz)]
    }

    /// `∫ f d³r ≈ dv·Σᵢ fᵢ`.
    pub fn integrate(&self) -> S {
        let mut acc = S::ZERO;
        for &v in &self.data {
            acc += v;
        }
        acc.scale(self.grid.dv())
    }

    /// `∫ |f| d³r` — the paper's SCF convergence metric (Fig. 6) applied to
    /// the potential difference field.
    pub fn integrate_abs(&self) -> f64 {
        self.data.iter().map(|v| v.abs()).sum::<f64>() * self.grid.dv()
    }

    /// `(∫ |f|² d³r)^{1/2}`.
    pub fn l2_norm(&self) -> f64 {
        (self.data.iter().map(|v| v.norm_sqr()).sum::<f64>() * self.grid.dv()).sqrt()
    }

    /// Largest |value| on the grid.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|v| v.abs()).fold(0.0, f64::max)
    }

    /// `self ← self + α·other` (grids must match).
    pub fn add_scaled(&mut self, alpha: S, other: &Field<S>) {
        assert_eq!(self.grid, other.grid, "add_scaled: grid mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a = a.acc(alpha, b);
        }
    }

    /// Scales every value by a real factor.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v = v.scale(s);
        }
    }

    /// Pointwise difference `self − other` as a new field.
    pub fn diff(&self, other: &Field<S>) -> Field<S> {
        assert_eq!(self.grid, other.grid, "diff: grid mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a - b)
            .collect();
        Field {
            grid: self.grid.clone(),
            data,
        }
    }

    /// Extracts a periodic sub-box starting at global grid point `origin`
    /// with dimensions `sub.dims`, into a field on `sub` (the Gen_VF data
    /// motion: global potential → fragment box).
    ///
    /// `origin` components may be any integers; they wrap periodically.
    pub fn extract_subbox(&self, origin: [i64; 3], sub: &Grid3) -> Field<S> {
        let mut out = Field::zeros(sub.clone());
        let [sn1, sn2, sn3] = sub.dims;
        for sz in 0..sn3 {
            for sy in 0..sn2 {
                for sx in 0..sn1 {
                    let v = self.at_wrapped(
                        origin[0] + sx as i64,
                        origin[1] + sy as i64,
                        origin[2] + sz as i64,
                    );
                    *out.at_mut(sx, sy, sz) = v;
                }
            }
        }
        out
    }

    /// Accumulates `weight · sub` into this field at global grid point
    /// `origin`, wrapping periodically (the Gen_dens data motion:
    /// fragment density → global density, with the fragment sign `α_F`
    /// as the weight).
    pub fn accumulate_subbox(&mut self, origin: [i64; 3], sub: &Field<S>, weight: f64) {
        let [sn1, sn2, sn3] = sub.grid.dims;
        for sz in 0..sn3 {
            for sy in 0..sn2 {
                for sx in 0..sn1 {
                    let idx = self.grid.index_wrapped(
                        origin[0] + sx as i64,
                        origin[1] + sy as i64,
                        origin[2] + sz as i64,
                    );
                    self.data[idx] = self.data[idx].acc(S::from_re(weight), sub.at(sx, sy, sz));
                }
            }
        }
    }
}

impl RealField {
    /// Promotes to a complex field.
    pub fn to_complex(&self) -> ComplexField {
        Field {
            grid: self.grid.clone(),
            data: self.data.iter().map(|&v| c64::real(v)).collect(),
        }
    }

    /// Minimum value.
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum value.
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Shifts all values by a constant (potential gauge shifts).
    pub fn shift(&mut self, c: f64) {
        for v in &mut self.data {
            *v += c;
        }
    }

    /// Mean value over the grid.
    pub fn mean(&self) -> f64 {
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }
}

impl ComplexField {
    /// Real parts as a real field.
    pub fn re(&self) -> RealField {
        Field {
            grid: self.grid.clone(),
            data: self.data.iter().map(|z| z.re).collect(),
        }
    }

    /// `|ψ|²` as a real field (density contribution of one state).
    pub fn norm_sqr_field(&self) -> RealField {
        Field {
            grid: self.grid.clone(),
            data: self.data.iter().map(|z| z.norm_sqr()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid3 {
        Grid3::new([4, 4, 4], [2.0, 2.0, 2.0])
    }

    #[test]
    fn integrate_constant() {
        let f = RealField::constant(grid(), 3.0);
        assert!((f.integrate() - 24.0).abs() < 1e-12); // 3 · volume(8)
    }

    #[test]
    fn from_fn_positions() {
        let f = RealField::from_fn(grid(), |r| r[0]);
        // x positions are 0, 0.5, 1.0, 1.5 on each row.
        assert_eq!(f.at(3, 0, 0), 1.5);
        assert_eq!(f.at(0, 2, 1), 0.0);
    }

    #[test]
    fn extract_then_accumulate_roundtrip() {
        let g = grid();
        let f = RealField::from_fn(g.clone(), |r| r[0] + 10.0 * r[1] + 100.0 * r[2]);
        let sub_grid = Grid3::new([2, 2, 2], [1.0, 1.0, 1.0]);
        let sub = f.extract_subbox([1, 2, 3], &sub_grid);
        // Check a wrapped point: global (1+1, 2+1, 3+1) = (2,3,0 wrapped).
        assert_eq!(sub.at(1, 1, 1), f.at(2, 3, 0));

        // Accumulating the extracted box back with weight −1 zeroes it.
        let mut f2 = f.clone();
        f2.accumulate_subbox([1, 2, 3], &sub, -1.0);
        for sz in 0..2i64 {
            for sy in 0..2i64 {
                for sx in 0..2i64 {
                    assert_eq!(f2.at_wrapped(1 + sx, 2 + sy, 3 + sz), 0.0);
                }
            }
        }
    }

    #[test]
    fn extract_with_negative_origin_wraps() {
        let g = grid();
        let f = RealField::from_fn(g.clone(), |r| r[0]);
        let sub_grid = Grid3::new([2, 1, 1], [1.0, 0.5, 0.5]);
        let sub = f.extract_subbox([-1, 0, 0], &sub_grid);
        assert_eq!(sub.at(0, 0, 0), f.at(3, 0, 0));
        assert_eq!(sub.at(1, 0, 0), f.at(0, 0, 0));
    }

    #[test]
    fn partition_of_unity_accumulation() {
        // Covering the whole grid with disjoint sub-boxes of weight 1 must
        // reproduce a constant field exactly.
        let g = grid();
        let mut acc = RealField::zeros(g.clone());
        let sub_grid = Grid3::new([2, 2, 2], [1.0, 1.0, 1.0]);
        let ones = RealField::constant(sub_grid.clone(), 1.0);
        for oz in [0i64, 2] {
            for oy in [0i64, 2] {
                for ox in [0i64, 2] {
                    acc.accumulate_subbox([ox, oy, oz], &ones, 1.0);
                }
            }
        }
        for &v in acc.as_slice() {
            assert_eq!(v, 1.0);
        }
    }

    #[test]
    fn complex_density() {
        let f = ComplexField::constant(grid(), c64::new(0.6, 0.8));
        let d = f.norm_sqr_field();
        for &v in d.as_slice() {
            assert!((v - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn diff_and_integrate_abs() {
        let a = RealField::constant(grid(), 2.0);
        let b = RealField::constant(grid(), -1.0);
        let d = a.diff(&b);
        assert!((d.integrate_abs() - 3.0 * 8.0).abs() < 1e-12);
    }

    #[test]
    fn mean_shift_minmax() {
        let g = grid();
        let mut f = RealField::from_fn(g, |r| r[0]);
        let m = f.mean();
        f.shift(-m);
        assert!(f.mean().abs() < 1e-14);
        assert!((f.min() + m).abs() < 1e-14);
        assert!((f.max() - (1.5 - m)).abs() < 1e-14);
    }
}
