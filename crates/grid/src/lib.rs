//! # ls3df-grid
//!
//! Periodic real-space grid substrate: the global supercell, the fragment
//! boxes, and the data motion between them (the serial kernels of the
//! paper's Gen_VF and Gen_dens steps).

#![warn(missing_docs)]

mod field;
pub mod io;
mod grid3;

pub use field::{ComplexField, Field, RealField};
pub use io::{load_field, save_field};
pub use grid3::Grid3;
