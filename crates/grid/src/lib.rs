//! # ls3df-grid
//!
//! Periodic real-space grid substrate: the global supercell, the fragment
//! boxes, and the data motion between them (the serial kernels of the
//! paper's Gen_VF and Gen_dens steps).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod field;
mod grid3;
pub mod io;

pub use field::{ComplexField, Field, RealField};
pub use grid3::Grid3;
pub use io::{decode_field, encode_field, load_field, load_field_legacy, save_field};
