//! Property-based tests for the grid substrate — in particular the
//! Gen_VF/Gen_dens data motions (periodic sub-box extract / accumulate),
//! which carry the LS3DF patching.

use ls3df_grid::{Grid3, RealField};
use proptest::prelude::*;

fn grid_strategy() -> impl Strategy<Value = Grid3> {
    ((2usize..10), (2usize..10), (2usize..10), (1.0..20.0f64))
        .prop_map(|(n1, n2, n3, l)| Grid3::new([n1, n2, n3], [l, l * 0.7 + 1.0, l * 1.3]))
}

proptest! {
    #[test]
    fn index_coords_roundtrip(g in grid_strategy(), idx_frac in 0.0..1.0f64) {
        let idx = ((g.len() - 1) as f64 * idx_frac) as usize;
        let (x, y, z) = g.coords(idx);
        prop_assert_eq!(g.index(x, y, z), idx);
    }

    #[test]
    fn wrapped_index_periodicity(g in grid_strategy(), ix in -50i64..50, iy in -50i64..50, iz in -50i64..50) {
        let idx1 = g.index_wrapped(ix, iy, iz);
        let idx2 = g.index_wrapped(
            ix + g.dims[0] as i64,
            iy - 3 * g.dims[1] as i64,
            iz + 7 * g.dims[2] as i64,
        );
        prop_assert_eq!(idx1, idx2);
    }

    #[test]
    fn extract_accumulate_cancels(
        g in grid_strategy(),
        ox in -12i64..12, oy in -12i64..12, oz in -12i64..12,
    ) {
        // Extracting any sub-box and accumulating it back with weight −1
        // zeroes exactly that sub-box (periodically wrapped).
        let f = RealField::from_fn(g.clone(), |r| 1.0 + r[0] + 2.0 * r[1] - r[2]);
        let sub_dims = [
            1 + g.dims[0] / 2,
            1 + g.dims[1] / 3,
            1 + g.dims[2] / 2,
        ];
        let sub_grid = Grid3::new(sub_dims, [1.0, 1.0, 1.0]);
        let sub = f.extract_subbox([ox, oy, oz], &sub_grid);
        let mut f2 = f.clone();
        f2.accumulate_subbox([ox, oy, oz], &sub, -1.0);
        for sz in 0..sub_dims[2] as i64 {
            for sy in 0..sub_dims[1] as i64 {
                for sx in 0..sub_dims[0] as i64 {
                    prop_assert_eq!(f2.at_wrapped(ox + sx, oy + sy, oz + sz), 0.0);
                }
            }
        }
    }

    #[test]
    fn integrate_abs_triangle_inequality(g in grid_strategy(), c in -3.0..3.0f64) {
        let a = RealField::from_fn(g.clone(), |r| (r[0] * 1.7).sin());
        let b = RealField::from_fn(g.clone(), |r| c * (r[2] * 0.9).cos());
        let mut sum = a.clone();
        sum.add_scaled(1.0, &b);
        prop_assert!(sum.integrate_abs() <= a.integrate_abs() + b.integrate_abs() + 1e-10);
    }

    #[test]
    fn min_image_distance_symmetric_and_bounded(
        g in grid_strategy(),
        p in prop::array::uniform3(0.0..1.0f64),
        q in prop::array::uniform3(0.0..1.0f64),
    ) {
        let a = [p[0] * g.lengths[0], p[1] * g.lengths[1], p[2] * g.lengths[2]];
        let b = [q[0] * g.lengths[0], q[1] * g.lengths[1], q[2] * g.lengths[2]];
        let dab = g.distance(a, b);
        let dba = g.distance(b, a);
        prop_assert!((dab - dba).abs() < 1e-12);
        // Bounded by half the diagonal.
        let half_diag = 0.5 * (g.lengths[0].powi(2) + g.lengths[1].powi(2) + g.lengths[2].powi(2)).sqrt();
        prop_assert!(dab <= half_diag + 1e-12);
    }
}
