//! Bit-identity tests for the batched strided line-transform API.
//!
//! The zero-allocation hot path routes the 3-D y/z passes through
//! `Fft1d::forward_strided`/`inverse_strided`, which gather lines in
//! blocks through a workspace. These tests pin down the contract that the
//! batched path is **bit-identical** (exact `==` on both f64 components,
//! not a tolerance) to transforming each line one at a time with the
//! classic per-line API, across power-of-two (radix-2), non-power-of-two
//! (Bluestein), and length-1 (trivial) plans — and that columns beyond
//! `n_lines` are left untouched.

use ls3df_fft::{Fft1d, Fft3};
use ls3df_math::c64;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

fn lcg_field(len: usize, seed: u64) -> Vec<c64> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
    };
    (0..len).map(|_| c64::new(next(), next())).collect()
}

fn bits_equal(a: &[c64], b: &[c64]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits())
}

/// Reference: transform line `l` of the strided layout by copying it out,
/// running the unbatched per-line API, and copying it back.
fn line_by_line(plan: &Fft1d, data: &mut [c64], n_lines: usize, stride: usize, fwd: bool) {
    let n = plan.len();
    let mut line = vec![c64::ZERO; n];
    for l in 0..n_lines {
        for (i, v) in line.iter_mut().enumerate() {
            *v = data[i * stride + l];
        }
        if fwd {
            plan.forward(&mut line);
        } else {
            plan.inverse(&mut line);
        }
        for (i, &v) in line.iter().enumerate() {
            data[i * stride + l] = v;
        }
    }
}

fn check_strided(n: usize, n_lines: usize, stride: usize, seed: u64) -> Result<(), TestCaseError> {
    let plan = Fft1d::new(n);
    let mut ws = plan.workspace();
    let data = lcg_field(n * stride, seed);

    for fwd in [true, false] {
        let mut batched = data.clone();
        if fwd {
            plan.forward_strided(&mut batched, n_lines, stride, &mut ws);
        } else {
            plan.inverse_strided(&mut batched, n_lines, stride, &mut ws);
        }
        let mut reference = data.clone();
        line_by_line(&plan, &mut reference, n_lines, stride, fwd);
        prop_assert!(
            bits_equal(&batched, &reference),
            "strided != line-by-line (n={n}, n_lines={n_lines}, stride={stride}, fwd={fwd})"
        );
        // Columns l >= n_lines must be untouched by the batched call.
        for i in 0..n {
            for l in n_lines..stride {
                let idx = i * stride + l;
                prop_assert!(
                    bits_equal(&batched[idx..=idx], &data[idx..=idx]),
                    "tail column {l} modified (n={n}, fwd={fwd})"
                );
            }
        }
    }
    Ok(())
}

proptest! {
    /// Batched == line-by-line across radix-2, Bluestein, and trivial
    /// plans, for every (n_lines, stride) shape including partial blocks,
    /// n_lines == 0, and n_lines < stride tails.
    #[test]
    fn strided_matches_line_by_line(
        n in 1usize..24,
        stride in 1usize..20,
        frac in 0usize..=20,
        seed in 0u64..1_000,
    ) {
        let n_lines = (stride * frac) / 20; // 0..=stride
        check_strided(n, n_lines, stride, seed)?;
    }

    /// Full 3-D transform through workspaces == the same passes done
    /// line-by-line with the unbatched 1-D API, bit for bit.
    #[test]
    fn fft3_workspace_matches_line_by_line_passes(
        n1 in 1usize..7,
        n2 in 1usize..7,
        n3 in 1usize..7,
        seed in 0u64..1_000,
    ) {
        let plan = Fft3::new(n1, n2, n3);
        let mut ws = plan.workspace();
        let data = lcg_field(n1 * n2 * n3, seed);

        for fwd in [true, false] {
            let mut got = data.clone();
            if fwd {
                plan.forward_with(&mut got, &mut ws);
            } else {
                plan.inverse_with(&mut got, &mut ws);
            }

            // Reference: x pass on contiguous lines, then y and z passes
            // line-by-line via the classic API.
            let mut expect = data.clone();
            let (px, py, pz) = (Fft1d::new(n1), Fft1d::new(n2), Fft1d::new(n3));
            for line in expect.chunks_mut(n1) {
                if fwd { px.forward(line) } else { px.inverse(line) }
            }
            for plane in expect.chunks_mut(n1 * n2) {
                line_by_line(&py, plane, n1, n1, fwd);
            }
            line_by_line(&pz, &mut expect, n1 * n2, n1 * n2, fwd);

            prop_assert!(
                bits_equal(&got, &expect),
                "Fft3 workspace path != reference ({n1},{n2},{n3}, fwd={fwd})"
            );
        }
    }
}

/// Deterministic anchors for the shapes the SCF loop actually uses.
#[test]
fn fixed_shapes_batched_equivalence() {
    // (n, n_lines, stride): power-of-two, Bluestein (incl. the paper's 40),
    // mixed, and dimension-1 cases.
    for &(n, n_lines, stride) in &[
        (8usize, 8usize, 8usize), // radix-2, full block multiple
        (8, 5, 8),                // radix-2, partial final block
        (12, 10, 10),             // Bluestein, n_lines == stride
        (9, 3, 7),                // Bluestein, tail columns untouched
        (1, 5, 8),                // trivial plan: identity
        (40, 40, 40),             // the paper's per-cell grid edge
        (40, 1, 1),               // single line through the batch path
    ] {
        check_strided(n, n_lines, stride, 42 + n as u64).unwrap();
    }
}

/// The allocating `forward`/`inverse` wrappers and the workspace path
/// agree bit-for-bit on the paper's 40³ Bluestein grid.
#[test]
fn fft3_wrapper_matches_workspace_on_40_cubed() {
    let plan = Fft3::new(40, 40, 40);
    let mut ws = plan.workspace();
    let data = lcg_field(40 * 40 * 40, 7);

    let mut a = data.clone();
    plan.forward(&mut a);
    let mut b = data.clone();
    plan.forward_with(&mut b, &mut ws);
    assert!(bits_equal(&a, &b), "forward wrapper != workspace path");

    plan.inverse(&mut a);
    plan.inverse_with(&mut b, &mut ws); // reused (dirty) workspace
    assert!(bits_equal(&a, &b), "inverse wrapper != workspace path");
}
