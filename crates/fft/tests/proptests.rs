//! Property-based tests for the FFT substrate.

use ls3df_fft::{dft, Fft1d, Fft3};
use ls3df_math::c64;
use proptest::prelude::*;

fn signal_strategy(max_len: usize) -> impl Strategy<Value = Vec<c64>> {
    (1..=max_len).prop_flat_map(|n| {
        prop::collection::vec(
            (-5.0..5.0f64, -5.0..5.0f64).prop_map(|(re, im)| c64::new(re, im)),
            n,
        )
    })
}

proptest! {
    #[test]
    fn fft_matches_naive_dft_all_lengths(x in signal_strategy(48)) {
        let plan = Fft1d::new(x.len());
        let mut got = x.clone();
        plan.forward(&mut got);
        let expect = dft::dft_forward(&x);
        for (a, b) in got.iter().zip(&expect) {
            prop_assert!((*a - *b).abs() < 1e-8 * (1.0 + x.len() as f64));
        }
    }

    #[test]
    fn roundtrip_is_identity(x in signal_strategy(64)) {
        let plan = Fft1d::new(x.len());
        let mut work = x.clone();
        plan.forward(&mut work);
        plan.inverse(&mut work);
        for (a, b) in work.iter().zip(&x) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_holds(x in signal_strategy(64)) {
        let n = x.len() as f64;
        let e_time: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let mut spec = x.clone();
        Fft1d::new(x.len()).forward(&mut spec);
        let e_freq: f64 = spec.iter().map(|v| v.norm_sqr()).sum::<f64>() / n;
        prop_assert!((e_time - e_freq).abs() < 1e-8 * (1.0 + e_time));
    }

    #[test]
    fn fft3_linearity_and_roundtrip(
        n1 in 1usize..6,
        n2 in 1usize..6,
        n3 in 1usize..6,
        seed in 0u64..1000,
    ) {
        let len = n1 * n2 * n3;
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let data: Vec<c64> = (0..len).map(|_| c64::new(next(), next())).collect();
        let plan = Fft3::new(n1, n2, n3);
        let mut work = data.clone();
        plan.forward(&mut work);
        plan.inverse(&mut work);
        for (a, b) in work.iter().zip(&data) {
            prop_assert!((*a - *b).abs() < 1e-10);
        }
    }
}
