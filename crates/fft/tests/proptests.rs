//! Property-based tests for the FFT substrate.

use ls3df_fft::{dft, Fft1d, Fft3, Fft3r, RealFft1d};
use ls3df_math::{c64, KernelPolicy};
use proptest::prelude::*;

fn signal_strategy(max_len: usize) -> impl Strategy<Value = Vec<c64>> {
    (1..=max_len).prop_flat_map(|n| {
        prop::collection::vec(
            (-5.0..5.0f64, -5.0..5.0f64).prop_map(|(re, im)| c64::new(re, im)),
            n,
        )
    })
}

proptest! {
    #[test]
    fn fft_matches_naive_dft_all_lengths(x in signal_strategy(48)) {
        let plan = Fft1d::new(x.len());
        let mut got = x.clone();
        plan.forward(&mut got);
        let expect = dft::dft_forward(&x);
        for (a, b) in got.iter().zip(&expect) {
            prop_assert!((*a - *b).abs() < 1e-8 * (1.0 + x.len() as f64));
        }
    }

    #[test]
    fn roundtrip_is_identity(x in signal_strategy(64)) {
        let plan = Fft1d::new(x.len());
        let mut work = x.clone();
        plan.forward(&mut work);
        plan.inverse(&mut work);
        for (a, b) in work.iter().zip(&x) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_holds(x in signal_strategy(64)) {
        let n = x.len() as f64;
        let e_time: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let mut spec = x.clone();
        Fft1d::new(x.len()).forward(&mut spec);
        let e_freq: f64 = spec.iter().map(|v| v.norm_sqr()).sum::<f64>() / n;
        prop_assert!((e_time - e_freq).abs() < 1e-8 * (1.0 + e_time));
    }

    #[test]
    fn real_fft_matches_complex_reference(
        n in 1usize..80,
        seed in 0u64..1000,
    ) {
        // The packed r2c forward must reproduce the kept half of the
        // complex transform for every length (even → packed N/2 trick,
        // odd → Hermitian-fold fallback), under both kernel policies.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let x: Vec<f64> = (0..n).map(|_| next()).collect();
        let full = dft::dft_forward(&x.iter().map(|&v| c64::new(v, 0.0)).collect::<Vec<_>>());
        for policy in [KernelPolicy::Fast, KernelPolicy::Reference] {
            let plan = RealFft1d::new_with(n, policy);
            let mut ws = plan.workspace();
            let mut packed = vec![c64::ZERO; plan.packed_len()];
            plan.forward(&x, &mut packed, &mut ws);
            for (k, (p, f)) in packed.iter().zip(&full).enumerate() {
                prop_assert!((*p - *f).abs() < 1e-9 * (1.0 + n as f64), "bin {k}");
            }
            // And c2r must invert it back to the signal.
            let mut back = vec![0.0_f64; n];
            plan.inverse(&packed, &mut back, &mut ws);
            for (a, b) in back.iter().zip(&x) {
                prop_assert!((a - b).abs() < 1e-9 * (1.0 + n as f64));
            }
        }
    }

    #[test]
    fn radix4_agrees_with_radix2(
        level in 1u32..8,
        seed in 0u64..1000,
    ) {
        // Power-of-two lengths route the fast policy through the radix-4
        // kernel and the reference policy through radix-2; the spectra
        // must agree to rounding. (Every pow2 ≤ 1024 is swept exhaustively
        // by tests/kernel_tol.rs; this samples the same property under
        // random data.)
        let n = 1usize << level;
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let x: Vec<c64> = (0..n).map(|_| c64::new(next(), next())).collect();
        let mut a = x.clone();
        let mut b = x.clone();
        Fft1d::new_with(n, KernelPolicy::Fast).forward(&mut a);
        Fft1d::new_with(n, KernelPolicy::Reference).forward(&mut b);
        for (u, v) in a.iter().zip(&b) {
            prop_assert!((*u - *v).abs() < 1e-10 * (1.0 + n as f64));
        }
    }

    #[test]
    fn packed_3d_matches_complex(
        n1 in 1usize..7,
        n2 in 1usize..7,
        n3 in 1usize..7,
        seed in 0u64..1000,
    ) {
        let len = n1 * n2 * n3;
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let x: Vec<f64> = (0..len).map(|_| next()).collect();
        let rfft = Fft3r::new([n1, n2, n3]);
        let mut ws = rfft.workspace();
        let mut spec = vec![c64::ZERO; rfft.packed_len()];
        rfft.forward(&x, &mut spec, &mut ws);
        // Kept bins must match the complex 3-D transform…
        let cplan = Fft3::new(n1, n2, n3);
        let mut cws = cplan.workspace();
        let mut full: Vec<c64> = x.iter().map(|&v| c64::new(v, 0.0)).collect();
        cplan.forward_with(&mut full, &mut cws);
        let h1 = rfft.packed_nx();
        for iz in 0..n3 {
            for iy in 0..n2 {
                for ix in 0..h1 {
                    let p = spec[(iz * n2 + iy) * h1 + ix];
                    let f = full[(iz * n2 + iy) * n1 + ix];
                    prop_assert!(
                        (p - f).abs() < 1e-9 * (1.0 + len as f64),
                        "bin ({ix},{iy},{iz})"
                    );
                }
            }
        }
        // …and the c2r inverse must round-trip.
        let mut back = vec![0.0_f64; len];
        rfft.inverse(&mut spec, &mut back, &mut ws);
        for (a, b) in back.iter().zip(&x) {
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + len as f64));
        }
    }

    #[test]
    fn fft3_linearity_and_roundtrip(
        n1 in 1usize..6,
        n2 in 1usize..6,
        n3 in 1usize..6,
        seed in 0u64..1000,
    ) {
        let len = n1 * n2 * n3;
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let data: Vec<c64> = (0..len).map(|_| c64::new(next(), next())).collect();
        let plan = Fft3::new(n1, n2, n3);
        let mut work = data.clone();
        plan.forward(&mut work);
        plan.inverse(&mut work);
        for (a, b) in work.iter().zip(&data) {
            prop_assert!((*a - *b).abs() < 1e-10);
        }
    }
}
