//! One-dimensional FFT plans.
//!
//! Power-of-two sizes use an iterative Cooley–Tukey kernel with
//! precomputed twiddles and bit-reversal tables — radix-4 stages under
//! the default `fast` kernel policy (34 real flops per 4 outputs per
//! 2 levels, vs radix-2's 40, and half the passes over the data),
//! radix-2 under `LS3DF_KERNELS=reference` (the exact pre-PR-8
//! arithmetic the golden digests pin). Every other size goes through
//! Bluestein's chirp-z algorithm, which re-expresses an arbitrary-n DFT
//! as a cyclic convolution of power-of-two size — so the planewave code
//! can use physically natural grid sizes like 40³ (the paper's per-cell
//! grid) without padding.
//!
//! Conventions: `forward` is unnormalized (`Σ x_j e^{-2πi jk/n}`);
//! `inverse` carries the full `1/n`.

use ls3df_math::{c64, kernel_policy, KernelPolicy};
use ls3df_obs::{counter_add, Counter};
use std::f64::consts::PI;

/// Lines gathered per block by the strided batch API: big enough that the
/// strided gather reads [`LINE_BLOCK`] consecutive elements per touched
/// cache line, small enough that a block (`LINE_BLOCK·n` complex values)
/// stays L1-resident for typical grid edges.
const LINE_BLOCK: usize = 8;

/// Reusable scratch for one [`Fft1d`] plan, sized at construction so the
/// transform methods taking a workspace never touch the heap.
///
/// Build one per thread with [`Fft1d::workspace`] and reuse it across
/// calls; a workspace is tied to the plan length it was built for.
pub struct Fft1dWorkspace {
    /// Bluestein convolution buffer (length `m`; empty for trivial and
    /// radix-2 plans, which transform fully in place).
    scratch: Vec<c64>,
    /// Gather buffer for the blocked strided API (`LINE_BLOCK · n`).
    batch: Vec<c64>,
}

/// A reusable 1-D FFT plan for a fixed length.
pub struct Fft1d {
    n: usize,
    kind: Kind,
    /// Estimated flops per transformed line, fixed at plan build so the
    /// metrics probe in the hot path is a single multiply-add.
    line_flops: u64,
}

enum Kind {
    /// n == 1.
    Trivial,
    Pow2(Pow2),
    Bluestein(Box<Bluestein>),
}

/// The power-of-two kernel variant, picked by [`KernelPolicy`] at plan
/// build: radix-4 for `Fast` (n ≥ 4), radix-2 for `Reference` (and the
/// degenerate n = 2).
enum Pow2 {
    R2(Radix2),
    R4(Radix4),
}

impl Pow2 {
    fn new(n: usize, policy: KernelPolicy) -> Self {
        if policy == KernelPolicy::Fast && n >= 4 {
            Pow2::R4(Radix4::new(n))
        } else {
            Pow2::R2(Radix2::new(n))
        }
    }

    #[inline]
    fn run(&self, data: &mut [c64], dir: Direction) {
        match self {
            Pow2::R2(r) => r.run(data, dir),
            Pow2::R4(r) => r.run(data, dir),
        }
    }
}

struct Radix2 {
    /// Bit-reversal permutation table.
    rev: Vec<u32>,
    /// Twiddles for the forward direction, grouped by stage.
    twiddles_fwd: Vec<c64>,
    /// Twiddles for the inverse direction.
    twiddles_inv: Vec<c64>,
}

struct Radix4 {
    /// Bit-reversal permutation table (the same permutation radix-2
    /// uses; the radix-4 stages consume bit pairs in reversed order, see
    /// [`Radix4::run`]).
    rev: Vec<u32>,
    /// Forward twiddles, grouped by stage as `(w, w², w³)` triples.
    twiddles_fwd: Vec<c64>,
    /// Inverse twiddles, same layout.
    twiddles_inv: Vec<c64>,
    /// log2 n is odd: one radix-2 stage runs before the radix-4 stages.
    half_stage: bool,
}

struct Bluestein {
    /// Forward chirp `a_j = e^{-iπ j²/n}`.
    chirp_fwd: Vec<c64>,
    /// FFT (size m) of the forward-direction filter `b_j = e^{+iπ j²/n}`.
    filter_fwd: Vec<c64>,
    /// Inner power-of-two plan of size m ≥ 2n−1.
    inner: Pow2,
    m: usize,
}

impl Fft1d {
    /// Builds a plan for transforms of length `n` (n ≥ 1) under the
    /// process-wide [`kernel_policy`].
    pub fn new(n: usize) -> Self {
        Self::new_with(n, kernel_policy())
    }

    /// [`Fft1d::new`] with an explicit [`KernelPolicy`] — lets tests and
    /// benches hold both kernel variants in one process.
    pub fn new_with(n: usize, policy: KernelPolicy) -> Self {
        assert!(n >= 1, "Fft1d::new: length must be ≥ 1");
        let kind = if n == 1 {
            Kind::Trivial
        } else if n.is_power_of_two() {
            Kind::Pow2(Pow2::new(n, policy))
        } else {
            Kind::Bluestein(Box::new(Bluestein::new(n, policy)))
        };
        let line_flops = estimated_line_flops(n, &kind);
        Fft1d {
            n,
            kind,
            line_flops,
        }
    }

    /// Records `lines` transformed lines in the metrics registry (plan
    /// kind + estimated flops). Const-folds to nothing when collection
    /// is off.
    #[inline(always)]
    fn record_lines(&self, lines: u64) {
        if ls3df_obs::ENABLED {
            let counter = match &self.kind {
                Kind::Trivial => Counter::FftLinesTrivial,
                Kind::Pow2(Pow2::R2(_)) => Counter::FftLinesRadix2,
                Kind::Pow2(Pow2::R4(_)) => Counter::FftLinesRadix4,
                Kind::Bluestein(_) => Counter::FftLinesBluestein,
            };
            counter_add(counter, lines);
            counter_add(Counter::FftFlops, lines * self.line_flops);
        }
    }

    /// Estimated flops for one transformed line (exposed so the real
    /// transform layer can report its packed lines at true cost).
    #[inline]
    pub(crate) fn line_flops(&self) -> u64 {
        self.line_flops
    }

    /// Runs the kernel without touching the metrics registry — the entry
    /// point for [`crate::real::RealFft1d`], which accounts for its inner
    /// complex transform inside its own per-line cost instead.
    #[inline]
    pub(crate) fn run_uncounted(&self, data: &mut [c64], dir: Direction, ws: &mut Fft1dWorkspace) {
        debug_assert_eq!(data.len(), self.n);
        match &self.kind {
            Kind::Trivial => {}
            Kind::Pow2(p) => p.run(data, dir),
            Kind::Bluestein(b) => {
                assert_eq!(ws.scratch.len(), b.m, "Fft1d: workspace plan mismatch");
                b.run(data, dir, &mut ws.scratch);
            }
        }
        if dir == Direction::Inverse {
            let inv = 1.0 / self.n as f64;
            for v in data {
                *v = v.scale(inv);
            }
        }
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false (a plan has length ≥ 1).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Builds a scratch workspace sized for this plan (see
    /// [`Fft1dWorkspace`]). Do this once per thread, not per transform.
    pub fn workspace(&self) -> Fft1dWorkspace {
        let m = match &self.kind {
            Kind::Bluestein(b) => b.m,
            _ => 0,
        };
        Fft1dWorkspace {
            // alloc-audit: workspace construction is the one-time setup
            // that makes every later *_with / *_strided call heap-free.
            scratch: vec![c64::ZERO; m],
            batch: vec![c64::ZERO; LINE_BLOCK * self.n],
        }
    }

    /// In-place forward transform (unnormalized).
    ///
    /// Convenience wrapper: Bluestein lengths allocate their convolution
    /// scratch per call. Hot loops should hold a workspace and use
    /// [`Fft1d::forward_with`].
    pub fn forward(&self, data: &mut [c64]) {
        assert_eq!(data.len(), self.n, "Fft1d::forward: length mismatch");
        self.record_lines(1);
        match &self.kind {
            Kind::Trivial => {}
            Kind::Pow2(p) => p.run(data, Direction::Forward),
            Kind::Bluestein(b) => {
                // alloc-audit: one-shot path; reuse a workspace in hot loops.
                let mut scratch = vec![c64::ZERO; b.m];
                b.run(data, Direction::Forward, &mut scratch);
            }
        }
    }

    /// In-place inverse transform (includes the `1/n` factor).
    ///
    /// Convenience wrapper over [`Fft1d::inverse_with`]; see
    /// [`Fft1d::forward`] for the allocation caveat.
    pub fn inverse(&self, data: &mut [c64]) {
        assert_eq!(data.len(), self.n, "Fft1d::inverse: length mismatch");
        self.record_lines(1);
        match &self.kind {
            Kind::Trivial => {}
            Kind::Pow2(p) => p.run(data, Direction::Inverse),
            Kind::Bluestein(b) => {
                // alloc-audit: one-shot path; reuse a workspace in hot loops.
                let mut scratch = vec![c64::ZERO; b.m];
                b.run(data, Direction::Inverse, &mut scratch);
            }
        }
        let inv = 1.0 / self.n as f64;
        for v in data {
            *v = v.scale(inv);
        }
    }

    /// [`Fft1d::forward`] using caller-provided scratch — no heap traffic.
    pub fn forward_with(&self, data: &mut [c64], ws: &mut Fft1dWorkspace) {
        assert_eq!(data.len(), self.n, "Fft1d::forward_with: length mismatch");
        self.record_lines(1);
        match &self.kind {
            Kind::Trivial => {}
            Kind::Pow2(p) => p.run(data, Direction::Forward),
            Kind::Bluestein(b) => {
                assert_eq!(ws.scratch.len(), b.m, "Fft1d: workspace plan mismatch");
                b.run(data, Direction::Forward, &mut ws.scratch);
            }
        }
    }

    /// [`Fft1d::inverse`] using caller-provided scratch — no heap traffic.
    pub fn inverse_with(&self, data: &mut [c64], ws: &mut Fft1dWorkspace) {
        assert_eq!(data.len(), self.n, "Fft1d::inverse_with: length mismatch");
        self.record_lines(1);
        match &self.kind {
            Kind::Trivial => {}
            Kind::Pow2(p) => p.run(data, Direction::Inverse),
            Kind::Bluestein(b) => {
                assert_eq!(ws.scratch.len(), b.m, "Fft1d: workspace plan mismatch");
                b.run(data, Direction::Inverse, &mut ws.scratch);
            }
        }
        let inv = 1.0 / self.n as f64;
        for v in data {
            *v = v.scale(inv);
        }
    }

    /// Batched forward transform of `n_lines` interleaved lines.
    ///
    /// Line `l` (`l < n_lines`) occupies elements `data[i·stride + l]` for
    /// `i` in `0..n` — the natural layout of the y/z pencils of a 3-D grid
    /// with x fastest. Lines are processed in blocks of [`LINE_BLOCK`]
    /// through the workspace gather buffer, so each strided pass reads and
    /// writes [`LINE_BLOCK`] consecutive elements per touched cache line
    /// instead of one. Each gathered line sees exactly the same in-place
    /// kernel as [`Fft1d::forward`], so the result is bit-identical to a
    /// line-by-line loop.
    pub fn forward_strided(
        &self,
        data: &mut [c64],
        n_lines: usize,
        stride: usize,
        ws: &mut Fft1dWorkspace,
    ) {
        self.run_strided(data, n_lines, stride, ws, Direction::Forward);
    }

    /// Batched inverse counterpart of [`Fft1d::forward_strided`]
    /// (includes the `1/n` factor, applied per line exactly as
    /// [`Fft1d::inverse`] does).
    pub fn inverse_strided(
        &self,
        data: &mut [c64],
        n_lines: usize,
        stride: usize,
        ws: &mut Fft1dWorkspace,
    ) {
        self.run_strided(data, n_lines, stride, ws, Direction::Inverse);
    }

    fn run_strided(
        &self,
        data: &mut [c64],
        n_lines: usize,
        stride: usize,
        ws: &mut Fft1dWorkspace,
        dir: Direction,
    ) {
        let n = self.n;
        assert!(n_lines <= stride, "Fft1d: lines overlap (n_lines > stride)");
        assert_eq!(data.len(), n * stride, "Fft1d: strided buffer mismatch");
        assert_eq!(ws.batch.len(), LINE_BLOCK * n, "Fft1d: workspace mismatch");
        self.record_lines(n_lines as u64);
        if n == 1 {
            return; // length-1 lines are identity (1/n = 1 for the inverse)
        }
        // Each line is gathered into the batch buffer and scattered back:
        // 2 · 16 bytes per complex element through the strided staging.
        counter_add(
            Counter::FftGatherScatterBytes,
            2 * (n_lines * n * size_of::<c64>()) as u64,
        );
        let inv = 1.0 / n as f64;
        let mut l0 = 0;
        while l0 < n_lines {
            let nb = LINE_BLOCK.min(n_lines - l0);
            // Gather nb lines: the inner copy reads nb consecutive source
            // elements per grid row (cache-friendly on the strided side).
            for i in 0..n {
                let row = &data[i * stride + l0..i * stride + l0 + nb];
                for (j, &v) in row.iter().enumerate() {
                    ws.batch[j * n + i] = v;
                }
            }
            // Transform each gathered line with the identical in-place
            // kernel the unbatched path uses (bit-for-bit equivalence).
            for j in 0..nb {
                let line = &mut ws.batch[j * n..(j + 1) * n];
                match &self.kind {
                    Kind::Trivial => unreachable!("n == 1 returned above"),
                    Kind::Pow2(p) => p.run(line, dir),
                    Kind::Bluestein(b) => {
                        assert_eq!(ws.scratch.len(), b.m, "Fft1d: workspace plan mismatch");
                        b.run(line, dir, &mut ws.scratch);
                    }
                }
                if dir == Direction::Inverse {
                    for v in line {
                        *v = v.scale(inv);
                    }
                }
            }
            // Scatter back, same blocked access pattern.
            for i in 0..n {
                let row = &mut data[i * stride + l0..i * stride + l0 + nb];
                for (j, o) in row.iter_mut().enumerate() {
                    *o = ws.batch[j * n + i];
                }
            }
            l0 += nb;
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum Direction {
    Forward,
    Inverse,
}

/// Flop estimate for one transformed line, fixed at plan build.
///
/// Radix-2 uses the standard `5·n·log2 n` complex-FFT count. Radix-4
/// counts its *actual* arithmetic — 34 real flops per butterfly, n/4
/// butterflies per stage, one stage per two levels (`8.5·n` per pair of
/// levels vs radix-2's `10·n`), plus one `5·n` radix-2 stage when
/// log2 n is odd — so the Gflop/s the obs layer derives never credits
/// the faster kernel with work it did not do. Bluestein runs two inner
/// power-of-two transforms of size `m = (2n−1).next_power_of_two()`
/// (the size-m filter FFT is amortized into the plan) plus the chirp
/// multiply, filter multiply, and de-chirp — `O(m + n)` complex
/// multiplies at 6 flops each, with the final de-chirp also scaling.
fn estimated_line_flops(n: usize, kind: &Kind) -> u64 {
    match kind {
        Kind::Trivial => 0,
        Kind::Pow2(p) => pow2_line_flops(n, p),
        Kind::Bluestein(b) => {
            let m = b.m as u64;
            2 * pow2_line_flops(b.m, &b.inner) + 6 * m + 14 * n as u64
        }
    }
}

fn pow2_line_flops(n: usize, p: &Pow2) -> u64 {
    let levels = u64::from(n.trailing_zeros());
    match p {
        Pow2::R2(_) => 5 * n as u64 * levels,
        Pow2::R4(_) => {
            let pairs = levels / 2;
            let extra_r2 = levels % 2;
            (17 * n as u64 / 2) * pairs + 5 * n as u64 * extra_r2
        }
    }
}

impl Radix2 {
    fn new(n: usize) -> Self {
        debug_assert!(n.is_power_of_two() && n >= 2);
        let bits = n.trailing_zeros();
        let rev: Vec<u32> = (0..n as u32)
            .map(|i| i.reverse_bits() >> (32 - bits))
            .collect();
        // Stage `s` (half-size h = 2^s) uses h twiddles; total n−1.
        // alloc-audit: plan construction (once per geometry, not per call).
        let mut twiddles_fwd = Vec::with_capacity(n - 1);
        let mut twiddles_inv = Vec::with_capacity(n - 1);
        let mut h = 1;
        while h < n {
            for k in 0..h {
                let angle = PI * k as f64 / h as f64;
                twiddles_fwd.push(c64::cis(-angle));
                twiddles_inv.push(c64::cis(angle));
            }
            h *= 2;
        }
        Radix2 {
            rev,
            twiddles_fwd,
            twiddles_inv,
        }
    }

    fn run(&self, data: &mut [c64], dir: Direction) {
        let n = data.len();
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        let tw = match dir {
            Direction::Forward => &self.twiddles_fwd,
            Direction::Inverse => &self.twiddles_inv,
        };
        // Iterative butterflies.
        let mut h = 1;
        let mut tw_off = 0;
        while h < n {
            let step = 2 * h;
            for start in (0..n).step_by(step) {
                for k in 0..h {
                    let w = tw[tw_off + k];
                    let a = data[start + k];
                    let b = data[start + k + h] * w;
                    data[start + k] = a + b;
                    data[start + k + h] = a - b;
                }
            }
            tw_off += h;
            h = step;
        }
    }
}

/// Radix-4 decimation-in-time kernel for power-of-two n ≥ 4.
///
/// Works on the same bit-reversed input layout as [`Radix2`]: within a
/// group of four size-h sub-DFTs being merged, bit reversal places the
/// sub-DFT of subsequence `j ≡ r (mod 4)` at block offset `rev2(r)·h`
/// (two bits swap: r = 1 lands at offset 2h, r = 2 at offset h). Each
/// butterfly then combines
///
/// ```text
/// t0 = A[k]          t1 = w·B[k]        t2 = w²·C[k]      t3 = w³·D[k]
/// X[k]    = (t0+t2) + (t1+t3)     X[k+2h] = (t0+t2) − (t1+t3)
/// X[k+h]  = (t0−t2) ∓ i(t1−t3)    X[k+3h] = (t0−t2) ± i(t1−t3)
/// ```
///
/// (upper signs forward) — 3 complex multiplies + 8 complex adds = 34
/// real flops per 4 outputs, where two radix-2 levels spend 40, and one
/// pass over the data where radix-2 makes two. When log2 n is odd a
/// single twiddle-free radix-2 stage (h = 1, w = 1) runs first.
impl Radix4 {
    fn new(n: usize) -> Self {
        debug_assert!(n.is_power_of_two() && n >= 4);
        let bits = n.trailing_zeros();
        let rev: Vec<u32> = (0..n as u32)
            .map(|i| i.reverse_bits() >> (32 - bits))
            .collect();
        let half_stage = bits % 2 == 1;
        // Radix-4 stage with quarter size h uses 3h twiddles (w, w², w³
        // per k).
        // alloc-audit: plan construction (once per geometry, not per call).
        let mut twiddles_fwd = Vec::new();
        let mut twiddles_inv = Vec::new();
        let mut h = if half_stage { 2 } else { 1 };
        while h < n {
            for k in 0..h {
                let angle = PI * k as f64 / (2.0 * h as f64); // 2πk/(4h)
                for mult in 1..=3 {
                    twiddles_fwd.push(c64::cis(-angle * mult as f64));
                    twiddles_inv.push(c64::cis(angle * mult as f64));
                }
            }
            h *= 4;
        }
        Radix4 {
            rev,
            twiddles_fwd,
            twiddles_inv,
            half_stage,
        }
    }

    fn run(&self, data: &mut [c64], dir: Direction) {
        let n = data.len();
        // Bit-reversal permutation (identical to the radix-2 kernel).
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        if self.half_stage {
            // One twiddle-free radix-2 level: pairs (2i, 2i+1).
            for i in (0..n).step_by(2) {
                let a = data[i];
                let b = data[i + 1];
                data[i] = a + b;
                data[i + 1] = a - b;
            }
        }
        let tw = match dir {
            Direction::Forward => &self.twiddles_fwd,
            Direction::Inverse => &self.twiddles_inv,
        };
        let forward = dir == Direction::Forward;
        let mut h = if self.half_stage { 2 } else { 1 };
        let mut tw_off = 0;
        while h < n {
            let step = 4 * h;
            for start in (0..n).step_by(step) {
                for k in 0..h {
                    let w = &tw[tw_off + 3 * k..tw_off + 3 * k + 3];
                    let t0 = data[start + k];
                    // Bit reversal swaps the two merged bits: the j≡1
                    // sub-DFT sits at offset 2h, j≡2 at offset h.
                    let t1 = data[start + k + 2 * h] * w[0];
                    let t2 = data[start + k + h] * w[1];
                    let t3 = data[start + k + 3 * h] * w[2];
                    let u0 = t0 + t2;
                    let u1 = t0 - t2;
                    let u2 = t1 + t3;
                    let u3 = t1 - t3;
                    data[start + k] = u0 + u2;
                    data[start + k + 2 * h] = u0 - u2;
                    // ∓i·u3: forward rotates by −i = (im, −re).
                    let rot = if forward {
                        c64::new(u3.im, -u3.re)
                    } else {
                        c64::new(-u3.im, u3.re)
                    };
                    data[start + k + h] = u1 + rot;
                    data[start + k + 3 * h] = u1 - rot;
                }
            }
            tw_off += 3 * h;
            h = step;
        }
    }
}

impl Bluestein {
    fn new(n: usize, policy: KernelPolicy) -> Self {
        let m = (2 * n - 1).next_power_of_two();
        let inner = Pow2::new(m, policy);
        // Chirp with the squared index reduced mod 2n for angle accuracy.
        let chirp = |j: usize, sign: f64| -> c64 {
            let q = ((j as u128 * j as u128) % (2 * n as u128)) as f64;
            c64::cis(sign * PI * q / n as f64)
        };
        let chirp_fwd: Vec<c64> = (0..n).map(|j| chirp(j, -1.0)).collect();
        // Filter b_j = conj(a_j) = e^{+iπ j²/n}, wrapped cyclically into m.
        // alloc-audit: plan construction (once per geometry, not per call).
        let mut filter = vec![c64::ZERO; m];
        for j in 0..n {
            let v = chirp(j, 1.0);
            filter[j] = v;
            if j != 0 {
                filter[m - j] = v;
            }
        }
        inner.run(&mut filter, Direction::Forward);
        Bluestein {
            chirp_fwd,
            filter_fwd: filter,
            inner,
            m,
        }
    }

    /// Runs one chirp-z transform through caller-provided scratch of
    /// length `m` (zeroed here — callers may hand over dirty buffers).
    fn run(&self, data: &mut [c64], dir: Direction, buf: &mut [c64]) {
        let n = data.len();
        debug_assert_eq!(buf.len(), self.m);
        // Inverse transform = conj ∘ forward ∘ conj (the 1/n is applied by
        // the caller).
        if dir == Direction::Inverse {
            for v in data.iter_mut() {
                *v = v.conj();
            }
        }
        for j in 0..n {
            buf[j] = data[j] * self.chirp_fwd[j];
        }
        buf[n..].fill(c64::ZERO);
        self.inner.run(buf, Direction::Forward);
        for (v, &f) in buf.iter_mut().zip(&self.filter_fwd) {
            *v *= f;
        }
        self.inner.run(buf, Direction::Inverse);
        let inv_m = 1.0 / self.m as f64;
        for k in 0..n {
            data[k] = (buf[k] * self.chirp_fwd[k]).scale(inv_m);
        }
        if dir == Direction::Inverse {
            for v in data.iter_mut() {
                *v = v.conj();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{dft_forward, dft_inverse};

    fn rand_signal(n: usize, seed: u64) -> Vec<c64> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        (0..n).map(|_| c64::new(next(), next())).collect()
    }

    fn max_err(a: &[c64], b: &[c64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn radix2_matches_naive_dft() {
        for &n in &[2usize, 4, 8, 16, 64, 256] {
            let x = rand_signal(n, n as u64);
            let expect = dft_forward(&x);
            let mut got = x.clone();
            Fft1d::new(n).forward(&mut got);
            assert!(max_err(&got, &expect) < 1e-10 * n as f64, "n={n}");
        }
    }

    #[test]
    fn bluestein_matches_naive_dft() {
        for &n in &[3usize, 5, 6, 7, 9, 10, 12, 15, 20, 40, 81, 100] {
            let x = rand_signal(n, 1000 + n as u64);
            let expect = dft_forward(&x);
            let mut got = x.clone();
            Fft1d::new(n).forward(&mut got);
            assert!(max_err(&got, &expect) < 1e-9 * n as f64, "n={n}");
        }
    }

    #[test]
    fn inverse_matches_naive_and_roundtrips() {
        for &n in &[8usize, 12, 40, 128] {
            let x = rand_signal(n, 7 + n as u64);
            let plan = Fft1d::new(n);

            let mut spec = x.clone();
            plan.forward(&mut spec);
            let expect_inv = dft_inverse(&spec);
            let mut got = spec.clone();
            plan.inverse(&mut got);
            assert!(max_err(&got, &expect_inv) < 1e-10 * n as f64);
            assert!(max_err(&got, &x) < 1e-10 * n as f64, "roundtrip n={n}");
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        for &n in &[16usize, 30] {
            let x = rand_signal(n, 99 + n as u64);
            let energy_t: f64 = x.iter().map(|v| v.norm_sqr()).sum();
            let mut spec = x.clone();
            Fft1d::new(n).forward(&mut spec);
            let energy_f: f64 = spec.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
            assert!((energy_t - energy_f).abs() < 1e-10 * energy_t.max(1.0));
        }
    }

    #[test]
    fn length_one_is_identity() {
        let mut x = vec![c64::new(2.5, -1.0)];
        let plan = Fft1d::new(1);
        plan.forward(&mut x);
        assert_eq!(x[0], c64::new(2.5, -1.0));
        plan.inverse(&mut x);
        assert_eq!(x[0], c64::new(2.5, -1.0));
    }

    #[test]
    fn pure_tone_lands_in_single_bin() {
        let n = 32;
        let k0 = 5;
        let x: Vec<c64> = (0..n)
            .map(|j| c64::cis(2.0 * PI * (j * k0) as f64 / n as f64))
            .collect();
        let mut spec = x.clone();
        Fft1d::new(n).forward(&mut spec);
        for (k, v) in spec.iter().enumerate() {
            if k == k0 {
                assert!((v.re - n as f64).abs() < 1e-9);
            } else {
                assert!(v.abs() < 1e-9, "leak at bin {k}");
            }
        }
    }
}
