//! One-dimensional FFT plans.
//!
//! Power-of-two sizes use an iterative radix-2 Cooley–Tukey kernel with
//! precomputed twiddles and bit-reversal tables. Every other size goes
//! through Bluestein's chirp-z algorithm, which re-expresses an arbitrary-n
//! DFT as a cyclic convolution of power-of-two size — so the planewave code
//! can use physically natural grid sizes like 40³ (the paper's per-cell
//! grid) without padding.
//!
//! Conventions: `forward` is unnormalized (`Σ x_j e^{-2πi jk/n}`);
//! `inverse` carries the full `1/n`.

use ls3df_math::c64;
use std::f64::consts::PI;

/// A reusable 1-D FFT plan for a fixed length.
pub struct Fft1d {
    n: usize,
    kind: Kind,
}

enum Kind {
    /// n == 1.
    Trivial,
    Radix2(Radix2),
    Bluestein(Box<Bluestein>),
}

struct Radix2 {
    /// Bit-reversal permutation table.
    rev: Vec<u32>,
    /// Twiddles for the forward direction, grouped by stage.
    twiddles_fwd: Vec<c64>,
    /// Twiddles for the inverse direction.
    twiddles_inv: Vec<c64>,
}

struct Bluestein {
    /// Forward chirp `a_j = e^{-iπ j²/n}`.
    chirp_fwd: Vec<c64>,
    /// FFT (size m) of the forward-direction filter `b_j = e^{+iπ j²/n}`.
    filter_fwd: Vec<c64>,
    /// Inner power-of-two plan of size m ≥ 2n−1.
    inner: Radix2,
    m: usize,
}

impl Fft1d {
    /// Builds a plan for transforms of length `n` (n ≥ 1).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "Fft1d::new: length must be ≥ 1");
        let kind = if n == 1 {
            Kind::Trivial
        } else if n.is_power_of_two() {
            Kind::Radix2(Radix2::new(n))
        } else {
            Kind::Bluestein(Box::new(Bluestein::new(n)))
        };
        Fft1d { n, kind }
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false (a plan has length ≥ 1).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place forward transform (unnormalized).
    pub fn forward(&self, data: &mut [c64]) {
        assert_eq!(data.len(), self.n, "Fft1d::forward: length mismatch");
        match &self.kind {
            Kind::Trivial => {}
            Kind::Radix2(r) => r.run(data, Direction::Forward),
            Kind::Bluestein(b) => b.run(data, Direction::Forward),
        }
    }

    /// In-place inverse transform (includes the `1/n` factor).
    pub fn inverse(&self, data: &mut [c64]) {
        assert_eq!(data.len(), self.n, "Fft1d::inverse: length mismatch");
        match &self.kind {
            Kind::Trivial => {}
            Kind::Radix2(r) => r.run(data, Direction::Inverse),
            Kind::Bluestein(b) => b.run(data, Direction::Inverse),
        }
        let inv = 1.0 / self.n as f64;
        for v in data {
            *v = v.scale(inv);
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    Forward,
    Inverse,
}

impl Radix2 {
    fn new(n: usize) -> Self {
        debug_assert!(n.is_power_of_two() && n >= 2);
        let bits = n.trailing_zeros();
        let rev: Vec<u32> = (0..n as u32)
            .map(|i| i.reverse_bits() >> (32 - bits))
            .collect();
        // Stage `s` (half-size h = 2^s) uses h twiddles; total n−1.
        let mut twiddles_fwd = Vec::with_capacity(n - 1);
        let mut twiddles_inv = Vec::with_capacity(n - 1);
        let mut h = 1;
        while h < n {
            for k in 0..h {
                let angle = PI * k as f64 / h as f64;
                twiddles_fwd.push(c64::cis(-angle));
                twiddles_inv.push(c64::cis(angle));
            }
            h *= 2;
        }
        Radix2 {
            rev,
            twiddles_fwd,
            twiddles_inv,
        }
    }

    fn run(&self, data: &mut [c64], dir: Direction) {
        let n = data.len();
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        let tw = match dir {
            Direction::Forward => &self.twiddles_fwd,
            Direction::Inverse => &self.twiddles_inv,
        };
        // Iterative butterflies.
        let mut h = 1;
        let mut tw_off = 0;
        while h < n {
            let step = 2 * h;
            for start in (0..n).step_by(step) {
                for k in 0..h {
                    let w = tw[tw_off + k];
                    let a = data[start + k];
                    let b = data[start + k + h] * w;
                    data[start + k] = a + b;
                    data[start + k + h] = a - b;
                }
            }
            tw_off += h;
            h = step;
        }
    }
}

impl Bluestein {
    fn new(n: usize) -> Self {
        let m = (2 * n - 1).next_power_of_two();
        let inner = Radix2::new(m);
        // Chirp with the squared index reduced mod 2n for angle accuracy.
        let chirp = |j: usize, sign: f64| -> c64 {
            let q = ((j as u128 * j as u128) % (2 * n as u128)) as f64;
            c64::cis(sign * PI * q / n as f64)
        };
        let chirp_fwd: Vec<c64> = (0..n).map(|j| chirp(j, -1.0)).collect();
        // Filter b_j = conj(a_j) = e^{+iπ j²/n}, wrapped cyclically into m.
        let mut filter = vec![c64::ZERO; m];
        for j in 0..n {
            let v = chirp(j, 1.0);
            filter[j] = v;
            if j != 0 {
                filter[m - j] = v;
            }
        }
        inner.run(&mut filter, Direction::Forward);
        Bluestein {
            chirp_fwd,
            filter_fwd: filter,
            inner,
            m,
        }
    }

    fn run(&self, data: &mut [c64], dir: Direction) {
        let n = data.len();
        // Inverse transform = conj ∘ forward ∘ conj (the 1/n is applied by
        // the caller).
        if dir == Direction::Inverse {
            for v in data.iter_mut() {
                *v = v.conj();
            }
        }
        let mut buf = vec![c64::ZERO; self.m];
        for j in 0..n {
            buf[j] = data[j] * self.chirp_fwd[j];
        }
        self.inner.run(&mut buf, Direction::Forward);
        for (v, &f) in buf.iter_mut().zip(&self.filter_fwd) {
            *v *= f;
        }
        self.inner.run(&mut buf, Direction::Inverse);
        let inv_m = 1.0 / self.m as f64;
        for k in 0..n {
            data[k] = (buf[k] * self.chirp_fwd[k]).scale(inv_m);
        }
        if dir == Direction::Inverse {
            for v in data.iter_mut() {
                *v = v.conj();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{dft_forward, dft_inverse};

    fn rand_signal(n: usize, seed: u64) -> Vec<c64> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        (0..n).map(|_| c64::new(next(), next())).collect()
    }

    fn max_err(a: &[c64], b: &[c64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn radix2_matches_naive_dft() {
        for &n in &[2usize, 4, 8, 16, 64, 256] {
            let x = rand_signal(n, n as u64);
            let expect = dft_forward(&x);
            let mut got = x.clone();
            Fft1d::new(n).forward(&mut got);
            assert!(max_err(&got, &expect) < 1e-10 * n as f64, "n={n}");
        }
    }

    #[test]
    fn bluestein_matches_naive_dft() {
        for &n in &[3usize, 5, 6, 7, 9, 10, 12, 15, 20, 40, 81, 100] {
            let x = rand_signal(n, 1000 + n as u64);
            let expect = dft_forward(&x);
            let mut got = x.clone();
            Fft1d::new(n).forward(&mut got);
            assert!(max_err(&got, &expect) < 1e-9 * n as f64, "n={n}");
        }
    }

    #[test]
    fn inverse_matches_naive_and_roundtrips() {
        for &n in &[8usize, 12, 40, 128] {
            let x = rand_signal(n, 7 + n as u64);
            let plan = Fft1d::new(n);

            let mut spec = x.clone();
            plan.forward(&mut spec);
            let expect_inv = dft_inverse(&spec);
            let mut got = spec.clone();
            plan.inverse(&mut got);
            assert!(max_err(&got, &expect_inv) < 1e-10 * n as f64);
            assert!(max_err(&got, &x) < 1e-10 * n as f64, "roundtrip n={n}");
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        for &n in &[16usize, 30] {
            let x = rand_signal(n, 99 + n as u64);
            let energy_t: f64 = x.iter().map(|v| v.norm_sqr()).sum();
            let mut spec = x.clone();
            Fft1d::new(n).forward(&mut spec);
            let energy_f: f64 = spec.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
            assert!((energy_t - energy_f).abs() < 1e-10 * energy_t.max(1.0));
        }
    }

    #[test]
    fn length_one_is_identity() {
        let mut x = vec![c64::new(2.5, -1.0)];
        let plan = Fft1d::new(1);
        plan.forward(&mut x);
        assert_eq!(x[0], c64::new(2.5, -1.0));
        plan.inverse(&mut x);
        assert_eq!(x[0], c64::new(2.5, -1.0));
    }

    #[test]
    fn pure_tone_lands_in_single_bin() {
        let n = 32;
        let k0 = 5;
        let x: Vec<c64> = (0..n)
            .map(|j| c64::cis(2.0 * PI * (j * k0) as f64 / n as f64))
            .collect();
        let mut spec = x.clone();
        Fft1d::new(n).forward(&mut spec);
        for (k, v) in spec.iter().enumerate() {
            if k == k0 {
                assert!((v.re - n as f64).abs() < 1e-9);
            } else {
                assert!(v.abs() < 1e-9, "leak at bin {k}");
            }
        }
    }
}
