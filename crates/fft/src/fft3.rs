//! Three-dimensional FFT over periodic supercell grids.
//!
//! This is the kernel behind two pieces of the paper's pipeline: the
//! GENPOT global Poisson solve (one forward + one inverse 3-D FFT per SCF
//! iteration) and the local-potential application `V(r)·ψ(r)` inside
//! PEtot_F (a pair of 3-D FFTs per band block per CG step).
//!
//! Layout convention (shared with `ls3df-grid`): the **x index is fastest**,
//! `idx = (iz·n2 + iy)·n1 + ix` for dimensions `(n1, n2, n3)`.
//!
//! The transform itself is sequential: the LS3DF outer loop already
//! parallelizes over fragments and bands, and a box-sized 3-D FFT is far
//! below the granularity where task overhead pays off. All scratch lives
//! in an [`Fft3Workspace`] sized at plan build, so the `*_with` entry
//! points are allocation-free — the property the `alloc-count` tier-1
//! test pins down.

use crate::plan::{Fft1d, Fft1dWorkspace};
use ls3df_math::c64;
use ls3df_obs::{counter_add, Counter};

/// Reusable scratch for one [`Fft3`] plan (one [`Fft1dWorkspace`] per
/// axis). Build with [`Fft3::workspace`], once per thread.
pub struct Fft3Workspace {
    x: Fft1dWorkspace,
    y: Fft1dWorkspace,
    z: Fft1dWorkspace,
}

/// Reusable 3-D FFT plan for a fixed `(n1, n2, n3)` grid.
pub struct Fft3 {
    n1: usize,
    n2: usize,
    n3: usize,
    plan_x: Fft1d,
    plan_y: Fft1d,
    plan_z: Fft1d,
}

impl Fft3 {
    /// Builds a plan for an `(n1, n2, n3)` grid (x fastest).
    pub fn new(n1: usize, n2: usize, n3: usize) -> Self {
        assert!(n1 >= 1 && n2 >= 1 && n3 >= 1, "Fft3::new: degenerate grid");
        Fft3 {
            n1,
            n2,
            n3,
            plan_x: Fft1d::new(n1),
            plan_y: Fft1d::new(n2),
            plan_z: Fft1d::new(n3),
        }
    }

    /// Grid dimensions `(n1, n2, n3)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.n1, self.n2, self.n3)
    }

    /// Total number of grid points.
    pub fn len(&self) -> usize {
        self.n1 * self.n2 * self.n3
    }

    /// Always false for a valid plan.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Builds a reusable scratch workspace sized for this plan.
    ///
    /// Allocate once (per thread, or checked out of a pool) and pass to
    /// [`Fft3::forward_with`]/[`Fft3::inverse_with`]; those entry points
    /// then perform no heap allocation.
    pub fn workspace(&self) -> Fft3Workspace {
        Fft3Workspace {
            x: self.plan_x.workspace(),
            y: self.plan_y.workspace(),
            z: self.plan_z.workspace(),
        }
    }

    /// In-place forward transform (unnormalized).
    pub fn forward(&self, data: &mut [c64]) {
        // alloc-audit: one-shot convenience path; hot loops use forward_with.
        let mut ws = self.workspace();
        self.run_with(data, true, &mut ws);
    }

    /// In-place inverse transform (includes the full `1/(n1·n2·n3)`).
    pub fn inverse(&self, data: &mut [c64]) {
        // alloc-audit: one-shot convenience path; hot loops use inverse_with.
        let mut ws = self.workspace();
        self.run_with(data, false, &mut ws);
    }

    /// In-place forward transform using caller-provided scratch.
    /// Performs no heap allocation.
    pub fn forward_with(&self, data: &mut [c64], ws: &mut Fft3Workspace) {
        self.run_with(data, true, ws);
    }

    /// In-place inverse transform using caller-provided scratch (includes
    /// the full `1/(n1·n2·n3)`). Performs no heap allocation.
    pub fn inverse_with(&self, data: &mut [c64], ws: &mut Fft3Workspace) {
        self.run_with(data, false, ws);
    }

    fn run_with(&self, data: &mut [c64], fwd: bool, ws: &mut Fft3Workspace) {
        assert_eq!(data.len(), self.len(), "Fft3: buffer length mismatch");
        counter_add(Counter::Fft3Transforms, 1);
        let (n1, n2, n3) = (self.n1, self.n2, self.n3);

        // X lines are contiguous: one slice per (y,z) pair.
        if n1 > 1 {
            for line in data.chunks_mut(n1) {
                if fwd {
                    self.plan_x.forward_with(line, &mut ws.x);
                } else {
                    self.plan_x.inverse_with(line, &mut ws.x);
                }
            }
        }

        // Y lines: within one contiguous z-plane the n1 lines along y all
        // have stride n1, so each plane is one batched strided call.
        if n2 > 1 {
            for plane in data.chunks_mut(n1 * n2) {
                if fwd {
                    self.plan_y.forward_strided(plane, n1, n1, &mut ws.y);
                } else {
                    self.plan_y.inverse_strided(plane, n1, n1, &mut ws.y);
                }
            }
        }

        // Z lines: all n1·n2 columns share stride n1·n2, so the whole grid
        // is one batched strided call — no full-grid transpose scratch.
        if n3 > 1 {
            let plane = n1 * n2;
            if fwd {
                self.plan_z.forward_strided(data, plane, plane, &mut ws.z);
            } else {
                self.plan_z.inverse_strided(data, plane, plane, &mut ws.z);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn rand_field(n: usize, seed: u64) -> Vec<c64> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        (0..n).map(|_| c64::new(next(), next())).collect()
    }

    /// Brute-force 3-D DFT for small grids.
    fn dft3(data: &[c64], n1: usize, n2: usize, n3: usize) -> Vec<c64> {
        let mut out = vec![c64::ZERO; data.len()];
        for kz in 0..n3 {
            for ky in 0..n2 {
                for kx in 0..n1 {
                    let mut acc = c64::ZERO;
                    for iz in 0..n3 {
                        for iy in 0..n2 {
                            for ix in 0..n1 {
                                let phase = -2.0
                                    * PI
                                    * ((ix * kx) as f64 / n1 as f64
                                        + (iy * ky) as f64 / n2 as f64
                                        + (iz * kz) as f64 / n3 as f64);
                                acc = acc.mul_add(data[(iz * n2 + iy) * n1 + ix], c64::cis(phase));
                            }
                        }
                    }
                    out[(kz * n2 + ky) * n1 + kx] = acc;
                }
            }
        }
        out
    }

    #[test]
    fn matches_brute_force_3d_dft() {
        for &(n1, n2, n3) in &[(4usize, 4usize, 4usize), (8, 4, 2), (3, 5, 4), (6, 6, 6)] {
            let data = rand_field(n1 * n2 * n3, (n1 * 100 + n2 * 10 + n3) as u64);
            let expect = dft3(&data, n1, n2, n3);
            let mut got = data.clone();
            Fft3::new(n1, n2, n3).forward(&mut got);
            let err = got
                .iter()
                .zip(&expect)
                .map(|(a, b)| (*a - *b).abs())
                .fold(0.0_f64, f64::max);
            assert!(
                err < 1e-9 * (n1 * n2 * n3) as f64,
                "({n1},{n2},{n3}) err={err}"
            );
        }
    }

    #[test]
    fn roundtrip_identity() {
        for &(n1, n2, n3) in &[
            (8usize, 8usize, 8usize),
            (10, 6, 12),
            (16, 16, 16),
            (1, 8, 3),
        ] {
            let data = rand_field(n1 * n2 * n3, 77);
            let plan = Fft3::new(n1, n2, n3);
            let mut work = data.clone();
            plan.forward(&mut work);
            plan.inverse(&mut work);
            let err = work
                .iter()
                .zip(&data)
                .map(|(a, b)| (*a - *b).abs())
                .fold(0.0_f64, f64::max);
            assert!(err < 1e-11, "roundtrip ({n1},{n2},{n3}) err={err}");
        }
    }

    #[test]
    fn plane_wave_lands_in_single_bin() {
        let (n1, n2, n3) = (8, 8, 8);
        let (k1, k2, k3) = (2usize, 3usize, 5usize);
        let mut data = vec![c64::ZERO; n1 * n2 * n3];
        for iz in 0..n3 {
            for iy in 0..n2 {
                for ix in 0..n1 {
                    let phase = 2.0
                        * PI
                        * ((ix * k1) as f64 / n1 as f64
                            + (iy * k2) as f64 / n2 as f64
                            + (iz * k3) as f64 / n3 as f64);
                    data[(iz * n2 + iy) * n1 + ix] = c64::cis(phase);
                }
            }
        }
        Fft3::new(n1, n2, n3).forward(&mut data);
        let total = (n1 * n2 * n3) as f64;
        for iz in 0..n3 {
            for iy in 0..n2 {
                for ix in 0..n1 {
                    let v = data[(iz * n2 + iy) * n1 + ix];
                    if (ix, iy, iz) == (k1, k2, k3) {
                        assert!((v.re - total).abs() < 1e-8);
                    } else {
                        assert!(v.abs() < 1e-8);
                    }
                }
            }
        }
    }

    #[test]
    fn linearity() {
        let (n1, n2, n3) = (6, 5, 4);
        let a = rand_field(n1 * n2 * n3, 1);
        let b = rand_field(n1 * n2 * n3, 2);
        let plan = Fft3::new(n1, n2, n3);
        let mut sum: Vec<c64> = a.iter().zip(&b).map(|(x, y)| *x + y.scale(2.0)).collect();
        plan.forward(&mut sum);
        let mut fa = a.clone();
        plan.forward(&mut fa);
        let mut fb = b.clone();
        plan.forward(&mut fb);
        for i in 0..sum.len() {
            assert!((sum[i] - (fa[i] + fb[i].scale(2.0))).abs() < 1e-9);
        }
    }
}
