//! Three-dimensional FFT over periodic supercell grids.
//!
//! This is the kernel behind two pieces of the paper's pipeline: the
//! GENPOT global Poisson solve (one forward + one inverse 3-D FFT per SCF
//! iteration) and the local-potential application `V(r)·ψ(r)` inside
//! PEtot_F (a pair of 3-D FFTs per band block per CG step).
//!
//! Layout convention (shared with `ls3df-grid`): the **x index is fastest**,
//! `idx = (iz·n2 + iy)·n1 + ix` for dimensions `(n1, n2, n3)`.

use crate::plan::Fft1d;
use ls3df_math::c64;
use rayon::prelude::*;

/// Reusable 3-D FFT plan for a fixed `(n1, n2, n3)` grid.
pub struct Fft3 {
    n1: usize,
    n2: usize,
    n3: usize,
    plan_x: Fft1d,
    plan_y: Fft1d,
    plan_z: Fft1d,
}

impl Fft3 {
    /// Builds a plan for an `(n1, n2, n3)` grid (x fastest).
    pub fn new(n1: usize, n2: usize, n3: usize) -> Self {
        assert!(n1 >= 1 && n2 >= 1 && n3 >= 1, "Fft3::new: degenerate grid");
        Fft3 {
            n1,
            n2,
            n3,
            plan_x: Fft1d::new(n1),
            plan_y: Fft1d::new(n2),
            plan_z: Fft1d::new(n3),
        }
    }

    /// Grid dimensions `(n1, n2, n3)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.n1, self.n2, self.n3)
    }

    /// Total number of grid points.
    pub fn len(&self) -> usize {
        self.n1 * self.n2 * self.n3
    }

    /// Always false for a valid plan.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place forward transform (unnormalized).
    pub fn forward(&self, data: &mut [c64]) {
        self.run(data, true);
    }

    /// In-place inverse transform (includes the full `1/(n1·n2·n3)`).
    pub fn inverse(&self, data: &mut [c64]) {
        self.run(data, false);
    }

    fn run(&self, data: &mut [c64], fwd: bool) {
        assert_eq!(data.len(), self.len(), "Fft3: buffer length mismatch");
        let (n1, n2, n3) = (self.n1, self.n2, self.n3);
        // Fragment-box-sized transforms run sequentially: the LS3DF outer
        // loop already parallelizes over fragments/bands, and rayon task
        // overhead swamps sub-millisecond line transforms.
        //
        // Audited reduction: the parallel branches below chunk by fixed
        // geometry (n1, n1·n2, n3) — never by thread count — and each
        // chunk is transformed independently with no cross-chunk sums,
        // so results are bit-identical for any LS3DF_THREADS setting.
        let parallel = data.len() >= 32_768;

        // X lines are contiguous: one slice per (y,z) pair.
        if n1 > 1 {
            let do_line = |line: &mut [c64]| {
                if fwd {
                    self.plan_x.forward(line);
                } else {
                    self.plan_x.inverse(line);
                }
            };
            if parallel {
                data.par_chunks_mut(n1).for_each(do_line);
            } else {
                data.chunks_mut(n1).for_each(do_line);
            }
        }

        // Y lines: stride n1 within each z-plane (planes are contiguous, so
        // parallelize over planes and gather/scatter lines inside).
        if n2 > 1 {
            let do_plane = |plane: &mut [c64]| {
                let mut line = vec![c64::ZERO; n2];
                for ix in 0..n1 {
                    for iy in 0..n2 {
                        line[iy] = plane[iy * n1 + ix];
                    }
                    if fwd {
                        self.plan_y.forward(&mut line);
                    } else {
                        self.plan_y.inverse(&mut line);
                    }
                    for iy in 0..n2 {
                        plane[iy * n1 + ix] = line[iy];
                    }
                }
            };
            if parallel {
                data.par_chunks_mut(n1 * n2).for_each(do_plane);
            } else {
                data.chunks_mut(n1 * n2).for_each(do_plane);
            }
        }

        // Z lines: stride n1·n2. Transpose z to the front in one pass so
        // each column is contiguous, transform, scatter back.
        if n3 > 1 {
            let plane = n1 * n2;
            let mut scratch = vec![c64::ZERO; data.len()];
            let gather = |col: usize, line: &mut [c64]| {
                for (iz, v) in line.iter_mut().enumerate() {
                    *v = data[iz * plane + col];
                }
                if fwd {
                    self.plan_z.forward(line);
                } else {
                    self.plan_z.inverse(line);
                }
            };
            if parallel {
                scratch
                    .par_chunks_mut(n3)
                    .enumerate()
                    .for_each(|(col, line)| gather(col, line));
                data.par_chunks_mut(plane)
                    .enumerate()
                    .for_each(|(iz, out_plane)| {
                        for (col, o) in out_plane.iter_mut().enumerate() {
                            *o = scratch[col * n3 + iz];
                        }
                    });
            } else {
                scratch
                    .chunks_mut(n3)
                    .enumerate()
                    .for_each(|(col, line)| gather(col, line));
                data.chunks_mut(plane)
                    .enumerate()
                    .for_each(|(iz, out_plane)| {
                        for (col, o) in out_plane.iter_mut().enumerate() {
                            *o = scratch[col * n3 + iz];
                        }
                    });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn rand_field(n: usize, seed: u64) -> Vec<c64> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        (0..n).map(|_| c64::new(next(), next())).collect()
    }

    /// Brute-force 3-D DFT for small grids.
    fn dft3(data: &[c64], n1: usize, n2: usize, n3: usize) -> Vec<c64> {
        let mut out = vec![c64::ZERO; data.len()];
        for kz in 0..n3 {
            for ky in 0..n2 {
                for kx in 0..n1 {
                    let mut acc = c64::ZERO;
                    for iz in 0..n3 {
                        for iy in 0..n2 {
                            for ix in 0..n1 {
                                let phase = -2.0
                                    * PI
                                    * ((ix * kx) as f64 / n1 as f64
                                        + (iy * ky) as f64 / n2 as f64
                                        + (iz * kz) as f64 / n3 as f64);
                                acc = acc.mul_add(data[(iz * n2 + iy) * n1 + ix], c64::cis(phase));
                            }
                        }
                    }
                    out[(kz * n2 + ky) * n1 + kx] = acc;
                }
            }
        }
        out
    }

    #[test]
    fn matches_brute_force_3d_dft() {
        for &(n1, n2, n3) in &[(4usize, 4usize, 4usize), (8, 4, 2), (3, 5, 4), (6, 6, 6)] {
            let data = rand_field(n1 * n2 * n3, (n1 * 100 + n2 * 10 + n3) as u64);
            let expect = dft3(&data, n1, n2, n3);
            let mut got = data.clone();
            Fft3::new(n1, n2, n3).forward(&mut got);
            let err = got
                .iter()
                .zip(&expect)
                .map(|(a, b)| (*a - *b).abs())
                .fold(0.0_f64, f64::max);
            assert!(
                err < 1e-9 * (n1 * n2 * n3) as f64,
                "({n1},{n2},{n3}) err={err}"
            );
        }
    }

    #[test]
    fn roundtrip_identity() {
        for &(n1, n2, n3) in &[
            (8usize, 8usize, 8usize),
            (10, 6, 12),
            (16, 16, 16),
            (1, 8, 3),
        ] {
            let data = rand_field(n1 * n2 * n3, 77);
            let plan = Fft3::new(n1, n2, n3);
            let mut work = data.clone();
            plan.forward(&mut work);
            plan.inverse(&mut work);
            let err = work
                .iter()
                .zip(&data)
                .map(|(a, b)| (*a - *b).abs())
                .fold(0.0_f64, f64::max);
            assert!(err < 1e-11, "roundtrip ({n1},{n2},{n3}) err={err}");
        }
    }

    #[test]
    fn plane_wave_lands_in_single_bin() {
        let (n1, n2, n3) = (8, 8, 8);
        let (k1, k2, k3) = (2usize, 3usize, 5usize);
        let mut data = vec![c64::ZERO; n1 * n2 * n3];
        for iz in 0..n3 {
            for iy in 0..n2 {
                for ix in 0..n1 {
                    let phase = 2.0
                        * PI
                        * ((ix * k1) as f64 / n1 as f64
                            + (iy * k2) as f64 / n2 as f64
                            + (iz * k3) as f64 / n3 as f64);
                    data[(iz * n2 + iy) * n1 + ix] = c64::cis(phase);
                }
            }
        }
        Fft3::new(n1, n2, n3).forward(&mut data);
        let total = (n1 * n2 * n3) as f64;
        for iz in 0..n3 {
            for iy in 0..n2 {
                for ix in 0..n1 {
                    let v = data[(iz * n2 + iy) * n1 + ix];
                    if (ix, iy, iz) == (k1, k2, k3) {
                        assert!((v.re - total).abs() < 1e-8);
                    } else {
                        assert!(v.abs() < 1e-8);
                    }
                }
            }
        }
    }

    #[test]
    fn linearity() {
        let (n1, n2, n3) = (6, 5, 4);
        let a = rand_field(n1 * n2 * n3, 1);
        let b = rand_field(n1 * n2 * n3, 2);
        let plan = Fft3::new(n1, n2, n3);
        let mut sum: Vec<c64> = a.iter().zip(&b).map(|(x, y)| *x + y.scale(2.0)).collect();
        plan.forward(&mut sum);
        let mut fa = a.clone();
        plan.forward(&mut fa);
        let mut fb = b.clone();
        plan.forward(&mut fb);
        for i in 0..sum.len() {
            assert!((sum[i] - (fa[i] + fb[i].scale(2.0))).abs() < 1e-9);
        }
    }
}
