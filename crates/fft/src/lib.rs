//! # ls3df-fft
//!
//! FFT substrate for the LS3DF reproduction (the role FFTW/vendor FFTs play
//! in the original Fortran code).
//!
//! * [`Fft1d`] — split radix-4/radix-2 Cooley–Tukey for power-of-two
//!   lengths, Bluestein chirp-z for everything else (the paper's grids
//!   are 40 points per cell — not a power of two);
//! * [`RealFft1d`]/[`Fft3r`] — packed r2c/c2r transforms for real fields
//!   (ρ, V): one half-length complex FFT per real line plus a Hermitian
//!   unpack, roughly halving the GENPOT/Kerker transform work;
//! * [`Fft3`] — sequential complex 3-D transforms used by the
//!   local-potential application in PEtot_F (parallelism lives one level
//!   up, over fragments and bands);
//! * [`Fft1dWorkspace`]/[`Fft3Workspace`]/[`RealFftWorkspace`]/
//!   [`Fft3rWorkspace`] — reusable scratch so the `*_with`, `*_strided`,
//!   and real-transform entry points are allocation-free;
//! * [`dft`] — O(n²) reference transforms for testing.
//!
//! Kernel selection (radix-4 vs the pre-PR-8 radix-2 arithmetic) is
//! governed by `LS3DF_KERNELS` via [`ls3df_math::kernel_policy`];
//! `*_with` constructors take the policy explicitly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dft;
mod fft3;
mod plan;
mod real;

pub use fft3::{Fft3, Fft3Workspace};
pub use plan::{Fft1d, Fft1dWorkspace};
pub use real::{Fft3r, Fft3rWorkspace, RealFft1d, RealFftWorkspace};
