//! # ls3df-fft
//!
//! FFT substrate for the LS3DF reproduction (the role FFTW/vendor FFTs play
//! in the original Fortran code).
//!
//! * [`Fft1d`] — radix-2 Cooley–Tukey for power-of-two lengths, Bluestein
//!   chirp-z for everything else (the paper's grids are 40 points per cell —
//!   not a power of two);
//! * [`Fft3`] — sequential 3-D transforms used by the GENPOT Poisson
//!   solver and the local-potential application in PEtot_F (parallelism
//!   lives one level up, over fragments and bands);
//! * [`Fft1dWorkspace`]/[`Fft3Workspace`] — reusable scratch so the
//!   `*_with` and `*_strided` entry points are allocation-free;
//! * [`dft`] — O(n²) reference transforms for testing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dft;
mod fft3;
mod plan;

pub use fft3::{Fft3, Fft3Workspace};
pub use plan::{Fft1d, Fft1dWorkspace};
