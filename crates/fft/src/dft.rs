//! Naive O(n²) discrete Fourier transform, used as the correctness
//! reference for the fast algorithms (and for very small transform sizes
//! where setup costs dominate).

use ls3df_math::c64;

/// Forward DFT: `X_k = Σ_j x_j · e^{-2πi·jk/n}` (unnormalized).
pub fn dft_forward(x: &[c64]) -> Vec<c64> {
    dft(x, -1.0)
}

/// Inverse DFT: `x_j = (1/n)·Σ_k X_k · e^{+2πi·jk/n}`.
pub fn dft_inverse(x: &[c64]) -> Vec<c64> {
    let n = x.len();
    let mut out = dft(x, 1.0);
    let inv = 1.0 / n as f64;
    for v in &mut out {
        *v = v.scale(inv);
    }
    out
}

fn dft(x: &[c64], sign: f64) -> Vec<c64> {
    let n = x.len();
    // alloc-audit: O(n²) correctness reference — never called from the
    // SCF hot path, only from tests and plan verification.
    let mut out = vec![c64::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = c64::ZERO;
        for (j, &v) in x.iter().enumerate() {
            let angle = sign * 2.0 * std::f64::consts::PI * ((j * k) % n) as f64 / n as f64;
            acc = acc.mul_add(v, c64::cis(angle));
        }
        *o = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dft_of_impulse_is_flat() {
        let mut x = vec![c64::ZERO; 8];
        x[0] = c64::ONE;
        for v in dft_forward(&x) {
            assert!((v - c64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn dft_of_constant_is_impulse() {
        let x = vec![c64::ONE; 6];
        let out = dft_forward(&x);
        assert!((out[0] - c64::real(6.0)).abs() < 1e-12);
        for v in &out[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn roundtrip() {
        let x: Vec<c64> = (0..7)
            .map(|i| c64::new(i as f64, -(i as f64) * 0.5))
            .collect();
        let back = dft_inverse(&dft_forward(&x));
        for (a, b) in x.iter().zip(&back) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }
}
