//! Real-to-complex / complex-to-real transforms.
//!
//! ρ and V are real fields, so their spectra are Hermitian:
//! `X[n−k] = conj(X[k])`. A complex FFT of a real line therefore
//! computes every output twice. [`RealFft1d`] avoids that with the
//! standard packed trick for even n: view the real line as a complex
//! line of half the length (`z[j] = x[2j] + i·x[2j+1]`), run one
//! complex FFT of size `m = n/2`, and unpack the Hermitian halves
//!
//! ```text
//! E[k] = (Z[k] + conj(Z[m−k]))/2          (DFT of the even samples)
//! O[k] = −i·(Z[k] − conj(Z[m−k]))/2       (DFT of the odd samples)
//! X[k] = E[k] + e^{−2πik/n}·O[k],  k = 0..n/2
//! ```
//!
//! keeping only the non-redundant `n/2 + 1` packed outputs (`X[0]` and
//! `X[n/2]` are real). The inverse reverses the unpacking and runs one
//! inverse complex FFT of size m — the `1/m` it carries *is* the full
//! `1/n` normalization, because the packed line has half the length.
//!
//! [`Fft3r`] lifts this to three dimensions for the x-fastest grid
//! layout: an r2c pass over the x-lines shrinks the grid to
//! `(n1/2+1) × n2 × n3` packed complex values, and the y/z passes are
//! ordinary complex strided transforms on the packed array — roughly
//! half the 3-D work of the complex path the Hartree/Kerker solvers
//! used before.
//!
//! Odd lengths (and n = 1) fall back to a full complex transform per
//! line, so every grid the complex path accepted still works; the
//! packed savings simply apply to the dominant even sizes.
//!
//! Conventions match [`Fft1d`]: `forward` unnormalized, `inverse`
//! carries the full `1/n` (and 1/N for [`Fft3r`]).

use crate::plan::{Direction, Fft1d, Fft1dWorkspace};
use ls3df_math::{c64, kernel_policy, KernelPolicy};
use ls3df_obs::{counter_add, Counter};
use std::f64::consts::PI;

/// A reusable r2c/c2r plan for real lines of a fixed length.
pub struct RealFft1d {
    n: usize,
    kind: RKind,
    /// Estimated flops per transformed real line, fixed at plan build —
    /// the *true* cost (inner complex transform + unpacking), so the
    /// `FftFlops` counter never credits the packed path with the flops
    /// a full complex line would have spent.
    line_flops: u64,
}

enum RKind {
    /// n == 1: the spectrum is the sample.
    Trivial,
    /// Even n: inner complex plan of length n/2 plus unpack twiddles
    /// `e^{−2πik/n}` for k in 0..n/4+1 (the pair loop touches k and
    /// m−k together, so only the first half is needed... stored to m/2).
    Packed { inner: Fft1d, twiddles: Vec<c64> },
    /// Odd n: full complex transform per line (no packed savings, full
    /// correctness).
    Odd { inner: Fft1d },
}

/// Scratch for one [`RealFft1d`] plan; build with
/// [`RealFft1d::workspace`] once per thread, reuse across calls.
pub struct RealFftWorkspace {
    inner_ws: Fft1dWorkspace,
    /// Line staging: length n/2 for the packed inverse, n for the odd
    /// fallback (both directions).
    buf: Vec<c64>,
}

impl RealFft1d {
    /// Builds a plan for real lines of length `n` (n ≥ 1) under the
    /// process-wide kernel policy.
    pub fn new(n: usize) -> Self {
        Self::new_with(n, kernel_policy())
    }

    /// [`RealFft1d::new`] with an explicit [`KernelPolicy`] (the policy
    /// selects the *inner* complex kernel; the packing itself is the
    /// same either way).
    pub fn new_with(n: usize, policy: KernelPolicy) -> Self {
        assert!(n >= 1, "RealFft1d::new: length must be ≥ 1");
        let kind = if n == 1 {
            RKind::Trivial
        } else if n.is_multiple_of(2) {
            let m = n / 2;
            let twiddles: Vec<c64> = (0..=m / 2)
                .map(|k| c64::cis(-2.0 * PI * k as f64 / n as f64))
                .collect();
            RKind::Packed {
                inner: Fft1d::new_with(m, policy),
                twiddles,
            }
        } else {
            RKind::Odd {
                inner: Fft1d::new_with(n, policy),
            }
        };
        let line_flops = match &kind {
            RKind::Trivial => 0,
            // Unpack: ~18 real flops per (k, m−k) pair, m/2 pairs → 9m.
            RKind::Packed { inner, .. } => inner.line_flops() + 9 * (n as u64 / 2),
            // Promote + transform + extract: the complex line plus 2n
            // moves (counted as zero flops — honesty over generosity).
            RKind::Odd { inner } => inner.line_flops(),
        };
        RealFft1d {
            n,
            kind,
            line_flops,
        }
    }

    /// Real line length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false (a plan has length ≥ 1).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Packed spectrum length: `n/2 + 1`.
    #[inline]
    pub fn packed_len(&self) -> usize {
        self.n / 2 + 1
    }

    /// Builds a scratch workspace sized for this plan.
    pub fn workspace(&self) -> RealFftWorkspace {
        let (inner_ws, buf_len) = match &self.kind {
            RKind::Trivial => (Fft1d::new(1).workspace(), 0),
            RKind::Packed { inner, .. } => (inner.workspace(), inner.len()),
            RKind::Odd { inner } => (inner.workspace(), inner.len()),
        };
        RealFftWorkspace {
            inner_ws,
            // alloc-audit: workspace construction is the one-time setup
            // that makes every later forward/inverse call heap-free.
            buf: vec![c64::ZERO; buf_len],
        }
    }

    #[inline(always)]
    fn record_lines(&self, lines: u64) {
        if ls3df_obs::ENABLED {
            counter_add(Counter::FftLinesReal, lines);
            counter_add(Counter::FftFlops, lines * self.line_flops);
        }
    }

    /// Forward r2c transform (unnormalized): `input` holds n real
    /// samples, `out` receives the `n/2 + 1` packed spectrum values.
    /// Heap-free given a matching workspace.
    pub fn forward(&self, input: &[f64], out: &mut [c64], ws: &mut RealFftWorkspace) {
        assert_eq!(input.len(), self.n, "RealFft1d::forward: input length");
        assert_eq!(
            out.len(),
            self.packed_len(),
            "RealFft1d::forward: output length"
        );
        self.record_lines(1);
        match &self.kind {
            RKind::Trivial => out[0] = c64::real(input[0]),
            RKind::Packed { inner, twiddles } => {
                let m = self.n / 2;
                // Pack x into z[j] = x[2j] + i·x[2j+1] in out[0..m] and
                // transform in place (out has the extra slot for X[m]).
                for j in 0..m {
                    out[j] = c64::new(input[2 * j], input[2 * j + 1]);
                }
                inner.run_uncounted(&mut out[..m], Direction::Forward, &mut ws.inner_ws);
                unpack_forward(out, m, twiddles);
            }
            RKind::Odd { inner } => {
                for (b, &x) in ws.buf.iter_mut().zip(input) {
                    *b = c64::real(x);
                }
                inner.run_uncounted(&mut ws.buf, Direction::Forward, &mut ws.inner_ws);
                out.copy_from_slice(&ws.buf[..self.packed_len()]);
            }
        }
    }

    /// Inverse c2r transform (includes the full `1/n`): `spec` holds the
    /// `n/2 + 1` packed spectrum, `out` receives n real samples. The
    /// redundant conjugate half is implied, never read. Heap-free given
    /// a matching workspace.
    pub fn inverse(&self, spec: &[c64], out: &mut [f64], ws: &mut RealFftWorkspace) {
        assert_eq!(
            spec.len(),
            self.packed_len(),
            "RealFft1d::inverse: spectrum length"
        );
        assert_eq!(out.len(), self.n, "RealFft1d::inverse: output length");
        self.record_lines(1);
        match &self.kind {
            RKind::Trivial => out[0] = spec[0].re,
            RKind::Packed { inner, twiddles } => {
                let m = self.n / 2;
                pack_inverse(spec, &mut ws.buf, m, twiddles);
                // The inner inverse's 1/m is exactly the 1/n the real
                // line needs (each packed sample carries two reals).
                inner.run_uncounted(&mut ws.buf, Direction::Inverse, &mut ws.inner_ws);
                for j in 0..m {
                    out[2 * j] = ws.buf[j].re;
                    out[2 * j + 1] = ws.buf[j].im;
                }
            }
            RKind::Odd { inner } => {
                let p = self.packed_len();
                ws.buf[..p].copy_from_slice(spec);
                // Mirror the implied Hermitian half.
                for k in 1..p {
                    ws.buf[self.n - k] = spec[k].conj();
                }
                inner.run_uncounted(&mut ws.buf, Direction::Inverse, &mut ws.inner_ws);
                for (o, b) in out.iter_mut().zip(&ws.buf) {
                    *o = b.re;
                }
            }
        }
    }
}

/// Hermitian unpack after the half-size complex FFT: turns `Z[0..m]`
/// (stored in `data[0..m]`) into the packed real spectrum
/// `X[0..m]` in place, filling the extra `data[m]` slot.
fn unpack_forward(data: &mut [c64], m: usize, twiddles: &[c64]) {
    let z0 = data[0];
    data[0] = c64::real(z0.re + z0.im);
    data[m] = c64::real(z0.re - z0.im);
    for k in 1..m.div_ceil(2) {
        let kk = m - k;
        let zk = data[k];
        let zc = data[kk].conj();
        let e = (zk + zc).scale(0.5);
        let d = zk - zc;
        // o = −i·d/2 = (im, −re)/2
        let o = c64::new(d.im, -d.re).scale(0.5);
        let wo = twiddles[k] * o;
        data[k] = e + wo;
        // X[m−k] = conj(E[k] − w_k·O[k]) (w_{m−k} = −conj(w_k) and
        // E, O are conjugated at the mirrored index).
        data[kk] = (e - wo).conj();
    }
    if m >= 2 && m.is_multiple_of(2) {
        // Middle bin: w = −i exactly, X[m/2] = conj(Z[m/2]).
        data[m / 2] = data[m / 2].conj();
    }
}

/// Inverse of [`unpack_forward`]: rebuilds the half-size complex
/// spectrum `Z[0..m]` in `buf` from the packed real spectrum
/// `spec[0..m]` (the conjugate-symmetric half stays implicit).
fn pack_inverse(spec: &[c64], buf: &mut [c64], m: usize, twiddles: &[c64]) {
    let x0 = spec[0].re;
    let xm = spec[m].re;
    buf[0] = c64::new(x0 + xm, x0 - xm).scale(0.5);
    for k in 1..m.div_ceil(2) {
        let kk = m - k;
        let xk = spec[k];
        let xc = spec[kk].conj();
        let e = (xk + xc).scale(0.5);
        let wo = (xk - xc).scale(0.5);
        let o = twiddles[k].conj() * wo;
        // Z[k] = E[k] + i·O[k]; Z[m−k] = conj(E[k]) + i·conj(O[k]).
        buf[k] = e + c64::new(-o.im, o.re);
        let ec = e.conj();
        let oc = o.conj();
        buf[kk] = ec + c64::new(-oc.im, oc.re);
    }
    if m >= 2 && m.is_multiple_of(2) {
        buf[m / 2] = spec[m / 2].conj();
    }
}

/// Packed 3-D r2c/c2r transform for real fields on an x-fastest grid.
///
/// Forward: one r2c pass over the `n2·n3` x-lines packs the grid to
/// `h1 = n1/2 + 1` complex values per line, then the y and z passes are
/// plain complex strided transforms on the packed array (the same
/// batched kernels [`crate::Fft3`] uses, on ~half the lines). The
/// packed layout is x-fastest: `idx = (iz·n2 + iy)·h1 + ix`.
pub struct Fft3r {
    dims: [usize; 3],
    plan_x: RealFft1d,
    plan_y: Fft1d,
    plan_z: Fft1d,
    h1: usize,
}

/// Reusable scratch for one [`Fft3r`]; build with [`Fft3r::workspace`].
pub struct Fft3rWorkspace {
    wx: RealFftWorkspace,
    wy: Fft1dWorkspace,
    wz: Fft1dWorkspace,
}

impl Fft3r {
    /// Builds packed 3-D plans for a real `dims` grid under the
    /// process-wide kernel policy.
    pub fn new(dims: [usize; 3]) -> Self {
        Self::new_with(dims, kernel_policy())
    }

    /// [`Fft3r::new`] with an explicit [`KernelPolicy`].
    pub fn new_with(dims: [usize; 3], policy: KernelPolicy) -> Self {
        let plan_x = RealFft1d::new_with(dims[0], policy);
        let h1 = plan_x.packed_len();
        Fft3r {
            dims,
            plan_x,
            plan_y: Fft1d::new_with(dims[1], policy),
            plan_z: Fft1d::new_with(dims[2], policy),
            h1,
        }
    }

    /// Grid dimensions of the real field.
    #[inline]
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Real-grid length `n1·n2·n3`.
    #[inline]
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Always false.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Packed x-extent `n1/2 + 1`.
    #[inline]
    pub fn packed_nx(&self) -> usize {
        self.h1
    }

    /// Packed spectrum length `(n1/2 + 1)·n2·n3`.
    #[inline]
    pub fn packed_len(&self) -> usize {
        self.h1 * self.dims[1] * self.dims[2]
    }

    /// Builds a scratch workspace sized for these plans.
    pub fn workspace(&self) -> Fft3rWorkspace {
        Fft3rWorkspace {
            wx: self.plan_x.workspace(),
            wy: self.plan_y.workspace(),
            wz: self.plan_z.workspace(),
        }
    }

    /// Forward r2c transform (unnormalized): real `input` of the full
    /// grid length into the packed spectrum `out` of [`Fft3r::packed_len`].
    /// Heap-free given a matching workspace.
    pub fn forward(&self, input: &[f64], out: &mut [c64], ws: &mut Fft3rWorkspace) {
        let [n1, n2, n3] = self.dims;
        let h1 = self.h1;
        assert_eq!(input.len(), n1 * n2 * n3, "Fft3r::forward: input length");
        assert_eq!(
            out.len(),
            self.packed_len(),
            "Fft3r::forward: output length"
        );
        counter_add(Counter::Fft3Transforms, 1);
        // x pass: r2c per line, full line → packed line.
        for l in 0..n2 * n3 {
            self.plan_x.forward(
                &input[l * n1..(l + 1) * n1],
                &mut out[l * h1..(l + 1) * h1],
                &mut ws.wx,
            );
        }
        // y pass: per z-plane, h1 interleaved lines of length n2.
        let plane = h1 * n2;
        for iz in 0..n3 {
            self.plan_y
                .forward_strided(&mut out[iz * plane..(iz + 1) * plane], h1, h1, &mut ws.wy);
        }
        // z pass: the whole packed grid is one strided batch.
        self.plan_z.forward_strided(out, plane, plane, &mut ws.wz);
    }

    /// Inverse c2r transform (includes the full `1/(n1·n2·n3)`): packed
    /// `spec` into the real grid `out`. `spec` is consumed as scratch
    /// (the y/z passes run in place on it). Heap-free given a matching
    /// workspace.
    pub fn inverse(&self, spec: &mut [c64], out: &mut [f64], ws: &mut Fft3rWorkspace) {
        let [n1, n2, n3] = self.dims;
        let h1 = self.h1;
        assert_eq!(
            spec.len(),
            self.packed_len(),
            "Fft3r::inverse: spectrum length"
        );
        assert_eq!(out.len(), n1 * n2 * n3, "Fft3r::inverse: output length");
        counter_add(Counter::Fft3Transforms, 1);
        let plane = h1 * n2;
        self.plan_z.inverse_strided(spec, plane, plane, &mut ws.wz);
        for iz in 0..n3 {
            self.plan_y.inverse_strided(
                &mut spec[iz * plane..(iz + 1) * plane],
                h1,
                h1,
                &mut ws.wy,
            );
        }
        for l in 0..n2 * n3 {
            self.plan_x.inverse(
                &spec[l * h1..(l + 1) * h1],
                &mut out[l * n1..(l + 1) * n1],
                &mut ws.wx,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft_forward;

    fn rand_real(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        (0..n).map(|_| next()).collect()
    }

    fn packed_reference(x: &[f64]) -> Vec<c64> {
        let z: Vec<c64> = x.iter().map(|&v| c64::real(v)).collect();
        let spec = dft_forward(&z);
        spec[..x.len() / 2 + 1].to_vec()
    }

    #[test]
    fn r2c_matches_complex_reference_all_parities() {
        for &n in &[1usize, 2, 3, 4, 5, 6, 8, 10, 12, 15, 16, 40, 64, 81] {
            for policy in [KernelPolicy::Fast, KernelPolicy::Reference] {
                let x = rand_real(n, 11 + n as u64);
                let plan = RealFft1d::new_with(n, policy);
                let mut ws = plan.workspace();
                let mut got = vec![c64::ZERO; plan.packed_len()];
                plan.forward(&x, &mut got, &mut ws);
                let expect = packed_reference(&x);
                for (k, (g, e)) in got.iter().zip(&expect).enumerate() {
                    assert!(
                        (*g - *e).abs() < 1e-10 * n as f64,
                        "n={n} {policy:?} bin {k}: {g:?} vs {e:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn c2r_roundtrips() {
        for &n in &[1usize, 2, 4, 6, 8, 14, 16, 40, 64, 81, 128] {
            for policy in [KernelPolicy::Fast, KernelPolicy::Reference] {
                let x = rand_real(n, 1000 + n as u64);
                let plan = RealFft1d::new_with(n, policy);
                let mut ws = plan.workspace();
                let mut spec = vec![c64::ZERO; plan.packed_len()];
                plan.forward(&x, &mut spec, &mut ws);
                let mut back = vec![0.0; n];
                plan.inverse(&spec, &mut back, &mut ws);
                for (j, (a, b)) in x.iter().zip(&back).enumerate() {
                    assert!(
                        (a - b).abs() < 1e-11 * n as f64,
                        "n={n} {policy:?} sample {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn edge_bins_are_real() {
        for &n in &[8usize, 40, 64] {
            let x = rand_real(n, n as u64);
            let plan = RealFft1d::new(n);
            let mut ws = plan.workspace();
            let mut spec = vec![c64::ZERO; plan.packed_len()];
            plan.forward(&x, &mut spec, &mut ws);
            assert_eq!(spec[0].im, 0.0, "DC bin must be exactly real");
            assert_eq!(spec[n / 2].im, 0.0, "Nyquist bin must be exactly real");
        }
    }

    #[test]
    fn fft3r_roundtrips_and_matches_complex() {
        use crate::Fft3;
        for dims in [[4usize, 4, 4], [8, 6, 4], [5, 4, 3], [1, 4, 4], [40, 2, 2]] {
            let n = dims[0] * dims[1] * dims[2];
            let x = rand_real(n, n as u64);
            let plan = Fft3r::new(dims);
            let mut ws = plan.workspace();
            let mut spec = vec![c64::ZERO; plan.packed_len()];
            plan.forward(&x, &mut spec, &mut ws);

            // Complex reference over the same grid.
            let cplan = Fft3::new(dims[0], dims[1], dims[2]);
            let mut cws = cplan.workspace();
            let mut cdata: Vec<c64> = x.iter().map(|&v| c64::real(v)).collect();
            cplan.forward_with(&mut cdata, &mut cws);
            let h1 = plan.packed_nx();
            for iz in 0..dims[2] {
                for iy in 0..dims[1] {
                    for ix in 0..h1 {
                        let p = spec[(iz * dims[1] + iy) * h1 + ix];
                        let c = cdata[(iz * dims[1] + iy) * dims[0] + ix];
                        assert!(
                            (p - c).abs() < 1e-9 * n as f64,
                            "dims={dims:?} ({ix},{iy},{iz}): {p:?} vs {c:?}"
                        );
                    }
                }
            }

            let mut back = vec![0.0; n];
            plan.inverse(&mut spec, &mut back, &mut ws);
            for (a, b) in x.iter().zip(&back) {
                assert!((a - b).abs() < 1e-10 * n as f64, "roundtrip {dims:?}");
            }
        }
    }
}
