//! Property-based tests for the linear-algebra substrate.

use ls3df_math::gemm::{matmul, matmul_naive, matmul_nh};
use ls3df_math::ortho::{cholesky_orthonormalize, gram_schmidt, orthonormality_residual};
use ls3df_math::vec_ops::{dotc, nrm2};
use ls3df_math::{c64, eigh, Cholesky, Matrix};
use proptest::prelude::*;

fn c64_strategy() -> impl Strategy<Value = c64> {
    (-10.0..10.0f64, -10.0..10.0f64).prop_map(|(re, im)| c64::new(re, im))
}

fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix<c64>> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(c64_strategy(), r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

fn square_strategy(max_dim: usize) -> impl Strategy<Value = Matrix<c64>> {
    (1..=max_dim).prop_flat_map(|n| {
        prop::collection::vec(c64_strategy(), n * n)
            .prop_map(move |data| Matrix::from_vec(n, n, data))
    })
}

proptest! {
    #[test]
    fn dotc_cauchy_schwarz(x in prop::collection::vec(c64_strategy(), 1..64)) {
        let y: Vec<c64> = x.iter().rev().copied().collect();
        let lhs = dotc(&x, &y).abs();
        let rhs = nrm2(&x) * nrm2(&y);
        prop_assert!(lhs <= rhs * (1.0 + 1e-12) + 1e-12);
    }

    #[test]
    fn gemm_blocked_matches_naive(a in matrix_strategy(12), b in matrix_strategy(12)) {
        // Rebuild b with a row count compatible with a.
        let b = Matrix::from_fn(a.cols(), b.cols(), |i, j| b[(i % b.rows(), j)]);
        let fast = matmul(&a, &b);
        let slow = matmul_naive(&a, &b);
        for i in 0..fast.rows() {
            for j in 0..fast.cols() {
                prop_assert!((fast[(i,j)] - slow[(i,j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn gemm_is_linear_in_first_argument(
        a in matrix_strategy(8),
        s in -5.0..5.0f64,
    ) {
        let b = Matrix::from_fn(a.cols(), 5, |i, j| c64::new((i + j) as f64 * 0.1, -(i as f64) * 0.05));
        let mut a_scaled = a.clone();
        a_scaled.scale_real(s);
        let lhs = matmul(&a_scaled, &b);
        let mut rhs = matmul(&a, &b);
        rhs.scale_real(s);
        for i in 0..lhs.rows() {
            for j in 0..lhs.cols() {
                prop_assert!((lhs[(i,j)] - rhs[(i,j)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn eigh_trace_and_ordering(m in square_strategy(8)) {
        // Symmetrize to get a Hermitian input.
        let n = m.rows();
        let h = Matrix::from_fn(n, n, |i, j| (m[(i, j)] + m[(j, i)].conj()).scale(0.5));
        let e = eigh(&h);
        let trace_sum: f64 = e.values.iter().sum();
        prop_assert!((trace_sum - h.trace().re).abs() < 1e-8 * (1.0 + h.fro_norm()));
        for w in e.values.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-10);
        }
    }

    #[test]
    fn cholesky_roundtrip(m in square_strategy(8)) {
        // A = M·Mᴴ + n·I is Hermitian positive definite.
        let n = m.rows();
        let mut a = matmul_nh(&m, &m);
        for i in 0..n {
            a[(i, i)] += c64::real(10.0 * n as f64 + 1.0);
        }
        let ch = Cholesky::new(&a).unwrap();
        let recon = matmul_nh(ch.l(), ch.l());
        for i in 0..n {
            for j in 0..n {
                prop_assert!((recon[(i,j)] - a[(i,j)]).abs() < 1e-7 * (1.0 + a.fro_norm()));
            }
        }
    }

    #[test]
    fn orthonormalization_methods_agree_on_residual(
        data in prop::collection::vec(c64_strategy(), 4 * 32)
    ) {
        let mut a = Matrix::from_vec(4, 32, data);
        // Make rows clearly independent by adding distinct unit spikes.
        for i in 0..4 {
            a[(i, i)] += c64::real(50.0);
        }
        let mut b = a.clone();
        gram_schmidt(&mut a, 0.25).unwrap();
        cholesky_orthonormalize(&mut b, 0.25).unwrap();
        prop_assert!(orthonormality_residual(&a, 0.25) < 1e-10);
        prop_assert!(orthonormality_residual(&b, 0.25) < 1e-10);
    }
}
