//! Unifying trait for the two element types the solver uses: `f64` and
//! [`c64`](crate::c64). Lets the matrix container, GEMM and factorization
//! kernels be written once.

use crate::c64;
use std::fmt::Debug;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Field element usable in dense linear algebra kernels.
pub trait Scalar:
    Copy
    + Debug
    + Default
    + PartialEq
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Complex conjugate (identity for reals).
    fn conj(self) -> Self;
    /// Modulus.
    fn abs(self) -> f64;
    /// Squared modulus.
    fn norm_sqr(self) -> f64;
    /// Real part.
    fn re(self) -> f64;
    /// Embeds a real number.
    fn from_re(x: f64) -> Self;
    /// Scales by a real factor.
    fn scale(self, s: f64) -> Self;
    /// `self + a * b` (fused accumulate used by inner kernels).
    fn acc(self, a: Self, b: Self) -> Self;
    /// `self + conj(a) * b` (conjugated accumulate for inner products).
    fn acc_conj(self, a: Self, b: Self) -> Self;
    /// Principal square root (element must be non-negative if real).
    fn sqrt(self) -> Self;
}

impl Scalar for f64 {
    const ZERO: f64 = 0.0;
    const ONE: f64 = 1.0;

    #[inline(always)]
    fn conj(self) -> f64 {
        self
    }
    #[inline(always)]
    fn abs(self) -> f64 {
        f64::abs(self)
    }
    #[inline(always)]
    fn norm_sqr(self) -> f64 {
        self * self
    }
    #[inline(always)]
    fn re(self) -> f64 {
        self
    }
    #[inline(always)]
    fn from_re(x: f64) -> f64 {
        x
    }
    #[inline(always)]
    fn scale(self, s: f64) -> f64 {
        self * s
    }
    #[inline(always)]
    fn acc(self, a: f64, b: f64) -> f64 {
        self + a * b
    }
    #[inline(always)]
    fn acc_conj(self, a: f64, b: f64) -> f64 {
        self + a * b
    }
    #[inline(always)]
    fn sqrt(self) -> f64 {
        f64::sqrt(self)
    }
}

impl Scalar for c64 {
    const ZERO: c64 = c64::ZERO;
    const ONE: c64 = c64::ONE;

    #[inline(always)]
    fn conj(self) -> c64 {
        c64::conj(self)
    }
    #[inline(always)]
    fn abs(self) -> f64 {
        c64::abs(self)
    }
    #[inline(always)]
    fn norm_sqr(self) -> f64 {
        c64::norm_sqr(self)
    }
    #[inline(always)]
    fn re(self) -> f64 {
        self.re
    }
    #[inline(always)]
    fn from_re(x: f64) -> c64 {
        c64::real(x)
    }
    #[inline(always)]
    fn scale(self, s: f64) -> c64 {
        c64::scale(self, s)
    }
    #[inline(always)]
    fn acc(self, a: c64, b: c64) -> c64 {
        self.mul_add(a, b)
    }
    #[inline(always)]
    fn acc_conj(self, a: c64, b: c64) -> c64 {
        self.mul_add(a.conj(), b)
    }
    #[inline(always)]
    fn sqrt(self) -> c64 {
        c64::sqrt(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_scalar_semantics() {
        assert_eq!(<f64 as Scalar>::conj(-2.0), -2.0);
        assert_eq!(<f64 as Scalar>::norm_sqr(-3.0), 9.0);
        assert_eq!(<f64 as Scalar>::acc(1.0, 2.0, 3.0), 7.0);
        assert_eq!(<f64 as Scalar>::acc_conj(1.0, 2.0, 3.0), 7.0);
    }

    #[test]
    fn complex_scalar_semantics() {
        let a = c64::new(1.0, 2.0);
        let b = c64::new(3.0, -1.0);
        let acc = <c64 as Scalar>::acc_conj(c64::ZERO, a, b);
        // conj(1+2i)*(3-i) = (1-2i)(3-i) = 3 - i - 6i + 2i^2 = 1 - 7i
        assert!((acc - c64::new(1.0, -7.0)).abs() < 1e-15);
    }
}
