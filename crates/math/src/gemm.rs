//! GEMM kernels — the computational core of the all-band optimization.
//!
//! Optimization #1 in the paper replaced BLAS-2 band-by-band operations with
//! DGEMM calls on `~3000 × 200` matrices, lifting PEtot from 15% to 56% of
//! peak. We reproduce the same structure in pure Rust with three kernels of
//! increasing sophistication (naive / cache-blocked / blocked+rayon), which
//! the `gemm_ablation` bench compares directly.

use crate::microkernel;
use crate::policy::{kernel_policy, KernelPolicy};
use crate::{Matrix, Scalar};
use rayon::prelude::*;

/// How an operand participates in a product.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Use the matrix as stored.
    None,
    /// Use the transpose.
    Trans,
    /// Use the conjugate transpose.
    ConjTrans,
}

impl Op {
    fn dims(self, m: &Matrix<impl Scalar>) -> (usize, usize) {
        match self {
            Op::None => (m.rows(), m.cols()),
            _ => (m.cols(), m.rows()),
        }
    }
}

/// Cache-block edge for the blocked kernels (elements per tile side).
const BLOCK: usize = 64;
/// Below this many result elements the parallel kernel stays sequential.
const PAR_THRESHOLD: usize = 64 * 64;
/// Rows of `C` per parallel task in the blocked kernel. A fixed granule —
/// never derived from `current_num_threads()` — so the *partition* of the
/// output, not just the result, is identical at every `LS3DF_THREADS`.
const ROWS_PER_TASK: usize = 16;

/// General matrix-matrix product `C ← α·op(A)·op(B) + β·C` under the
/// process-wide [`kernel_policy`].
///
/// Dispatches to the blocked, rayon-parallel kernel (and, under
/// [`KernelPolicy::Fast`], to the packed register-tile microkernel for
/// BLAS-3-sized shapes). Panics on shape mismatch.
pub fn gemm<S: Scalar>(
    alpha: S,
    a: &Matrix<S>,
    op_a: Op,
    b: &Matrix<S>,
    op_b: Op,
    beta: S,
    c: &mut Matrix<S>,
) {
    gemm_with(kernel_policy(), alpha, a, op_a, b, op_b, beta, c);
}

/// [`gemm`] with an explicit [`KernelPolicy`] — lets tests and benches
/// compare both arithmetic variants inside one process.
#[allow(clippy::too_many_arguments)]
pub fn gemm_with<S: Scalar>(
    policy: KernelPolicy,
    alpha: S,
    a: &Matrix<S>,
    op_a: Op,
    b: &Matrix<S>,
    op_b: Op,
    beta: S,
    c: &mut Matrix<S>,
) {
    let (m, ka) = op_a.dims(a);
    let (kb, n) = op_b.dims(b);
    assert_eq!(ka, kb, "gemm: inner dimension mismatch ({ka} vs {kb})");
    assert_eq!(c.shape(), (m, n), "gemm: output shape mismatch");

    // Fast contiguous paths cover every combination the solver uses.
    match (op_a, op_b) {
        (Op::None, Op::None) => gemm_nn(policy, alpha, a, b, beta, c),
        (Op::None, Op::ConjTrans) => gemm_nh(policy, alpha, a, b, beta, c),
        (Op::ConjTrans, Op::None) => {
            // At microkernel sizes the packed-panel kernel beats the
            // streaming Hᴺ loop by enough to pay for materializing Aᴴ
            // (one `k·m` copy vs `m·n·k` flops).
            if policy == KernelPolicy::Fast && microkernel::micro_worthwhile(m, ka, n) {
                let am = a.hermitian();
                microkernel::gemm_nn_micro(alpha, &am, b, beta, c);
            } else {
                gemm_hn(alpha, a, b, beta, c);
            }
        }
        (Op::None, Op::Trans) => {
            let bt = b.transpose();
            gemm_nn(policy, alpha, a, &bt, beta, c)
        }
        (Op::Trans, Op::None) => {
            let at = a.transpose();
            gemm_nn(policy, alpha, &at, b, beta, c)
        }
        _ => {
            let am = materialize(a, op_a);
            let bm = materialize(b, op_b);
            gemm_nn(policy, alpha, &am, &bm, beta, c)
        }
    }
}

fn materialize<S: Scalar>(m: &Matrix<S>, op: Op) -> Matrix<S> {
    match op {
        Op::None => m.clone(),
        Op::Trans => m.transpose(),
        Op::ConjTrans => m.hermitian(),
    }
}

/// `C = A·B` (allocating convenience wrapper).
pub fn matmul<S: Scalar>(a: &Matrix<S>, b: &Matrix<S>) -> Matrix<S> {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm(S::ONE, a, Op::None, b, Op::None, S::ZERO, &mut c);
    c
}

/// `C = A·Bᴴ` — the overlap-matrix shape `S = Ψ·Ψᴴ` used by the all-band
/// orthogonalization (paper optimization #1).
pub fn matmul_nh<S: Scalar>(a: &Matrix<S>, b: &Matrix<S>) -> Matrix<S> {
    let mut c = Matrix::zeros(a.rows(), b.rows());
    gemm(S::ONE, a, Op::None, b, Op::ConjTrans, S::ZERO, &mut c);
    c
}

/// `C = Aᴴ·B`.
pub fn matmul_hn<S: Scalar>(a: &Matrix<S>, b: &Matrix<S>) -> Matrix<S> {
    let mut c = Matrix::zeros(a.cols(), b.cols());
    gemm(S::ONE, a, Op::ConjTrans, b, Op::None, S::ZERO, &mut c);
    c
}

#[inline]
pub(crate) fn scale_or_zero<S: Scalar>(beta: S, row: &mut [S]) {
    if beta == S::ZERO {
        row.fill(S::ZERO);
    } else if beta != S::ONE {
        for v in row {
            *v *= beta;
        }
    }
}

/// Row-parallel blocked `C ← α·A·B + β·C`; BLAS-3-sized shapes route to
/// the packed microkernel under [`KernelPolicy::Fast`].
fn gemm_nn<S: Scalar>(
    policy: KernelPolicy,
    alpha: S,
    a: &Matrix<S>,
    b: &Matrix<S>,
    beta: S,
    c: &mut Matrix<S>,
) {
    let (m, k) = a.shape();
    let n = b.cols();
    if policy == KernelPolicy::Fast && microkernel::micro_worthwhile(m, k, n) {
        microkernel::gemm_nn_micro(alpha, a, b, beta, c);
        return;
    }
    let run_rows = |c_rows: &mut [S], i0: usize, i1: usize| {
        for i in i0..i1 {
            scale_or_zero(beta, &mut c_rows[(i - i0) * n..(i - i0 + 1) * n]);
        }
        for kk in (0..k).step_by(BLOCK) {
            let k_hi = (kk + BLOCK).min(k);
            for i in i0..i1 {
                let a_row = a.row(i);
                let c_row = &mut c_rows[(i - i0) * n..(i - i0 + 1) * n];
                for p in kk..k_hi {
                    let aip = alpha * a_row[p];
                    if aip == S::ZERO {
                        continue;
                    }
                    let b_row = b.row(p);
                    for j in 0..n {
                        c_row[j] = c_row[j].acc(aip, b_row[j]);
                    }
                }
            }
        }
    };
    if m * n >= PAR_THRESHOLD && m > 1 {
        // reduce-audit: rows of C are grouped into fixed ROWS_PER_TASK
        // granules (thread-count-independent partition); each output row
        // i is written by exactly one closure as the same sequential
        // k-loop in the same order regardless of which worker runs it,
        // so the result is bit-identical across thread counts and
        // schedules.
        c.as_mut_slice()
            .par_chunks_mut(ROWS_PER_TASK * n)
            .enumerate()
            .for_each(|(ci, rows)| {
                let i0 = ci * ROWS_PER_TASK;
                let i1 = (i0 + rows.len() / n).min(m);
                run_rows(rows, i0, i1);
            });
    } else {
        let c_slice = c.as_mut_slice();
        run_rows(c_slice, 0, m);
    }
}

/// Row-parallel `C ← α·A·Bᴴ + β·C`: every inner product runs over two
/// contiguous rows, ideal for the `(n_bands × n_pw)·(n_bands × n_pw)ᴴ`
/// overlap shape. Under [`KernelPolicy::Fast`] each inner product uses
/// the lane-split accumulator (breaks the serial FMA chain).
fn gemm_nh<S: Scalar>(
    policy: KernelPolicy,
    alpha: S,
    a: &Matrix<S>,
    b: &Matrix<S>,
    beta: S,
    c: &mut Matrix<S>,
) {
    let m = a.rows();
    let n = b.rows();
    let k = a.cols();
    assert_eq!(b.cols(), k);
    let body = |i: usize, c_row: &mut [S]| {
        scale_or_zero(beta, c_row);
        let a_row = a.row(i);
        for j in 0..n {
            let b_row = b.row(j);
            let acc = match policy {
                KernelPolicy::Fast => microkernel::dot_conj_wide(a_row, b_row),
                KernelPolicy::Reference => {
                    let mut acc = S::ZERO;
                    for p in 0..k {
                        acc = acc.acc(a_row[p], b_row[p].conj());
                    }
                    acc
                }
            };
            c_row[j] = c_row[j].acc(alpha, acc);
        }
    };
    if m * n * k >= PAR_THRESHOLD && m > 1 {
        c.as_mut_slice()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, row)| body(i, row));
    } else {
        for i in 0..m {
            body(i, c.row_mut(i));
        }
    }
}

/// `C ← α·Aᴴ·B + β·C` (used for subspace rotations `Uᴴ·Ψ` and projector
/// applications); streams rows of both operands.
fn gemm_hn<S: Scalar>(alpha: S, a: &Matrix<S>, b: &Matrix<S>, beta: S, c: &mut Matrix<S>) {
    let k = a.rows();
    let m = a.cols();
    let n = b.cols();
    assert_eq!(b.rows(), k);
    for i in 0..m {
        scale_or_zero(beta, c.row_mut(i));
    }
    // Sequential over k (accumulation), contiguous over j.
    if m * n >= PAR_THRESHOLD {
        // Parallelize over output rows by precomputing per-row dot products.
        let c_data: Vec<S> = (0..m)
            .into_par_iter()
            .flat_map_iter(|i| {
                let mut row = vec![S::ZERO; n];
                for p in 0..k {
                    let api = alpha * a[(p, i)].conj();
                    if api == S::ZERO {
                        continue;
                    }
                    let b_row = b.row(p);
                    for j in 0..n {
                        row[j] = row[j].acc(api, b_row[j]);
                    }
                }
                row
            })
            .collect();
        for i in 0..m {
            let c_row = c.row_mut(i);
            for j in 0..n {
                c_row[j] += c_data[i * n + j];
            }
        }
    } else {
        for p in 0..k {
            let b_row = b.row(p);
            for i in 0..m {
                let api = alpha * a[(p, i)].conj();
                if api == S::ZERO {
                    continue;
                }
                let c_row = c.row_mut(i);
                for j in 0..n {
                    c_row[j] = c_row[j].acc(api, b_row[j]);
                }
            }
        }
    }
}

/// Specialized Hermitian Gram kernel: `S = w·Ψ·Ψᴴ` computed on the lower
/// triangle only and mirrored — half the flops of the general
/// [`matmul_nh`] for the overlap-matrix shape.
///
/// This is an instance of the paper's §IV *future work* item #2
/// ("replacing DGEMM with a custom routine specialized for PEtot_F"): the
/// overlap matrix is Hermitian by construction, so the general product
/// wastes a factor of two.
pub fn overlap_hermitian<S: Scalar>(psi: &Matrix<S>, weight: f64) -> Matrix<S> {
    overlap_hermitian_with(kernel_policy(), psi, weight)
}

/// [`overlap_hermitian`] with an explicit [`KernelPolicy`].
pub fn overlap_hermitian_with<S: Scalar>(
    policy: KernelPolicy,
    psi: &Matrix<S>,
    weight: f64,
) -> Matrix<S> {
    let nb = psi.rows();
    let k = psi.cols();
    let mut s = Matrix::zeros(nb, nb);
    let body = |i: usize, row: &mut [S]| {
        let a_row = psi.row(i);
        for j in 0..=i {
            let b_row = psi.row(j);
            let acc = match policy {
                KernelPolicy::Fast => microkernel::dot_conj_wide(a_row, b_row),
                KernelPolicy::Reference => {
                    let mut acc = S::ZERO;
                    for p in 0..k {
                        acc = acc.acc(a_row[p], b_row[p].conj());
                    }
                    acc
                }
            };
            row[j] = acc.scale(weight);
        }
    };
    if nb * nb * k >= 64 * 64 * 64 && nb > 1 {
        s.as_mut_slice()
            .par_chunks_mut(nb)
            .enumerate()
            .for_each(|(i, row)| body(i, row));
    } else {
        for i in 0..nb {
            body(i, s.row_mut(i));
        }
    }
    // Mirror the strict lower triangle; force real diagonal.
    for i in 0..nb {
        s[(i, i)] = S::from_re(s[(i, i)].re());
        for j in 0..i {
            s[(j, i)] = s[(i, j)].conj();
        }
    }
    s
}

/// Reference triple-loop product, kept for correctness testing and as the
/// "unoptimized" end of the GEMM ablation.
pub fn matmul_naive<S: Scalar>(a: &Matrix<S>, b: &Matrix<S>) -> Matrix<S> {
    assert_eq!(a.cols(), b.rows());
    let mut c = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = S::ZERO;
            for p in 0..a.cols() {
                acc = acc.acc(a[(i, p)], b[(p, j)]);
            }
            c[(i, j)] = acc;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;

    fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<c64> {
        // Simple deterministic LCG so tests need no RNG dependency here.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        Matrix::from_fn(rows, cols, |_, _| c64::new(next(), next()))
    }

    fn assert_close(a: &Matrix<c64>, b: &Matrix<c64>, tol: f64) {
        assert_eq!(a.shape(), b.shape());
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                assert!(
                    (a[(i, j)] - b[(i, j)]).abs() < tol,
                    "mismatch at ({i},{j}): {:?} vs {:?}",
                    a[(i, j)],
                    b[(i, j)]
                );
            }
        }
    }

    #[test]
    fn blocked_matches_naive_nn() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 4),
            (17, 33, 9),
            (70, 70, 70),
            (128, 40, 65),
        ] {
            let a = rand_matrix(m, k, 1);
            let b = rand_matrix(k, n, 2);
            assert_close(&matmul(&a, &b), &matmul_naive(&a, &b), 1e-11);
        }
    }

    #[test]
    fn nh_matches_explicit_hermitian() {
        let a = rand_matrix(13, 37, 3);
        let b = rand_matrix(11, 37, 4);
        assert_close(&matmul_nh(&a, &b), &matmul_naive(&a, &b.hermitian()), 1e-11);
    }

    #[test]
    fn hn_matches_explicit_hermitian() {
        let a = rand_matrix(37, 13, 5);
        let b = rand_matrix(37, 11, 6);
        assert_close(&matmul_hn(&a, &b), &matmul_naive(&a.hermitian(), &b), 1e-11);
    }

    #[test]
    fn trans_ops_match() {
        let a = rand_matrix(8, 6, 7);
        let b = rand_matrix(5, 6, 8);
        let mut c = Matrix::zeros(8, 5);
        gemm(c64::ONE, &a, Op::None, &b, Op::Trans, c64::ZERO, &mut c);
        assert_close(&c, &matmul_naive(&a, &b.transpose()), 1e-11);

        let a2 = rand_matrix(6, 8, 9);
        let mut c2 = Matrix::zeros(8, 5);
        gemm(c64::ONE, &a2, Op::Trans, &b, Op::Trans, c64::ZERO, &mut c2);
        assert_close(&c2, &matmul_naive(&a2.transpose(), &b.transpose()), 1e-11);
    }

    #[test]
    fn alpha_beta_accumulation() {
        let a = rand_matrix(6, 6, 10);
        let b = rand_matrix(6, 6, 11);
        let c0 = rand_matrix(6, 6, 12);
        let mut c = c0.clone();
        let alpha = c64::new(0.5, -1.0);
        let beta = c64::new(-2.0, 0.25);
        gemm(alpha, &a, Op::None, &b, Op::None, beta, &mut c);
        let mut expect = matmul_naive(&a, &b);
        for i in 0..6 {
            for j in 0..6 {
                expect[(i, j)] = expect[(i, j)] * alpha + c0[(i, j)] * beta;
            }
        }
        assert_close(&c, &expect, 1e-11);
    }

    #[test]
    fn identity_is_neutral() {
        let a = rand_matrix(20, 20, 13);
        let id = Matrix::<c64>::identity(20);
        assert_close(&matmul(&a, &id), &a, 1e-12);
        assert_close(&matmul(&id, &a), &a, 1e-12);
    }

    #[test]
    fn large_parallel_path_is_exercised() {
        // Big enough that PAR_THRESHOLD kicks in for all three kernels.
        let a = rand_matrix(90, 120, 14);
        let b = rand_matrix(120, 90, 15);
        assert_close(&matmul(&a, &b), &matmul_naive(&a, &b), 1e-10);
        let bh = rand_matrix(90, 120, 16);
        assert_close(
            &matmul_nh(&a, &bh),
            &matmul_naive(&a, &bh.hermitian()),
            1e-10,
        );
        let ah = rand_matrix(120, 90, 17);
        assert_close(
            &matmul_hn(&ah, &b),
            &matmul_naive(&ah.hermitian(), &b),
            1e-10,
        );
    }

    #[test]
    fn overlap_hermitian_matches_general_product() {
        for &(nb, k) in &[(1usize, 7usize), (5, 33), (17, 90), (70, 80)] {
            let psi = rand_matrix(nb, k, 21);
            let w = 0.37;
            let mut expect = matmul_nh(&psi, &psi);
            expect.scale_real(w);
            let got = overlap_hermitian(&psi, w);
            for i in 0..nb {
                for j in 0..nb {
                    assert!(
                        (got[(i, j)] - expect[(i, j)]).abs() < 1e-11,
                        "({i},{j}): {:?} vs {:?}",
                        got[(i, j)],
                        expect[(i, j)]
                    );
                }
            }
            assert_eq!(
                got.hermiticity_error(),
                0.0,
                "exact Hermiticity by construction"
            );
        }
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn shape_mismatch_panics() {
        let a = rand_matrix(3, 4, 18);
        let b = rand_matrix(5, 3, 19);
        let _ = matmul(&a, &b);
    }
}
