//! Packed register-tile GEMM microkernel and lane-split inner products —
//! the `KernelPolicy::Fast` arithmetic for the BLAS-3/BLAS-1 hot paths.
//!
//! ## SIMD strategy: safe wide-lane code, not intrinsics
//!
//! `ls3df-math` is `#![forbid(unsafe_code)]`, and the audited unsafe
//! surface of the workspace is deliberately pinned to three crates
//! (`shims/rayon`, `crates/obs`, `src/`) by the `forbid-unsafe` lint
//! rule. Rather than widen that surface for `core::arch` intrinsics,
//! these kernels are written as fixed-width lane loops over `Copy`
//! scalars — shapes LLVM's autovectorizer reliably lowers to packed
//! vector FMAs at `opt-level=3`:
//!
//! * all lane counts are `const`, so every inner loop fully unrolls;
//! * accumulators live in fixed-size arrays (`[[S; NR]; MR]`), small
//!   enough to stay in registers;
//! * operands are packed into contiguous panels first, so the unrolled
//!   loops see unit-stride loads with no bounds checks after the
//!   `chunks_exact` split.
//!
//! The claim that this actually vectorizes is asserted empirically, not
//! structurally: the `fft_kernels` bench prints the microkernel's
//! speedup over the reference blocked kernel, and `EXPERIMENTS.md`
//! records the numbers (see DESIGN.md "Kernel architecture").
//!
//! ## Determinism
//!
//! Lane-split sums change *which* order terms combine in, but the order
//! is a pure function of the slice length — never of thread count or
//! schedule. The microkernel parallelizes over fixed [`MR`]-row strips
//! of `C` (a constant granule, so the partition itself is
//! thread-count-independent) and walks `k` in fixed [`KC`]-blocks in
//! ascending order within each strip. Runs at any `LS3DF_THREADS` /
//! `LS3DF_SCHEDULE` are bit-identical; only the `reference`-policy bit
//! patterns differ (gated by `tests/kernel_tol.rs`).

use crate::{Matrix, Scalar};
use rayon::prelude::*;

/// Rows of `C` per register tile (and per parallel work granule).
pub(crate) const MR: usize = 4;
/// Columns of `C` per register tile.
pub(crate) const NR: usize = 4;
/// `k`-extent packed per A-strip block: `MR·KC` scalars ≈ 16 KiB for
/// `c64`, comfortably inside L1/L2 and small enough for the stack.
pub(crate) const KC: usize = 256;
/// Lanes for the split-accumulator inner products.
const LANES: usize = 4;

/// `Σ aᵢ·conj(bᵢ)` with [`LANES`] independent accumulators (breaks the
/// serial FMA dependency chain of the naive loop). Combination order is
/// fixed: `(l0+l2)+(l1+l3)`.
#[inline]
pub(crate) fn dot_conj_wide<S: Scalar>(a: &[S], b: &[S]) -> S {
    let mut lanes = [S::ZERO; LANES];
    let (a_main, a_tail) = a.split_at(a.len() - a.len() % LANES);
    let (b_main, b_tail) = b.split_at(a_main.len());
    for (ca, cb) in a_main.chunks_exact(LANES).zip(b_main.chunks_exact(LANES)) {
        for l in 0..LANES {
            lanes[l] = lanes[l].acc(ca[l], cb[l].conj());
        }
    }
    for (l, (&x, &y)) in a_tail.iter().zip(b_tail).enumerate() {
        lanes[l] = lanes[l].acc(x, y.conj());
    }
    (lanes[0] + lanes[2]) + (lanes[1] + lanes[3])
}

/// `Σ conj(aᵢ)·bᵢ` — the [`crate::vec_ops::dotc`] convention — with the
/// same lane split and fixed combination order as [`dot_conj_wide`].
#[inline]
pub(crate) fn dotc_wide<S: Scalar>(a: &[S], b: &[S]) -> S {
    let mut lanes = [S::ZERO; LANES];
    let (a_main, a_tail) = a.split_at(a.len() - a.len() % LANES);
    let (b_main, b_tail) = b.split_at(a_main.len());
    for (ca, cb) in a_main.chunks_exact(LANES).zip(b_main.chunks_exact(LANES)) {
        for l in 0..LANES {
            lanes[l] = lanes[l].acc_conj(ca[l], cb[l]);
        }
    }
    for (l, (&x, &y)) in a_tail.iter().zip(b_tail).enumerate() {
        lanes[l] = lanes[l].acc_conj(x, y);
    }
    (lanes[0] + lanes[2]) + (lanes[1] + lanes[3])
}

/// Minimum `m·n·k` before the packed microkernel pays for its packing
/// passes and buffer allocation. Also keeps the microkernel out of the
/// small per-band GEMMs inside the zero-alloc CG hot path (`tests/
/// zero_alloc.rs` runs under the default `fast` policy): those shapes
/// are ~`4·4·n_pw ≪ 2¹⁸`.
pub(crate) const MICRO_MIN_FLOPS: usize = 1 << 18;

/// Whether [`gemm_nn_micro`] handles this shape better than the blocked
/// scalar kernel.
#[inline]
pub(crate) fn micro_worthwhile(m: usize, k: usize, n: usize) -> bool {
    m >= MR && n >= NR && m.saturating_mul(k).saturating_mul(n) >= MICRO_MIN_FLOPS
}

/// Packed-panel `C ← α·A·B + β·C` register-tile kernel.
///
/// B is packed once into [`NR`]-wide column panels (zero-padded at the
/// right edge); each parallel strip packs its own `α·A` block into a
/// stack buffer and accumulates an `MR×NR` register tile per panel.
/// Allocates the B panel buffer per call — callers below the zero-alloc
/// threshold are routed to the scalar kernel by [`micro_worthwhile`].
pub(crate) fn gemm_nn_micro<S: Scalar>(
    alpha: S,
    a: &Matrix<S>,
    b: &Matrix<S>,
    beta: S,
    c: &mut Matrix<S>,
) {
    let (_, k) = a.shape();
    let n = b.cols();
    let n_panels = n.div_ceil(NR);

    // Pack B panel-major: panel `jp` holds rows 0..k of columns
    // `jp·NR..jp·NR+NR`, contiguous in `p`, zero-padded past `n`.
    let mut b_pack = vec![S::ZERO; n_panels * k * NR];
    for p in 0..k {
        let b_row = b.row(p);
        for jp in 0..n_panels {
            let j0 = jp * NR;
            let w = (n - j0).min(NR);
            let dst = &mut b_pack[jp * k * NR + p * NR..jp * k * NR + p * NR + w];
            dst.copy_from_slice(&b_row[j0..j0 + w]);
        }
    }

    let strip = |c_rows: &mut [S], i0: usize| {
        let rows = c_rows.len() / n;
        for r in 0..rows {
            crate::gemm::scale_or_zero(beta, &mut c_rows[r * n..(r + 1) * n]);
        }
        let mut a_pack = [S::ZERO; MR * KC];
        for kk in (0..k).step_by(KC) {
            let kc = (k - kk).min(KC);
            // Pack α·A for this strip/block: column-major MR-strips so the
            // kernel reads unit-stride. Missing rows (ragged bottom strip)
            // stay zero and contribute nothing.
            a_pack[..MR * kc].fill(S::ZERO);
            for r in 0..rows {
                let a_row = &a.row(i0 + r)[kk..kk + kc];
                for (p, &v) in a_row.iter().enumerate() {
                    a_pack[p * MR + r] = alpha * v;
                }
            }
            for jp in 0..n_panels {
                let b_blk = &b_pack[jp * k * NR + kk * NR..jp * k * NR + (kk + kc) * NR];
                let mut acc = [[S::ZERO; NR]; MR];
                for (pa, pb) in a_pack[..MR * kc]
                    .chunks_exact(MR)
                    .zip(b_blk.chunks_exact(NR))
                {
                    for r in 0..MR {
                        let ar = pa[r];
                        for q in 0..NR {
                            acc[r][q] = acc[r][q].acc(ar, pb[q]);
                        }
                    }
                }
                let j0 = jp * NR;
                let w = (n - j0).min(NR);
                for r in 0..rows {
                    let c_row = &mut c_rows[r * n + j0..r * n + j0 + w];
                    for q in 0..w {
                        c_row[q] += acc[r][q];
                    }
                }
            }
        }
    };

    // Fixed MR-row granule: the partition of C into strips is a constant,
    // so work assignment (and therefore the result, since each strip is
    // written by exactly one closure in a fixed k-order) is independent
    // of thread count and schedule.
    c.as_mut_slice()
        .par_chunks_mut(MR * n)
        .enumerate()
        .for_each(|(si, rows)| strip(rows, si * MR));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;

    fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<c64> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        Matrix::from_fn(rows, cols, |_, _| c64::new(next(), next()))
    }

    #[test]
    fn micro_matches_naive_ragged_shapes() {
        // Deliberately ragged in every dimension: edge panels, partial
        // bottom strip, k not a multiple of KC-divisors.
        for &(m, k, n) in &[(4, 4, 4), (7, 13, 9), (33, 70, 21), (66, 300, 35)] {
            let a = rand_matrix(m, k, 100 + m as u64);
            let b = rand_matrix(k, n, 200 + n as u64);
            let alpha = c64::new(0.7, -0.3);
            let beta = c64::new(-1.2, 0.4);
            let c0 = rand_matrix(m, n, 300);
            let mut c = c0.clone();
            gemm_nn_micro(alpha, &a, &b, beta, &mut c);
            let mut expect = crate::gemm::matmul_naive(&a, &b);
            for i in 0..m {
                for j in 0..n {
                    expect[(i, j)] = expect[(i, j)] * alpha + c0[(i, j)] * beta;
                }
            }
            for i in 0..m {
                for j in 0..n {
                    assert!(
                        (c[(i, j)] - expect[(i, j)]).abs() < 1e-11,
                        "({i},{j}) for {m}x{k}x{n}"
                    );
                }
            }
        }
    }

    #[test]
    fn wide_dots_match_sequential() {
        for len in [0usize, 1, 3, 4, 5, 17, 128, 1001] {
            let x: Vec<c64> = (0..len)
                .map(|i| c64::new((i as f64).sin(), (i as f64 * 0.7).cos()))
                .collect();
            let y: Vec<c64> = (0..len)
                .map(|i| c64::new((i as f64 * 1.3).cos(), -(i as f64).sin()))
                .collect();
            let seq_conj = x
                .iter()
                .zip(&y)
                .fold(c64::ZERO, |s, (&a, &b)| s.acc(a, b.conj()));
            assert!((dot_conj_wide(&x, &y) - seq_conj).abs() < 1e-12 * (len.max(1) as f64));
            let seq_c = x
                .iter()
                .zip(&y)
                .fold(c64::ZERO, |s, (&a, &b)| s.acc_conj(a, b));
            assert!((dotc_wide(&x, &y) - seq_c).abs() < 1e-12 * (len.max(1) as f64));
        }
    }
}
