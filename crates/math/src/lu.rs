//! LU factorization with partial pivoting and small least-squares helpers.
//!
//! These back the Pulay (DIIS) potential-mixing solve in the SCF loop and
//! the Amdahl's-law least-squares fit used to analyze the strong-scaling
//! experiment (paper Eq. 1 and Fig. 3).

use crate::{Matrix, Scalar};

/// LU decomposition `P·A = L·U` with partial pivoting.
pub struct Lu<S: Scalar> {
    lu: Matrix<S>,
    piv: Vec<usize>,
    sign_flips: usize,
}

/// Error for singular systems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingularError {
    /// Column where no usable pivot was found.
    pub column: usize,
}

impl std::fmt::Display for SingularError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular at column {}", self.column)
    }
}

impl std::error::Error for SingularError {}

impl<S: Scalar> Lu<S> {
    /// Factors a square matrix.
    pub fn new(a: &Matrix<S>) -> Result<Self, SingularError> {
        assert!(a.is_square(), "Lu::new: matrix must be square");
        let n = a.rows();
        let mut lu = a.clone();
        let mut piv: Vec<usize> = (0..n).collect();
        let mut sign_flips = 0;
        for k in 0..n {
            // Pivot selection.
            let mut p = k;
            let mut best = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best == 0.0 || !best.is_finite() {
                return Err(SingularError { column: k });
            }
            if p != k {
                piv.swap(p, k);
                sign_flips += 1;
                let (rp, rk) = lu.rows_mut2(p, k);
                rp.swap_with_slice(rk);
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let f = lu[(i, k)] / pivot;
                lu[(i, k)] = f;
                let (ri, rk) = lu.rows_mut2(i, k);
                for j in (k + 1)..n {
                    ri[j] = ri[j].acc(-f, rk[j]);
                }
            }
        }
        Ok(Lu {
            lu,
            piv,
            sign_flips,
        })
    }

    /// Solves `A·x = b`.
    pub fn solve(&self, b: &[S]) -> Vec<S> {
        let n = self.lu.rows();
        assert_eq!(b.len(), n, "Lu::solve: rhs length mismatch");
        // Apply permutation.
        let mut x: Vec<S> = self.piv.iter().map(|&i| b[i]).collect();
        // Forward: L·y = P·b (unit lower diagonal).
        for i in 1..n {
            let mut s = x[i];
            for k in 0..i {
                s = s.acc(-(self.lu[(i, k)]), x[k]);
            }
            x[i] = s;
        }
        // Backward: U·x = y.
        for i in (0..n).rev() {
            let mut s = x[i];
            for k in (i + 1)..n {
                s = s.acc(-(self.lu[(i, k)]), x[k]);
            }
            x[i] = s / self.lu[(i, i)];
        }
        x
    }

    /// Determinant.
    pub fn det(&self) -> S {
        let mut d = if self.sign_flips.is_multiple_of(2) {
            S::ONE
        } else {
            -S::ONE
        };
        for i in 0..self.lu.rows() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

/// Solves the square system `A·x = b` in one call.
pub fn solve<S: Scalar>(a: &Matrix<S>, b: &[S]) -> Result<Vec<S>, SingularError> {
    Ok(Lu::new(a)?.solve(b))
}

/// Dense least squares: minimizes `‖A·x − b‖₂` for a tall real matrix via
/// the normal equations `(AᵀA)·x = Aᵀb`. Adequate for the small,
/// well-conditioned fitting problems in the scaling analysis.
pub fn lstsq(a: &Matrix<f64>, b: &[f64]) -> Result<Vec<f64>, SingularError> {
    assert_eq!(a.rows(), b.len(), "lstsq: rhs length mismatch");
    let ata = crate::gemm::matmul_hn(a, a);
    let atb = a.matvec_h(b);
    solve(&ata, &atb)
}

/// Fits `y ≈ c₀ + c₁·x + … + c_d·x^d`; returns the `d+1` coefficients.
pub fn polyfit(x: &[f64], y: &[f64], degree: usize) -> Result<Vec<f64>, SingularError> {
    assert_eq!(x.len(), y.len(), "polyfit: length mismatch");
    assert!(x.len() > degree, "polyfit: need more points than degree");
    let a = Matrix::from_fn(x.len(), degree + 1, |i, j| x[i].powi(j as i32));
    lstsq(&a, y)
}

/// Evaluates a polynomial with coefficients in ascending-power order.
pub fn polyval(coeffs: &[f64], x: f64) -> f64 {
    coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;

    #[test]
    fn solve_known_system() {
        // [[2,1],[1,3]]·x = [5,10] → x = [1,3]
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn det_matches_known() {
        let a = Matrix::from_vec(3, 3, vec![6.0, 1.0, 1.0, 4.0, -2.0, 5.0, 2.0, 8.0, 7.0]);
        let lu = Lu::new(&a).unwrap();
        assert!((lu.det() - (-306.0)).abs() < 1e-10);
    }

    #[test]
    fn complex_system() {
        let a = Matrix::from_vec(
            2,
            2,
            vec![
                c64::new(1.0, 1.0),
                c64::real(2.0),
                c64::I,
                c64::new(0.0, -3.0),
            ],
        );
        let b = [c64::new(3.0, 1.0), c64::new(0.0, -2.0)];
        let x = a.matvec(&solve(&a, &b).unwrap());
        for i in 0..2 {
            assert!((x[i] - b[i]).abs() < 1e-13);
        }
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(solve(&a, &[1.0, 1.0]).is_err());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = solve(&a, &[3.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 3.0]);
    }

    #[test]
    fn lstsq_recovers_exact_solution() {
        // Overdetermined but consistent: y = 2 + 3x.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|&x| 2.0 + 3.0 * x).collect();
        let c = polyfit(&xs, &ys, 1).unwrap();
        assert!((c[0] - 2.0).abs() < 1e-10);
        assert!((c[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn polyfit_quadratic_with_noiseless_data() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64 / 4.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 1.0 - 0.5 * x + 0.25 * x * x).collect();
        let c = polyfit(&xs, &ys, 2).unwrap();
        assert!((c[0] - 1.0).abs() < 1e-9);
        assert!((c[1] + 0.5).abs() < 1e-9);
        assert!((c[2] - 0.25).abs() < 1e-9);
        assert!((polyval(&c, 2.0) - (1.0 - 1.0 + 1.0)).abs() < 1e-9);
    }
}
