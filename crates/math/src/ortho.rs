//! Wavefunction-block orthonormalization.
//!
//! Two algorithms, mirroring the paper's optimization #1:
//!
//! * [`gram_schmidt`] — the original band-by-band scheme (BLAS-2 shaped,
//!   sequential over bands);
//! * [`cholesky_orthonormalize`] — the overlap-matrix scheme introduced in
//!   the optimized code: form `S = w·Ψ·Ψᴴ` with one GEMM, factor
//!   `S = L·Lᴴ`, and apply `Ψ ← L⁻¹·Ψ` (all BLAS-3 shaped), imposing the
//!   orthonormality only every few conjugate-gradient steps.
//!
//! Both take a real `metric` weight `w` so that inner products approximate
//! the continuum integral `∫ψ*ψ d³r = w·Σᵢ ψ*ᵢψᵢ` (w = grid-cell volume).

use crate::cholesky::{Cholesky, FactorError};
use crate::vec_ops::{axpy, dotc, dscal, nrm2_sqr};
use crate::{gemm::matmul_nh, gemm::overlap_hermitian, Matrix, Scalar};

/// Modified Gram–Schmidt on the rows of `psi` (each row = one band).
///
/// Returns an error if a band is linearly dependent on its predecessors
/// (norm collapses below `1e-14` of its original value).
pub fn gram_schmidt<S: Scalar>(psi: &mut Matrix<S>, metric: f64) -> Result<(), FactorError> {
    let nb = psi.rows();
    for i in 0..nb {
        for j in 0..i {
            let (row_i, row_j) = {
                let (a, b) = psi.rows_mut2(i, j);
                (a, b)
            };
            let overlap = dotc(row_j, row_i).scale(metric);
            axpy(-overlap, row_j, row_i);
        }
        let norm_sq = nrm2_sqr(psi.row(i)) * metric;
        if norm_sq < 1e-28 {
            return Err(FactorError::NotPositiveDefinite {
                pivot: i,
                value: norm_sq,
            });
        }
        dscal(1.0 / norm_sq.sqrt(), psi.row_mut(i));
    }
    Ok(())
}

/// Overlap-matrix (Cholesky) orthonormalization: `Ψ ← L⁻¹·Ψ` where
/// `L·Lᴴ = w·Ψ·Ψᴴ`. One GEMM plus one triangular block-solve.
pub fn cholesky_orthonormalize<S: Scalar>(
    psi: &mut Matrix<S>,
    metric: f64,
) -> Result<(), FactorError> {
    // Specialized half-flop Hermitian Gram kernel (paper §IV future-work
    // item: custom routines for the PEtot_F shapes).
    let s = overlap_hermitian(psi, metric);
    let ch = Cholesky::new(&s)?;
    ch.solve_l_block(psi);
    Ok(())
}

/// Orthonormality residual `max |w·⟨ψᵢ|ψⱼ⟩ − δᵢⱼ|`.
pub fn orthonormality_residual<S: Scalar>(psi: &Matrix<S>, metric: f64) -> f64 {
    let s = matmul_nh(psi, psi);
    let mut err = 0.0_f64;
    for i in 0..s.rows() {
        for j in 0..s.cols() {
            let target = if i == j { 1.0 } else { 0.0 };
            err = err.max((s[(i, j)].scale(metric) - S::from_re(target)).abs());
        }
    }
    err
}

/// Projects out of `x` its components along the (orthonormal) rows of
/// `basis`: `x ← x − Σᵢ w·⟨bᵢ|x⟩·bᵢ`. Used by the folded spectrum method
/// to keep states orthogonal to already-converged ones.
pub fn project_out<S: Scalar>(basis: &Matrix<S>, x: &mut [S], metric: f64) {
    for i in 0..basis.rows() {
        let b = basis.row(i);
        let overlap = dotc(b, x).scale(metric);
        axpy(-overlap, b, x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;

    fn rand_block(nb: usize, n: usize, seed: u64) -> Matrix<c64> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        Matrix::from_fn(nb, n, |_, _| c64::new(next(), next()))
    }

    #[test]
    fn gram_schmidt_orthonormalizes() {
        let mut psi = rand_block(6, 50, 1);
        gram_schmidt(&mut psi, 1.0).unwrap();
        assert!(orthonormality_residual(&psi, 1.0) < 1e-12);
    }

    #[test]
    fn cholesky_orthonormalizes() {
        let mut psi = rand_block(6, 50, 2);
        cholesky_orthonormalize(&mut psi, 1.0).unwrap();
        assert!(orthonormality_residual(&psi, 1.0) < 1e-12);
    }

    #[test]
    fn both_respect_nonunit_metric() {
        let w = 0.037;
        let mut a = rand_block(4, 40, 3);
        let mut b = a.clone();
        gram_schmidt(&mut a, w).unwrap();
        cholesky_orthonormalize(&mut b, w).unwrap();
        assert!(orthonormality_residual(&a, w) < 1e-12);
        assert!(orthonormality_residual(&b, w) < 1e-12);
    }

    #[test]
    fn methods_span_same_subspace() {
        // Both orthonormalizations must preserve the row span: the projector
        // ΨᴴΨ (with metric) must agree.
        let w = 0.5;
        let mut a = rand_block(3, 20, 4);
        let mut b = a.clone();
        gram_schmidt(&mut a, w).unwrap();
        cholesky_orthonormalize(&mut b, w).unwrap();
        let pa = crate::gemm::matmul_hn(&a, &a);
        let pb = crate::gemm::matmul_hn(&b, &b);
        for i in 0..20 {
            for j in 0..20 {
                assert!((pa[(i, j)] - pb[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn dependent_rows_detected() {
        let mut psi = rand_block(2, 10, 5);
        let row0 = psi.row(0).to_vec();
        psi.row_mut(1).copy_from_slice(&row0);
        assert!(gram_schmidt(&mut psi, 1.0).is_err());
    }

    #[test]
    fn project_out_removes_components() {
        let mut basis = rand_block(3, 30, 6);
        gram_schmidt(&mut basis, 1.0).unwrap();
        let mut x = rand_block(1, 30, 7).into_vec();
        project_out(&basis, &mut x, 1.0);
        for i in 0..3 {
            assert!(dotc(basis.row(i), &x).abs() < 1e-12);
        }
    }
}
