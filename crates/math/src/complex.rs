//! A minimal, fast double-precision complex number type.
//!
//! The offline-crate policy for this reproduction does not include
//! `num-complex`, so the planewave machinery carries its own `c64`. The type
//! is `repr(C)` so slices of `c64` can be reinterpreted as interleaved
//! re/im `f64` pairs, the layout FFT kernels and BLAS-like kernels expect.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Double-precision complex number (`re + i·im`).
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct c64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

#[allow(non_camel_case_types)]
impl c64 {
    /// The additive identity.
    pub const ZERO: c64 = c64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: c64 = c64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: c64 = c64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        c64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline(always)]
    pub const fn real(re: f64) -> Self {
        c64 { re, im: 0.0 }
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        c64::new(self.re, -self.im)
    }

    /// Squared modulus `|z|²`.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline(always)]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians.
    #[inline(always)]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// `e^{iθ}` on the unit circle.
    #[inline(always)]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        c64::new(c, s)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        let (s, c) = self.im.sin_cos();
        c64::new(r * c, r * s)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        let m = self.abs();
        let re = ((m + self.re) * 0.5).max(0.0).sqrt();
        let im = ((m - self.re) * 0.5).max(0.0).sqrt();
        c64::new(re, if self.im < 0.0 { -im } else { im })
    }

    /// Multiplicative inverse `1/z`.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        c64::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline(always)]
    pub fn scale(self, s: f64) -> Self {
        c64::new(self.re * s, self.im * s)
    }

    /// Fused `self + a * b`, the complex multiply-accumulate at the heart of
    /// the GEMM and projector kernels.
    #[inline(always)]
    pub fn mul_add(self, a: c64, b: c64) -> Self {
        c64::new(
            self.re + a.re * b.re - a.im * b.im,
            self.im + a.re * b.im + a.im * b.re,
        )
    }

    /// Returns true if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Returns true if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Debug for c64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:+.6e}{:+.6e}i)", self.re, self.im)
    }
}

impl fmt::Display for c64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for c64 {
    #[inline(always)]
    fn from(re: f64) -> Self {
        c64::real(re)
    }
}

impl Add for c64 {
    type Output = c64;
    #[inline(always)]
    fn add(self, o: c64) -> c64 {
        c64::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for c64 {
    type Output = c64;
    #[inline(always)]
    fn sub(self, o: c64) -> c64 {
        c64::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for c64 {
    type Output = c64;
    #[inline(always)]
    fn mul(self, o: c64) -> c64 {
        c64::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Div for c64 {
    type Output = c64;
    // Complex division is multiplication by the conjugate inverse.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline(always)]
    fn div(self, o: c64) -> c64 {
        self * o.inv()
    }
}

impl Neg for c64 {
    type Output = c64;
    #[inline(always)]
    fn neg(self) -> c64 {
        c64::new(-self.re, -self.im)
    }
}

impl Add<f64> for c64 {
    type Output = c64;
    #[inline(always)]
    fn add(self, s: f64) -> c64 {
        c64::new(self.re + s, self.im)
    }
}

impl Sub<f64> for c64 {
    type Output = c64;
    #[inline(always)]
    fn sub(self, s: f64) -> c64 {
        c64::new(self.re - s, self.im)
    }
}

impl Mul<f64> for c64 {
    type Output = c64;
    #[inline(always)]
    fn mul(self, s: f64) -> c64 {
        self.scale(s)
    }
}

impl Div<f64> for c64 {
    type Output = c64;
    #[inline(always)]
    fn div(self, s: f64) -> c64 {
        self.scale(1.0 / s)
    }
}

impl Mul<c64> for f64 {
    type Output = c64;
    #[inline(always)]
    fn mul(self, z: c64) -> c64 {
        z.scale(self)
    }
}

impl AddAssign for c64 {
    #[inline(always)]
    fn add_assign(&mut self, o: c64) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl SubAssign for c64 {
    #[inline(always)]
    fn sub_assign(&mut self, o: c64) {
        self.re -= o.re;
        self.im -= o.im;
    }
}

impl MulAssign for c64 {
    #[inline(always)]
    fn mul_assign(&mut self, o: c64) {
        *self = *self * o;
    }
}

impl DivAssign for c64 {
    #[inline(always)]
    fn div_assign(&mut self, o: c64) {
        *self = *self / o;
    }
}

impl MulAssign<f64> for c64 {
    #[inline(always)]
    fn mul_assign(&mut self, s: f64) {
        self.re *= s;
        self.im *= s;
    }
}

impl Sum for c64 {
    fn sum<I: Iterator<Item = c64>>(iter: I) -> c64 {
        iter.fold(c64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: c64, b: c64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn arithmetic_identities() {
        let z = c64::new(3.0, -4.0);
        assert_eq!(z + c64::ZERO, z);
        assert_eq!(z * c64::ONE, z);
        assert!(close(z * z.inv(), c64::ONE, 1e-14));
        assert_eq!(z + (-z), c64::ZERO);
        assert_eq!(z.conj().conj(), z);
    }

    #[test]
    fn modulus_and_conjugate() {
        let z = c64::new(3.0, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert!(close(z * z.conj(), c64::real(25.0), 1e-14));
    }

    #[test]
    fn euler_identity() {
        let z = c64::cis(std::f64::consts::PI);
        assert!(close(z, c64::real(-1.0), 1e-15));
        let e = (c64::I * std::f64::consts::FRAC_PI_2).exp();
        assert!(close(e, c64::I, 1e-15));
    }

    #[test]
    fn sqrt_roundtrip() {
        for &(re, im) in &[
            (4.0, 0.0),
            (0.0, 2.0),
            (-1.0, 0.0),
            (3.0, -7.0),
            (-2.5, 1.5),
        ] {
            let z = c64::new(re, im);
            let r = z.sqrt();
            assert!(close(r * r, z, 1e-12), "sqrt({z:?})={r:?}");
        }
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let a = c64::new(1.5, -0.5);
        let b = c64::new(-2.0, 3.0);
        let c = c64::new(0.25, 0.75);
        assert!(close(a.mul_add(b, c), a + b * c, 1e-15));
    }

    #[test]
    fn division_by_real_and_complex() {
        let z = c64::new(6.0, -8.0);
        assert_eq!(z / 2.0, c64::new(3.0, -4.0));
        assert!(close(z / z, c64::ONE, 1e-14));
    }

    #[test]
    fn sum_iterator() {
        let v = [c64::new(1.0, 1.0), c64::new(2.0, -3.0), c64::new(-0.5, 0.5)];
        let s: c64 = v.iter().copied().sum();
        assert!(close(s, c64::new(2.5, -1.5), 1e-15));
    }
}
