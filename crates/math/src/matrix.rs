//! Dense row-major matrix container.
//!
//! Wavefunction blocks are stored as `Matrix<c64>` with shape
//! `(n_bands, n_planewaves)`: one band per contiguous row, which makes both
//! the band-by-band (row slice) and all-band (GEMM on the whole block) code
//! paths natural.

use crate::{c64, Scalar};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix<S: Scalar> {
    rows: usize,
    cols: usize,
    data: Vec<S>,
}

impl<S: Scalar> Matrix<S> {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![S::ZERO; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = S::ONE;
        }
        m
    }

    /// Builds a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> S) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wraps an existing buffer (length must equal `rows * cols`).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<S>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: wrong buffer length"
        );
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline(always)]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Underlying storage, row-major.
    #[inline(always)]
    pub fn as_slice(&self) -> &[S] {
        &self.data
    }

    /// Mutable underlying storage, row-major.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<S> {
        self.data
    }

    /// Row `i` as a contiguous slice.
    #[inline(always)]
    pub fn row(&self, i: usize) -> &[S] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    #[inline(always)]
    pub fn row_mut(&mut self, i: usize) -> &mut [S] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Two disjoint mutable rows (`i != j`).
    pub fn rows_mut2(&mut self, i: usize, j: usize) -> (&mut [S], &mut [S]) {
        assert_ne!(i, j, "rows_mut2: identical indices");
        let c = self.cols;
        if i < j {
            let (a, b) = self.data.split_at_mut(j * c);
            (&mut a[i * c..(i + 1) * c], &mut b[..c])
        } else {
            let (a, b) = self.data.split_at_mut(i * c);
            (&mut b[..c], &mut a[j * c..(j + 1) * c])
        }
    }

    /// Column `j` copied into a new vector.
    pub fn col(&self, j: usize) -> Vec<S> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix<S> {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Conjugate transpose.
    pub fn hermitian(&self) -> Matrix<S> {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|v| v.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|v| v.abs()).fold(0.0, f64::max)
    }

    /// Trace (sum of diagonal entries); matrix must be square.
    pub fn trace(&self) -> S {
        assert!(self.is_square(), "trace: non-square matrix");
        let mut t = S::ZERO;
        for i in 0..self.rows {
            t += self[(i, i)];
        }
        t
    }

    /// `self ← self + α·other` (same shape).
    pub fn add_scaled(&mut self, alpha: S, other: &Matrix<S>) {
        assert_eq!(self.shape(), other.shape(), "add_scaled: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a = a.acc(alpha, b);
        }
    }

    /// Scales every entry by a real factor.
    pub fn scale_real(&mut self, s: f64) {
        for v in &mut self.data {
            *v = v.scale(s);
        }
    }

    /// Matrix-vector product `A·x`.
    pub fn matvec(&self, x: &[S]) -> Vec<S> {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        (0..self.rows)
            .map(|i| crate::vec_ops::dotu(self.row(i), x))
            .collect()
    }

    /// Hermitian-transpose matrix-vector product `Aᴴ·x`.
    pub fn matvec_h(&self, x: &[S]) -> Vec<S> {
        assert_eq!(x.len(), self.rows, "matvec_h: dimension mismatch");
        let mut y = vec![S::ZERO; self.cols];
        for i in 0..self.rows {
            let xi = x[i];
            for (j, &a) in self.row(i).iter().enumerate() {
                y[j] = y[j].acc(a.conj(), xi);
            }
        }
        y
    }

    /// Deviation from the identity, `‖AᴴA − I‖_max`, a convenient
    /// orthonormality check for wavefunction blocks.
    pub fn orthonormality_error(&self) -> f64 {
        let s = crate::gemm::matmul_nh(self, self);
        let mut err = 0.0_f64;
        for i in 0..s.rows() {
            for j in 0..s.cols() {
                let target = if i == j { S::ONE } else { S::ZERO };
                err = err.max((s[(i, j)] - target).abs());
            }
        }
        err
    }

    /// Maximum asymmetry `‖A − Aᴴ‖_max`; zero for Hermitian matrices.
    pub fn hermiticity_error(&self) -> f64 {
        assert!(self.is_square());
        let mut err = 0.0_f64;
        for i in 0..self.rows {
            for j in 0..self.cols {
                err = err.max((self[(i, j)] - self[(j, i)].conj()).abs());
            }
        }
        err
    }
}

impl Matrix<c64> {
    /// Real parts as an `f64` matrix.
    pub fn re(&self) -> Matrix<f64> {
        Matrix::from_fn(self.rows, self.cols, |i, j| self[(i, j)].re)
    }
}

impl Matrix<f64> {
    /// Promotes to a complex matrix.
    pub fn to_complex(&self) -> Matrix<c64> {
        Matrix::from_fn(self.rows, self.cols, |i, j| c64::real(self[(i, j)]))
    }
}

impl<S: Scalar> Index<(usize, usize)> for Matrix<S> {
    type Output = S;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &S {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl<S: Scalar> IndexMut<(usize, usize)> for Matrix<S> {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut S {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl<S: Scalar> fmt::Debug for Matrix<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for i in 0..show_rows {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:?} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(1, 2)], 12.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
        assert_eq!(m.col(2), vec![2.0, 12.0]);
    }

    #[test]
    fn identity_and_trace() {
        let id = Matrix::<f64>::identity(4);
        assert_eq!(id.trace(), 4.0);
        assert_eq!(id.fro_norm(), 2.0);
    }

    #[test]
    fn hermitian_transpose_conjugates() {
        let m = Matrix::from_fn(2, 2, |i, j| c64::new(i as f64, j as f64));
        let h = m.hermitian();
        assert_eq!(h[(1, 0)], c64::new(0.0, -1.0));
        assert_eq!(h.hermitian(), m);
    }

    #[test]
    fn matvec_and_matvec_h_are_adjoint() {
        let a = Matrix::from_fn(3, 2, |i, j| {
            c64::new((i + j) as f64, (i as f64) - (j as f64))
        });
        let x = vec![c64::new(1.0, 1.0), c64::new(-2.0, 0.5)];
        let y = vec![c64::new(0.0, 1.0), c64::new(2.0, 0.0), c64::new(1.0, -1.0)];
        // ⟨y, A x⟩ = ⟨Aᴴ y, x⟩
        let lhs = crate::vec_ops::dotc(&y, &a.matvec(&x));
        let rhs = crate::vec_ops::dotc(&a.matvec_h(&y), &x);
        assert!((lhs - rhs).abs() < 1e-13);
    }

    #[test]
    fn rows_mut2_disjoint_both_orders() {
        let mut m = Matrix::from_fn(3, 2, |i, _| i as f64);
        {
            let (a, b) = m.rows_mut2(0, 2);
            a[0] = 100.0;
            b[1] = 200.0;
        }
        {
            let (a, b) = m.rows_mut2(2, 0);
            assert_eq!(a[1], 200.0);
            assert_eq!(b[0], 100.0);
        }
    }

    #[test]
    fn hermiticity_error_detects_asymmetry() {
        let mut m = Matrix::<c64>::identity(3);
        assert_eq!(m.hermiticity_error(), 0.0);
        m[(0, 1)] = c64::new(0.0, 1.0);
        m[(1, 0)] = c64::new(0.0, 1.0); // not the conjugate
        assert!(m.hermiticity_error() > 1.9);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_checks_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }
}
