//! Hermitian eigensolver (cyclic Jacobi with phase absorption).
//!
//! Used for the subspace diagonalization inside the all-band conjugate
//! gradient solver (`n_bands × n_bands` matrices, a few dozen to a few
//! hundred rows), where Jacobi's simplicity and unconditional stability
//! beat asymptotically faster algorithms.

use crate::{Matrix, Scalar};

/// Eigendecomposition `A = V·diag(λ)·Vᴴ` of a Hermitian matrix.
pub struct Eig<S: Scalar> {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Unitary matrix whose *columns* are the eigenvectors, ordered like
    /// `values`.
    pub vectors: Matrix<S>,
}

/// Maximum number of Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 60;

/// Computes all eigenvalues and eigenvectors of a Hermitian matrix.
///
/// The strict upper triangle is read; the lower triangle is assumed to be
/// its conjugate. Panics if the matrix is not square.
pub fn eigh<S: Scalar>(a: &Matrix<S>) -> Eig<S> {
    assert!(a.is_square(), "eigh: matrix must be square");
    let n = a.rows();
    let mut a = a.clone();
    let mut v = Matrix::<S>::identity(n);
    if n <= 1 {
        return finish(a, v);
    }

    let fro = a.fro_norm().max(f64::MIN_POSITIVE);
    let tol = 1e-14 * fro;

    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0_f64;
        for p in 0..n {
            for q in (p + 1)..n {
                off += a[(p, q)].norm_sqr();
            }
        }
        if off.sqrt() <= tol {
            break;
        }

        for p in 0..(n - 1) {
            for q in (p + 1)..n {
                let apq = a[(p, q)];
                let r = apq.abs();
                if r <= tol / (n as f64) {
                    continue;
                }

                // Phase absorption: A ← Dᴴ·A·D with D = diag(…, ū at q, …)
                // makes A[p][q] real (= r) while preserving Hermiticity.
                let u = apq.scale(1.0 / r);
                let uc = u.conj();
                for i in 0..n {
                    a[(i, q)] *= uc;
                }
                for j in 0..n {
                    a[(q, j)] *= u;
                }
                for i in 0..n {
                    v[(i, q)] *= uc;
                }

                // Real Jacobi rotation zeroing the now-real off-diagonal.
                let app = a[(p, p)].re();
                let aqq = a[(q, q)].re();
                let tau = (aqq - app) / (2.0 * r);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Column update: (a_ip, a_iq) ← (c·a_ip − s·a_iq, s·a_ip + c·a_iq).
                for i in 0..n {
                    let aip = a[(i, p)];
                    let aiq = a[(i, q)];
                    a[(i, p)] = aip.scale(c) - aiq.scale(s);
                    a[(i, q)] = aip.scale(s) + aiq.scale(c);
                }
                // Row update with the transpose.
                for j in 0..n {
                    let apj = a[(p, j)];
                    let aqj = a[(q, j)];
                    a[(p, j)] = apj.scale(c) - aqj.scale(s);
                    a[(q, j)] = apj.scale(s) + aqj.scale(c);
                }
                // Accumulate eigenvectors: V ← V·J.
                for i in 0..n {
                    let vip = v[(i, p)];
                    let viq = v[(i, q)];
                    v[(i, p)] = vip.scale(c) - viq.scale(s);
                    v[(i, q)] = vip.scale(s) + viq.scale(c);
                }
                // Clean up rounding drift on the zeroed pair.
                a[(p, q)] = S::ZERO;
                a[(q, p)] = S::ZERO;
            }
        }
    }
    finish(a, v)
}

fn finish<S: Scalar>(a: Matrix<S>, v: Matrix<S>) -> Eig<S> {
    let n = a.rows();
    let mut order: Vec<usize> = (0..n).collect();
    let vals: Vec<f64> = (0..n).map(|i| a[(i, i)].re()).collect();
    order.sort_by(|&i, &j| vals[i].total_cmp(&vals[j]));
    let values: Vec<f64> = order.iter().map(|&i| vals[i]).collect();
    let vectors = Matrix::from_fn(n, n, |i, j| v[(i, order[j])]);
    Eig { values, vectors }
}

/// Eigenvalues only (ascending); convenience wrapper.
pub fn eigvalsh<S: Scalar>(a: &Matrix<S>) -> Vec<f64> {
    eigh(a).values
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{c64, gemm::matmul, gemm::matmul_nh, Matrix};

    fn hermitian_random(n: usize, seed: u64) -> Matrix<c64> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let b = Matrix::from_fn(n, n, |_, _| c64::new(next(), next()));
        // (B + Bᴴ)/2 is Hermitian.
        let bh = b.hermitian();
        Matrix::from_fn(n, n, |i, j| (b[(i, j)] + bh[(i, j)]).scale(0.5))
    }

    fn check_decomposition(a: &Matrix<c64>, eig: &Eig<c64>, tol: f64) {
        let n = a.rows();
        // A·v_k = λ_k·v_k for each column k.
        for k in 0..n {
            let vk = eig.vectors.col(k);
            let av = a.matvec(&vk);
            for i in 0..n {
                assert!(
                    (av[i] - vk[i].scale(eig.values[k])).abs() < tol,
                    "eigenpair {k} fails at row {i}"
                );
            }
        }
        // V unitary.
        let vtv = matmul_nh(&eig.vectors.hermitian(), &eig.vectors.hermitian());
        for i in 0..n {
            for j in 0..n {
                let e = if i == j { c64::ONE } else { c64::ZERO };
                assert!((vtv[(i, j)] - e).abs() < tol, "V not unitary at ({i},{j})");
            }
        }
    }

    #[test]
    fn diagonal_matrix_is_its_own_answer() {
        let mut a = Matrix::<c64>::zeros(3, 3);
        a[(0, 0)] = c64::real(3.0);
        a[(1, 1)] = c64::real(-1.0);
        a[(2, 2)] = c64::real(2.0);
        let e = eigh(&a);
        assert_eq!(e.values, vec![-1.0, 2.0, 3.0]);
    }

    #[test]
    fn pauli_y_eigenvalues() {
        // σ_y = [[0, -i],[i, 0]] has eigenvalues ±1.
        let mut a = Matrix::<c64>::zeros(2, 2);
        a[(0, 1)] = c64::new(0.0, -1.0);
        a[(1, 0)] = c64::new(0.0, 1.0);
        let e = eigh(&a);
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        check_decomposition(&a, &e, 1e-11);
    }

    #[test]
    fn random_hermitian_decompositions() {
        for &(n, seed) in &[(2, 1u64), (5, 2), (12, 3), (25, 4), (40, 5)] {
            let a = hermitian_random(n, seed);
            let e = eigh(&a);
            check_decomposition(&a, &e, 1e-9);
            // Values ascending.
            for w in e.values.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
            // Trace preserved.
            let tr: f64 = e.values.iter().sum();
            assert!((tr - a.trace().re).abs() < 1e-9);
        }
    }

    #[test]
    fn real_symmetric_path() {
        let a = Matrix::from_fn(4, 4, |i, j| 1.0 / (1.0 + (i as f64 - j as f64).abs()));
        let e = eigh(&a);
        check_real(&a, &e);
    }

    fn check_real(a: &Matrix<f64>, e: &Eig<f64>) {
        let n = a.rows();
        for k in 0..n {
            let vk = e.vectors.col(k);
            let av = a.matvec(&vk);
            for i in 0..n {
                assert!((av[i] - e.values[k] * vk[i]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn reconstruction_v_lambda_vh() {
        let a = hermitian_random(10, 9);
        let e = eigh(&a);
        let lam = Matrix::from_fn(10, 10, |i, j| {
            if i == j {
                c64::real(e.values[i])
            } else {
                c64::ZERO
            }
        });
        let recon = matmul_nh(&matmul(&e.vectors, &lam), &e.vectors);
        for i in 0..10 {
            for j in 0..10 {
                assert!((recon[(i, j)] - a[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn known_2x2_real() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Matrix::from_fn(2, 2, |i, j| if i == j { 2.0 } else { 1.0 });
        let e = eigh(&a);
        assert!((e.values[0] - 1.0).abs() < 1e-13);
        assert!((e.values[1] - 3.0).abs() < 1e-13);
    }
}
