//! Process-wide kernel policy: which arithmetic variant the hot kernels
//! run.
//!
//! PR 8 introduces kernels whose *results* differ from the original
//! scalar code at the last-bit level — radix-4 butterflies, the packed
//! r2c/c2r transform path, lane-split dot products, and the packed GEMM
//! microkernel all re-associate floating-point sums. Every one of them is
//! deterministic (bit-identical across `LS3DF_THREADS` and
//! `LS3DF_SCHEDULE`), but none reproduces the radix-2 / straight-loop
//! bit patterns that the golden digests in `tests/scheme_digest.rs` pin.
//!
//! [`KernelPolicy`] resolves that tension the same way `LS3DF_THREADS`
//! and `LS3DF_SCHEDULE` configure the runtime: an environment switch
//! latched once per process.
//!
//! * `LS3DF_KERNELS=fast` (or unset) — the optimized kernels. Guarded by
//!   the tolerance suite in `tests/kernel_tol.rs` (per-kernel bounds vs
//!   the reference path).
//! * `LS3DF_KERNELS=reference` — the original scalar kernels, unchanged
//!   arithmetic, still covered by the exact golden digests.
//!
//! The policy is read through [`kernel_policy`] exactly once (OnceLock),
//! so a process can never mix variants mid-run; plans and solvers built
//! after the first read see the same answer as ones built before.
//! Unrecognized values fall back to [`KernelPolicy::Fast`] — the
//! reference path is a validation surface, not something a production
//! run should land on via a typo. Tests and benches that need *both*
//! variants in one process use the explicit `*_with`/`with_policy`
//! constructors instead of the global switch.

use std::sync::OnceLock;

/// Which arithmetic variant the FFT/GEMM/BLAS-1 hot kernels use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelPolicy {
    /// Optimized kernels: radix-4 butterflies, packed r2c/c2r path,
    /// lane-split accumulators, packed GEMM microkernel. Deterministic
    /// across thread counts, but *not* bit-identical to the reference
    /// arithmetic — gated by per-kernel tolerance tests.
    Fast,
    /// The pre-PR-8 scalar kernels, bit-for-bit: radix-2 only, complex
    /// 3-D transforms on real fields, sequential dot products. The golden
    /// digest tests run under this policy.
    Reference,
}

impl KernelPolicy {
    /// The `LS3DF_KERNELS` value selecting this policy.
    pub fn name(self) -> &'static str {
        match self {
            KernelPolicy::Fast => "fast",
            KernelPolicy::Reference => "reference",
        }
    }

    fn parse(s: &str) -> Option<KernelPolicy> {
        match s.trim() {
            "fast" => Some(KernelPolicy::Fast),
            "reference" => Some(KernelPolicy::Reference),
            _ => None,
        }
    }
}

static POLICY: OnceLock<KernelPolicy> = OnceLock::new();

/// The process-wide kernel policy, latched from `LS3DF_KERNELS` on first
/// call. Unset or unrecognized values resolve to [`KernelPolicy::Fast`].
pub fn kernel_policy() -> KernelPolicy {
    *POLICY.get_or_init(|| {
        std::env::var("LS3DF_KERNELS")
            .ok()
            .and_then(|s| KernelPolicy::parse(&s))
            .unwrap_or(KernelPolicy::Fast)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_exact_names_only() {
        assert_eq!(KernelPolicy::parse("fast"), Some(KernelPolicy::Fast));
        assert_eq!(
            KernelPolicy::parse(" reference\n"),
            Some(KernelPolicy::Reference)
        );
        assert_eq!(KernelPolicy::parse("FAST"), None);
        assert_eq!(KernelPolicy::parse("scalar"), None);
    }

    #[test]
    fn policy_is_latched() {
        // Whatever the environment says, two reads agree — the OnceLock
        // guarantees a process never mixes kernel variants.
        assert_eq!(kernel_policy(), kernel_policy());
    }
}
