//! # ls3df-math
//!
//! Dense linear-algebra substrate for the LS3DF reproduction.
//!
//! The original LS3DF code (Wang et al., SC 2008) leaned on vendor BLAS —
//! its headline single-node optimization was moving the planewave solver
//! from BLAS-2 band-by-band operations to BLAS-3 DGEMM on whole
//! wavefunction blocks. This crate provides the pure-Rust equivalents:
//!
//! * [`c64`] — complex double scalar;
//! * [`Matrix`] — dense row-major container over [`Scalar`] (`f64`/`c64`);
//! * [`gemm`] — naive / blocked / rayon-parallel matrix products;
//! * [`cholesky`], [`eigh`], [`lu`] — the factorizations the solver needs
//!   (overlap orthogonalization, subspace diagonalization, mixing solves);
//! * [`ortho`] — band-by-band Gram–Schmidt *and* all-band overlap-matrix
//!   orthonormalization (the paper's optimization #1, ablatable);
//! * [`vec_ops`] — BLAS-1 kernels for the band-by-band code path.
//!
//! ```
//! use ls3df_math::{c64, Matrix, eigh, gemm::matmul_nh};
//!
//! // Build a small Hermitian matrix A = B·Bᴴ and diagonalize it.
//! let b = Matrix::from_fn(3, 3, |i, j| c64::new((i + j) as f64, i as f64 - j as f64));
//! let a = matmul_nh(&b, &b);
//! let eig = eigh(&a);
//! assert!(eig.values.windows(2).all(|w| w[0] <= w[1])); // ascending
//! assert!(eig.values.iter().all(|&v| v >= -1e-10));     // PSD spectrum
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(non_camel_case_types)]

mod complex;
mod matrix;
mod microkernel;
mod scalar;

pub mod cholesky;
pub mod eigh;
pub mod gemm;
pub mod lu;
pub mod ortho;
pub mod policy;
pub mod tridiag;
pub mod vec_ops;

pub use complex::c64;
pub use gemm::{gemm, gemm_with, overlap_hermitian, overlap_hermitian_with, Op};
pub use matrix::Matrix;
pub use policy::{kernel_policy, KernelPolicy};
pub use scalar::Scalar;

pub use cholesky::Cholesky;
pub use eigh::{eigh, eigvalsh, Eig};
pub use lu::{lstsq, polyfit, polyval, solve, Lu};
pub use tridiag::{eigh_tridiagonal, eigh_tridiagonal_real};

/// Hermitian eigendecomposition with automatic algorithm choice: cyclic
/// Jacobi for small matrices (unbeatable constants, bulletproof), the
/// Householder-tridiagonal + QL pipeline above ~32 rows (the all-band
/// subspace problems of large fragments reach a few hundred bands).
pub fn eigh_fast(a: &Matrix<c64>) -> Eig<c64> {
    if a.rows() <= 32 {
        eigh(a)
    } else {
        eigh_tridiagonal(a)
    }
}
