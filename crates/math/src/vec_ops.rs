//! BLAS-1-style kernels on slices.
//!
//! These are the "band-by-band" building blocks: the original PEtot code the
//! paper starts from did almost all of its work through operations of this
//! shape (one wavefunction at a time), which is exactly why its performance
//! was limited to ~15% of peak before the all-band (BLAS-3) rewrite.

use crate::policy::{kernel_policy, KernelPolicy};
use crate::{c64, microkernel, Scalar};

/// Inner product `⟨x|y⟩ = Σ conj(x_i)·y_i` under the process-wide
/// [`kernel_policy`].
#[inline]
pub fn dotc<S: Scalar>(x: &[S], y: &[S]) -> S {
    dotc_with(kernel_policy(), x, y)
}

/// [`dotc`] with an explicit [`KernelPolicy`]: `Fast` breaks the serial
/// FMA dependency chain with four fixed-order lane accumulators (the
/// Kleinman–Bylander projector and CG coefficient hot path), `Reference`
/// is the original sequential loop.
#[inline]
pub fn dotc_with<S: Scalar>(policy: KernelPolicy, x: &[S], y: &[S]) -> S {
    assert_eq!(x.len(), y.len(), "dotc: length mismatch");
    match policy {
        KernelPolicy::Fast => microkernel::dotc_wide(x, y),
        KernelPolicy::Reference => {
            let mut acc = S::ZERO;
            for (&a, &b) in x.iter().zip(y) {
                acc = acc.acc_conj(a, b);
            }
            acc
        }
    }
}

/// Unconjugated product `Σ x_i·y_i`.
#[inline]
pub fn dotu<S: Scalar>(x: &[S], y: &[S]) -> S {
    assert_eq!(x.len(), y.len(), "dotu: length mismatch");
    let mut acc = S::ZERO;
    for (&a, &b) in x.iter().zip(y) {
        acc = acc.acc(a, b);
    }
    acc
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn nrm2<S: Scalar>(x: &[S]) -> f64 {
    x.iter().map(|&v| v.norm_sqr()).sum::<f64>().sqrt()
}

/// Squared Euclidean norm.
#[inline]
pub fn nrm2_sqr<S: Scalar>(x: &[S]) -> f64 {
    x.iter().map(|&v| v.norm_sqr()).sum::<f64>()
}

/// `y ← y + α·x`.
#[inline]
pub fn axpy<S: Scalar>(alpha: S, x: &[S], y: &mut [S]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (&a, b) in x.iter().zip(y.iter_mut()) {
        *b = b.acc(alpha, a);
    }
}

/// `y ← α·x + β·y`.
#[inline]
pub fn axpby<S: Scalar>(alpha: S, x: &[S], beta: S, y: &mut [S]) {
    assert_eq!(x.len(), y.len(), "axpby: length mismatch");
    for (&a, b) in x.iter().zip(y.iter_mut()) {
        *b = (*b * beta).acc(alpha, a);
    }
}

/// `x ← α·x`.
#[inline]
pub fn scal<S: Scalar>(alpha: S, x: &mut [S]) {
    for v in x {
        *v *= alpha;
    }
}

/// `x ← s·x` with a real scale factor.
#[inline]
pub fn dscal<S: Scalar>(s: f64, x: &mut [S]) {
    for v in x {
        *v = v.scale(s);
    }
}

/// Copies `src` into `dst`.
#[inline]
pub fn copy<S: Scalar>(src: &[S], dst: &mut [S]) {
    dst.copy_from_slice(src);
}

/// Maximum absolute element.
#[inline]
pub fn amax<S: Scalar>(x: &[S]) -> f64 {
    x.iter().map(|v| v.abs()).fold(0.0_f64, f64::max)
}

/// Pointwise product accumulated into `out`: `out_i += a_i · b_i`.
#[inline]
pub fn hadamard_acc<S: Scalar>(a: &[S], b: &[S], out: &mut [S]) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), out.len());
    for i in 0..a.len() {
        out[i] = out[i].acc(a[i], b[i]);
    }
}

/// Converts a real slice to complex (imaginary parts zero).
pub fn promote(x: &[f64]) -> Vec<c64> {
    x.iter().map(|&v| c64::real(v)).collect()
}

/// Extracts real parts of a complex slice.
pub fn real_parts(x: &[c64]) -> Vec<f64> {
    x.iter().map(|z| z.re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dotc_conjugates_left_argument() {
        let x = [c64::new(0.0, 1.0)];
        let y = [c64::new(0.0, 1.0)];
        // conj(i)*i = -i*i = 1
        assert!((dotc(&x, &y) - c64::ONE).abs() < 1e-15);
        // unconjugated: i*i = -1
        assert!((dotu(&x, &y) + c64::ONE).abs() < 1e-15);
    }

    #[test]
    fn axpy_real() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn axpby_complex() {
        let x = [c64::new(1.0, 0.0), c64::new(0.0, 1.0)];
        let mut y = [c64::new(1.0, 1.0), c64::new(2.0, 0.0)];
        axpby(c64::real(2.0), &x, c64::real(-1.0), &mut y);
        assert!((y[0] - c64::new(1.0, -1.0)).abs() < 1e-15);
        assert!((y[1] - c64::new(-2.0, 2.0)).abs() < 1e-15);
    }

    #[test]
    fn norm_matches_dot() {
        let x = [c64::new(3.0, 0.0), c64::new(0.0, 4.0)];
        assert!((nrm2(&x) - 5.0).abs() < 1e-15);
        assert!((nrm2_sqr(&x) - dotc(&x, &x).re).abs() < 1e-13);
    }

    #[test]
    fn amax_finds_peak() {
        let x = [c64::new(1.0, 0.0), c64::new(3.0, 4.0), c64::new(-2.0, 0.0)];
        assert_eq!(amax(&x), 5.0);
    }

    #[test]
    fn scaling_ops() {
        let mut x = [c64::new(1.0, -1.0), c64::new(2.0, 2.0)];
        dscal(0.5, &mut x);
        assert!((x[0] - c64::new(0.5, -0.5)).abs() < 1e-15);
        scal(c64::I, &mut x);
        assert!((x[0] - c64::new(0.5, 0.5)).abs() < 1e-15);
    }

    #[test]
    fn hadamard_accumulates() {
        let a = [2.0, 3.0];
        let b = [5.0, 7.0];
        let mut out = [1.0, 1.0];
        hadamard_acc(&a, &b, &mut out);
        assert_eq!(out, [11.0, 22.0]);
    }
}
