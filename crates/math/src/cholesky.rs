//! Cholesky factorization of Hermitian positive-definite matrices.
//!
//! This is the engine behind the paper's overlap-matrix orthogonalization:
//! instead of Gram–Schmidt after every conjugate-gradient step, LS3DF forms
//! the overlap `S = Ψ·Ψᴴ` once every few steps, factors `S = L·Lᴴ`, and
//! applies `Ψ ← L⁻¹·Ψ` — all BLAS-3 shaped work.

use crate::{Matrix, Scalar};

/// Error returned when a matrix fails to factor.
#[derive(Debug, Clone, PartialEq)]
pub enum FactorError {
    /// Leading minor `k` was not positive definite.
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
        /// The non-positive pivot value encountered.
        value: f64,
    },
    /// The matrix was not square.
    NotSquare,
}

impl std::fmt::Display for FactorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FactorError::NotPositiveDefinite { pivot, value } => {
                write!(f, "matrix not positive definite: pivot {pivot} = {value}")
            }
            FactorError::NotSquare => write!(f, "matrix not square"),
        }
    }
}

impl std::error::Error for FactorError {}

/// Lower-triangular Cholesky factor `L` with `A = L·Lᴴ`.
pub struct Cholesky<S: Scalar> {
    l: Matrix<S>,
}

impl<S: Scalar> Cholesky<S> {
    /// Factors a Hermitian positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read.
    pub fn new(a: &Matrix<S>) -> Result<Self, FactorError> {
        if !a.is_square() {
            return Err(FactorError::NotSquare);
        }
        let n = a.rows();
        let mut l = Matrix::<S>::zeros(n, n);
        for j in 0..n {
            // Diagonal: l_jj = sqrt(a_jj - Σ_{k<j} |l_jk|²), real positive.
            let mut d = a[(j, j)].re();
            for k in 0..j {
                d -= l[(j, k)].norm_sqr();
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(FactorError::NotPositiveDefinite { pivot: j, value: d });
            }
            let ljj = d.sqrt();
            l[(j, j)] = S::from_re(ljj);
            let inv = 1.0 / ljj;
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s = s.acc(-(l[(i, k)]), l[(j, k)].conj());
                }
                l[(i, j)] = s.scale(inv);
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix<S> {
        &self.l
    }

    /// Consumes the factorization, returning `L`.
    pub fn into_l(self) -> Matrix<S> {
        self.l
    }

    /// Solves `L·x = b` in place (forward substitution).
    pub fn solve_l(&self, b: &mut [S]) {
        let n = self.l.rows();
        assert_eq!(b.len(), n);
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s = s.acc(-(self.l[(i, k)]), b[k]);
            }
            b[i] = s.scale(1.0 / self.l[(i, i)].re());
        }
    }

    /// Solves `Lᴴ·x = b` in place (backward substitution).
    pub fn solve_lh(&self, b: &mut [S]) {
        let n = self.l.rows();
        assert_eq!(b.len(), n);
        for i in (0..n).rev() {
            let mut s = b[i];
            for k in (i + 1)..n {
                s = s.acc(-(self.l[(k, i)].conj()), b[k]);
            }
            b[i] = s.scale(1.0 / self.l[(i, i)].re());
        }
    }

    /// Solves `A·x = b` via the two triangular solves.
    pub fn solve(&self, b: &[S]) -> Vec<S> {
        let mut x = b.to_vec();
        self.solve_l(&mut x);
        self.solve_lh(&mut x);
        x
    }

    /// Applies `L⁻¹` to every column of the row-major block `X` interpreted
    /// as `(n, width)`; i.e. computes `L⁻¹·X` in place. This is the
    /// all-band orthogonalization update `Ψ ← L⁻¹·Ψ` with `X` holding one
    /// band per row.
    pub fn solve_l_block(&self, x: &mut Matrix<S>) {
        let n = self.l.rows();
        assert_eq!(x.rows(), n, "solve_l_block: row mismatch");
        for i in 0..n {
            for k in 0..i {
                let lik = self.l[(i, k)];
                let (row_i, row_k) = x.rows_mut2(i, k);
                for (xi, &xk) in row_i.iter_mut().zip(row_k.iter()) {
                    *xi = xi.acc(-lik, xk);
                }
            }
            let inv = 1.0 / self.l[(i, i)].re();
            for v in x.row_mut(i) {
                *v = v.scale(inv);
            }
        }
    }
}

/// Inverse of a lower-triangular matrix (small sizes; used by tests and the
/// Löwdin orthogonalization path).
pub fn invert_lower<S: Scalar>(l: &Matrix<S>) -> Matrix<S> {
    assert!(l.is_square());
    let n = l.rows();
    let mut inv = Matrix::<S>::zeros(n, n);
    for j in 0..n {
        // Solve L·x = e_j by forward substitution.
        let mut x = vec![S::ZERO; n];
        x[j] = S::ONE;
        for i in j..n {
            let mut s = x[i];
            for k in j..i {
                s = s.acc(-(l[(i, k)]), x[k]);
            }
            x[i] = s.scale(1.0 / l[(i, i)].re());
        }
        for i in j..n {
            inv[(i, j)] = x[i];
        }
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{c64, gemm::matmul, gemm::matmul_nh, Matrix};

    fn spd_complex(n: usize, seed: u64) -> Matrix<c64> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let b = Matrix::from_fn(n, n, |_, _| c64::new(next(), next()));
        // A = B·Bᴴ + n·I is Hermitian positive definite.
        let mut a = matmul_nh(&b, &b);
        for i in 0..n {
            a[(i, i)] += c64::real(n as f64);
        }
        a
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd_complex(12, 42);
        let ch = Cholesky::new(&a).unwrap();
        let recon = matmul_nh(ch.l(), ch.l());
        for i in 0..12 {
            for j in 0..12 {
                assert!((recon[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn solve_gives_residual_zero() {
        let a = spd_complex(9, 7);
        let ch = Cholesky::new(&a).unwrap();
        let b: Vec<c64> = (0..9)
            .map(|i| c64::new(i as f64, -(i as f64) / 2.0))
            .collect();
        let x = ch.solve(&b);
        let r = a.matvec(&x);
        for i in 0..9 {
            assert!((r[i] - b[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn non_positive_definite_rejected() {
        let mut a = Matrix::<f64>::identity(3);
        a[(2, 2)] = -1.0;
        match Cholesky::new(&a) {
            Err(FactorError::NotPositiveDefinite { pivot: 2, .. }) => {}
            other => panic!("expected NotPositiveDefinite, got {:?}", other.err()),
        }
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::<f64>::zeros(2, 3);
        assert_eq!(Cholesky::new(&a).err(), Some(FactorError::NotSquare));
    }

    #[test]
    fn block_solve_matches_columnwise() {
        let a = spd_complex(6, 3);
        let ch = Cholesky::new(&a).unwrap();
        let x0 = Matrix::from_fn(6, 10, |i, j| {
            c64::new((i + j) as f64, (i as f64) - (j as f64))
        });
        let mut x = x0.clone();
        ch.solve_l_block(&mut x);
        for j in 0..10 {
            let mut col = x0.col(j);
            ch.solve_l(&mut col);
            for i in 0..6 {
                assert!((x[(i, j)] - col[i]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn invert_lower_is_inverse() {
        let a = spd_complex(8, 11);
        let ch = Cholesky::new(&a).unwrap();
        let linv = invert_lower(ch.l());
        let prod = matmul(&linv, ch.l());
        for i in 0..8 {
            for j in 0..8 {
                let expect = if i == j { c64::ONE } else { c64::ZERO };
                assert!((prod[(i, j)] - expect).abs() < 1e-10);
            }
        }
    }
}
