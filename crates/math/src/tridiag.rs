//! Householder tridiagonalization + implicit-shift QL eigensolver for
//! Hermitian matrices (the `zhetrd`/`steqr` pipeline of LAPACK, written
//! from scratch).
//!
//! The cyclic Jacobi solver in [`crate::eigh`] is unconditionally robust
//! but costs O(n³) *per sweep*; the subspace problems in the all-band CG
//! solver hit it once per iteration with n = number of bands (up to a few
//! hundred for large fragments). This pipeline does the whole job in
//! ~(4/3)n³ + O(n²) per QL sweep and is the default for n above a small
//! threshold (see [`crate::eigh::eigh`]).

use crate::{c64, Eig, Matrix, Scalar};

/// Reduces a Hermitian matrix to real symmetric tridiagonal form
/// `A = Q·T·Qᴴ` via complex Householder reflectors.
///
/// Returns `(diag, offdiag, q)` with `offdiag[i]` coupling `i` and `i+1`.
pub fn hermitian_to_tridiagonal(a: &Matrix<c64>) -> (Vec<f64>, Vec<f64>, Matrix<c64>) {
    assert!(a.is_square(), "tridiagonalize: matrix must be square");
    let n = a.rows();
    let mut a = a.clone();
    let mut q = Matrix::<c64>::identity(n);

    for k in 0..n.saturating_sub(2) {
        // Householder vector zeroing column k below row k+1.
        let mut x = vec![c64::ZERO; n - k - 1];
        for i in (k + 1)..n {
            x[i - k - 1] = a[(i, k)];
        }
        let xnorm = x.iter().map(|v| v.norm_sqr()).sum::<f64>().sqrt();
        if xnorm < 1e-300 {
            continue;
        }
        // α = −e^{iθ}·‖x‖ where θ = arg(x₀): makes v = x − α·e₁ stable.
        let x0 = x[0];
        let phase = if x0.abs() < 1e-300 {
            c64::ONE
        } else {
            x0.scale(1.0 / x0.abs())
        };
        let alpha = -(phase.scale(xnorm));
        let mut v = x;
        v[0] -= alpha;
        let vnorm2: f64 = v.iter().map(|z| z.norm_sqr()).sum();
        if vnorm2 < 1e-300 {
            continue;
        }
        let inv = 1.0 / vnorm2.sqrt();
        for z in v.iter_mut() {
            *z = z.scale(inv);
        }
        // Apply P = I − 2vvᴴ to rows/cols k+1.. of A (Hermitian update)
        // and accumulate Q ← Q·P.
        // w = A·v (restricted to the trailing block).
        let m = n - k - 1;
        let mut w = vec![c64::ZERO; m];
        for i in 0..m {
            let mut acc = c64::ZERO;
            for j in 0..m {
                acc = acc.mul_add(a[(k + 1 + i, k + 1 + j)], v[j]);
            }
            w[i] = acc;
        }
        // K = vᴴ·w (real for Hermitian A).
        let mut kvw = c64::ZERO;
        for i in 0..m {
            kvw = kvw.mul_add(v[i].conj(), w[i]);
        }
        // u = w − K·v ;  A ← A − 2(v·uᴴ + u·vᴴ) − ... (standard rank-2):
        // A ← A − 2v(wᴴ − K̄vᴴ) − 2(w − Kv)vᴴ simplifies with u:
        let u: Vec<c64> = w.iter().zip(&v).map(|(&wi, &vi)| wi - vi * kvw).collect();
        for i in 0..m {
            for j in 0..m {
                let upd = (v[i] * u[j].conj() + u[i] * v[j].conj()).scale(2.0);
                a[(k + 1 + i, k + 1 + j)] -= upd;
            }
        }
        // Column k (and row k by symmetry): A[k+1.., k] ← P·x = α·e₁.
        a[(k + 1, k)] = alpha;
        a[(k, k + 1)] = alpha.conj();
        for i in (k + 2)..n {
            a[(i, k)] = c64::ZERO;
            a[(k, i)] = c64::ZERO;
        }
        // Q ← Q·P (apply to columns k+1..).
        for row in 0..n {
            let mut acc = c64::ZERO;
            for j in 0..m {
                acc = acc.mul_add(q[(row, k + 1 + j)], v[j]);
            }
            let two_acc = acc.scale(2.0);
            for j in 0..m {
                let upd = two_acc * v[j].conj();
                q[(row, k + 1 + j)] -= upd;
            }
        }
    }

    // The tridiagonal now has complex off-diagonals a[(i+1, i)]; rotate
    // phases onto the diagonal of a unitary D so that T is real:
    // D_0 = 1, D_{i+1} = D_i·phase(a[(i+1,i)]).
    let mut diag = vec![0.0; n];
    let mut off = vec![0.0; n.saturating_sub(1)];
    let mut d = vec![c64::ONE; n];
    for i in 0..n {
        diag[i] = a[(i, i)].re;
    }
    for i in 0..n - 1 {
        let e = a[(i + 1, i)];
        let r = e.abs();
        off[i] = r;
        let phase = if r < 1e-300 {
            c64::ONE
        } else {
            e.scale(1.0 / r)
        };
        d[i + 1] = d[i] * phase;
    }
    // Fold D into Q: Q ← Q·D.
    for j in 0..n {
        for i in 0..n {
            q[(i, j)] *= d[j];
        }
    }
    (diag, off, q)
}

/// Implicit-shift QL iteration on a real symmetric tridiagonal matrix,
/// accumulating the rotations into `z` (columns become eigenvectors).
/// `diag`/`off` are consumed; returns eigenvalues in `diag` (unsorted).
pub fn tridiagonal_ql(diag: &mut [f64], off: &mut [f64], z: &mut Matrix<c64>) {
    let n = diag.len();
    if n == 0 {
        return;
    }
    assert_eq!(off.len(), n.saturating_sub(1));
    assert_eq!(z.rows(), z.cols().max(z.rows()));
    // Pad off-diagonal with a trailing zero (classic NR layout).
    let mut e = Vec::with_capacity(n);
    e.extend_from_slice(off);
    e.push(0.0);

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find the block end m: first m ≥ l with negligible e[m].
            let mut m = l;
            while m + 1 < n {
                let dd = diag[m].abs() + diag[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            assert!(iter <= 50, "tridiagonal QL failed to converge");
            // Shift from the 2×2 at l.
            let mut g = (diag[l + 1] - diag[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            let sign_r = if g >= 0.0 { r.abs() } else { -r.abs() };
            g = diag[m] - diag[l] + e[l] / (g + sign_r);
            let (mut s, mut c) = (1.0_f64, 1.0_f64);
            let mut p = 0.0_f64;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    diag[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = diag[i + 1] - p;
                r = (diag[i] - g) * s + 2.0 * c * b;
                p = s * r;
                diag[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..z.rows() {
                    f = z[(k, i + 1)].re;
                    let fi = z[(k, i + 1)].im;
                    let zr = z[(k, i)];
                    z[(k, i + 1)] = c64::new(s * zr.re + c * f, s * zr.im + c * fi);
                    z[(k, i)] = c64::new(c * zr.re - s * f, c * zr.im - s * fi);
                }
            }
            if r == 0.0 && m > l + 1 {
                continue;
            }
            diag[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
}

/// Full Hermitian eigendecomposition via the tridiagonal pipeline.
pub fn eigh_tridiagonal(a: &Matrix<c64>) -> Eig<c64> {
    let n = a.rows();
    let (mut diag, mut off, mut q) = hermitian_to_tridiagonal(a);
    tridiagonal_ql(&mut diag, &mut off, &mut q);
    // Sort ascending, permuting eigenvector columns.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| diag[i].total_cmp(&diag[j]));
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let vectors = Matrix::from_fn(n, n, |i, j| q[(i, order[j])]);
    Eig { values, vectors }
}

/// Real-symmetric wrapper (promotes, solves, takes real parts).
pub fn eigh_tridiagonal_real(a: &Matrix<f64>) -> Eig<f64> {
    let ac = a.to_complex();
    let e = eigh_tridiagonal(&ac);
    Eig {
        values: e.values,
        vectors: Matrix::from_fn(a.rows(), a.cols(), |i, j| e.vectors[(i, j)].re()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigh::eigh;
    use crate::gemm::matmul_nh;

    fn hermitian_random(n: usize, seed: u64) -> Matrix<c64> {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let b = Matrix::from_fn(n, n, |_, _| c64::new(next(), next()));
        let bh = b.hermitian();
        Matrix::from_fn(n, n, |i, j| (b[(i, j)] + bh[(i, j)]).scale(0.5))
    }

    #[test]
    fn tridiagonalization_preserves_spectrum_structure() {
        let a = hermitian_random(12, 3);
        let (diag, off, q) = hermitian_to_tridiagonal(&a);
        // Q unitary.
        let qhq = matmul_nh(&q.hermitian(), &q.hermitian());
        for i in 0..12 {
            for j in 0..12 {
                let e = if i == j { c64::ONE } else { c64::ZERO };
                assert!(
                    (qhq[(i, j)] - e).abs() < 1e-10,
                    "Q not unitary at ({i},{j})"
                );
            }
        }
        // Q·T·Qᴴ = A with T built from (diag, off).
        let mut t = Matrix::<c64>::zeros(12, 12);
        for i in 0..12 {
            t[(i, i)] = c64::real(diag[i]);
        }
        for i in 0..11 {
            t[(i, i + 1)] = c64::real(off[i]);
            t[(i + 1, i)] = c64::real(off[i]);
        }
        let recon = matmul_nh(&crate::gemm::matmul(&q, &t), &q);
        for i in 0..12 {
            for j in 0..12 {
                assert!(
                    (recon[(i, j)] - a[(i, j)]).abs() < 1e-9,
                    "reconstruction fails at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn matches_jacobi_on_random_hermitian() {
        for &(n, seed) in &[(2usize, 1u64), (5, 2), (16, 3), (40, 4), (80, 5)] {
            let a = hermitian_random(n, seed);
            let fast = eigh_tridiagonal(&a);
            let slow = eigh(&a);
            for b in 0..n {
                assert!(
                    (fast.values[b] - slow.values[b]).abs() < 1e-8 * (1.0 + slow.values[b].abs()),
                    "n={n} band {b}: {} vs {}",
                    fast.values[b],
                    slow.values[b]
                );
            }
            // Eigenpairs verify directly.
            for b in 0..n {
                let v = fast.vectors.col(b);
                let av = a.matvec(&v);
                for i in 0..n {
                    assert!(
                        (av[i] - v[i].scale(fast.values[b])).abs() < 1e-7,
                        "n={n} eigenpair {b} residual at {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn already_tridiagonal_input() {
        // A real tridiagonal matrix with known spectrum: the discrete
        // Laplacian diag=2, off=−1 has λ_k = 2 − 2cos(kπ/(n+1)).
        let n = 10;
        let mut a = Matrix::<c64>::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = c64::real(2.0);
            if i + 1 < n {
                a[(i, i + 1)] = c64::real(-1.0);
                a[(i + 1, i)] = c64::real(-1.0);
            }
        }
        let e = eigh_tridiagonal(&a);
        for k in 1..=n {
            let exact = 2.0 - 2.0 * (k as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            assert!(
                (e.values[k - 1] - exact).abs() < 1e-10,
                "λ_{k}: {} vs {exact}",
                e.values[k - 1]
            );
        }
    }

    #[test]
    fn real_symmetric_wrapper() {
        let a = Matrix::from_fn(6, 6, |i, j| 1.0 / (1.0 + (i as f64 - j as f64).abs()));
        let e = eigh_tridiagonal_real(&a);
        for b in 0..6 {
            let v = e.vectors.col(b);
            let av = a.matvec(&v);
            for i in 0..6 {
                assert!((av[i] - e.values[b] * v[i]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn degenerate_spectrum_handled() {
        // Identity ⊕ 3·Identity blocks: heavy degeneracy.
        let n = 8;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i != j {
                c64::ZERO
            } else if i < 4 {
                c64::real(1.0)
            } else {
                c64::real(3.0)
            }
        });
        let e = eigh_tridiagonal(&a);
        for b in 0..4 {
            assert!((e.values[b] - 1.0).abs() < 1e-12);
            assert!((e.values[b + 4] - 3.0).abs() < 1e-12);
        }
    }
}
