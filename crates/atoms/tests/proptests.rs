//! Property-based tests for the atomic-structure substrate.

use ls3df_atoms::{
    topology_cutoff, znte_supercell, znteo_alloy, Species, Structure, Vff, ZNTE_LATTICE,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn neighbor_lists_are_symmetric(seed in 0u64..200, x in 0.0..0.5f64) {
        let s = znteo_alloy([2, 2, 2], ZNTE_LATTICE, x, seed);
        let nbrs = s.neighbor_list_within(topology_cutoff(&s));
        for (i, nb) in nbrs.iter().enumerate() {
            for &j in nb {
                prop_assert!(
                    nbrs[j].contains(&i),
                    "neighbor relation not symmetric: {i} → {j}"
                );
                prop_assert_ne!(i, j, "self-neighbor");
            }
        }
    }

    #[test]
    fn alloy_composition_conserved(seed in 0u64..500, x in 0.0..1.0f64) {
        let s = znteo_alloy([2, 2, 2], ZNTE_LATTICE, x, seed);
        // Substitution never changes totals: anion sites = cation sites.
        prop_assert_eq!(s.count(Species::Zn), 32);
        prop_assert_eq!(s.count(Species::Te) + s.count(Species::O), 32);
        let expect_o = (32.0 * x).round() as usize;
        prop_assert_eq!(s.count(Species::O), expect_o);
    }

    #[test]
    fn vff_energy_nonnegative_and_zero_only_at_ideal(
        seed in 0u64..100,
        amplitude in 0.0..0.5f64,
    ) {
        // Keating energy is a sum of squares: ≥ 0 everywhere, 0 at the
        // ideal geometry, > 0 once atoms are displaced.
        let s = znte_supercell([2, 2, 2], ZNTE_LATTICE);
        let nbrs = s.neighbor_list_within(topology_cutoff(&s));
        let vff = Vff::new(&s, &nbrs);
        let mut pos: Vec<f64> = s.atoms.iter().flat_map(|a| a.pos).collect();
        let mut f = vec![0.0; pos.len()];
        let e0 = vff.energy_forces(&pos, &mut f);
        prop_assert!(e0.abs() < 1e-10);
        // Displace deterministically from the seed.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        for p in pos.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *p += amplitude * (((state >> 33) as f64) / (u32::MAX as f64) - 0.5);
        }
        let e1 = vff.energy_forces(&pos, &mut f);
        prop_assert!(e1 >= 0.0);
        if amplitude > 0.05 {
            prop_assert!(e1 > 0.0, "displaced geometry must cost energy");
        }
    }

    #[test]
    fn minimum_image_distance_invariant_under_lattice_translations(
        i in 0usize..16,
        j in 0usize..16,
        shift in prop::array::uniform3(-2i64..3i64),
    ) {
        let s = znte_supercell([2, 1, 1], ZNTE_LATTICE);
        let (i, j) = (i % s.len(), j % s.len());
        let d0 = s.distance(i, j);
        // Shift atom j by whole lattice vectors: distance unchanged.
        let mut s2 = s.clone();
        for c in 0..3 {
            s2.atoms[j].pos[c] += shift[c] as f64 * s.lengths[c];
        }
        let s2 = Structure::new(s2.lengths, s2.atoms);
        prop_assert!((s2.distance(i, j) - d0).abs() < 1e-9);
    }
}
