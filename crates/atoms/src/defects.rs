//! Point-defect builders.
//!
//! The paper's conclusions list the method's applicability to
//! "nanostructures, defects, dislocations, grain boundaries, alloys and
//! large organic molecules". These helpers build the point-defect
//! configurations (substitutionals, vacancies, simple antisites) that the
//! LS3DF pipeline can then relax (VFF) and solve.

use crate::{Species, Structure};

/// Replaces the species of atom `site`; returns the old species.
/// Panics if `site` is out of range.
pub fn substitute(structure: &mut Structure, site: usize, species: Species) -> Species {
    let old = structure.atoms[site].species;
    structure.atoms[site].species = species;
    old
}

/// Removes atom `site` (a vacancy); returns the removed atom.
pub fn make_vacancy(structure: &mut Structure, site: usize) -> crate::Atom {
    structure.atoms.remove(site)
}

/// Swaps the species of two sites (an antisite pair when applied to a
/// cation/anion pair).
pub fn antisite_pair(structure: &mut Structure, a: usize, b: usize) {
    assert_ne!(a, b, "antisite_pair: need two distinct sites");
    let sa = structure.atoms[a].species;
    let sb = structure.atoms[b].species;
    structure.atoms[a].species = sb;
    structure.atoms[b].species = sa;
}

/// Index of the atom of `species` nearest to `pos` (minimum image), if
/// any.
pub fn nearest_of_species(structure: &Structure, species: Species, pos: [f64; 3]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, a) in structure.atoms.iter().enumerate() {
        if a.species != species {
            continue;
        }
        // Reuse the structure's minimum-image metric via a probe pair.
        let mut d2 = 0.0;
        for c in 0..3 {
            let l = structure.lengths[c];
            let mut x = a.pos[c] - pos[c];
            x -= (x / l).round() * l;
            d2 += x * x;
        }
        if best.map(|(_, bd)| d2 < bd).unwrap_or(true) {
            best = Some((i, d2));
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zincblende::{znte_supercell, ZNTE_LATTICE};

    #[test]
    fn substitution_changes_exactly_one_site() {
        let mut s = znte_supercell([2, 2, 2], ZNTE_LATTICE);
        let te = nearest_of_species(&s, Species::Te, [5.0, 5.0, 5.0]).unwrap();
        let old = substitute(&mut s, te, Species::O);
        assert_eq!(old, Species::Te);
        assert_eq!(s.count(Species::O), 1);
        assert_eq!(s.count(Species::Te), 31);
        assert_eq!(s.len(), 64);
    }

    #[test]
    fn vacancy_reduces_counts_and_electrons() {
        let mut s = znte_supercell([2, 2, 2], ZNTE_LATTICE);
        let n_e = s.num_electrons();
        let zn = nearest_of_species(&s, Species::Zn, [0.0, 0.0, 0.0]).unwrap();
        let removed = make_vacancy(&mut s, zn);
        assert_eq!(removed.species, Species::Zn);
        assert_eq!(s.len(), 63);
        assert_eq!(s.num_electrons(), n_e - 2.0);
    }

    #[test]
    fn antisite_preserves_composition() {
        let mut s = znte_supercell([2, 2, 2], ZNTE_LATTICE);
        let zn = nearest_of_species(&s, Species::Zn, [0.0; 3]).unwrap();
        let te = nearest_of_species(&s, Species::Te, [0.0; 3]).unwrap();
        antisite_pair(&mut s, zn, te);
        assert_eq!(s.count(Species::Zn), 32);
        assert_eq!(s.count(Species::Te), 32);
        assert_eq!(s.atoms[zn].species, Species::Te);
        assert_eq!(s.atoms[te].species, Species::Zn);
    }

    #[test]
    fn nearest_lookup_respects_periodicity() {
        let s = znte_supercell([2, 2, 2], ZNTE_LATTICE);
        // A probe just outside the far corner must find the atom at the
        // origin-side via wrapping.
        let l = s.lengths[0];
        let idx = nearest_of_species(&s, Species::Zn, [l - 0.1, l - 0.1, l - 0.1]).unwrap();
        let mut d2 = 0.0;
        for c in 0..3 {
            let mut x = s.atoms[idx].pos[c] - (l - 0.1);
            x -= (x / l).round() * l;
            d2 += x * x;
        }
        assert!(d2.sqrt() < 3.0, "wrapped distance {}", d2.sqrt());
    }
}
