//! # ls3df-atoms
//!
//! Atomic-structure substrate for the LS3DF reproduction: species and
//! model parameters, periodic supercells, the zinc-blende / ZnTe₁₋ₓOₓ
//! alloy builders matching the paper's test systems, bonded-topology
//! detection, and the Keating valence-force-field relaxation the paper
//! uses for alloy geometries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod defects;
mod species;
pub mod stats;
mod structure;
pub mod vff;
pub mod xyz;
pub mod zincblende;

pub use species::{bond_params, BondParams, Species};
pub use stats::{bond_stats, BondStats};
pub use structure::{Atom, Structure};
pub use vff::{relax, topology_cutoff, Vff, VffResult};
pub use xyz::{read_xyz, write_xyz};
pub use zincblende::{atom_count, znte_supercell, znteo_alloy, ZNTE_LATTICE};
