//! Atomic structures in periodic orthorhombic supercells.

use crate::Species;

/// One atom: species + Cartesian position (Bohr).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Atom {
    /// Chemical species.
    pub species: Species,
    /// Cartesian position in Bohr, inside `[0, L)` per axis.
    pub pos: [f64; 3],
}

/// A periodic supercell of atoms.
#[derive(Clone, Debug, PartialEq)]
pub struct Structure {
    /// Box lengths (Bohr) of the periodic supercell.
    pub lengths: [f64; 3],
    /// The atoms.
    pub atoms: Vec<Atom>,
}

impl Structure {
    /// Creates a structure, wrapping every atom into the home cell.
    pub fn new(lengths: [f64; 3], mut atoms: Vec<Atom>) -> Self {
        assert!(
            lengths.iter().all(|&l| l > 0.0),
            "Structure: box lengths must be positive"
        );
        for a in &mut atoms {
            for k in 0..3 {
                a.pos[k] = a.pos[k].rem_euclid(lengths[k]);
            }
        }
        Structure { lengths, atoms }
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True if there are no atoms.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Supercell volume (Bohr³).
    pub fn volume(&self) -> f64 {
        self.lengths[0] * self.lengths[1] * self.lengths[2]
    }

    /// Total number of valence electrons (always an integer-valued float
    /// for charge-neutral systems).
    pub fn num_electrons(&self) -> f64 {
        self.atoms.iter().map(|a| a.species.valence()).sum()
    }

    /// Count of atoms of a given species.
    pub fn count(&self, s: Species) -> usize {
        self.atoms.iter().filter(|a| a.species == s).count()
    }

    /// Minimum-image displacement from atom `i` to atom `j`.
    pub fn displacement(&self, i: usize, j: usize) -> [f64; 3] {
        let (a, b) = (self.atoms[i].pos, self.atoms[j].pos);
        let mut d = [0.0; 3];
        for k in 0..3 {
            let l = self.lengths[k];
            let mut x = b[k] - a[k];
            x -= (x / l).round() * l;
            d[k] = x;
        }
        d
    }

    /// Minimum-image distance between atoms `i` and `j`.
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        let d = self.displacement(i, j);
        (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt()
    }

    /// Chemical formula string, e.g. `Zn1728Te1674O54`.
    pub fn formula(&self) -> String {
        let mut out = String::new();
        for s in [Species::Zn, Species::Te, Species::O, Species::H] {
            let n = self.count(s);
            if n > 0 {
                out.push_str(s.symbol());
                out.push_str(&n.to_string());
            }
        }
        out
    }

    /// Builds a neighbor list with a uniform distance cutoff (Bohr) under
    /// the minimum image convention. This is the right topology detector
    /// for substitutional alloys, where an O atom sits on a Te *lattice
    /// site* and is therefore a full Zn–Te bond length from its neighbors
    /// before relaxation.
    pub fn neighbor_list_within(&self, cutoff: f64) -> Vec<Vec<usize>> {
        self.neighbor_search(|_, _| cutoff, cutoff)
    }

    /// Builds the bonded neighbor list: pairs within
    /// `scale · (r_cov(a) + r_cov(b))` under the minimum image convention.
    /// For ideal zinc blende a scale of ~1.15 recovers exactly the four
    /// tetrahedral neighbors.
    pub fn neighbor_list(&self, scale: f64) -> Vec<Vec<usize>> {
        let max_cut = 2.0
            * scale
            * self
                .atoms
                .iter()
                .map(|a| a.species.covalent_radius())
                .fold(0.0_f64, f64::max);
        self.neighbor_search(
            |a, b| scale * (a.covalent_radius() + b.covalent_radius()),
            max_cut,
        )
    }

    fn neighbor_search(
        &self,
        cutoff_for: impl Fn(Species, Species) -> f64,
        max_cut: f64,
    ) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut nbrs = vec![Vec::new(); n];
        if max_cut <= 0.0 || n == 0 {
            return nbrs; // no bondable pairs (e.g. single-species model crystals)
        }
        // Cell-list accelerated search for larger systems.
        let cells: [usize; 3] =
            std::array::from_fn(|k| ((self.lengths[k] / max_cut).floor() as usize).clamp(1, 1 + n));
        let cell_of = |pos: [f64; 3]| -> [usize; 3] {
            std::array::from_fn(|k| {
                (((pos[k] / self.lengths[k]) * cells[k] as f64).floor() as usize).min(cells[k] - 1)
            })
        };
        let cell_idx = |c: [usize; 3]| (c[2] * cells[1] + c[1]) * cells[0] + c[0];
        let mut bins = vec![Vec::new(); cells[0] * cells[1] * cells[2]];
        for (i, a) in self.atoms.iter().enumerate() {
            bins[cell_idx(cell_of(a.pos))].push(i);
        }
        let few_cells = cells.iter().any(|&c| c < 3);
        for i in 0..n {
            let ai = &self.atoms[i];
            let mut candidates: Vec<usize> = Vec::new();
            if few_cells {
                candidates.extend(0..n);
            } else {
                let c = cell_of(ai.pos);
                for dz in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            let cc = [
                                (c[0] as i64 + dx).rem_euclid(cells[0] as i64) as usize,
                                (c[1] as i64 + dy).rem_euclid(cells[1] as i64) as usize,
                                (c[2] as i64 + dz).rem_euclid(cells[2] as i64) as usize,
                            ];
                            candidates.extend(&bins[cell_idx(cc)]);
                        }
                    }
                }
            }
            for &j in &candidates {
                if j == i {
                    continue;
                }
                let cut = cutoff_for(ai.species, self.atoms[j].species);
                if self.distance(i, j) <= cut {
                    nbrs[i].push(j);
                }
            }
            nbrs[i].sort_unstable();
            nbrs[i].dedup();
        }
        nbrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_wrapped_into_cell() {
        let s = Structure::new(
            [10.0, 10.0, 10.0],
            vec![Atom {
                species: Species::Zn,
                pos: [-1.0, 12.0, 5.0],
            }],
        );
        assert_eq!(s.atoms[0].pos, [9.0, 2.0, 5.0]);
    }

    #[test]
    fn electrons_counted() {
        let s = Structure::new(
            [10.0, 10.0, 10.0],
            vec![
                Atom {
                    species: Species::Zn,
                    pos: [0.0; 3],
                },
                Atom {
                    species: Species::Te,
                    pos: [2.0, 0.0, 0.0],
                },
            ],
        );
        assert_eq!(s.num_electrons(), 8.0);
        assert_eq!(s.formula(), "Zn1Te1");
    }

    #[test]
    fn minimum_image_distance() {
        let s = Structure::new(
            [10.0, 10.0, 10.0],
            vec![
                Atom {
                    species: Species::Zn,
                    pos: [0.5, 0.0, 0.0],
                },
                Atom {
                    species: Species::Te,
                    pos: [9.5, 0.0, 0.0],
                },
            ],
        );
        assert!((s.distance(0, 1) - 1.0).abs() < 1e-12);
        assert!((s.displacement(0, 1)[0] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn neighbor_list_finds_pair() {
        let s = Structure::new(
            [20.0, 20.0, 20.0],
            vec![
                Atom {
                    species: Species::Zn,
                    pos: [0.0; 3],
                },
                Atom {
                    species: Species::Te,
                    pos: [2.88, 2.88, 2.88],
                }, // ~4.99 Bohr away
                Atom {
                    species: Species::Te,
                    pos: [10.0, 10.0, 10.0],
                }, // far
            ],
        );
        let nbrs = s.neighbor_list(1.15);
        assert_eq!(nbrs[0], vec![1]);
        assert_eq!(nbrs[1], vec![0]);
        assert!(nbrs[2].is_empty());
    }
}
