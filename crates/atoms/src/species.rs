//! Chemical species and their model parameters.
//!
//! The paper's test systems are ZnTe₁₋ₓOₓ alloys (plus pseudo-hydrogen
//! passivants on fragment surfaces). Parameters here are *model* values in
//! atomic units chosen to reproduce the qualitative physics: Zn–O bonds are
//! much shorter and stiffer than Zn–Te bonds, and the oxygen site is more
//! attractive (deeper local potential), which is what pushes an O-induced
//! band into the ZnTe gap.

/// Chemical species appearing in the LS3DF test systems.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Species {
    /// Zinc (cation sublattice).
    Zn,
    /// Tellurium (anion sublattice).
    Te,
    /// Oxygen (substitutional on the Te sublattice).
    O,
    /// Passivant pseudo-hydrogen, placed on dangling bonds created by the
    /// fragment division (paper ref. [18]). The fractional valence charge
    /// depends on which bond it saturates; see [`Species::passivant_charge`].
    H,
}

impl Species {
    /// Number of valence electrons contributed in the model calculation.
    ///
    /// The paper excludes the Zn d-states, giving ~4 valence electrons per
    /// atom on average; we keep the same average with Zn→2, Te→6, O→6.
    pub fn valence(self) -> f64 {
        match self {
            Species::Zn => 2.0,
            Species::Te => 6.0,
            Species::O => 6.0,
            Species::H => 1.0,
        }
    }

    /// Ionic (pseudo) charge seen by the electrons; equal to the valence
    /// so the supercell is charge neutral.
    pub fn ion_charge(self) -> f64 {
        self.valence()
    }

    /// Covalent radius in Bohr (used for neighbor detection).
    pub fn covalent_radius(self) -> f64 {
        match self {
            Species::Zn => 2.31, // 1.22 Å
            Species::Te => 2.61, // 1.38 Å
            Species::O => 1.25,  // 0.66 Å
            Species::H => 0.59,  // 0.31 Å
        }
    }

    /// Fractional charge of the pseudo-hydrogen that passivates a dangling
    /// bond pointing *toward* this species. In zinc-blende II-VI
    /// semiconductors a cation dangling bond is saturated by a pseudo-H of
    /// charge 1.5 and an anion dangling bond by 0.5 (8 − valence)/4·... —
    /// we use the standard II-VI values.
    pub fn passivant_charge(self) -> f64 {
        match self {
            // Bond cut next to a Zn atom: the missing anion supplied 6/4
            // electrons per bond → pseudo-H charge 1.5.
            Species::Zn => 1.5,
            // Bond cut next to a Te/O atom: the missing cation supplied 2/4
            // electrons per bond → pseudo-H charge 0.5.
            Species::Te | Species::O => 0.5,
            Species::H => 1.0,
        }
    }

    /// Short symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            Species::Zn => "Zn",
            Species::Te => "Te",
            Species::O => "O",
            Species::H => "H",
        }
    }
}

impl std::fmt::Display for Species {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Keating valence-force-field parameters for a bonded pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BondParams {
    /// Equilibrium bond length (Bohr).
    pub d0: f64,
    /// Bond-stretch constant α (Hartree/Bohr², model scale).
    pub alpha: f64,
    /// Angle-bend constant β (Hartree/Bohr², model scale).
    pub beta: f64,
}

/// Returns VFF parameters for a bonded species pair, or `None` if the pair
/// does not form bonds in these structures.
pub fn bond_params(a: Species, b: Species) -> Option<BondParams> {
    use Species::*;
    let key = if (a as u8) <= (b as u8) {
        (a, b)
    } else {
        (b, a)
    };
    match key {
        // Zn–Te: a₀(ZnTe) = 11.535 Bohr → d₀ = √3/4·a₀ (exact, so the ideal
        // crystal is the exact VFF minimum).
        (Zn, Te) => Some(BondParams {
            d0: 4.994801516,
            alpha: 0.060,
            beta: 0.009,
        }),
        // Zn–O: much shorter (ZnO wurtzite bond ≈ 1.98 Å ≈ 3.74 Bohr) and stiffer.
        (Zn, O) => Some(BondParams {
            d0: 3.742,
            alpha: 0.110,
            beta: 0.016,
        }),
        // Passivant bonds: fractions of the bulk bond length.
        (Zn, H) => Some(BondParams {
            d0: 2.95,
            alpha: 0.120,
            beta: 0.010,
        }),
        (Te, H) => Some(BondParams {
            d0: 3.10,
            alpha: 0.120,
            beta: 0.010,
        }),
        (O, H) => Some(BondParams {
            d0: 1.83,
            alpha: 0.160,
            beta: 0.014,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_valence_matches_paper() {
        // Paper §V: "in average, there are four valence electrons per atom"
        // for the Zn(Te,O) alloy with Zn d-states excluded.
        let avg = (Species::Zn.valence() + Species::Te.valence()) / 2.0;
        assert_eq!(avg, 4.0);
    }

    #[test]
    fn bond_params_symmetric() {
        assert_eq!(
            bond_params(Species::Zn, Species::Te),
            bond_params(Species::Te, Species::Zn)
        );
        assert_eq!(
            bond_params(Species::O, Species::Zn),
            bond_params(Species::Zn, Species::O)
        );
    }

    #[test]
    fn unbonded_pairs_rejected() {
        assert!(bond_params(Species::Te, Species::O).is_none());
        assert!(bond_params(Species::Zn, Species::Zn).is_none());
    }

    #[test]
    fn zno_shorter_and_stiffer_than_znte() {
        let znte = bond_params(Species::Zn, Species::Te).unwrap();
        let zno = bond_params(Species::Zn, Species::O).unwrap();
        assert!(zno.d0 < znte.d0);
        assert!(zno.alpha > znte.alpha);
    }

    #[test]
    fn passivant_charges_sum_to_bond_electrons() {
        // Cation-side + anion-side passivants replace one full bond pair
        // (2 electrons): 1.5 + 0.5 = 2.
        assert_eq!(
            Species::Zn.passivant_charge() + Species::Te.passivant_charge(),
            2.0
        );
    }
}
