//! Zinc-blende supercell and ZnTe₁₋ₓOₓ alloy builders.
//!
//! The paper's test systems are supercells of `m1 × m2 × m3` conventional
//! cubic eight-atom zinc-blende cells (so `8·m1·m2·m3` atoms), with 3% of
//! the Te sites randomly substituted by oxygen.

use crate::{Atom, Species, Structure};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// ZnTe conventional cubic lattice constant in Bohr (6.104 Å).
pub const ZNTE_LATTICE: f64 = 11.535;

/// Fractional positions of the 8 atoms in the conventional zinc-blende
/// cell: 4 cations (fcc) + 4 anions (fcc shifted by ¼,¼,¼).
const CATION_SITES: [[f64; 3]; 4] = [
    [0.0, 0.0, 0.0],
    [0.0, 0.5, 0.5],
    [0.5, 0.0, 0.5],
    [0.5, 0.5, 0.0],
];
const ANION_SITES: [[f64; 3]; 4] = [
    [0.25, 0.25, 0.25],
    [0.25, 0.75, 0.75],
    [0.75, 0.25, 0.75],
    [0.75, 0.75, 0.25],
];

/// Builds a pristine ZnTe supercell of `m = [m1, m2, m3]` conventional
/// cells with lattice constant `a` (Bohr). Atom count is `8·m1·m2·m3`.
pub fn znte_supercell(m: [usize; 3], a: f64) -> Structure {
    assert!(m.iter().all(|&v| v >= 1), "znte_supercell: m must be ≥ 1");
    let lengths = [m[0] as f64 * a, m[1] as f64 * a, m[2] as f64 * a];
    let mut atoms = Vec::with_capacity(8 * m[0] * m[1] * m[2]);
    for cz in 0..m[2] {
        for cy in 0..m[1] {
            for cx in 0..m[0] {
                let base = [cx as f64 * a, cy as f64 * a, cz as f64 * a];
                for site in CATION_SITES {
                    atoms.push(Atom {
                        species: Species::Zn,
                        pos: [
                            base[0] + site[0] * a,
                            base[1] + site[1] * a,
                            base[2] + site[2] * a,
                        ],
                    });
                }
                for site in ANION_SITES {
                    atoms.push(Atom {
                        species: Species::Te,
                        pos: [
                            base[0] + site[0] * a,
                            base[1] + site[1] * a,
                            base[2] + site[2] * a,
                        ],
                    });
                }
            }
        }
    }
    Structure::new(lengths, atoms)
}

/// Builds a ZnTe₁₋ₓOₓ alloy supercell: a ZnTe supercell with a fraction
/// `x_oxygen` of the Te sites substituted by O, chosen uniformly at random
/// with the given seed (deterministic for reproducibility).
///
/// The paper uses x ≈ 0.03 ("3% of Te atoms being replaced by oxygen").
pub fn znteo_alloy(m: [usize; 3], a: f64, x_oxygen: f64, seed: u64) -> Structure {
    assert!(
        (0.0..=1.0).contains(&x_oxygen),
        "znteo_alloy: x must be in [0,1]"
    );
    let mut s = znte_supercell(m, a);
    let te_sites: Vec<usize> = s
        .atoms
        .iter()
        .enumerate()
        .filter(|(_, at)| at.species == Species::Te)
        .map(|(i, _)| i)
        .collect();
    let n_sub = ((te_sites.len() as f64) * x_oxygen).round() as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen = te_sites;
    chosen.shuffle(&mut rng);
    for &idx in chosen.iter().take(n_sub) {
        s.atoms[idx].species = Species::O;
    }
    s
}

/// The paper's standard test-system naming: `m1 × m2 × m3` cells →
/// `8·m1·m2·m3` atoms.
pub fn atom_count(m: [usize; 3]) -> usize {
    8 * m[0] * m[1] * m[2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_counts_match_paper_table() {
        // Paper §V: 3×3×3 → 216, …, 12×12×12 → 13824 atoms.
        for (m, n) in [
            ([3, 3, 3], 216),
            ([4, 4, 4], 512),
            ([5, 5, 5], 1000),
            ([6, 6, 6], 1728),
            ([8, 6, 9], 3456),
            ([8, 8, 8], 4096),
            ([10, 10, 8], 6400),
            ([12, 12, 12], 13824),
            ([16, 16, 8], 16384),
        ] {
            assert_eq!(atom_count(m), n);
            if n <= 1000 {
                assert_eq!(znte_supercell(m, ZNTE_LATTICE).len(), n);
            }
        }
    }

    #[test]
    fn every_atom_has_four_tetrahedral_neighbors() {
        let s = znte_supercell([2, 2, 2], ZNTE_LATTICE);
        let nbrs = s.neighbor_list(1.15);
        let d0 = 3.0_f64.sqrt() / 4.0 * ZNTE_LATTICE;
        for (i, nb) in nbrs.iter().enumerate() {
            assert_eq!(nb.len(), 4, "atom {i} has {} neighbors", nb.len());
            for &j in nb {
                assert_ne!(s.atoms[i].species, s.atoms[j].species, "homopolar bond");
                assert!((s.distance(i, j) - d0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn alloy_fraction_respected() {
        let s = znteo_alloy([3, 3, 3], ZNTE_LATTICE, 0.03, 42);
        let n_te_sites = 4 * 27;
        let n_o = s.count(Species::O);
        assert_eq!(n_o, ((n_te_sites as f64) * 0.03).round() as usize);
        assert_eq!(s.count(Species::Te) + n_o, n_te_sites);
        assert_eq!(s.count(Species::Zn), n_te_sites);
    }

    #[test]
    fn alloy_is_deterministic_per_seed() {
        let a = znteo_alloy([2, 2, 2], ZNTE_LATTICE, 0.25, 7);
        let b = znteo_alloy([2, 2, 2], ZNTE_LATTICE, 0.25, 7);
        let c = znteo_alloy([2, 2, 2], ZNTE_LATTICE, 0.25, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn paper_formula_reproduced() {
        // Paper Fig. 6 caption: Zn1728 Te1674 O54 for the 8×6×9 system at 3%.
        let s = znteo_alloy([8, 6, 9], ZNTE_LATTICE, 0.03, 1);
        assert_eq!(s.count(Species::Zn), 1728);
        assert_eq!(s.count(Species::O), (1728.0_f64 * 0.03).round() as usize);
        assert_eq!(s.count(Species::Te), 1728 - s.count(Species::O));
        assert_eq!(
            s.formula(),
            format!(
                "Zn1728Te{}O{}",
                1728 - s.count(Species::O),
                s.count(Species::O)
            )
        );
    }

    #[test]
    fn charge_neutral_average_four_electrons() {
        let s = znte_supercell([2, 2, 2], ZNTE_LATTICE);
        assert_eq!(s.num_electrons(), 4.0 * s.len() as f64);
    }
}
