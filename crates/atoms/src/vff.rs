//! Keating valence force field (VFF) relaxation.
//!
//! The paper relaxes the ZnTeO alloy geometries with a classical VFF
//! (ref. [19]) rather than ab initio forces: "we found that the atomic
//! relaxation can be described accurately by the classical valence force
//! field (VFF) method". We implement the standard Keating form
//!
//! ```text
//! E = Σ_bonds (3α/16·d₀²)·(r·r − d₀²)²
//!   + Σ_angles (3β/8·d₀ᵢⱼd₀ᵢₖ)·(rᵢⱼ·rᵢₖ + d₀ᵢⱼd₀ᵢₖ/3)²
//! ```
//!
//! and relax with damped steepest descent (adaptive step), which is robust
//! and plenty fast for the distortion scale of a 3% alloy.

use crate::{bond_params, Structure};

/// Result of a VFF relaxation.
#[derive(Clone, Debug)]
pub struct VffResult {
    /// Final Keating energy (model Hartree).
    pub energy: f64,
    /// Largest force component at the final geometry (Ha/Bohr).
    pub max_force: f64,
    /// Number of steepest-descent steps taken.
    pub steps: usize,
    /// Largest displacement of any atom from the ideal input geometry (Bohr).
    pub max_displacement: f64,
}

/// Keating VFF energy + analytic forces for a structure with the given
/// bonded neighbor list.
pub struct Vff<'a> {
    structure: &'a Structure,
    neighbors: &'a [Vec<usize>],
}

impl<'a> Vff<'a> {
    /// Creates the force field for a structure and its neighbor topology.
    pub fn new(structure: &'a Structure, neighbors: &'a [Vec<usize>]) -> Self {
        assert_eq!(
            structure.len(),
            neighbors.len(),
            "Vff: topology size mismatch"
        );
        Vff {
            structure,
            neighbors,
        }
    }

    /// Energy and forces at atom positions `pos` (flattened `3n`); the
    /// neighbor topology is fixed at construction.
    pub fn energy_forces(&self, pos: &[f64], forces: &mut [f64]) -> f64 {
        let n = self.structure.len();
        assert_eq!(pos.len(), 3 * n);
        assert_eq!(forces.len(), 3 * n);
        forces.fill(0.0);
        let lengths = self.structure.lengths;

        let disp = |i: usize, j: usize| -> [f64; 3] {
            let mut d = [0.0; 3];
            for k in 0..3 {
                let l = lengths[k];
                let mut x = pos[3 * j + k] - pos[3 * i + k];
                x -= (x / l).round() * l;
                d[k] = x;
            }
            d
        };

        let mut energy = 0.0;
        for i in 0..n {
            let si = self.structure.atoms[i].species;
            let nbrs = &self.neighbors[i];

            // Bond-stretch terms (count each bond once via i < j).
            for &j in nbrs {
                if j <= i {
                    continue;
                }
                let sj = self.structure.atoms[j].species;
                let Some(bp) = bond_params(si, sj) else {
                    continue;
                };
                let r = disp(i, j);
                let r2 = r[0] * r[0] + r[1] * r[1] + r[2] * r[2];
                let d2 = bp.d0 * bp.d0;
                let k = 3.0 * bp.alpha / (16.0 * d2);
                let q = r2 - d2;
                energy += k * q * q;
                // dE/dr_j = 4·k·q·r ; force = −grad.
                for c in 0..3 {
                    let f = 4.0 * k * q * r[c];
                    forces[3 * j + c] -= f;
                    forces[3 * i + c] += f;
                }
            }

            // Angle terms around atom i (pairs of distinct neighbors).
            for a in 0..nbrs.len() {
                for b in (a + 1)..nbrs.len() {
                    let (j, k_at) = (nbrs[a], nbrs[b]);
                    let sj = self.structure.atoms[j].species;
                    let sk = self.structure.atoms[k_at].species;
                    let (Some(bpj), Some(bpk)) = (bond_params(si, sj), bond_params(si, sk)) else {
                        continue;
                    };
                    let rij = disp(i, j);
                    let rik = disp(i, k_at);
                    let dot = rij[0] * rik[0] + rij[1] * rik[1] + rij[2] * rik[2];
                    let d0prod = bpj.d0 * bpk.d0;
                    let beta = 0.5 * (bpj.beta + bpk.beta);
                    let kc = 3.0 * beta / (8.0 * d0prod);
                    let q = dot + d0prod / 3.0;
                    energy += kc * q * q;
                    // dq/dr_j = r_ik, dq/dr_k = r_ij, dq/dr_i = −(r_ij + r_ik).
                    for c in 0..3 {
                        let g = 2.0 * kc * q;
                        forces[3 * j + c] -= g * rik[c];
                        forces[3 * k_at + c] -= g * rij[c];
                        forces[3 * i + c] += g * (rij[c] + rik[c]);
                    }
                }
            }
        }
        energy
    }
}

/// Bond-topology distance cutoff for these crystals: 1.15× the longest
/// equilibrium bond among species pairs present. Catches substitutional
/// O atoms still sitting on Te lattice sites before relaxation.
pub fn topology_cutoff(structure: &Structure) -> f64 {
    use crate::Species::*;
    let mut max_d0: f64 = 0.0;
    let present: Vec<_> = [Zn, Te, O, H]
        .into_iter()
        .filter(|&s| structure.count(s) > 0)
        .collect();
    for &a in &present {
        for &b in &present {
            if let Some(bp) = bond_params(a, b) {
                max_d0 = max_d0.max(bp.d0);
            }
        }
    }
    1.15 * max_d0
}

/// Relaxes the structure in place with damped steepest descent until the
/// maximum force component drops below `ftol` (Ha/Bohr) or `max_steps` is
/// reached. Returns relaxation statistics.
pub fn relax(structure: &mut Structure, ftol: f64, max_steps: usize) -> VffResult {
    let neighbors = structure.neighbor_list_within(topology_cutoff(structure));
    let n = structure.len();
    let mut pos: Vec<f64> = structure.atoms.iter().flat_map(|a| a.pos).collect();
    let pos0 = pos.clone();
    let mut forces = vec![0.0; 3 * n];
    let mut step = 1.0; // Bohr²/Ha units of displacement per unit force.
    let vff = Vff::new(structure, &neighbors);

    let mut energy = vff.energy_forces(&pos, &mut forces);
    let mut steps = 0;
    let mut max_f = max_component(&forces);
    while max_f > ftol && steps < max_steps {
        // Trial move.
        let trial: Vec<f64> = pos
            .iter()
            .zip(&forces)
            .map(|(&x, &f)| x + step * f)
            .collect();
        let mut trial_forces = vec![0.0; 3 * n];
        let trial_energy = vff.energy_forces(&trial, &mut trial_forces);
        if trial_energy < energy {
            pos = trial;
            forces = trial_forces;
            energy = trial_energy;
            step *= 1.1;
        } else {
            step *= 0.5;
            if step < 1e-12 {
                break;
            }
        }
        max_f = max_component(&forces);
        steps += 1;
    }

    let mut max_disp = 0.0_f64;
    for i in 0..n {
        let mut d2 = 0.0;
        for c in 0..3 {
            let l = structure.lengths[c];
            let mut dx = pos[3 * i + c] - pos0[3 * i + c];
            dx -= (dx / l).round() * l;
            d2 += dx * dx;
        }
        max_disp = max_disp.max(d2.sqrt());
    }

    for (i, atom) in structure.atoms.iter_mut().enumerate() {
        for c in 0..3 {
            atom.pos[c] = pos[3 * i + c].rem_euclid(structure.lengths[c]);
        }
    }
    VffResult {
        energy,
        max_force: max_f,
        steps,
        max_displacement: max_disp,
    }
}

fn max_component(v: &[f64]) -> f64 {
    v.iter().map(|x| x.abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zincblende::{znte_supercell, znteo_alloy, ZNTE_LATTICE};

    #[test]
    fn ideal_znte_is_equilibrium() {
        // For pristine ZnTe at its own lattice constant, bond lengths equal
        // d₀ and tetrahedral angles satisfy cosθ = −1/3, so both Keating
        // terms vanish identically: zero energy, zero force.
        let s = znte_supercell([2, 2, 2], ZNTE_LATTICE);
        let nbrs = s.neighbor_list_within(topology_cutoff(&s));
        let vff = Vff::new(&s, &nbrs);
        let pos: Vec<f64> = s.atoms.iter().flat_map(|a| a.pos).collect();
        let mut f = vec![0.0; pos.len()];
        let e = vff.energy_forces(&pos, &mut f);
        assert!(e.abs() < 1e-12, "ideal ZnTe energy = {e}");
        assert!(max_component(&f) < 1e-8);
    }

    #[test]
    fn forces_match_finite_differences() {
        let s = znteo_alloy([2, 2, 2], ZNTE_LATTICE, 0.25, 3);
        let nbrs = s.neighbor_list_within(topology_cutoff(&s));
        let vff = Vff::new(&s, &nbrs);
        let mut pos: Vec<f64> = s.atoms.iter().flat_map(|a| a.pos).collect();
        let mut f = vec![0.0; pos.len()];
        let _ = vff.energy_forces(&pos, &mut f);
        let h = 1e-5;
        let mut scratch = vec![0.0; pos.len()];
        for &idx in &[0usize, 7, 20, 45] {
            let orig = pos[idx];
            pos[idx] = orig + h;
            let ep = vff.energy_forces(&pos, &mut scratch);
            pos[idx] = orig - h;
            let em = vff.energy_forces(&pos, &mut scratch);
            pos[idx] = orig;
            let fd = -(ep - em) / (2.0 * h);
            assert!(
                (fd - f[idx]).abs() < 1e-6 * (1.0 + fd.abs()),
                "force mismatch at dof {idx}: analytic {} vs fd {}",
                f[idx],
                fd
            );
        }
    }

    #[test]
    fn alloy_relaxation_contracts_zno_bonds() {
        let mut s = znteo_alloy([2, 2, 2], ZNTE_LATTICE, 0.25, 11);
        let nbrs = s.neighbor_list_within(topology_cutoff(&s));
        // Identify one Zn–O bond before relaxation.
        let (zn, o) = {
            let mut found = None;
            'outer: for (i, nb) in nbrs.iter().enumerate() {
                if s.atoms[i].species == crate::Species::O {
                    for &j in nb {
                        if s.atoms[j].species == crate::Species::Zn {
                            found = Some((j, i));
                            break 'outer;
                        }
                    }
                }
            }
            found.expect("alloy should contain a Zn–O bond")
        };
        let before = s.distance(zn, o);
        let res = relax(&mut s, 1e-4, 3000);
        let after = s.distance(zn, o);
        assert!(res.energy >= 0.0);
        assert!(
            after < before,
            "Zn–O bond should contract ({before} → {after})"
        );
        // It should move toward the ZnO equilibrium length but not all the
        // way (the lattice resists): strictly between d0(ZnO) and d0(ZnTe).
        assert!(after > 3.742 && after < 4.994);
        assert!(res.max_displacement > 0.01);
    }

    #[test]
    fn relaxation_reduces_energy_monotonically_to_tolerance() {
        let mut s = znteo_alloy([2, 2, 2], ZNTE_LATTICE, 0.25, 5);
        let nbrs = s.neighbor_list_within(topology_cutoff(&s));
        let vff = Vff::new(&s, &nbrs);
        let pos: Vec<f64> = s.atoms.iter().flat_map(|a| a.pos).collect();
        let mut f = vec![0.0; pos.len()];
        let e0 = vff.energy_forces(&pos, &mut f);
        let res = relax(&mut s, 1e-5, 5000);
        assert!(res.energy < e0, "relaxation must lower the energy");
        assert!(res.max_force <= 1e-5 || res.steps == 5000);
    }
}
