//! Structural statistics: bond-length distributions per species pair.
//!
//! Used to verify the VFF relaxation physics the paper relies on (§V):
//! substitutional O contracts its four Zn–O bonds well below the Zn–Te
//! bulk length while the surrounding lattice stays near ideal.

use crate::{Species, Structure};

/// Summary statistics of the bond lengths between one species pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BondStats {
    /// Number of bonds found.
    pub count: usize,
    /// Mean length (Bohr).
    pub mean: f64,
    /// Minimum length (Bohr).
    pub min: f64,
    /// Maximum length (Bohr).
    pub max: f64,
    /// Standard deviation (Bohr).
    pub std_dev: f64,
}

/// Computes bond-length statistics for bonds between species `a` and `b`
/// given a bonded neighbor topology.
pub fn bond_stats(
    structure: &Structure,
    neighbors: &[Vec<usize>],
    a: Species,
    b: Species,
) -> Option<BondStats> {
    let mut lengths = Vec::new();
    for (i, nbrs) in neighbors.iter().enumerate() {
        for &j in nbrs {
            if j <= i {
                continue; // count each bond once
            }
            let (si, sj) = (structure.atoms[i].species, structure.atoms[j].species);
            if (si == a && sj == b) || (si == b && sj == a) {
                lengths.push(structure.distance(i, j));
            }
        }
    }
    if lengths.is_empty() {
        return None;
    }
    let n = lengths.len() as f64;
    let mean = lengths.iter().sum::<f64>() / n;
    let var = lengths.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / n;
    Some(BondStats {
        count: lengths.len(),
        mean,
        min: lengths.iter().cloned().fold(f64::INFINITY, f64::min),
        max: lengths.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        std_dev: var.sqrt(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vff::{relax, topology_cutoff};
    use crate::zincblende::{znte_supercell, znteo_alloy, ZNTE_LATTICE};

    #[test]
    fn ideal_znte_bonds_are_uniform() {
        let s = znte_supercell([2, 2, 2], ZNTE_LATTICE);
        let nbrs = s.neighbor_list_within(topology_cutoff(&s));
        let st = bond_stats(&s, &nbrs, Species::Zn, Species::Te).unwrap();
        assert_eq!(st.count, 128); // 64 atoms × 4 bonds / 2
        assert!(st.std_dev < 1e-9);
        assert!((st.mean - 3.0_f64.sqrt() / 4.0 * ZNTE_LATTICE).abs() < 1e-6);
    }

    #[test]
    fn relaxed_alloy_contracts_zn_o_bonds() {
        let mut s = znteo_alloy([2, 2, 2], ZNTE_LATTICE, 0.25, 7);
        relax(&mut s, 1e-4, 3000);
        let nbrs = s.neighbor_list_within(topology_cutoff(&s));
        let zn_o = bond_stats(&s, &nbrs, Species::Zn, Species::O).unwrap();
        let zn_te = bond_stats(&s, &nbrs, Species::Zn, Species::Te).unwrap();
        assert!(zn_o.count >= 4);
        // Relaxation pulls Zn–O well below Zn–Te (paper §V physics).
        assert!(
            zn_o.mean < zn_te.mean - 0.3,
            "Zn–O {:.3} vs Zn–Te {:.3}",
            zn_o.mean,
            zn_te.mean
        );
        // Zn–Te bonds stay near the bulk value.
        // At 25% O the matrix is visibly strained; stays within ~8% of bulk.
        assert!(
            (zn_te.mean - 4.9948).abs() < 0.4,
            "Zn–Te mean {:.3}",
            zn_te.mean
        );
    }

    #[test]
    fn missing_pair_returns_none() {
        let s = znte_supercell([2, 2, 2], ZNTE_LATTICE);
        let nbrs = s.neighbor_list_within(topology_cutoff(&s));
        assert!(bond_stats(&s, &nbrs, Species::Zn, Species::O).is_none());
    }
}
