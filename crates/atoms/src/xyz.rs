//! XYZ structure file I/O (Ångström, the format's convention).
//!
//! Lets users inspect the generated/relaxed alloys in standard viewers
//! and feed externally relaxed geometries into the solver.

use crate::{Atom, Species, Structure};
use std::io::{BufRead, Write};
use std::path::Path;

/// Bohr per Ångström.
pub const BOHR_PER_ANGSTROM: f64 = 1.8897259886;

/// Writes a structure as an (extended) XYZ file; the comment line records
/// the periodic box in the common `Lattice="..."` convention.
pub fn write_xyz(s: &Structure, path: &Path) -> std::io::Result<()> {
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "{}", s.len())?;
    let to_ang = 1.0 / BOHR_PER_ANGSTROM;
    writeln!(
        w,
        "Lattice=\"{:.8} 0 0 0 {:.8} 0 0 0 {:.8}\" Properties=species:S:1:pos:R:3",
        s.lengths[0] * to_ang,
        s.lengths[1] * to_ang,
        s.lengths[2] * to_ang
    )?;
    for a in &s.atoms {
        writeln!(
            w,
            "{} {:.8} {:.8} {:.8}",
            a.species.symbol(),
            a.pos[0] * to_ang,
            a.pos[1] * to_ang,
            a.pos[2] * to_ang
        )?;
    }
    Ok(())
}

/// Reads an XYZ file written by [`write_xyz`] (requires the `Lattice`
/// comment for the periodic box).
///
/// Parse errors carry the file path, 1-based line number, and the field
/// that failed, so a bad geometry in a 10⁵-atom file is locatable.
pub fn read_xyz(path: &Path) -> std::io::Result<Structure> {
    let f = std::fs::File::open(path)?;
    let mut lines = std::io::BufReader::new(f).lines();
    let bad = |line: usize, m: String| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{}:{line}: {m}", path.display()),
        )
    };
    let first = lines.next().ok_or_else(|| bad(1, "empty file".into()))??;
    let n: usize = first
        .trim()
        .parse()
        .map_err(|_| bad(1, format!("bad atom count `{}`", first.trim())))?;
    let comment = lines
        .next()
        .ok_or_else(|| bad(2, "missing comment line".into()))??;
    let lat_start = comment
        .find("Lattice=\"")
        .ok_or_else(|| bad(2, "missing `Lattice=\"…\"` in comment line".into()))?
        + 9;
    let lat_end = comment[lat_start..]
        .find('"')
        .ok_or_else(|| bad(2, "unterminated `Lattice=\"…\"`".into()))?
        + lat_start;
    let mut nums = Vec::with_capacity(9);
    for (k, t) in comment[lat_start..lat_end].split_whitespace().enumerate() {
        nums.push(
            t.parse::<f64>()
                .map_err(|_| bad(2, format!("lattice entry {k} `{t}` is not a number")))?,
        );
    }
    if nums.len() != 9 {
        return Err(bad(
            2,
            format!("lattice must have 9 entries, found {}", nums.len()),
        ));
    }
    let lengths = [
        nums[0] * BOHR_PER_ANGSTROM,
        nums[4] * BOHR_PER_ANGSTROM,
        nums[8] * BOHR_PER_ANGSTROM,
    ];
    let mut atoms = Vec::with_capacity(n);
    for i in 0..n {
        let line_no = 3 + i;
        let line = lines.next().ok_or_else(|| {
            bad(
                line_no,
                format!("truncated atom list: atom {i} of {n} missing"),
            )
        })??;
        let mut tok = line.split_whitespace();
        let sym = tok
            .next()
            .ok_or_else(|| bad(line_no, format!("atom {i}: missing species")))?;
        let species = match sym {
            "Zn" => Species::Zn,
            "Te" => Species::Te,
            "O" => Species::O,
            "H" => Species::H,
            other => return Err(bad(line_no, format!("atom {i}: unknown species `{other}`"))),
        };
        let mut pos = [0.0; 3];
        for (axis, p) in pos.iter_mut().enumerate() {
            let axis_name = ["x", "y", "z"][axis];
            let t = tok.next().ok_or_else(|| {
                bad(
                    line_no,
                    format!("atom {i} ({sym}): missing {axis_name} coordinate"),
                )
            })?;
            *p = t.parse::<f64>().map_err(|_| {
                bad(
                    line_no,
                    format!("atom {i} ({sym}): bad {axis_name} coordinate `{t}`"),
                )
            })? * BOHR_PER_ANGSTROM;
        }
        atoms.push(Atom { species, pos });
    }
    Ok(Structure::new(lengths, atoms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zincblende::{znteo_alloy, ZNTE_LATTICE};

    #[test]
    fn roundtrip_preserves_structure() {
        let s = znteo_alloy([2, 2, 2], ZNTE_LATTICE, 0.1, 3);
        let dir = std::env::temp_dir().join("ls3df_xyz_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("alloy.xyz");
        write_xyz(&s, &path).unwrap();
        let back = read_xyz(&path).unwrap();
        assert_eq!(back.len(), s.len());
        for d in 0..3 {
            assert!((back.lengths[d] - s.lengths[d]).abs() < 1e-6);
        }
        for (a, b) in s.atoms.iter().zip(&back.atoms) {
            assert_eq!(a.species, b.species);
            for d in 0..3 {
                assert!((a.pos[d] - b.pos[d]).abs() < 1e-6);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_rejected() {
        let dir = std::env::temp_dir().join("ls3df_xyz_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.xyz");
        std::fs::write(&path, "definitely\nnot xyz\n").unwrap();
        assert!(read_xyz(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn errors_carry_line_and_field_context() {
        let dir = std::env::temp_dir().join("ls3df_xyz_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.xyz");
        let header = "2\nLattice=\"10 0 0 0 10 0 0 0 10\" Properties=species:S:1:pos:R:3\n";

        std::fs::write(&path, format!("{header}Zn 1.0 2.0 3.0\nTe 4.0 oops 6.0\n")).unwrap();
        let msg = read_xyz(&path).unwrap_err().to_string();
        assert!(msg.contains(":4:"), "line number missing: {msg}");
        assert!(
            msg.contains("atom 1 (Te): bad y coordinate `oops`"),
            "field missing: {msg}"
        );

        std::fs::write(&path, format!("{header}Zn 1.0 2.0 3.0\n")).unwrap();
        let msg = read_xyz(&path).unwrap_err().to_string();
        assert!(
            msg.contains("atom 1 of 2 missing"),
            "truncation context missing: {msg}"
        );

        std::fs::write(&path, "x\n").unwrap();
        let msg = read_xyz(&path).unwrap_err().to_string();
        assert!(
            msg.contains(":1:") && msg.contains("bad atom count `x`"),
            "{msg}"
        );
        std::fs::remove_file(&path).ok();
    }
}
