//! Criterion microbenches for the LS3DF computational kernels — the
//! quantitative backbone of the paper's §IV optimization claims.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ls3df_fft::Fft3;
use ls3df_grid::{Grid3, RealField};
use ls3df_math::gemm::{matmul, matmul_naive, matmul_nh};
use ls3df_math::ortho::{cholesky_orthonormalize, gram_schmidt};
use ls3df_math::{c64, Matrix};
use ls3df_pw::{Hamiltonian, NonlocalPotential, PwBasis};

fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<c64> {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
    };
    Matrix::from_fn(rows, cols, |_, _| c64::new(next(), next()))
}

/// GEMM at fragment shapes (paper: "a typical matrix size for one of our
/// fragments would be 3000 × 200") — blocked vs naive.
fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    g.sample_size(10);
    for &(m, k, n) in &[(64usize, 512usize, 64usize), (128, 1024, 128)] {
        let a = rand_matrix(m, k, 1);
        let b = rand_matrix(k, n, 2);
        g.bench_with_input(
            BenchmarkId::new("blocked", format!("{m}x{k}x{n}")),
            &(),
            |bch, _| bch.iter(|| matmul(&a, &b)),
        );
        g.bench_with_input(
            BenchmarkId::new("naive", format!("{m}x{k}x{n}")),
            &(),
            |bch, _| bch.iter(|| matmul_naive(&a, &b)),
        );
    }
    // The overlap shape S = Ψ·Ψᴴ of the all-band orthogonalization:
    // general product vs the specialized half-flop Hermitian kernel
    // (paper §IV future-work item #2).
    let psi = rand_matrix(96, 2048, 3);
    g.bench_function("overlap_general_96x2048", |b| {
        b.iter(|| matmul_nh(&psi, &psi))
    });
    g.bench_function("overlap_hermitian_96x2048", |b| {
        b.iter(|| ls3df_math::overlap_hermitian(&psi, 1.0))
    });
    g.finish();
}

/// 3-D FFTs at fragment-box and global-grid sizes (the PEtot_F H·ψ kernel
/// and the GENPOT Poisson solve).
fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft3");
    g.sample_size(10);
    for &n in &[16usize, 24, 32, 40] {
        let plan = Fft3::new(n, n, n);
        let data0: Vec<c64> = (0..n * n * n)
            .map(|i| c64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        g.bench_with_input(BenchmarkId::new("roundtrip", n), &(), |b, _| {
            b.iter(|| {
                let mut d = data0.clone();
                plan.forward(&mut d);
                plan.inverse(&mut d);
                d
            })
        });
    }
    g.finish();
}

/// Orthogonalization: band-by-band Gram–Schmidt vs all-band overlap
/// matrix (paper optimization #1).
fn bench_ortho(c: &mut Criterion) {
    let mut g = c.benchmark_group("orthogonalization");
    g.sample_size(10);
    for &(nb, npw) in &[(32usize, 1024usize), (64, 2048)] {
        let block = rand_matrix(nb, npw, 7);
        g.bench_with_input(
            BenchmarkId::new("gram_schmidt", format!("{nb}x{npw}")),
            &(),
            |b, _| {
                b.iter(|| {
                    let mut x = block.clone();
                    gram_schmidt(&mut x, 1.0).unwrap();
                    x
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("cholesky", format!("{nb}x{npw}")),
            &(),
            |b, _| {
                b.iter(|| {
                    let mut x = block.clone();
                    cholesky_orthonormalize(&mut x, 1.0).unwrap();
                    x
                })
            },
        );
    }
    g.finish();
}

/// Full H·ψ block application at a fragment-like size.
fn bench_hamiltonian(c: &mut Criterion) {
    let grid = Grid3::cubic(16, 12.0);
    let basis = PwBasis::new(grid.clone(), 1.5);
    let v = RealField::from_fn(grid, |r| 0.1 * (r[0] - 6.0));
    let positions: Vec<[f64; 3]> = (0..8)
        .map(|i| {
            [
                (i % 2) as f64 * 6.0 + 3.0,
                ((i / 2) % 2) as f64 * 6.0 + 3.0,
                (i / 4) as f64 * 6.0 + 3.0,
            ]
        })
        .collect();
    let e_kb = vec![1.0; 8];
    let nl = NonlocalPotential::new(&basis, &positions, |_, q| (-q * q / 2.0).exp(), &e_kb);
    let h = Hamiltonian::new(&basis, v, &nl);
    let psi = {
        let mut p = rand_matrix(16, basis.len(), 11);
        cholesky_orthonormalize(&mut p, 1.0).unwrap();
        p
    };
    let mut g = c.benchmark_group("hamiltonian");
    g.sample_size(10);
    g.bench_function("apply_block_16_bands", |b| b.iter(|| h.apply_block(&psi)));
    g.finish();
}

/// The Gen_VF / Gen_dens data motions (periodic sub-box extract and
/// signed accumulate).
fn bench_patching(c: &mut Criterion) {
    let global = Grid3::cubic(48, 24.0);
    let field = RealField::from_fn(global.clone(), |r| (r[0] * 0.3).sin() + r[1] - r[2] * 0.1);
    let sub = Grid3::cubic(20, 10.0);
    let sub_field = RealField::constant(sub.clone(), 1.0);
    let mut g = c.benchmark_group("patching");
    g.sample_size(20);
    g.bench_function("gen_vf_extract_20cube", |b| {
        b.iter(|| field.extract_subbox([-3, 11, 40], &sub))
    });
    g.bench_function("gen_dens_accumulate_20cube", |b| {
        b.iter(|| {
            let mut acc = field.clone();
            acc.accumulate_subbox([-3, 11, 40], &sub_field, -1.0);
            acc
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_fft,
    bench_ortho,
    bench_hamiltonian,
    bench_patching
);
criterion_main!(benches);
