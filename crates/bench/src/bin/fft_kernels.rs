//! Before/after microbenchmark for the FFT + GEMM kernel hot paths.
//!
//! "Before" reconstructs the pre-optimization kernels from the same
//! public primitives: a 3-D transform that walks the y/z passes line by
//! line through freshly allocated gather buffers and the allocating
//! [`Fft1d::forward`]/[`inverse`] calls (which build Bluestein scratch per
//! call), and a Poisson solve through [`hartree_potential`], which
//! rebuilds the [`Fft3`] plan and reciprocal kernel every call. "After"
//! is the shipped path: [`Fft3::forward_with`]/[`inverse_with`] through
//! one reused workspace (batched strided line transforms) and
//! [`HartreeSolver::solve_into`] (cached plan + pooled scratch).
//!
//! On top of that, three [`KernelPolicy`] A/B sections time the real-flop
//! kernels against their reference arithmetic:
//!
//! - **r2c vs complex 3-D**: the packed [`Fft3r`] round trip (the GENPOT
//!   transform shape) against the complex [`Fft3`] round trip on the
//!   same real field. This is the headline number: the N/2 packing plus
//!   half-spectrum y/z passes should beat the complex path by ≥ 1.5×.
//! - **radix-4 vs radix-2 1-D**: power-of-two lines through
//!   [`Fft1d::new_with`] under both policies.
//! - **GEMM microkernel**: a BLAS-3 band-block update through
//!   [`gemm_with`] under both policies (register-tiled packed kernel vs
//!   the blocked reference loop).
//!
//! The default 40³ grid is the interesting case: 40 = 2³·5 sends every
//! line through the Bluestein kernel, whose per-call scratch was the
//! dominant allocation cost. Each variant also cross-checks its output
//! against the other, so the table doubles as an equivalence test.
//! Results land in `BENCH_fft_kernels.json` (schema in EXPERIMENTS.md).
//!
//! Run: `cargo run -p ls3df-bench --bin fft_kernels --release -- [n] [reps]`

use ls3df_bench::arg;
use ls3df_fft::{Fft1d, Fft3, Fft3r};
use ls3df_grid::{Grid3, RealField};
use ls3df_math::{c64, gemm_with, KernelPolicy, Matrix, Op};
use ls3df_obs::{Json, Report};
use ls3df_pw::hartree::{hartree_potential, HartreeSolver};
use std::path::Path;
use std::time::Instant;

/// Deterministic filler (no RNG dependency, same field every run).
fn lcg_field(len: usize, seed: u64) -> Vec<c64> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let re = ((state >> 11) as f64) / ((1u64 << 53) as f64) - 0.5;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let im = ((state >> 11) as f64) / ((1u64 << 53) as f64) - 0.5;
            c64::new(re, im)
        })
        .collect()
}

/// The pre-refactor 3-D transform: per-line gather/scatter buffers for
/// the strided passes and the allocating 1-D entry points throughout.
fn fft3_line_by_line(plans: &[Fft1d; 3], dims: [usize; 3], data: &mut [c64], forward: bool) {
    let [n1, n2, n3] = dims;
    let go = |plan: &Fft1d, line: &mut [c64]| {
        if forward {
            plan.forward(line);
        } else {
            plan.inverse(line);
        }
    };
    for line in data.chunks_mut(n1) {
        go(&plans[0], line);
    }
    for iz in 0..n3 {
        for ix in 0..n1 {
            let mut line: Vec<c64> = (0..n2).map(|iy| data[(iz * n2 + iy) * n1 + ix]).collect();
            go(&plans[1], &mut line);
            for (iy, v) in line.into_iter().enumerate() {
                data[(iz * n2 + iy) * n1 + ix] = v;
            }
        }
    }
    let plane = n1 * n2;
    for l in 0..plane {
        let mut line: Vec<c64> = (0..n3).map(|iz| data[iz * plane + l]).collect();
        go(&plans[2], &mut line);
        for (iz, v) in line.into_iter().enumerate() {
            data[iz * plane + l] = v;
        }
    }
}

fn max_diff(a: &[c64], b: &[c64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

fn main() {
    let t_main = Instant::now();
    let n: usize = arg(1, 40);
    let reps: usize = arg(2, 20);
    let dims = [n, n, n];
    let len = n * n * n;
    println!("fft_kernels: {n}³ grid ({len} points), {reps} reps per kernel\n");

    let plans = [Fft1d::new(n), Fft1d::new(n), Fft1d::new(n)];
    let fft3 = Fft3::new(n, n, n);
    let mut ws = fft3.workspace();
    let field = lcg_field(len, 0x5eed);

    // Equivalence check first: one round trip through each path.
    let mut a = field.clone();
    let mut b = field.clone();
    fft3_line_by_line(&plans, dims, &mut a, true);
    fft3_line_by_line(&plans, dims, &mut a, false);
    fft3.forward_with(&mut b, &mut ws);
    fft3.inverse_with(&mut b, &mut ws);
    let diff = max_diff(&a, &b);
    assert!(diff < 1e-12, "kernel paths diverged: {diff:e}");

    let bench = |label: &str, mut f: Box<dyn FnMut() + '_>| -> f64 {
        f(); // warm-up (plan twiddles, workspace pools, page faults)
        let t = Instant::now();
        for _ in 0..reps {
            f();
        }
        let per = t.elapsed().as_secs_f64() / reps as f64;
        println!("  {label:<44} {:9.3} ms/round-trip", per * 1e3);
        per
    };

    println!("3-D FFT forward+inverse round trip:");
    let mut buf = field.clone();
    let before = bench(
        "line-by-line, allocating (pre-refactor)",
        Box::new(|| {
            buf.copy_from_slice(&field);
            fft3_line_by_line(&plans, dims, &mut buf, true);
            fft3_line_by_line(&plans, dims, &mut buf, false);
        }),
    );
    let mut buf2 = field.clone();
    let after = bench(
        "batched strided + reused workspace",
        Box::new(|| {
            buf2.copy_from_slice(&field);
            fft3.forward_with(&mut buf2, &mut ws);
            fft3.inverse_with(&mut buf2, &mut ws);
        }),
    );
    println!("  speedup: {:.2}x\n", before / after);

    // GENPOT: the FFT Poisson solve.
    let grid = Grid3::cubic(n, 10.0);
    let rho = RealField::from_fn(grid.clone(), |r| {
        (r[0] - 5.0).mul_add(r[1] - 4.0, (r[2] - 6.0).cos())
    });
    let solver = HartreeSolver::new(grid.clone());
    let mut v_h = RealField::zeros(grid);
    solver.solve_into(&rho, &mut v_h);
    let reference = hartree_potential(&rho);
    let hdiff = v_h
        .as_slice()
        .iter()
        .zip(reference.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max);
    assert!(hdiff < 1e-10, "hartree paths diverged: {hdiff:e}");

    println!("GENPOT Poisson solve:");
    let before_h = bench(
        "hartree_potential (plan rebuilt per call)",
        Box::new(|| {
            let _ = hartree_potential(&rho);
        }),
    );
    let after_h = bench(
        "HartreeSolver::solve_into (cached plan)",
        Box::new(|| {
            solver.solve_into(&rho, &mut v_h);
        }),
    );
    println!("  speedup: {:.2}x\n", before_h / after_h);

    // --- r2c packed transform vs complex transform (GENPOT shape) -------
    // The Poisson solve transforms a *real* field; the packed r2c path
    // does the x pass at length n/2 via the two-reals-in-one-complex
    // trick and carries only the half spectrum through the y/z passes.
    let real_field: Vec<f64> = field.iter().map(|v| v.re).collect();
    let rfft = Fft3r::new(dims);
    let mut rws = rfft.workspace();
    let mut spec = vec![c64::ZERO; rfft.packed_len()];
    let mut real_back = vec![0.0_f64; len];
    // Equivalence: kept bins of the packed forward must match the complex
    // transform of the same real field, and the c2r inverse must restore it.
    rfft.forward(&real_field, &mut spec, &mut rws);
    let mut cplx: Vec<c64> = real_field.iter().map(|&v| c64::new(v, 0.0)).collect();
    fft3.forward_with(&mut cplx, &mut ws);
    let h1 = rfft.packed_nx();
    let mut rdiff = 0.0_f64;
    for iz in 0..n {
        for iy in 0..n {
            for ix in 0..h1 {
                let p = spec[(iz * n + iy) * h1 + ix];
                let f = cplx[(iz * n + iy) * n + ix];
                rdiff = rdiff.max((p - f).abs());
            }
        }
    }
    assert!(rdiff < 1e-10, "r2c and complex spectra diverged: {rdiff:e}");
    rfft.inverse(&mut spec, &mut real_back, &mut rws);
    let rt = real_back
        .iter()
        .zip(&real_field)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    assert!(rt < 1e-10, "r2c round trip diverged: {rt:e}");

    println!("real-field 3-D round trip (GENPOT transform shape):");
    let mut cbuf = vec![c64::ZERO; len];
    let before_r = bench(
        "complex Fft3 on real data",
        Box::new(|| {
            for (d, s) in cbuf.iter_mut().zip(&real_field) {
                *d = c64::new(*s, 0.0);
            }
            fft3.forward_with(&mut cbuf, &mut ws);
            fft3.inverse_with(&mut cbuf, &mut ws);
        }),
    );
    let after_r = bench(
        "packed r2c/c2r Fft3r (half spectrum)",
        Box::new(|| {
            rfft.forward(&real_field, &mut spec, &mut rws);
            rfft.inverse(&mut spec, &mut real_back, &mut rws);
        }),
    );
    println!("  speedup: {:.2}x\n", before_r / after_r);

    // --- radix-4 vs radix-2 on power-of-two lines -----------------------
    let n1d = 256usize;
    let lines = 2048usize;
    let line_data = lcg_field(n1d * lines, 0xfeed);
    let p2 = Fft1d::new_with(n1d, KernelPolicy::Reference);
    let p4 = Fft1d::new_with(n1d, KernelPolicy::Fast);
    let mut check2 = line_data[..n1d].to_vec();
    let mut check4 = line_data[..n1d].to_vec();
    p2.forward(&mut check2);
    p4.forward(&mut check4);
    let r4diff = max_diff(&check2, &check4);
    assert!(r4diff < 1e-11, "radix-4 diverged from radix-2: {r4diff:e}");

    println!("1-D power-of-two lines ({lines} × n={n1d}, forward+inverse):");
    let mut lbuf = line_data.clone();
    let before_x = bench(
        "radix-2 (reference policy)",
        Box::new(|| {
            lbuf.copy_from_slice(&line_data);
            for line in lbuf.chunks_mut(n1d) {
                p2.forward(line);
                p2.inverse(line);
            }
        }),
    );
    let mut lbuf2 = line_data.clone();
    let after_x = bench(
        "radix-4 (fast policy)",
        Box::new(|| {
            lbuf2.copy_from_slice(&line_data);
            for line in lbuf2.chunks_mut(n1d) {
                p4.forward(line);
                p4.inverse(line);
            }
        }),
    );
    println!("  speedup: {:.2}x\n", before_x / after_x);

    // --- GEMM register-tile microkernel vs blocked reference ------------
    // Band-block shape from the all-band CG update: (bands × planewaves)
    // times (planewaves × bands) — comfortably past the microkernel's
    // dispatch threshold.
    let (m, k, nn) = (64usize, 1200usize, 64usize);
    let a = Matrix::from_fn(m, k, |i, j| {
        c64::new(
            ((i * 31 + j * 7) % 13) as f64 - 6.0,
            ((i + 3 * j) % 11) as f64 - 5.0,
        )
    });
    let b = Matrix::from_fn(k, nn, |i, j| {
        c64::new(
            ((i * 5 + j * 17) % 9) as f64 - 4.0,
            ((2 * i + j) % 7) as f64 - 3.0,
        )
    });
    let mut c_ref = Matrix::zeros(m, nn);
    let mut c_fast = Matrix::zeros(m, nn);
    let one = c64::new(1.0, 0.0);
    let zero = c64::ZERO;
    gemm_with(
        KernelPolicy::Reference,
        one,
        &a,
        Op::None,
        &b,
        Op::None,
        zero,
        &mut c_ref,
    );
    gemm_with(
        KernelPolicy::Fast,
        one,
        &a,
        Op::None,
        &b,
        Op::None,
        zero,
        &mut c_fast,
    );
    let gdiff = max_diff(c_ref.as_slice(), c_fast.as_slice());
    assert!(gdiff < 1e-9 * k as f64, "gemm kernels diverged: {gdiff:e}");

    println!("complex GEMM C = A·B ({m}×{k} · {k}×{nn}):");
    let before_g = bench(
        "blocked reference loop",
        Box::new(|| {
            gemm_with(
                KernelPolicy::Reference,
                one,
                &a,
                Op::None,
                &b,
                Op::None,
                zero,
                &mut c_ref,
            );
        }),
    );
    let after_g = bench(
        "packed register-tile microkernel",
        Box::new(|| {
            gemm_with(
                KernelPolicy::Fast,
                one,
                &a,
                Op::None,
                &b,
                Op::None,
                zero,
                &mut c_fast,
            );
        }),
    );
    println!("  speedup: {:.2}x\n", before_g / after_g);

    // Machine-readable run report (`ls3df-run-report` schema; the
    // kernel A/B table rides in `extra.kernel_sections`, documented in
    // EXPERIMENTS.md).
    let section = |name: &str, before: f64, after: f64| {
        Json::obj(vec![
            ("name", Json::str(name)),
            ("before_ms", Json::num(before * 1e3)),
            ("after_ms", Json::num(after * 1e3)),
            ("speedup", Json::num(before / after)),
        ])
    };
    let mut report = Report::new("fft_kernels", t_main.elapsed().as_secs_f64());
    report.extra.push(("grid".to_string(), Json::num(n as f64)));
    report
        .extra
        .push(("reps".to_string(), Json::num(reps as f64)));
    report.extra.push((
        "kernel_sections".to_string(),
        Json::Arr(vec![
            section("fft3_roundtrip", before, after),
            section("genpot_solve", before_h, after_h),
            section("r2c_vs_complex", before_r, after_r),
            section("radix4_vs_radix2", before_x, after_x),
            section("gemm_micro", before_g, after_g),
        ]),
    ));
    let path = Path::new("BENCH_fft_kernels.json");
    match report.write(path) {
        Ok(()) => println!("run report -> {}", path.display()),
        Err(e) => eprintln!("run report write failed: {e}"),
    }
}
