//! Before/after microbenchmark for the zero-allocation FFT hot path.
//!
//! "Before" reconstructs the pre-workspace kernels from the same public
//! primitives: a 3-D transform that walks the y/z passes line by line
//! through freshly allocated gather buffers and the allocating
//! [`Fft1d::forward`]/[`inverse`] calls (which build Bluestein scratch per
//! call), and a Poisson solve through [`hartree_potential`], which
//! rebuilds the [`Fft3`] plan and reciprocal kernel every call. "After"
//! is the shipped path: [`Fft3::forward_with`]/[`inverse_with`] through
//! one reused [`Fft3Workspace`] (batched strided line transforms) and
//! [`HartreeSolver::solve_into`] (cached plan + pooled scratch).
//!
//! The default 40³ grid is the interesting case: 40 = 2³·5 sends every
//! line through the Bluestein kernel, whose per-call scratch was the
//! dominant allocation cost. Each variant also cross-checks its output
//! against the other, so the table doubles as an equivalence test.
//!
//! Run: `cargo run -p ls3df-bench --bin fft_kernels --release -- [n] [reps]`

use ls3df_bench::arg;
use ls3df_fft::{Fft1d, Fft3};
use ls3df_grid::{Grid3, RealField};
use ls3df_math::c64;
use ls3df_pw::hartree::{hartree_potential, HartreeSolver};
use std::time::Instant;

/// Deterministic filler (no RNG dependency, same field every run).
fn lcg_field(len: usize, seed: u64) -> Vec<c64> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let re = ((state >> 11) as f64) / ((1u64 << 53) as f64) - 0.5;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let im = ((state >> 11) as f64) / ((1u64 << 53) as f64) - 0.5;
            c64::new(re, im)
        })
        .collect()
}

/// The pre-refactor 3-D transform: per-line gather/scatter buffers for
/// the strided passes and the allocating 1-D entry points throughout.
fn fft3_line_by_line(plans: &[Fft1d; 3], dims: [usize; 3], data: &mut [c64], forward: bool) {
    let [n1, n2, n3] = dims;
    let go = |plan: &Fft1d, line: &mut [c64]| {
        if forward {
            plan.forward(line);
        } else {
            plan.inverse(line);
        }
    };
    for line in data.chunks_mut(n1) {
        go(&plans[0], line);
    }
    for iz in 0..n3 {
        for ix in 0..n1 {
            let mut line: Vec<c64> = (0..n2).map(|iy| data[(iz * n2 + iy) * n1 + ix]).collect();
            go(&plans[1], &mut line);
            for (iy, v) in line.into_iter().enumerate() {
                data[(iz * n2 + iy) * n1 + ix] = v;
            }
        }
    }
    let plane = n1 * n2;
    for l in 0..plane {
        let mut line: Vec<c64> = (0..n3).map(|iz| data[iz * plane + l]).collect();
        go(&plans[2], &mut line);
        for (iz, v) in line.into_iter().enumerate() {
            data[iz * plane + l] = v;
        }
    }
}

fn max_diff(a: &[c64], b: &[c64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

fn main() {
    let n: usize = arg(1, 40);
    let reps: usize = arg(2, 20);
    let dims = [n, n, n];
    let len = n * n * n;
    println!("fft_kernels: {n}³ grid ({len} points), {reps} reps per kernel\n");

    let plans = [Fft1d::new(n), Fft1d::new(n), Fft1d::new(n)];
    let fft3 = Fft3::new(n, n, n);
    let mut ws = fft3.workspace();
    let field = lcg_field(len, 0x5eed);

    // Equivalence check first: one round trip through each path.
    let mut a = field.clone();
    let mut b = field.clone();
    fft3_line_by_line(&plans, dims, &mut a, true);
    fft3_line_by_line(&plans, dims, &mut a, false);
    fft3.forward_with(&mut b, &mut ws);
    fft3.inverse_with(&mut b, &mut ws);
    let diff = max_diff(&a, &b);
    assert!(diff < 1e-12, "kernel paths diverged: {diff:e}");

    let bench = |label: &str, mut f: Box<dyn FnMut() + '_>| -> f64 {
        f(); // warm-up (plan twiddles, workspace pools, page faults)
        let t = Instant::now();
        for _ in 0..reps {
            f();
        }
        let per = t.elapsed().as_secs_f64() / reps as f64;
        println!("  {label:<44} {:9.3} ms/round-trip", per * 1e3);
        per
    };

    println!("3-D FFT forward+inverse round trip:");
    let mut buf = field.clone();
    let before = bench(
        "line-by-line, allocating (pre-refactor)",
        Box::new(|| {
            buf.copy_from_slice(&field);
            fft3_line_by_line(&plans, dims, &mut buf, true);
            fft3_line_by_line(&plans, dims, &mut buf, false);
        }),
    );
    let mut buf2 = field.clone();
    let after = bench(
        "batched strided + reused workspace",
        Box::new(|| {
            buf2.copy_from_slice(&field);
            fft3.forward_with(&mut buf2, &mut ws);
            fft3.inverse_with(&mut buf2, &mut ws);
        }),
    );
    println!("  speedup: {:.2}x\n", before / after);

    // GENPOT: the FFT Poisson solve.
    let grid = Grid3::cubic(n, 10.0);
    let rho = RealField::from_fn(grid.clone(), |r| {
        (r[0] - 5.0).mul_add(r[1] - 4.0, (r[2] - 6.0).cos())
    });
    let solver = HartreeSolver::new(grid.clone());
    let mut v_h = RealField::zeros(grid);
    solver.solve_into(&rho, &mut v_h);
    let reference = hartree_potential(&rho);
    let hdiff = v_h
        .as_slice()
        .iter()
        .zip(reference.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max);
    assert!(hdiff < 1e-10, "hartree paths diverged: {hdiff:e}");

    println!("GENPOT Poisson solve:");
    let before_h = bench(
        "hartree_potential (plan rebuilt per call)",
        Box::new(|| {
            let _ = hartree_potential(&rho);
        }),
    );
    let after_h = bench(
        "HartreeSolver::solve_into (cached plan)",
        Box::new(|| {
            solver.solve_into(&rho, &mut v_h);
        }),
    );
    println!("  speedup: {:.2}x", before_h / after_h);
}
