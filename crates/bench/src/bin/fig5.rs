//! Regenerates paper **Figure 5**: weak-scaling floating-point rates on
//! Franklin, Jaguar and Intrepid (log-log Tflop/s vs cores at constant
//! atoms-per-core).
//!
//! Two kinds of points land in `BENCH_fig5.json`, distinguished by a
//! `provenance` tag on every entry:
//!
//! * `"model"` — the paper machines' curves from the `ls3df-hpc` flop
//!   model (always emitted; no host hardware resembles Franklin).
//! * `"measured"` — real two-level runs on *this* host: when
//!   `LS3DF_GROUPS` is set above 1, the binary re-runs a small SCF once
//!   per group count (1 and the requested count) over the `ls3df-dist`
//!   processor-group communicator and records measured PEtot_F wall
//!   times, per-group load balance, and the density digest (which must
//!   be identical across group counts — the distributed loop is pure
//!   partitioning).
//!
//! Run: `cargo run -p ls3df-bench --bin fig5 --release`
//! Measured leg: `LS3DF_GROUPS=2 cargo run -p ls3df-bench --bin fig5 --release`

use ls3df_bench::model_crystal;
use ls3df_core::{Ls3df, Ls3dfOptions, Ls3dfResult, Passivation};
use ls3df_hpc::{weak_scaling, MachineSpec, Problem};
use ls3df_obs::{Json, Report, Stopwatch};
use ls3df_pseudo::PseudoTable;
use ls3df_pw::Mixer;
use std::path::Path;

/// (problem, cores, cores-per-group) triples for one machine's curve.
type RunSet = Vec<(Problem, usize, usize)>;

/// FNV-1a over the density's raw bit patterns — the same digest the
/// cross-process gate (`tests/dist_digest.rs`) pins: every measured
/// group count must print the same value.
fn density_digest(res: &Ls3dfResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &x in res.rho.as_slice() {
        for byte in x.to_bits().to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// One measured run at whatever `LS3DF_GROUPS` this process was started
/// with. SPMD: the launcher and its spawned workers all run this same
/// function (workers are routed into the communicator bootstrap inside
/// `build()` by `LS3DF_DIST_RANK`); only rank 0's stdout reaches the
/// parent, carrying the machine-readable result line.
fn child() {
    let s = model_crystal([2, 2, 2], 6.5);
    let opts = Ls3dfOptions {
        ecut: 1.5,
        piece_pts: [8; 3],
        buffer_pts: [3; 3],
        passivation: Passivation::WallOnly,
        wall_height: 1.5,
        n_extra_bands: 2,
        cg_steps: 6,
        initial_cg_steps: 10,
        fragment_tol: 1e-9,
        mixer: Mixer::Kerker {
            alpha: 0.6,
            q0: 0.8,
        },
        max_scf: 2,
        tol: 1e-10, // never converges early: every group count does 2 iterations
        pseudo: PseudoTable::deep_well(2.0, 0.8),
        ..Default::default()
    };
    let mut calc = Ls3df::builder(&s)
        .fragments([2, 2, 2])
        .options(opts)
        .build()
        .expect("valid measured-leg geometry");
    if calc.comm().rank() != 0 {
        // Worker rank: participate in the SCF, say nothing. (With obs
        // on, the driver's telemetry epilogue ships this rank's spans
        // and counters to rank 0 before returning.)
        let _ = calc.try_scf();
        return;
    }
    let groups = calc.comm().size();
    let predicted_costs = calc.group_plan().costs.clone();
    // Rank 0 collects the full observability record: with obs on, the
    // merged schema-v2 report (one `ranks` section per group) and a
    // chrome://tracing file with one lane per rank land next to
    // BENCH_fig5.json.
    let mut tracer = ls3df_core::TraceObserver::new("fig5-measured");
    if ls3df_obs::ENABLED {
        tracer = tracer.with_trace_file(format!("TRACE_fig5_groups{groups}.json"));
    }
    let res = calc
        .try_scf_with(&mut tracer)
        .expect("measured fig5 SCF must complete");
    let petot: f64 = res.history.iter().map(|h| h.timings.petot_f).sum();
    let total: f64 = res
        .history
        .iter()
        .map(|h| {
            let t = h.timings;
            t.gen_vf + t.petot_f + t.gen_dens + t.genpot
        })
        .sum();
    let max_group = res
        .group_petot_seconds
        .iter()
        .copied()
        .fold(0.0f64, f64::max);
    let min_group = res
        .group_petot_seconds
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let imbalance = max_over_mean(&res.group_petot_seconds);
    let predicted: Vec<f64> = predicted_costs.iter().map(|&c| c as f64).collect();
    let predicted_imbalance = max_over_mean(&predicted);
    println!(
        "FIG5_RESULT groups={} petot={petot:.6} total={total:.6} maxgroup={max_group:.6} \
         imb={imbalance:.6} predimb={predicted_imbalance:.6} straggler={:.6} digest={:016x}",
        res.group_petot_seconds.len(),
        (max_group - min_group).max(0.0),
        density_digest(&res)
    );
    if ls3df_obs::ENABLED {
        let report = tracer.finish();
        let path = format!("BENCH_fig5_rankreport_groups{groups}.json");
        match report.write(Path::new(&path)) {
            Ok(()) => println!("rank report -> {path}"),
            Err(e) => eprintln!("rank report write failed: {e}"),
        }
    }
}

/// Load-imbalance ratio max/mean; 1.0 for empty or all-zero input (a
/// single group, or the scheduler's trivial `costs: [0]` plan).
fn max_over_mean(values: &[f64]) -> f64 {
    let sum: f64 = values.iter().sum();
    if values.is_empty() || sum <= 0.0 {
        return 1.0;
    }
    let max = values.iter().copied().fold(f64::MIN, f64::max);
    max * values.len() as f64 / sum
}

struct Measured {
    groups: usize,
    petot: f64,
    total: f64,
    max_group: f64,
    imbalance: f64,
    predicted_imbalance: f64,
    straggler: f64,
    digest: String,
}

fn parse_measured(stdout: &str) -> Option<Measured> {
    let line = stdout.lines().find(|l| l.contains("FIG5_RESULT"))?;
    let field = |key: &str| -> Option<&str> {
        line.split_whitespace()
            .find_map(|tok| tok.strip_prefix(key))
    };
    Some(Measured {
        groups: field("groups=")?.parse().ok()?,
        petot: field("petot=")?.parse().ok()?,
        total: field("total=")?.parse().ok()?,
        max_group: field("maxgroup=")?.parse().ok()?,
        imbalance: field("imb=")?.parse().ok()?,
        predicted_imbalance: field("predimb=")?.parse().ok()?,
        straggler: field("straggler=")?.parse().ok()?,
        digest: field("digest=")?.to_string(),
    })
}

/// Runs the measured leg: one subprocess per group count (fresh process
/// per point — the processor-group world is bootstrapped once per
/// process), collecting the machine-readable rows.
fn run_measured(requested: usize) -> Vec<Measured> {
    let exe = std::env::current_exe().expect("bench binary path");
    let mut rows = Vec::new();
    for groups in [1usize, requested] {
        // comm-audit: re-exec per group count so each measured point gets
        // a fresh communicator world; all SCF traffic inside the child
        // flows through the ls3df-dist transport.
        let out = std::process::Command::new(&exe)
            .env("LS3DF_FIG5_CHILD", "1")
            .env("LS3DF_GROUPS", groups.to_string())
            .output()
            .expect("spawn fig5 measured child");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        if !out.status.success() {
            eprintln!(
                "measured child with LS3DF_GROUPS={groups} failed:\n{stdout}\n{}",
                String::from_utf8_lossy(&out.stderr)
            );
            std::process::exit(1);
        }
        let Some(row) = parse_measured(&stdout) else {
            eprintln!("no FIG5_RESULT line from child (groups={groups}):\n{stdout}");
            std::process::exit(1);
        };
        rows.push(row);
    }
    rows
}

fn main() {
    if std::env::var("LS3DF_FIG5_CHILD").is_ok() {
        child();
        return;
    }
    let sw = Stopwatch::start();
    println!("Figure 5 — weak scaling flop rates on different machines (model)");

    let sets: Vec<(MachineSpec, RunSet)> = vec![
        (
            MachineSpec::franklin(),
            vec![
                (Problem::new(3, 3, 3), 270, 10),
                (Problem::new(4, 4, 4), 1280, 20),
                (Problem::new(5, 5, 5), 2500, 20),
                (Problem::new(6, 6, 6), 4320, 20),
                (Problem::new(8, 8, 8), 10240, 20),
                (Problem::new(10, 10, 8), 16000, 20),
                (Problem::new(12, 12, 12), 17280, 10),
            ],
        ),
        (
            MachineSpec::jaguar(),
            vec![
                (Problem::new(8, 8, 6), 7680, 20),
                (Problem::new(16, 8, 6), 15360, 20),
                (Problem::new(16, 12, 8), 30720, 20),
            ],
        ),
        (
            MachineSpec::intrepid(),
            vec![
                (Problem::new(4, 4, 4), 4096, 64),
                (Problem::new(8, 4, 4), 8192, 64),
                (Problem::new(8, 8, 4), 16384, 64),
                (Problem::new(8, 8, 8), 32768, 64),
                (Problem::new(16, 8, 8), 65536, 64),
                (Problem::new(16, 16, 8), 131072, 64),
            ],
        ),
    ];

    let mut machine_objs = Vec::new();
    for (machine, runs) in &sets {
        println!("\n{}", machine.name);
        println!(
            "{:>9} {:>8} {:>12} {:>12}",
            "cores", "atoms", "Tflop/s", "log-log slope"
        );
        let pts = weak_scaling(machine, runs);
        let mut prev: Option<(usize, f64)> = None;
        for p in &pts {
            let slope = prev
                .map(|(c0, t0)| (p.tflops / t0).log2() / (p.cores as f64 / c0 as f64).log2())
                .map(|s| format!("{s:.3}"))
                .unwrap_or_else(|| "-".into());
            println!(
                "{:>9} {:>8} {:>12.2} {:>12}",
                p.cores, p.atoms, p.tflops, slope
            );
            prev = Some((p.cores, p.tflops));
        }
        let point_objs = pts
            .iter()
            .map(|p| {
                Json::obj(vec![
                    ("cores", Json::num(p.cores as f64)),
                    ("atoms", Json::num(p.atoms as f64)),
                    ("tflops", Json::num(p.tflops)),
                    ("provenance", Json::str("model")),
                ])
            })
            .collect();
        machine_objs.push(Json::obj(vec![
            ("machine", Json::str(machine.name)),
            ("points", Json::Arr(point_objs)),
        ]));
    }

    println!(
        "\npaper shape checks: straight log-log lines (slope ≈ 1); Jaguar has the fastest \
         per-core speed; Intrepid reaches the largest total rate (107.5 Tflop/s at 131,072 cores)."
    );

    // Measured leg: real processor-group runs on this host, once per
    // group count, when the operator opted in via LS3DF_GROUPS.
    let requested = std::env::var("LS3DF_GROUPS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&g| g > 1);
    let mut measured_objs = Vec::new();
    if let Some(groups) = requested {
        println!("\nmeasured two-level runs on this host (LS3DF_GROUPS={groups}):");
        println!(
            "{:>8} {:>12} {:>10} {:>14} {:>10} {:>14} {:>18}",
            "groups",
            "PEtot_F (s)",
            "speedup",
            "max group (s)",
            "imbalance",
            "straggler (s)",
            "density digest"
        );
        let rows = run_measured(groups);
        let base = rows[0].petot;
        for r in &rows {
            println!(
                "{:>8} {:>12.3} {:>9.2}\u{d7} {:>14.3} {:>10.3} {:>14.3} {:>18}",
                r.groups,
                r.petot,
                base / r.petot.max(1e-12),
                r.max_group,
                r.imbalance,
                r.straggler,
                r.digest
            );
        }
        if rows.iter().any(|r| r.digest != rows[0].digest) {
            eprintln!("DETERMINISM VIOLATION: density digests differ across group counts");
            std::process::exit(1);
        }
        println!("all group counts produced bit-identical densities");
        measured_objs = rows
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("groups", Json::num(r.groups as f64)),
                    ("petot_seconds", Json::num(r.petot)),
                    ("total_seconds", Json::num(r.total)),
                    ("max_group_seconds", Json::num(r.max_group)),
                    ("imbalance_ratio", Json::num(r.imbalance)),
                    (
                        "predicted_imbalance_ratio",
                        Json::num(r.predicted_imbalance),
                    ),
                    ("straggler_gap_seconds", Json::num(r.straggler)),
                    ("digest", Json::str(r.digest.clone())),
                    ("provenance", Json::str("measured")),
                ])
            })
            .collect();
    } else {
        println!("\n(set LS3DF_GROUPS>1 to add measured multi-process points to BENCH_fig5.json)");
    }

    // Machine-readable curves (EXPERIMENTS.md documents the schema).
    let mut report = Report::new("fig5", sw.seconds());
    report
        .extra
        .push(("model_curves".to_string(), Json::Arr(machine_objs)));
    report
        .extra
        .push(("measured_points".to_string(), Json::Arr(measured_objs)));
    let bench_path = Path::new("BENCH_fig5.json");
    match report.write(bench_path) {
        Ok(()) => println!("run report -> {}", bench_path.display()),
        Err(e) => eprintln!("run report write failed: {e}"),
    }
}
