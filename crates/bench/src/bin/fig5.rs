//! Regenerates paper **Figure 5**: weak-scaling floating-point rates on
//! Franklin, Jaguar and Intrepid (log-log Tflop/s vs cores at constant
//! atoms-per-core).
//!
//! Run: `cargo run -p ls3df-bench --bin fig5 --release`

use ls3df_hpc::{weak_scaling, MachineSpec, Problem};

/// (problem, cores, cores-per-group) triples for one machine's curve.
type RunSet = Vec<(Problem, usize, usize)>;

fn main() {
    println!("Figure 5 — weak scaling flop rates on different machines (model)");

    let sets: Vec<(MachineSpec, RunSet)> = vec![
        (
            MachineSpec::franklin(),
            vec![
                (Problem::new(3, 3, 3), 270, 10),
                (Problem::new(4, 4, 4), 1280, 20),
                (Problem::new(5, 5, 5), 2500, 20),
                (Problem::new(6, 6, 6), 4320, 20),
                (Problem::new(8, 8, 8), 10240, 20),
                (Problem::new(10, 10, 8), 16000, 20),
                (Problem::new(12, 12, 12), 17280, 10),
            ],
        ),
        (
            MachineSpec::jaguar(),
            vec![
                (Problem::new(8, 8, 6), 7680, 20),
                (Problem::new(16, 8, 6), 15360, 20),
                (Problem::new(16, 12, 8), 30720, 20),
            ],
        ),
        (
            MachineSpec::intrepid(),
            vec![
                (Problem::new(4, 4, 4), 4096, 64),
                (Problem::new(8, 4, 4), 8192, 64),
                (Problem::new(8, 8, 4), 16384, 64),
                (Problem::new(8, 8, 8), 32768, 64),
                (Problem::new(16, 8, 8), 65536, 64),
                (Problem::new(16, 16, 8), 131072, 64),
            ],
        ),
    ];

    for (machine, runs) in &sets {
        println!("\n{}", machine.name);
        println!(
            "{:>9} {:>8} {:>12} {:>12}",
            "cores", "atoms", "Tflop/s", "log-log slope"
        );
        let pts = weak_scaling(machine, runs);
        let mut prev: Option<(usize, f64)> = None;
        for p in &pts {
            let slope = prev
                .map(|(c0, t0)| (p.tflops / t0).log2() / (p.cores as f64 / c0 as f64).log2())
                .map(|s| format!("{s:.3}"))
                .unwrap_or_else(|| "-".into());
            println!(
                "{:>9} {:>8} {:>12.2} {:>12}",
                p.cores, p.atoms, p.tflops, slope
            );
            prev = Some((p.cores, p.tflops));
        }
    }

    println!(
        "\npaper shape checks: straight log-log lines (slope ≈ 1); Jaguar has the fastest \
         per-core speed; Intrepid reaches the largest total rate (107.5 Tflop/s at 131,072 cores)."
    );
}
