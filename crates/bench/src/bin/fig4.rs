//! Regenerates paper **Figure 4**: computational efficiency for the
//! different problem sizes and concurrency levels on Franklin.
//!
//! Run: `cargo run -p ls3df-bench --bin fig4 --release`

use ls3df_hpc::{efficiency_scatter, MachineSpec, Problem};

fn main() {
    let machine = MachineSpec::franklin();
    // The Franklin rows of Table I define the Fig. 4 scatter.
    let runs = [
        (Problem::new(3, 3, 3), 270, 10),
        (Problem::new(3, 3, 3), 540, 20),
        (Problem::new(3, 3, 3), 1080, 40),
        (Problem::new(4, 4, 4), 1280, 20),
        (Problem::new(5, 5, 5), 2500, 20),
        (Problem::new(6, 6, 6), 4320, 20),
        (Problem::new(8, 6, 9), 1080, 40),
        (Problem::new(8, 6, 9), 2160, 40),
        (Problem::new(8, 6, 9), 4320, 40),
        (Problem::new(8, 6, 9), 8640, 40),
        (Problem::new(8, 6, 9), 17280, 40),
        (Problem::new(8, 8, 8), 2560, 20),
        (Problem::new(8, 8, 8), 10240, 20),
        (Problem::new(10, 10, 8), 2000, 20),
        (Problem::new(10, 10, 8), 16000, 20),
        (Problem::new(12, 12, 12), 17280, 10),
    ];
    let pts = efficiency_scatter(&machine, &runs);

    println!("Figure 4 — computational efficiency vs cores on Franklin (model)");
    println!("{}", "-".repeat(60));
    println!(
        "{:>8} {:>8} {:>5} {:>12}",
        "atoms", "cores", "Np", "efficiency"
    );
    for p in &pts {
        let bar = "#".repeat((p.efficiency * 100.0).round() as usize / 2);
        println!(
            "{:>8} {:>8} {:>5} {:>11.1}% {}",
            p.atoms,
            p.cores,
            p.np,
            p.efficiency * 100.0,
            bar
        );
    }
    println!("{}", "-".repeat(60));

    // The paper's two shape observations.
    let same_cores: Vec<_> = pts.iter().filter(|p| p.cores == 17280).collect();
    if same_cores.len() >= 2 {
        let spread = same_cores
            .iter()
            .map(|p| p.efficiency)
            .fold(f64::NEG_INFINITY, f64::max)
            - same_cores
                .iter()
                .map(|p| p.efficiency)
                .fold(f64::INFINITY, f64::min);
        println!(
            "efficiency spread across system sizes at 17,280 cores: {:.1} points \
             (paper: 'almost independent of the size of the physical system')",
            spread * 100.0
        );
    }
    let lo = pts
        .iter()
        .filter(|p| p.cores <= 1080)
        .map(|p| p.efficiency)
        .fold(0.0, f64::max);
    let hi = pts
        .iter()
        .filter(|p| p.cores >= 16000)
        .map(|p| p.efficiency)
        .fold(0.0, f64::max);
    println!(
        "best efficiency ≤1,080 cores: {:.1}%, ≥16,000 cores: {:.1}% \
         (paper: slight drop at very high concurrency from Gen_VF/Gen_dens)",
        lo * 100.0,
        hi * 100.0
    );
}
