//! Regenerates the paper §VI **crossover analysis**: LS3DF O(N) vs
//! conventional O(N³) planewave codes.
//!
//! Part 1 is the calibrated model sweep at paper scale (crossover atom
//! count and the 13,824-atom speed ratio). Part 2 *measures* the same
//! crossover shape with this repository's real solvers on single-core
//! scaled-down model crystals: direct `pw::scf` vs one LS3DF outer
//! iteration cost extrapolated over the same iteration count.
//!
//! Run: `cargo run -p ls3df-bench --bin crossover --release -- [measure] [max_m]`

use ls3df_bench::{arg, model_crystal, to_pw_atoms};
use ls3df_core::{Ls3df, Ls3dfOptions, Passivation};
use ls3df_hpc::{
    crossover_atoms, crossover_sweep, speed_ratio, DirectCodeModel, MachineSpec, Problem,
};
use ls3df_pseudo::PseudoTable;
use ls3df_pw::{DftSystem, Mixer, ScfOptions};
use std::time::Instant;

fn main() {
    // ---- Part 1: paper-scale model --------------------------------------
    let machine = MachineSpec::franklin();
    let direct = DirectCodeModel::paratec();
    let sweep = crossover_sweep(
        &machine,
        &direct,
        17280,
        40,
        &[2, 3, 4, 5, 6, 8, 10, 12, 16],
    );
    println!("crossover (model, Franklin, 17,280 cores): t per SCF iteration");
    println!(
        "{:>8} {:>14} {:>14} {:>10}",
        "atoms", "LS3DF (s)", "direct (s)", "ratio"
    );
    for p in &sweep {
        println!(
            "{:>8} {:>14.2} {:>14.2} {:>10.2}",
            p.atoms,
            p.t_ls3df,
            p.t_direct,
            p.t_direct / p.t_ls3df
        );
    }
    match crossover_atoms(&sweep) {
        Some(x) => println!(
            "model crossover at ≈{x:.0} atoms (paper text: ~600; but see EXPERIMENTS.md — \
             the paper's own PARATEC measurement implies an earlier crossover)"
        ),
        None => println!("no crossover in the sweep range"),
    }
    let r = speed_ratio(&machine, &direct, &Problem::new(12, 12, 12), 17280, 10);
    println!("model speed ratio at 13,824 atoms: {r:.0}× (paper: ~400×)\n");

    // ---- Part 2: real measured scaled-down crossover ---------------------
    let measure: usize = arg(1, 1);
    if measure == 0 {
        println!("(measured part skipped; pass 1 as the first argument to enable)");
        return;
    }
    let max_m: usize = arg(2, 3);
    println!("measured single-core crossover on deep-well model crystals (a = 6.5 Bohr, E_cut = 1.5 Ha):");
    println!(
        "{:>8} {:>8} {:>16} {:>16} {:>10}",
        "m", "atoms", "direct s/iter", "LS3DF s/iter", "ratio"
    );
    let a = 6.5;
    let piece_pts = 8;
    let ecut = 1.5;
    let table = PseudoTable::deep_well(2.0, 0.8);
    for m in 2..=max_m {
        let s = model_crystal([m, m, m], a);
        // Direct: time a fixed number of SCF iterations.
        let sys = DftSystem {
            grid: ls3df_grid::Grid3::new([m * piece_pts; 3], s.lengths),
            ecut,
            atoms: to_pw_atoms(&s, &table),
        };
        let n_iter = 3;
        let t = Instant::now();
        let _ = ls3df_pw::scf(
            &sys,
            &ScfOptions {
                max_scf: n_iter,
                tol: 1e-30,
                ..Default::default()
            },
        );
        let t_direct = t.elapsed().as_secs_f64() / n_iter as f64;

        // LS3DF: time outer iterations (same count).
        let opts = Ls3dfOptions {
            ecut,
            piece_pts: [piece_pts; 3],
            buffer_pts: [3; 3],
            passivation: Passivation::WallOnly,
            wall_height: 1.5,
            n_extra_bands: 2,
            cg_steps: 5,
            // Uniform iterations for a fair per-iteration timing.
            initial_cg_steps: 5,
            fragment_tol: 1e-12,
            mixer: Mixer::Kerker {
                alpha: 0.6,
                q0: 0.8,
            },
            max_scf: n_iter,
            tol: 1e-30,
            pseudo: table,
            ..Default::default()
        };
        let mut ls = Ls3df::builder(&s)
            .fragments([m, m, m])
            .options(opts)
            .build()
            .expect("valid crossover geometry");
        let t = Instant::now();
        let _ = ls.scf();
        let t_ls3df = t.elapsed().as_secs_f64() / n_iter as f64;
        println!(
            "{:>8} {:>8} {:>16.2} {:>16.2} {:>10.3}",
            m,
            s.len(),
            t_direct,
            t_ls3df,
            t_direct / t_ls3df
        );
    }
    println!(
        "\nshape target: the direct-code column grows superlinearly per atom while the LS3DF \
         column grows linearly, so the ratio rises with system size (the LS3DF prefactor — \
         each corner recomputes ~27 pieces of volume — means small systems favor the direct \
         code, exactly the paper's crossover story)."
    );
}
