//! Regenerates paper **Figure 7** (as data, not a 3-D render): the
//! conduction-band-minimum and oxygen-induced band-edge states of a
//! ZnTe₁₋ₓOₓ alloy from the converged LS3DF potential via the folded
//! spectrum method, with localization metrics replacing the paper's
//! isosurface plots:
//!
//! * the paper's visual claim "oxygen induced states can cluster among a
//!   few oxygen atoms" becomes: O-weight of the state ≫ O volume fraction;
//! * "more localized in the high energy states" becomes: IPR increasing
//!   with energy within the oxygen band.
//!
//! Run: `cargo run -p ls3df-bench --bin fig7 --release -- [m] [iters] [n_states]`

use ls3df_bench::{arg, to_pw_atoms};
use ls3df_core::{analysis, folded_spectrum, FsmOptions, Ls3df, Ls3dfOptions, Passivation};

use ls3df_pseudo::PseudoTable;
use ls3df_pw::{Mixer, NonlocalPotential};

fn main() {
    let m: usize = arg(1, 2);
    let iters: usize = arg(2, 15);
    let n_states: usize = arg(3, 6);
    let ecut = 2.0;
    let piece_pts = 8;

    let mut s = ls3df_atoms::znteo_alloy([m, m, m], ls3df_atoms::ZNTE_LATTICE, 0.03125, 42);
    ls3df_atoms::relax(&mut s, 1e-4, 3000);
    println!("system: {} ({} atoms)", s.formula(), s.len());

    let opts = Ls3dfOptions {
        ecut,
        piece_pts: [piece_pts; 3],
        buffer_pts: [3; 3],
        passivation: Passivation::PseudoH,
        wall_height: 1.5,
        n_extra_bands: 4,
        cg_steps: 12,
        initial_cg_steps: 40,
        fragment_tol: 5e-2,
        mixer: Mixer::Kerker {
            alpha: 0.4,
            q0: 1.0,
        },
        max_scf: iters,
        tol: 1e-3,
        pseudo: PseudoTable::default(),
        ..Default::default()
    };
    let mut ls = Ls3df::builder(&s)
        .fragments([m, m, m])
        .options(opts)
        .build()
        .expect("valid fig7 geometry");
    // Resume from fig6's newest full snapshot if one exists (same options
    // -> same fingerprint); a snapshot written at convergence makes the
    // scf() below a no-op replay, otherwise it finishes the remaining
    // iterations. Any resume failure (stale format, different physics,
    // damaged file) falls through to the legacy potential cache or a
    // fresh SCF — never aborts the figure.
    let snap_dir = format!("target/checkpoints/fig6_m{m}");
    let mut resumed = false;
    if let Ok(Some(snap)) = ls3df_ckpt::latest_snapshot(std::path::Path::new(&snap_dir)) {
        match ls.restore_from(&snap) {
            Ok(iteration) => {
                println!("resumed from {} (iteration {iteration})", snap.display());
                resumed = true;
            }
            Err(e) => println!("snapshot {} not usable: {e}", snap.display()),
        }
    }
    // Legacy potential-only cache (read alone does not allow resuming the
    // SCF — it skips it when the converged potential is already on disk).
    let ck = std::path::Path::new("target/checkpoints").join(format!("znteo_m{m}_veff.ck"));
    let v_eff = match (resumed, ls3df_grid::load_field(&ck)) {
        (false, Ok(v)) if v.grid() == &ls.global_grid => {
            println!("loaded converged potential from {}", ck.display());
            v
        }
        _ => {
            let res = ls.scf();
            println!(
                "LS3DF: {} iterations, converged = {}",
                res.history.len(),
                res.converged
            );
            // Save for reruns (the FSM stage may be iterated on separately).
            std::fs::create_dir_all("target/checkpoints").ok();
            if ls3df_grid::save_field(&res.v_eff, &ck).is_ok() {
                println!("checkpoint written to {}", ck.display());
            }
            res.v_eff
        }
    };

    // Full-system Hamiltonian in the converged potential.
    let basis = ls.global_basis();
    let table = PseudoTable::default();
    let atoms = to_pw_atoms(&s, &table);
    let positions: Vec<[f64; 3]> = atoms.iter().map(|a| a.pos).collect();
    let widths: Vec<f64> = atoms.iter().map(|a| a.kb_rb).collect();
    let e_kb: Vec<f64> = atoms.iter().map(|a| a.kb_energy).collect();
    let nl = NonlocalPotential::new(
        basis,
        &positions,
        |a, q| (-q * q * widths[a] * widths[a] / 2.0).exp(),
        &e_kb,
    );
    let h = ls3df_pw::Hamiltonian::new(basis, v_eff.clone(), &nl);

    // FSM around the gap. With an explicit 4th argument a single reference
    // is used; otherwise a small scan brackets the gap region (the model
    // CBM moves with the cutoff, so a scan is the robust default).
    let t0 = std::time::Instant::now();
    let states = if let Some(e_ref) = std::env::args().nth(4).and_then(|v| v.parse::<f64>().ok()) {
        println!("\nFolded spectrum method at ε_ref = {e_ref} Ha:");
        folded_spectrum(
            &h,
            e_ref,
            &FsmOptions {
                n_states,
                max_iter: 250,
                tol: 1e-5,
            },
            17,
        )
    } else {
        let refs = [0.18, 0.28, 0.38];
        println!("\nFolded spectrum scan at ε_ref ∈ {refs:?} Ha (band-edge states):");
        ls3df_core::scan_band(
            &h,
            &refs,
            &FsmOptions {
                n_states: n_states.max(3),
                max_iter: 250,
                tol: 1e-5,
            },
            17,
        )
    };
    println!(
        "  {} states in {:.0}s",
        states.len(),
        t0.elapsed().as_secs_f64()
    );

    let o_radius = 4.0; // Bohr sphere around each O site
    let vol_frac =
        analysis::species_volume_fraction(basis.grid(), &s, ls3df_atoms::Species::O, o_radius);
    println!(
        "\nFigure 7 analysis (O volume fraction baseline = {:.3}):",
        vol_frac
    );
    println!("{}", "-".repeat(74));
    println!(
        "{:>3} {:>11} {:>11} {:>8} {:>10} {:>12}",
        "#", "E (Ha)", "E (eV)", "IPR", "O-weight", "O-enrichment"
    );
    for (i, st) in states.iter().enumerate() {
        let d = analysis::state_density(basis, &st.coefficients);
        let ipr = analysis::inverse_participation_ratio(&d);
        let ow = analysis::species_weight(&d, &s, ls3df_atoms::Species::O, o_radius);
        println!(
            "{:>3} {:>11.4} {:>11.2} {:>8.2} {:>10.3} {:>11.1}x",
            i,
            st.energy,
            st.energy * 27.2114,
            ipr,
            ow,
            ow / vol_frac.max(1e-12)
        );
    }
    println!("{}", "-".repeat(74));
    // Gaussian-broadened DOS of the band-edge states: band width readout.
    if states.len() >= 2 {
        let levels: Vec<(f64, f64)> = states.iter().map(|s| (s.energy, 1.0)).collect();
        let lo = states[0].energy - 0.05;
        let hi = states.last().unwrap().energy + 0.05;
        let d = ls3df_pw::dos(&levels, lo, hi, 501, 0.004);
        println!(
            "band-edge DOS: peak at {:.4} Ha, width(10% of peak) = {:.3} eV",
            d.peak(),
            d.band_width(0.1) * 27.2114
        );
    }
    if states.len() >= 2 {
        let spread = (states.last().unwrap().energy - states[0].energy) * 27.2114;
        println!(
            "band-edge spread across the computed states: {:.2} eV \
             (paper: O-induced band width ≈ 0.7 eV; O-band→CBM gap ≈ 0.2 eV)",
            spread
        );
    }
    println!(
        "paper shape targets: lowest empty states O-enriched (clustered on O atoms) and more \
         localized (higher IPR) at higher energy within the O band."
    );
}
