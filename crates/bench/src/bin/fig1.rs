//! Renders paper **Figure 1** (the 2-D fragment schematic) as text, from
//! the actual `FragmentGrid` machinery: the division of space, the four
//! fragment types per corner with their `α` signs, and the net coverage
//! proof (partition of unity) evaluated on a real grid.
//!
//! Run: `cargo run -p ls3df-bench --bin fig1 --release`

use ls3df_core::{Fragment, FragmentGrid};
use ls3df_grid::Grid3;

fn main() {
    println!("Figure 1 — division of space and fragment pieces from corner (i,j)");
    println!("(2-D cross-section of the 3-D scheme; z size fixed at 2 so the");
    println!(" x-y signs match the paper's 2-D figure)\n");

    // The four 2-D fragment types from one corner, as x-y slices of the
    // 3-D fragments with s_z = 2.
    for (s1, s2) in [(1usize, 1usize), (1, 2), (2, 1), (2, 2)] {
        let f = Fragment::sign_alternating([0, 0, 0], [s1, s2, 2]);
        let alpha = f.alpha();
        println!("fragment {}x{} (x-y), α = {:+}", s1, s2, alpha as i64);
        for row in (0..2).rev() {
            let mut line = String::from("   ");
            for col in 0..2 {
                if col < s1 && row < s2 {
                    line.push_str(if alpha > 0.0 { "[++]" } else { "[--]" });
                } else {
                    line.push_str(" .. ");
                }
            }
            println!("{line}");
        }
        println!();
    }

    // Net coverage per piece from one corner: 8 − 3·4 + 3·2 − 1 = 1.
    let per_corner: f64 = [
        (2, 2, 2, 1.0),
        (1, 2, 2, -1.0),
        (2, 1, 2, -1.0),
        (2, 2, 1, -1.0),
        (1, 1, 2, 1.0),
        (1, 2, 1, 1.0),
        (2, 1, 1, 1.0),
        (1, 1, 1, -1.0),
    ]
    .iter()
    .map(|&(a, b, c, sign): &(usize, usize, usize, f64)| sign * (a * b * c) as f64)
    .sum();
    println!("signed volume per corner: 8 − 3·4 + 3·2 − 1 = {per_corner} piece\n");

    // And the real partition-of-unity check on a 4×4×4 decomposition.
    let m = [4usize, 4, 4];
    let grid = Grid3::new([8, 8, 8], [4.0, 4.0, 4.0]);
    let fg = FragmentGrid::new(m, &grid, [1, 1, 1]).expect("valid decomposition");
    println!(
        "partition of unity on a {}x{}x{} decomposition ({} fragments): max deviation = {:e}",
        m[0],
        m[1],
        m[2],
        fg.n_fragments(),
        fg.partition_of_unity(&grid)
    );
    println!("\nevery point of the supercell is covered with net weight exactly 1, while");
    println!("every artificial fragment surface appears once with +1 and once with −1 —");
    println!("the cancellation that makes LS3DF agree with direct DFT.");
}
