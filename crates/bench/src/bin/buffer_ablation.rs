//! DESIGN.md ablation 5: fragment buffer width vs patching accuracy.
//!
//! Paper §V: "The accuracy of LS3DF, as compared with the equivalent DFT
//! computation, increases exponentially with the fragment size." The
//! buffer width plays the same role at fixed piece size: it sets how far
//! the artificial boundary sits from the patched region. This binary
//! measures the patched-density error against a converged direct
//! calculation as the buffer grows, on the deep-well model crystal.
//!
//! Run: `cargo run -p ls3df-bench --bin buffer_ablation --release -- [max_buffer]`

use ls3df_bench::{arg, model_crystal, to_pw_atoms};
use ls3df_core::{Ls3df, Ls3dfOptions, Passivation};
use ls3df_pseudo::PseudoTable;
use ls3df_pw::{DftSystem, Mixer, ScfOptions};

fn main() {
    let max_buffer: usize = arg(1, 4);
    let m = 2usize;
    let a = 6.5;
    let piece_pts = 8usize;
    let ecut = 1.5;
    let table = PseudoTable::deep_well(2.0, 0.8);
    let s = model_crystal([m, m, m], a);

    // Direct reference.
    let sys = DftSystem {
        grid: ls3df_grid::Grid3::new([m * piece_pts; 3], s.lengths),
        ecut,
        atoms: to_pw_atoms(&s, &table),
    };
    let direct = ls3df_pw::scf(
        &sys,
        &ScfOptions {
            max_scf: 80,
            tol: 1e-5,
            ..Default::default()
        },
    );
    println!(
        "reference: direct DFT on {} ({} iterations, converged = {})\n",
        s.formula(),
        direct.history.len(),
        direct.converged
    );
    println!(
        "{:>8} {:>10} {:>16} {:>16} {:>9}",
        "buffer", "box pts", "∫|Δρ|/N_e", "∫|ΔV| final", "time (s)"
    );

    for buffer in 1..=max_buffer {
        let opts = Ls3dfOptions {
            ecut,
            piece_pts: [piece_pts; 3],
            buffer_pts: [buffer; 3],
            passivation: Passivation::WallOnly,
            wall_height: 1.5,
            n_extra_bands: 2,
            cg_steps: 6,
            initial_cg_steps: 25,
            fragment_tol: 1e-7,
            mixer: Mixer::Kerker {
                alpha: 0.5,
                q0: 0.8,
            },
            max_scf: 12,
            tol: 1e-5,
            pseudo: table,
            ..Default::default()
        };
        let t = std::time::Instant::now();
        let mut ls = Ls3df::builder(&s)
            .fragments([m, m, m])
            .options(opts)
            .build()
            .expect("valid buffer-ablation geometry");
        let res = ls.scf();
        let err = res.rho.diff(&direct.rho).integrate_abs() / s.num_electrons();
        println!(
            "{:>8} {:>10} {:>16.4e} {:>16.4e} {:>9.1}",
            buffer,
            piece_pts + 2 * buffer,
            err,
            res.history
                .last()
                .map(|h| h.dv_integral)
                .unwrap_or(f64::NAN),
            t.elapsed().as_secs_f64()
        );
    }
    println!(
        "\nshape target: the density error falls as the buffer grows (the paper's\n\
         exponential-accuracy-in-fragment-size claim, at fixed piece size), while the\n\
         per-fragment cost grows with the box volume — the core LS3DF tradeoff."
    );
}
