//! Regenerates the paper §V **accuracy comparison**: LS3DF vs direct LDA
//! on the same system, measured with this repository's real solvers.
//!
//! The paper's metrics: total energy "a few meV per atom", eigenenergies
//! from the converged LS3DF potential "about 2 meV", band gap agreement.
//! We run both methods on a deep-well model crystal (cheap and gapped;
//! pass `znte` as the first argument for an 8-atom-cell ZnTe run).
//!
//! Run: `cargo run -p ls3df-bench --bin accuracy --release -- [model|znte] [m]`

use ls3df_bench::{model_crystal, to_pw_atoms};
use ls3df_core::{Ls3df, Ls3dfOptions, Passivation};
use ls3df_pseudo::PseudoTable;
use ls3df_pw::{
    solve_all_band, DftSystem, Hamiltonian, Mixer, NonlocalPotential, ScfOptions, SolverOptions,
};

fn main() {
    let kind = std::env::args().nth(1).unwrap_or_else(|| "model".into());
    let m: usize = ls3df_bench::arg(2, 2);
    let (s, table, ecut, piece_pts, passivation) = if kind == "znte" {
        (
            ls3df_atoms::znte_supercell([m, m, m], ls3df_atoms::ZNTE_LATTICE),
            PseudoTable::default(),
            2.0,
            8usize,
            Passivation::PseudoH,
        )
    } else {
        (
            model_crystal([m, m, m], 6.5),
            PseudoTable::deep_well(2.0, 0.8),
            1.5,
            8usize,
            Passivation::WallOnly,
        )
    };
    println!(
        "system: {} ({} atoms, {} electrons)",
        s.formula(),
        s.len(),
        s.num_electrons()
    );

    // Direct reference.
    let grid = ls3df_grid::Grid3::new([m * piece_pts; 3], s.lengths);
    let sys = DftSystem {
        grid,
        ecut,
        atoms: to_pw_atoms(&s, &table),
    };
    let t = std::time::Instant::now();
    let direct = ls3df_pw::scf(
        &sys,
        &ScfOptions {
            max_scf: 60,
            tol: 1e-5,
            n_extra_bands: 4,
            ..Default::default()
        },
    );
    println!(
        "direct DFT: converged={} ({} iters, {:.0}s), E = {:.6} Ha",
        direct.converged,
        direct.history.len(),
        t.elapsed().as_secs_f64(),
        direct.total_energy
    );

    // LS3DF.
    let opts = Ls3dfOptions {
        ecut,
        piece_pts: [piece_pts; 3],
        buffer_pts: [3; 3],
        passivation,
        wall_height: 1.5,
        n_extra_bands: 2,
        cg_steps: 8,
        fragment_tol: 1e-8,
        mixer: Mixer::Kerker {
            alpha: 0.6,
            q0: 0.8,
        },
        max_scf: 40,
        tol: 3e-3,
        pseudo: table,
        ..Default::default()
    };
    let t = std::time::Instant::now();
    let mut ls = Ls3df::builder(&s)
        .fragments([m, m, m])
        .options(opts)
        .build()
        .expect("valid accuracy-bench geometry");
    let res = ls.scf();
    println!(
        "LS3DF: converged={} ({} iters, {:.0}s), {} fragments",
        res.converged,
        res.history.len(),
        t.elapsed().as_secs_f64(),
        ls.n_fragments()
    );

    // §V methodology: take the converged LS3DF potential, solve the full
    // system's eigenvalues in it, compare with the direct SCF eigenvalues.
    let basis = ls.global_basis();
    let positions: Vec<[f64; 3]> = sys.atoms.iter().map(|a| a.pos).collect();
    let widths: Vec<f64> = sys.atoms.iter().map(|a| a.kb_rb).collect();
    let e_kb: Vec<f64> = sys.atoms.iter().map(|a| a.kb_energy).collect();
    let nl = NonlocalPotential::new(
        basis,
        &positions,
        |a, q| (-q * q * widths[a] * widths[a] / 2.0).exp(),
        &e_kb,
    );
    let h = Hamiltonian::new(basis, res.v_eff.clone(), &nl);
    let n_bands = direct.eigenvalues.len();
    let mut psi = ls3df_pw::scf::random_start(n_bands, basis, 5);
    let stats = solve_all_band(
        &h,
        &mut psi,
        &SolverOptions {
            max_iter: 250,
            tol: 1e-7,
            ..Default::default()
        },
    );

    let n_occ = sys.n_occupied();
    println!("\naccuracy vs direct LDA (paper §V targets in parentheses):");
    let drho = res.rho.diff(&direct.rho);
    println!(
        "  ∫|Δρ|/N_e                = {:.3e}",
        drho.integrate_abs() / s.num_electrons()
    );
    let mut max_occ = 0.0_f64;
    let mut mean_occ = 0.0;
    for b in 0..n_occ {
        let e = (stats.eigenvalues[b] - direct.eigenvalues[b]).abs();
        max_occ = max_occ.max(e);
        mean_occ += e;
    }
    mean_occ /= n_occ as f64;
    println!(
        "  occupied eigenvalues: mean {:.2} meV, max {:.2} meV   (paper: ≈2 meV)",
        mean_occ * 27211.4,
        max_occ * 27211.4
    );
    let gap_ls = stats.eigenvalues[n_occ] - stats.eigenvalues[n_occ - 1];
    let gap_d = direct.eigenvalues[n_occ] - direct.eigenvalues[n_occ - 1];
    println!(
        "  band gap: LS3DF {:.4} Ha vs direct {:.4} Ha, Δ = {:.2} meV   (paper: ≈2 meV)",
        gap_ls,
        gap_d,
        (gap_ls - gap_d).abs() * 27211.4
    );
    // Harris-style total energy from the LS3DF density/potential.
    let (_, energies) = ls3df_pw::effective_potential(basis, ls.v_ion(), &res.rho);
    let band: f64 = stats.eigenvalues[..n_occ].iter().map(|e| 2.0 * e).sum();
    let vin_rho: f64 = res
        .v_eff
        .as_slice()
        .iter()
        .zip(res.rho.as_slice())
        .map(|(&v, &r)| v * r)
        .sum::<f64>()
        * basis.grid().dv();
    let e_ls3df =
        band - vin_rho + energies.ion_rho + energies.hartree + energies.xc + sys.ewald_energy();
    let de = (e_ls3df - direct.total_energy) / s.len() as f64 * 27211.4;
    println!(
        "  total energy: LS3DF {:.6} vs direct {:.6} Ha → Δ = {:.1} meV/atom   (paper: 'a few meV per atom')",
        e_ls3df, direct.total_energy, de
    );
}
