//! Regenerates paper **Figure 3**: strong-scaling speedups for LS3DF and
//! PEtot_F on the 3,456-atom 8×6×9 system (Np = 40, 1,080 → 17,280
//! Franklin cores), with the Amdahl's-law model fits (paper Eq. 1).
//!
//! Every point in `BENCH_fig3.json` carries a `provenance` tag:
//! `"model"` here, always — the Franklin machine model produces these
//! curves; nothing is measured on the host (contrast `fig5`, whose
//! multi-group leg runs real processor-group SCFs).
//!
//! Run: `cargo run -p ls3df-bench --bin fig3 --release`

use ls3df_hpc::{fig3_core_counts, strong_scaling, MachineSpec, Problem};
use ls3df_obs::{Json, Report, Stopwatch};
use std::path::Path;

fn main() {
    let sw = Stopwatch::start();
    let machine = MachineSpec::franklin();
    let problem = Problem::new(8, 6, 9);
    let cores = fig3_core_counts();
    let (points, fit_ls3df, fit_petot) =
        strong_scaling(&machine, &problem, 40, &cores).expect("Amdahl fit degenerate");

    println!("Figure 3 — strong scaling speedups (8x6x9, 3,456 atoms, Np = 40, Franklin)");
    println!("{}", "-".repeat(78));
    println!(
        "{:>8} {:>8} | {:>12} {:>12} | {:>12} {:>12}",
        "cores", "linear", "LS3DF", "model", "PEtot_F", "model"
    );
    let base = cores[0] as f64;
    for p in &points {
        println!(
            "{:>8} {:>8.1} | {:>12.2} {:>12.2} | {:>12.2} {:>12.2}",
            p.cores,
            p.cores as f64 / base,
            p.speedup_ls3df,
            fit_ls3df.speedup(p.cores as f64, base),
            p.speedup_petot,
            fit_petot.speedup(p.cores as f64, base),
        );
    }
    println!("{}", "-".repeat(78));

    let last = points.last().unwrap();
    let n_ratio = *cores.last().unwrap() as f64 / base;
    println!(
        "at {} cores: LS3DF speedup {:.1} ({:.1}% parallel efficiency; paper: 13.8, 86.3%)",
        last.cores,
        last.speedup_ls3df,
        100.0 * last.speedup_ls3df / n_ratio
    );
    println!(
        "             PEtot_F speedup {:.1} ({:.1}% parallel efficiency; paper: 15.3, 95.8%)",
        last.speedup_petot,
        100.0 * last.speedup_petot / n_ratio
    );
    println!("\nAmdahl fits (paper: P_s = 2.39 Gflop/s; α = 1/362,000 PEtot_F, 1/101,000 LS3DF):");
    println!(
        "  PEtot_F: P_s = {:.2} Gflop/s, α = 1/{:.0}, mean dev {:.2}%",
        fit_petot.p_serial / 1e9,
        1.0 / fit_petot.alpha,
        fit_petot.mean_abs_rel_dev * 100.0
    );
    println!(
        "  LS3DF:   P_s = {:.2} Gflop/s, α = 1/{:.0}, mean dev {:.2}% (paper fit dev: 0.26%)",
        fit_ls3df.p_serial / 1e9,
        1.0 / fit_ls3df.alpha,
        fit_ls3df.mean_abs_rel_dev * 100.0
    );

    // Machine-readable curve (EXPERIMENTS.md documents the schema). All
    // fig3 points come from the machine model — tagged so downstream
    // tooling never mistakes them for host measurements.
    let mut report = Report::new("fig3", sw.seconds());
    report
        .extra
        .push(("provenance".to_string(), Json::str("model")));
    report
        .extra
        .push(("machine".to_string(), Json::str(machine.name)));
    let point_objs = points
        .iter()
        .map(|p| {
            Json::obj(vec![
                ("cores", Json::num(p.cores as f64)),
                ("speedup_ls3df", Json::num(p.speedup_ls3df)),
                ("speedup_petot", Json::num(p.speedup_petot)),
                (
                    "model_ls3df",
                    Json::num(fit_ls3df.speedup(p.cores as f64, base)),
                ),
                (
                    "model_petot",
                    Json::num(fit_petot.speedup(p.cores as f64, base)),
                ),
                ("provenance", Json::str("model")),
            ])
        })
        .collect();
    report
        .extra
        .push(("points".to_string(), Json::Arr(point_objs)));
    report.extra.push((
        "fit_ls3df".to_string(),
        Json::obj(vec![
            ("p_serial_gflops", Json::num(fit_ls3df.p_serial / 1e9)),
            ("alpha_inverse", Json::num(1.0 / fit_ls3df.alpha)),
            ("mean_abs_rel_dev", Json::num(fit_ls3df.mean_abs_rel_dev)),
        ]),
    ));
    report.extra.push((
        "fit_petot".to_string(),
        Json::obj(vec![
            ("p_serial_gflops", Json::num(fit_petot.p_serial / 1e9)),
            ("alpha_inverse", Json::num(1.0 / fit_petot.alpha)),
            ("mean_abs_rel_dev", Json::num(fit_petot.mean_abs_rel_dev)),
        ]),
    ));
    let bench_path = Path::new("BENCH_fig3.json");
    match report.write(bench_path) {
        Ok(()) => println!("run report -> {}", bench_path.display()),
        Err(e) => eprintln!("run report write failed: {e}"),
    }
}
