//! PEtot_F thread-scaling benchmark for the work-stealing pool behind the
//! rayon shim.
//!
//! The paper's scaling argument rests on PEtot_F — the independent
//! per-fragment eigensolves — dominating the outer iteration and
//! parallelizing embarrassingly. This binary measures that directly on
//! one node: it runs the same short LS3DF SCF once per thread count
//! (each in a fresh subprocess, because the pool is configured once per
//! process from `LS3DF_THREADS`) and reports the PEtot_F speedup over
//! the forced-sequential baseline.
//!
//! On a single-core host every row reports ≈1×; on a multi-core host the
//! pool should deliver >1.5× at 2+ threads (the redesign's acceptance
//! bar). The digest column doubles as a determinism check: every row
//! must print the same value.
//!
//! Run: `cargo run -p ls3df-bench --bin petot_scaling --release -- [m] [iters] [max_threads]`

use ls3df_bench::{arg, model_crystal};
use ls3df_core::{Ls3df, Ls3dfOptions, Ls3dfResult, Passivation};
use ls3df_obs::{Json, Report, Stopwatch};
use ls3df_pseudo::PseudoTable;
use ls3df_pw::Mixer;
use std::path::Path;

/// FNV-1a over the density's raw bit patterns: one number per run that
/// changes on any single-bit divergence between thread counts.
fn density_digest(res: &Ls3dfResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &x in res.rho.as_slice() {
        for byte in x.to_bits().to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// One measured run at whatever `LS3DF_THREADS` this process was started
/// with; prints a machine-readable result line for the parent.
fn child(m: usize, iters: usize) {
    let s = model_crystal([m, m, m], 6.5);
    let opts = Ls3dfOptions {
        ecut: 1.5,
        piece_pts: [8; 3],
        buffer_pts: [3; 3],
        passivation: Passivation::WallOnly,
        wall_height: 1.5,
        n_extra_bands: 2,
        cg_steps: 6,
        initial_cg_steps: 10,
        fragment_tol: 1e-9,
        mixer: Mixer::Kerker {
            alpha: 0.6,
            q0: 0.8,
        },
        max_scf: iters,
        tol: 1e-10, // never converges early: every run does `iters` iterations
        pseudo: PseudoTable::deep_well(2.0, 0.8),
        ..Default::default()
    };
    let mut calc = Ls3df::builder(&s)
        .fragments([m, m, m])
        .options(opts)
        .build()
        .expect("valid scaling geometry");
    let res = calc.scf();
    let petot: f64 = res.history.iter().map(|h| h.timings.petot_f).sum();
    let total: f64 = res
        .history
        .iter()
        .map(|h| {
            let t = h.timings;
            t.gen_vf + t.petot_f + t.gen_dens + t.genpot
        })
        .sum();
    println!(
        "PETOT_RESULT petot={petot:.6} total={total:.6} digest={:016x}",
        density_digest(&res)
    );
}

struct Row {
    threads: usize,
    petot: f64,
    total: f64,
    digest: String,
}

fn parse_row(threads: usize, stdout: &str) -> Option<Row> {
    let line = stdout.lines().find(|l| l.contains("PETOT_RESULT"))?;
    let field = |key: &str| -> Option<&str> {
        line.split_whitespace()
            .find_map(|tok| tok.strip_prefix(key))
    };
    Some(Row {
        threads,
        petot: field("petot=")?.parse().ok()?,
        total: field("total=")?.parse().ok()?,
        digest: field("digest=")?.to_string(),
    })
}

fn main() {
    if std::env::var("LS3DF_PETOT_CHILD").is_ok() {
        child(arg(1, 2), arg(2, 2));
        return;
    }

    let m: usize = arg(1, 2);
    let iters: usize = arg(2, 2);
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let max_threads: usize = arg(3, host);

    // 1, 2, 4, … up to max_threads, always ending at max_threads.
    let mut counts = vec![1usize];
    let mut t = 2;
    while t < max_threads {
        counts.push(t);
        t *= 2;
    }
    if max_threads > 1 {
        counts.push(max_threads);
    }

    let sw = Stopwatch::start();
    let exe = std::env::current_exe().expect("bench binary path");
    println!(
        "PEtot_F scaling: {m}\u{d7}{m}\u{d7}{m} pieces, {iters} outer iterations, host parallelism {host}"
    );
    println!(
        "{:>8} {:>12} {:>10} {:>12} {:>18}",
        "threads", "PEtot_F (s)", "speedup", "iter (s)", "density digest"
    );

    let mut rows: Vec<Row> = Vec::new();
    for &threads in &counts {
        // comm-audit: re-exec per thread count so each measurement gets a
        // fresh pool; no calculation data crosses this boundary.
        let out = std::process::Command::new(&exe)
            .args([m.to_string(), iters.to_string()])
            .env("LS3DF_PETOT_CHILD", "1")
            .env("LS3DF_THREADS", threads.to_string())
            .output()
            .expect("spawn scaling child");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        if !out.status.success() {
            eprintln!(
                "child with LS3DF_THREADS={threads} failed:\n{stdout}\n{}",
                String::from_utf8_lossy(&out.stderr)
            );
            std::process::exit(1);
        }
        let Some(row) = parse_row(threads, &stdout) else {
            eprintln!("no PETOT_RESULT line from child {threads}:\n{stdout}");
            std::process::exit(1);
        };
        let base = rows.first().map_or(row.petot, |r| r.petot);
        println!(
            "{:>8} {:>12.3} {:>9.2}\u{d7} {:>12.3} {:>18}",
            row.threads,
            row.petot,
            base / row.petot.max(1e-12),
            row.total,
            row.digest
        );
        rows.push(row);
    }

    let reference = &rows[0].digest;
    if rows.iter().any(|r| &r.digest != reference) {
        eprintln!("DETERMINISM VIOLATION: density digests differ across thread counts");
        std::process::exit(1);
    }
    println!("all thread counts produced bit-identical densities");
    if let (Some(first), Some(last)) = (rows.first(), rows.last()) {
        if last.threads > 1 {
            println!(
                "PEtot_F speedup at {} threads: {:.2}\u{d7}",
                last.threads,
                first.petot / last.petot.max(1e-12)
            );
        }
    }

    // Machine-readable trajectory (EXPERIMENTS.md documents the schema).
    // The measured rows live in `extra`: this bin times subprocesses, so
    // the span/counter sections of the schema stay empty here.
    let mut report = Report::new("petot_scaling", sw.seconds());
    report.extra.push(("m".to_string(), Json::num(m as f64)));
    report
        .extra
        .push(("iters".to_string(), Json::num(iters as f64)));
    report
        .extra
        .push(("host_parallelism".to_string(), Json::num(host as f64)));
    report
        .extra
        .push(("density_digest".to_string(), Json::str(reference.clone())));
    let row_objs = rows
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("threads", Json::num(r.threads as f64)),
                ("petot_seconds", Json::num(r.petot)),
                ("total_seconds", Json::num(r.total)),
                ("digest", Json::str(r.digest.clone())),
            ])
        })
        .collect();
    report
        .extra
        .push(("scaling_rows".to_string(), Json::Arr(row_objs)));
    let bench_path = Path::new("BENCH_petot_scaling.json");
    match report.write(bench_path) {
        Ok(()) => println!("run report -> {}", bench_path.display()),
        Err(e) => eprintln!("run report write failed: {e}"),
    }
}
