//! Fragmentation-scheme ablation on the ZnTe₁₋ₓOₓ alloy: sign-alternating
//! (the paper's {1,2}³ corner pieces with α = ±1) versus overlapping
//! fragments (one piece per corner, uniform positive weights), at equal
//! decomposition, cutoff and buffer.
//!
//! For each scheme the binary runs a real LS3DF SCF, measures the total
//! energy error against a converged direct-LDA reference on the same
//! system (meV/atom, §V methodology: Harris-style assembly from the LS3DF
//! density/potential), and reports the work done — fragment solves and
//! FFT Gflop from the obs counters when built with `--features obs`, and
//! an analytic fragment-solve count otherwise.
//!
//! The output table goes to stdout; the machine-readable sweep goes to
//! `BENCH_scheme_ablation.json` (schema documented in EXPERIMENTS.md).
//!
//! Run: `cargo run -p ls3df-bench --bin znteo_scheme_ablation --release \
//!       --features obs -- [m] [iters] [ecut] [piece_pts] [direct_iters]`
//!
//! Defaults (`2 16 2.0 8 60`) match the fig6 fidelity; on a small
//! machine pass e.g. `2 6 2.0 8 30` for a shorter smoke sweep (keep
//! ecut at 2.0 — the ZnTe pseudopotentials are tuned there, and the
//! meV/atom column is only meaningful near convergence).

use ls3df_bench::{arg, to_pw_atoms};
use ls3df_core::{FragmentScheme, Ls3df, Ls3dfOptions, Overlapping, Passivation, SignAlternating};
use ls3df_obs::Json;
use ls3df_pseudo::PseudoTable;
use ls3df_pw::{DftSystem, Mixer, ScfOptions};
use std::sync::Arc;

/// Everything one scheme's run produces, for the table and the JSON.
struct SchemeRun {
    scheme_id: &'static str,
    converged: bool,
    iterations: usize,
    dv_final: f64,
    mev_per_atom: f64,
    n_fragments: usize,
    fragment_solves: u64,
    solves_measured: bool,
    gflop: f64,
    seconds: f64,
}

fn main() {
    let m: usize = arg(1, 2);
    let iters: usize = arg(2, 16);
    let ecut: f64 = arg(3, 2.0);
    let piece_pts: usize = arg(4, 8);
    let direct_iters: usize = arg(5, 60);
    let table = PseudoTable::default();

    // The fig6 system: VFF-relaxed alloy at the paper's 3.125% O ratio.
    let mut s = ls3df_atoms::znteo_alloy([m, m, m], ls3df_atoms::ZNTE_LATTICE, 0.03125, 42);
    let relax = ls3df_atoms::relax(&mut s, 1e-4, 3000);
    println!(
        "system: {} ({} atoms, {} electrons); VFF relaxation: {} steps",
        s.formula(),
        s.len(),
        s.num_electrons(),
        relax.steps
    );

    // Direct-LDA reference on the identical grid (the error baseline).
    let sys = DftSystem {
        grid: ls3df_grid::Grid3::new([m * piece_pts; 3], s.lengths),
        ecut,
        atoms: to_pw_atoms(&s, &table),
    };
    let t = std::time::Instant::now();
    let direct = ls3df_pw::scf(
        &sys,
        &ScfOptions {
            max_scf: direct_iters,
            tol: 1e-5,
            n_extra_bands: 4,
            ..Default::default()
        },
    );
    println!(
        "direct DFT: converged={} ({} iters, {:.0}s), E = {:.6} Ha\n",
        direct.converged,
        direct.history.len(),
        t.elapsed().as_secs_f64(),
        direct.total_energy
    );

    let opts = || Ls3dfOptions {
        ecut,
        piece_pts: [piece_pts; 3],
        buffer_pts: [3; 3],
        passivation: Passivation::PseudoH,
        wall_height: 1.5,
        n_extra_bands: 4,
        cg_steps: 12,
        initial_cg_steps: 40,
        // Tighter than fig6's 5e-2: the energy metric needs converged
        // fragment eigenstates (the α-weighted boundary terms only cancel
        // between well-solved fragments); cost is capped by cg_steps.
        fragment_tol: 1e-8,
        mixer: Mixer::Kerker {
            alpha: 0.4,
            q0: 1.0,
        },
        max_scf: iters,
        tol: 1e-3,
        pseudo: table,
        ..Default::default()
    };

    let schemes: Vec<Arc<dyn FragmentScheme>> =
        vec![Arc::new(SignAlternating), Arc::new(Overlapping::default())];
    let mut runs = Vec::new();
    for scheme in schemes {
        runs.push(run_scheme(&s, direct.total_energy, scheme, opts(), m));
    }

    println!(
        "\n{:>17} {:>5} {:>6} {:>11} {:>13} {:>11} {:>9} {:>9}",
        "scheme", "conv", "iters", "∫|ΔV| last", "ΔE meV/atom", "frag solves", "Gflop", "time (s)"
    );
    for r in &runs {
        println!(
            "{:>17} {:>5} {:>6} {:>11.2e} {:>13.2} {:>10}{} {:>9.1} {:>9.1}",
            r.scheme_id,
            r.converged,
            r.iterations,
            r.dv_final,
            r.mev_per_atom,
            r.fragment_solves,
            if r.solves_measured { " " } else { "*" },
            r.gflop,
            r.seconds
        );
    }
    if runs.iter().any(|r| !r.solves_measured) {
        println!("  * analytic count (n_fragments × SCF iterations); build with --features obs to measure");
    }
    println!(
        "\nshape target (at the default fidelity, run to convergence): both schemes\n\
         approach the direct reference — sign-alternating to a few meV/atom via its\n\
         exact ± boundary cancellation, overlapping with a larger surface-term bias —\n\
         while sign-alternating runs 8 signed fragments per corner against\n\
         overlapping's 1 uniform fragment: the accuracy-per-fragment-solve tradeoff."
    );

    // Machine-readable sweep (EXPERIMENTS.md documents the schema).
    let report = Json::obj(vec![
        ("schema", Json::str("ls3df-scheme-ablation/1")),
        ("system", Json::str(s.formula())),
        ("atoms", Json::num(s.len() as f64)),
        ("decomposition", Json::num(m as f64)),
        ("ecut", Json::num(ecut)),
        ("direct_energy_ha", Json::num(direct.total_energy)),
        ("direct_converged", Json::Bool(direct.converged)),
        (
            "schemes",
            Json::Arr(
                runs.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("scheme", Json::str(r.scheme_id)),
                            ("converged", Json::Bool(r.converged)),
                            ("iterations", Json::num(r.iterations as f64)),
                            ("dv_final", Json::num(r.dv_final)),
                            ("mev_per_atom", Json::num(r.mev_per_atom)),
                            ("n_fragments", Json::num(r.n_fragments as f64)),
                            ("fragment_solves", Json::num(r.fragment_solves as f64)),
                            ("fragment_solves_measured", Json::Bool(r.solves_measured)),
                            ("fft_gflop", Json::num(r.gflop)),
                            ("seconds", Json::num(r.seconds)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let path = "BENCH_scheme_ablation.json";
    match std::fs::write(path, report.render() + "\n") {
        Ok(()) => println!("\nsweep report -> {path}"),
        Err(e) => eprintln!("\nsweep report write failed: {e}"),
    }
}

/// Runs LS3DF under `scheme` and scores it against the direct energy.
fn run_scheme(
    s: &ls3df_atoms::Structure,
    e_direct: f64,
    scheme: Arc<dyn FragmentScheme>,
    opts: Ls3dfOptions,
    m: usize,
) -> SchemeRun {
    let scheme_id = scheme.id();
    println!("[{scheme_id}] running LS3DF SCF…");
    ls3df_obs::reset();
    let t = std::time::Instant::now();
    let mut ls = Ls3df::builder(s)
        .fragments([m, m, m])
        .options(opts)
        .scheme_arc(scheme)
        .build()
        .expect("valid ablation geometry");
    let res = ls.scf();
    let seconds = t.elapsed().as_secs_f64();
    let counters = ls3df_obs::harvest().counters;
    let counter = |name: &str| {
        counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    let measured = counter("fragment_solves");
    let solves_measured = measured > 0;
    let fragment_solves = if solves_measured {
        measured
    } else {
        (ls.n_fragments() * res.history.len()) as u64
    };
    let gflop = counter("fft_flops") as f64 * 1e-9;

    // LS3DF total energy (the α-weighted fragment quantum term comes from
    // the scheme itself) against the direct reference, §V style.
    let e_ls3df = ls.total_energy().total();
    let mev_per_atom = (e_ls3df - e_direct) / s.len() as f64 * 27211.4;
    println!(
        "[{scheme_id}] converged={} after {} iters ({seconds:.0}s), E = {:.6} Ha, ΔE = {mev_per_atom:.2} meV/atom",
        res.converged,
        res.history.len(),
        e_ls3df,
    );

    SchemeRun {
        scheme_id,
        converged: res.converged,
        iterations: res.history.len(),
        dv_final: res
            .history
            .last()
            .map(|h| h.dv_integral)
            .unwrap_or(f64::NAN),
        mev_per_atom,
        n_fragments: ls.n_fragments(),
        fragment_solves,
        solves_measured,
        gflop,
        seconds,
    }
}
