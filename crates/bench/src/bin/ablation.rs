//! Regenerates the paper **§IV optimization ablations**:
//!
//! 1. communication algorithm for Gen_VF/Gen_dens — file I/O vs in-memory
//!    collectives vs point-to-point (model: 22 s → 2.5 s → sub-second);
//! 2. all-band (BLAS-3) vs band-by-band (BLAS-2) eigensolver — *measured*
//!    with this repository's real solvers on a fragment-sized problem
//!    (paper: PEtot went from 15% to 45–56% of peak);
//! 3. Gram–Schmidt vs overlap-matrix orthogonalization — measured.
//!
//! Run: `cargo run -p ls3df-bench --bin ablation --release`

use ls3df_hpc::{iteration_time, CommAlgo, MachineSpec, Problem};
use ls3df_math::{c64, Matrix};
use ls3df_pw::{
    solve_all_band, solve_band_by_band, Hamiltonian, NonlocalPotential, PwBasis, SolverOptions,
};
use std::time::Instant;

fn main() {
    // ---- 1. Communication algorithm (model) ------------------------------
    println!("ablation 1 — Gen_VF/Gen_dens/GENPOT communication algorithm (model)");
    let p = Problem::new(8, 6, 9); // the 2,000-atom CdSe rod analogue scale
    println!(
        "{:>16} {:>14} {:>20}",
        "algorithm", "comm (s)", "share of iteration"
    );
    for (name, algo) in [
        ("file I/O", CommAlgo::FileIo),
        ("collectives", CommAlgo::Collective),
        ("point-to-point", CommAlgo::PointToPoint),
    ] {
        let machine = MachineSpec::franklin().with_comm(algo);
        let t = iteration_time(&machine, &p, 8640, 40);
        println!(
            "{:>16} {:>14.2} {:>19.1}%",
            name,
            t.comm,
            100.0 * t.comm / t.total()
        );
    }
    println!("(paper: 22 s + 19 s + 22 s originally → 2.5 + 2.2 + 0.4 s after optimization,\n a further ~6x from isend/irecv on Intrepid)\n");

    // ---- 2. All-band vs band-by-band (measured) --------------------------
    println!("ablation 2 — eigensolver variant on a fragment-sized problem (measured)");
    // A realistic fragment: ~1,500 planewaves × 32 bands (the paper's
    // production fragments are 3000 × 200 per group member).
    let grid = ls3df_grid::Grid3::cubic(24, 18.0);
    let basis = PwBasis::new(grid.clone(), 3.0);
    let v = ls3df_grid::RealField::from_fn(grid, |r| {
        let d2 = (r[0] - 9.0).powi(2) + (r[1] - 9.0).powi(2) + (r[2] - 9.0).powi(2);
        -0.8 * (-0.1 * d2).exp()
    });
    let nl = NonlocalPotential::none(&basis);
    let h = Hamiltonian::new(&basis, v, &nl);
    let nb = 32;
    println!(
        "  basis: {} planewaves × {} bands, target residual 1e-5",
        basis.len(),
        nb
    );
    // Time-to-tolerance comparison (the fair metric: both must reach the
    // same residual).
    let opts = SolverOptions {
        max_iter: 120,
        tol: 1e-5,
        ..Default::default()
    };

    let mut psi_a = ls3df_pw::scf::random_start(nb, &basis, 1);
    let t = Instant::now();
    let sa = solve_all_band(&h, &mut psi_a, &opts);
    let t_all = t.elapsed().as_secs_f64();

    let mut psi_b = ls3df_pw::scf::random_start(nb, &basis, 1);
    let t = Instant::now();
    let sb = solve_band_by_band(&h, &mut psi_b, &opts);
    let t_bbb = t.elapsed().as_secs_f64();

    println!(
        "  all-band (BLAS-3 shaped):     {:>7.2}s to residual {:.1e} ({} iters)",
        t_all, sa.residual, sa.iterations
    );
    println!(
        "  band-by-band (BLAS-2 shaped): {:>7.2}s to residual {:.1e} ({} iters/band)",
        t_bbb, sb.residual, sb.iterations
    );
    println!(
        "  at equal wall time the all-band residual is {:.0}× lower — the all-band\n  scheme converges much further per second (paper: PEtot 15% → 45-56% of peak)\n",
        sb.residual / sa.residual
    );

    // ---- 3. Orthogonalization variant (measured) --------------------------
    println!("ablation 3 — orthogonalization kernel on a wavefunction block (measured)");
    let npw = basis.len();
    let block = ls3df_pw::scf::random_start(96, &basis, 9);
    let reps = 10;
    let t = Instant::now();
    for _ in 0..reps {
        let mut b = block.clone();
        ls3df_math::ortho::gram_schmidt(&mut b, 1.0).unwrap();
    }
    let t_gs = t.elapsed().as_secs_f64() / reps as f64;
    let t = Instant::now();
    for _ in 0..reps {
        let mut b = block.clone();
        ls3df_math::ortho::cholesky_orthonormalize(&mut b, 1.0).unwrap();
    }
    let t_ch = t.elapsed().as_secs_f64() / reps as f64;
    println!("  block: 96 bands × {npw} planewaves");
    println!("  Gram–Schmidt (band-by-band): {:>8.4}s", t_gs);
    println!("  overlap-matrix (Cholesky):   {:>8.4}s", t_ch);
    println!(
        "  ratio {:.2}× — note: the overlap-matrix win in the paper comes from vendor\n  DGEMM + within-group parallelism; on this scalar single-core build the\n  streaming Gram–Schmidt dots are competitive (the BLAS-3 *shape* is what\n  this ablation verifies; ablation 4 shows the blocking win directly)",
        t_gs / t_ch
    );

    // ---- 4. GEMM kernel (measured; paper's DGEMM-sized matrices) ----------
    println!("\nablation 4 — GEMM kernel at the paper's typical fragment shape (measured)");
    let (m, k, n) = (200, 3000, 200); // paper: 'typical matrix … 3000 × 200'
    let a = Matrix::from_fn(m, k, |i, j| {
        c64::new((i + j) as f64 * 1e-4, (i as f64 - j as f64) * 1e-4)
    });
    let b = Matrix::from_fn(k, n, |i, j| c64::new((i * j % 17) as f64 * 1e-3, 0.1));
    let t = Instant::now();
    let _ = ls3df_math::gemm::matmul(&a, &b);
    let t_blocked = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let _ = ls3df_math::gemm::matmul_naive(&a, &b);
    let t_naive = t.elapsed().as_secs_f64();
    let flops = 8.0 * (m * k * n) as f64; // complex MAC = 8 real flops
    println!(
        "  blocked: {:.3}s ({:.2} Gflop/s) | naive: {:.3}s ({:.2} Gflop/s) | speedup {:.2}×",
        t_blocked,
        flops / t_blocked / 1e9,
        t_naive,
        flops / t_naive / 1e9,
        t_naive / t_blocked
    );

    // ---- 5. q-space vs real-space nonlocal projectors (measured) ----------
    // Paper §V: "a reciprocal q-space implementation of the nonlocal
    // potential is faster than a real-space implementation" for their
    // fragment sizes.
    println!("\nablation 5 — Kleinman–Bylander projector implementation (measured)");
    let grid = ls3df_grid::Grid3::cubic(20, 16.0);
    let basis = PwBasis::new(grid.clone(), 2.0);
    let v = ls3df_grid::RealField::from_fn(grid.clone(), |r| 0.05 * (r[0] - 8.0));
    // A fragment-like payload: 27 atoms with one projector each.
    let mut positions = Vec::new();
    for z in 0..3 {
        for y in 0..3 {
            for x in 0..3 {
                positions.push([
                    2.0 + 4.0 * x as f64,
                    2.0 + 4.0 * y as f64,
                    2.0 + 4.0 * z as f64,
                ]);
            }
        }
    }
    let rb = vec![1.2; 27];
    let e_kb = vec![1.0; 27];
    let nl_q = NonlocalPotential::new(
        &basis,
        &positions,
        |a, q| (-q * q * rb[a] * rb[a] / 2.0).exp(),
        &e_kb,
    );
    let h_q = Hamiltonian::new(&basis, v.clone(), &nl_q);
    let nl_r = ls3df_pw::RealSpaceNonlocal::new(&grid, &positions, &rb, &e_kb, 4.0);
    let psi = ls3df_pw::scf::random_start(32, &basis, 5);
    println!(
        "  {} planewaves × 32 bands, 27 projectors (avg sphere {} pts of {} grid pts)",
        basis.len(),
        nl_r.avg_sphere_points() as usize,
        grid.len()
    );
    let reps = 5;
    let t = Instant::now();
    for _ in 0..reps {
        let _ = h_q.apply_block(&psi);
    }
    let t_q = t.elapsed().as_secs_f64() / reps as f64;
    let t = Instant::now();
    for _ in 0..reps {
        let _ = ls3df_pw::apply_block_realspace(&basis, &v, &nl_r, &psi);
    }
    let t_r = t.elapsed().as_secs_f64() / reps as f64;
    println!("  H·ψ with q-space projectors:     {t_q:.3}s");
    println!("  H·ψ with real-space projectors:  {t_r:.3}s");
    println!(
        "  q-space is {:.2}× {} at this fragment size (paper §V picked q-space for fragments)",
        if t_r > t_q { t_r / t_q } else { t_q / t_r },
        if t_r > t_q { "faster" } else { "slower" }
    );
}
