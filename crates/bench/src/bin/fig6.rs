//! Regenerates paper **Figure 6**: LS3DF self-consistency convergence —
//! `∫|V_out − V_in| d³r` versus outer-iteration count — as a *real
//! measured run* of this implementation on a scaled-down ZnTe₁₋ₓOₓ alloy.
//!
//! The paper's run is Zn₁₇₂₈Te₁₆₇₄O₅₄ (8×6×9 cells, 3.125% O, 60
//! iterations). The default here is an m×m×m cell alloy at reduced cutoff
//! sized for a single-core machine; pass arguments to scale up.
//!
//! Run: `cargo run -p ls3df-bench --bin fig6 --release -- [m] [iters] [ecut] [piece_pts]`

use ls3df_bench::{arg, to_pw_atoms};
use ls3df_ckpt::{CheckpointConfig, CkptError};
use ls3df_core::{
    FragmentFault, Ls3df, Ls3dfOptions, Ls3dfStep, Passivation, QuarantineRecord, ScfObserver,
    ScfStage, TraceObserver,
};
use ls3df_hpc::MachineSpec;
use ls3df_obs::MachineRef;
use ls3df_pseudo::PseudoTable;
use ls3df_pw::Mixer;
use std::io::Write as _;
use std::path::Path;

/// Console observer for the measured run: the Fig. 6 table row per
/// iteration, plus supervision events (snapshots written, fragment
/// retries/quarantines) as indented side notes. Every event is also
/// forwarded to the wrapped [`TraceObserver`], which assembles the
/// `BENCH_scf.json` run report.
struct Fig6Observer<'a> {
    tracer: &'a mut TraceObserver,
}

impl ScfObserver for Fig6Observer<'_> {
    fn on_step(&mut self, h: &Ls3dfStep) {
        println!(
            "{:>5} {:>14.6e} {:>11.2e} | {:>7.2}s {:>7.2}s {:>7.2}s {:>7.2}s",
            h.iteration,
            h.dv_integral,
            h.worst_residual,
            h.timings.gen_vf,
            h.timings.petot_f,
            h.timings.gen_dens,
            h.timings.genpot,
        );
        let _ = std::io::stdout().flush();
        self.tracer.on_step(h);
    }
    fn on_stage(&mut self, iteration: usize, stage: ScfStage, seconds: f64) {
        self.tracer.on_stage(iteration, stage, seconds);
    }
    fn on_converged(&mut self, step: &Ls3dfStep) {
        self.tracer.on_converged(step);
    }
    fn on_fragment_retry(&mut self, iteration: usize, fault: &FragmentFault) {
        println!("      [iter {iteration}] retry: {fault}");
        self.tracer.on_fragment_retry(iteration, fault);
    }
    fn on_fragment_quarantined(&mut self, iteration: usize, record: &QuarantineRecord) {
        println!("      [iter {iteration}] QUARANTINED: {record}");
        self.tracer.on_fragment_quarantined(iteration, record);
    }
    fn on_snapshot_written(&mut self, iteration: usize, path: &Path) {
        println!("      [iter {iteration}] snapshot -> {}", path.display());
    }
    fn on_snapshot_failed(&mut self, iteration: usize, error: &CkptError) {
        println!("      [iter {iteration}] snapshot FAILED: {error}");
    }
    fn on_snapshot_restored(&mut self, resumed_from_iteration: usize) {
        self.tracer.on_snapshot_restored(resumed_from_iteration);
    }
}

fn main() {
    let m: usize = arg(1, 2);
    let iters: usize = arg(2, 20);
    let ecut: f64 = arg(3, 2.0);
    let piece_pts: usize = arg(4, 8);

    // Build and VFF-relax the alloy (3.125% O — the paper's 54/1728 ratio).
    let mut s = ls3df_atoms::znteo_alloy([m, m, m], ls3df_atoms::ZNTE_LATTICE, 0.03125, 42);
    let relax = ls3df_atoms::relax(&mut s, 1e-4, 3000);
    println!(
        "system: {} ({} atoms, {} electrons); VFF relaxation: {} steps, max displacement {:.3} Bohr",
        s.formula(),
        s.len(),
        s.num_electrons(),
        relax.steps,
        relax.max_displacement
    );

    let opts = Ls3dfOptions {
        ecut,
        piece_pts: [piece_pts; 3],
        buffer_pts: [3; 3],
        passivation: Passivation::PseudoH,
        wall_height: 1.5,
        n_extra_bands: 4,
        cg_steps: 12,
        initial_cg_steps: 40,
        fragment_tol: 5e-2,
        mixer: Mixer::Kerker {
            alpha: 0.4,
            q0: 1.0,
        },
        max_scf: iters,
        tol: 1e-3,
        pseudo: PseudoTable::default(),
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    // Full resumable snapshots every 5 iterations (fig7 resumes from the
    // newest one to skip the SCF entirely).
    let ckpt_dir = format!("target/checkpoints/fig6_m{m}");
    let mut ls = Ls3df::builder(&s)
        .fragments([m, m, m])
        .options(opts)
        .checkpoint(CheckpointConfig::every_n(&ckpt_dir, 5))
        .build()
        .expect("valid fig6 geometry");
    println!(
        "LS3DF: {} fragments, global grid {:?} ({:.0}s setup)",
        ls.n_fragments(),
        ls.global_grid.dims,
        t0.elapsed().as_secs_f64()
    );
    let _ = to_pw_atoms(&s, &PseudoTable::default()); // (documented helper; used by fig7)

    let t0 = std::time::Instant::now();
    println!("\nFigure 6 — ∫|V_out − V_in| d³r vs SCF iteration (measured)");
    println!("{}", "-".repeat(72));
    println!(
        "{:>5} {:>14} {:>11} | {:>8} {:>8} {:>8} {:>8}",
        "iter", "∫|ΔV| (a.u.)", "residual", "Gen_VF", "PEtot_F", "Gendens", "GENPOT"
    );
    // Rate the run against the paper's primary machine model at this
    // host's core count (%-of-peak next to the paper's ~40% figure).
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let spec = MachineSpec::franklin();
    let machine = MachineRef {
        name: format!("{} @ {cores} cores", spec.name),
        peak_gflops: spec.peak(cores) * 1e-9,
    };
    let mut tracer = TraceObserver::new("fig6")
        .with_machine(machine)
        .with_trace_file("TRACE_fig6.json");
    let res = ls.scf_with(Fig6Observer {
        tracer: &mut tracer,
    });
    let mut report = tracer.finish();
    report
        .extra
        .push(("atoms".to_string(), ls3df_obs::Json::num(s.len() as f64)));
    report.extra.push((
        "fragments".to_string(),
        ls3df_obs::Json::num(ls.n_fragments() as f64),
    ));
    let first = res.history.first().map(|h| h.dv_integral).unwrap_or(1.0);
    println!("{}", "-".repeat(72));
    let last = res.history.last().unwrap();
    println!(
        "converged = {} after {} iterations ({:.0}s total); ∫|ΔV| dropped {:.1e} → {:.1e} ({:.1}×)",
        res.converged,
        res.history.len(),
        t0.elapsed().as_secs_f64(),
        first,
        last.dv_integral,
        first / last.dv_integral
    );
    println!(
        "paper shape: steady overall decay over 60 iterations with occasional upward jumps \
         (potential mixing does not guarantee monotonicity), final ≈1e-2 a.u."
    );
    // Count the non-monotone jumps, a Fig. 6 feature the paper calls out.
    let jumps = res
        .history
        .windows(2)
        .filter(|w| w[1].dv_integral > w[0].dv_integral)
        .count();
    println!("non-monotone steps in this run: {jumps} (paper: 'a few cases where this difference jumps')");
    if !res.quarantined.is_empty() {
        println!(
            "WARNING: {} fragment(s) were quarantined — their rows above used a stale density:",
            res.quarantined.len()
        );
        for q in &res.quarantined {
            println!("  {q}");
        }
    }
    if let Ok(Some(snap)) = ls3df_ckpt::latest_snapshot(Path::new(&ckpt_dir)) {
        println!(
            "resumable snapshot: {} (fig7 picks this up)",
            snap.display()
        );
    }

    // Machine-readable run report (EXPERIMENTS.md documents the schema).
    println!();
    print!("{}", report.summary_table());
    let bench_path = Path::new("BENCH_scf.json");
    match report.write(bench_path) {
        Ok(()) => println!("run report -> {}", bench_path.display()),
        Err(e) => eprintln!("run report write failed: {e}"),
    }

    // Checkpoint the converged state for fig7 (FSM post-processing).
    let dir = Path::new("target/checkpoints");
    std::fs::create_dir_all(dir).ok();
    let tag = format!("znteo_m{m}");
    if ls3df_grid::save_field(&res.v_eff, &dir.join(format!("{tag}_veff.ck"))).is_ok()
        && ls3df_grid::save_field(&res.rho, &dir.join(format!("{tag}_rho.ck"))).is_ok()
    {
        println!("checkpoint written to target/checkpoints/{tag}_*.ck (fig7 will reuse it)");
    }
}
