//! Regenerates paper **Table I**: Tflop/s and % of peak for all 28
//! (machine, system, cores, Np) rows, model vs paper.
//!
//! Run: `cargo run -p ls3df-bench --bin table1 --release`

use ls3df_hpc::{model_row, paper_table1, Machine};

fn main() {
    println!("Table I — summary of test results (model vs paper)");
    println!("{}", "-".repeat(86));
    println!(
        "{:<10} {:>9} {:>6} {:>7} {:>4} | {:>9} {:>7} | {:>9} {:>7} | {:>6}",
        "machine",
        "sys size",
        "atoms",
        "cores",
        "Np",
        "model Tf",
        "model %",
        "paper Tf",
        "paper %",
        "Δ%pk"
    );
    println!("{}", "-".repeat(86));
    let mut last = None;
    let mut sum_err = 0.0;
    let mut max_err = 0.0_f64;
    for row in paper_table1() {
        if last != Some(row.machine) {
            let name = match row.machine {
                Machine::Franklin => "Franklin",
                Machine::Jaguar => "Jaguar",
                Machine::Intrepid => "Intrepid",
            };
            println!("--- {name} ---");
            last = Some(row.machine);
        }
        let m = model_row(&row);
        let err = (m.pct_peak - row.paper_pct_peak) * 100.0;
        sum_err += err.abs();
        max_err = max_err.max(err.abs());
        println!(
            "{:<10} {:>9} {:>6} {:>7} {:>4} | {:>9.2} {:>6.1}% | {:>9.2} {:>6.1}% | {:>+5.1}",
            "",
            format!("{}x{}x{}", row.m[0], row.m[1], row.m[2]),
            row.atoms,
            row.cores,
            row.np,
            m.tflops,
            m.pct_peak * 100.0,
            row.paper_tflops,
            row.paper_pct_peak * 100.0,
            err
        );
    }
    println!("{}", "-".repeat(86));
    println!(
        "mean |Δ%peak| = {:.2} points, max = {:.2} points over 28 rows",
        sum_err / 28.0,
        max_err
    );
    println!("\nheadlines:");
    println!(
        "  paper: 60.3 Tflop/s on 30,720 Jaguar cores; 107.5 Tflop/s on 131,072 Intrepid cores"
    );
    let rows = paper_table1();
    for r in rows
        .iter()
        .filter(|r| r.cores == 30_720 && r.np == 20 || r.cores == 131_072)
    {
        let m = model_row(r);
        println!(
            "  model: {:>6.1} Tflop/s on {:>7} cores ({:.1}% of peak)",
            m.tflops,
            r.cores,
            m.pct_peak * 100.0
        );
    }
}
