//! # ls3df-bench
//!
//! Benchmark harness: one report binary per paper table/figure (run with
//! `cargo run -p ls3df-bench --bin <name> --release`) plus criterion
//! microbenches for the §IV optimization ablations
//! (`cargo bench -p ls3df-bench`).
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `table1` | Table I (Tflop/s + %peak, 28 rows, model vs paper) |
//! | `fig3` | Strong-scaling speedups + Amdahl fits |
//! | `fig4` | Efficiency vs concurrency scatter |
//! | `fig5` | Weak-scaling Tflop/s on the three machines |
//! | `fig6` | Real LS3DF SCF convergence on a scaled ZnTeO alloy |
//! | `fig7` | FSM band-edge states + O-localization analysis |
//! | `crossover` | LS3DF vs O(N³) model sweep + real scaled measurement |
//! | `accuracy` | LS3DF vs direct DFT eigenvalue/density agreement |
//! | `ablation` | Comm-algorithm + solver-variant ablations |
//! | `znteo_scheme_ablation` | Fragmentation-scheme ablation (sign-alternating vs overlapping) on ZnTeO |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ls3df_atoms::Structure;
use ls3df_pseudo::PseudoTable;
use ls3df_pw::PwAtom;

/// Converts a structure + pseudopotential table into planewave atoms.
pub fn to_pw_atoms(s: &Structure, table: &PseudoTable) -> Vec<PwAtom> {
    s.atoms
        .iter()
        .map(|a| {
            let p = table.get(a.species);
            PwAtom {
                pos: a.pos,
                local: p.local,
                kb_rb: p.kb.rb,
                kb_energy: p.kb.e_kb,
            }
        })
        .collect()
}

/// A deep-well model crystal on a simple-cubic lattice: `m` pieces of one
/// closed-shell atom each — the cheap gapped system used for real
/// (measured, not modeled) LS3DF-vs-direct experiments on this machine.
pub fn model_crystal(m: [usize; 3], a: f64) -> Structure {
    let mut atoms = Vec::new();
    for k in 0..m[2] {
        for j in 0..m[1] {
            for i in 0..m[0] {
                atoms.push(ls3df_atoms::Atom {
                    species: ls3df_atoms::Species::Zn,
                    pos: [
                        (i as f64 + 0.5) * a,
                        (j as f64 + 0.5) * a,
                        (k as f64 + 0.5) * a,
                    ],
                });
            }
        }
    }
    Structure::new([m[0] as f64 * a, m[1] as f64 * a, m[2] as f64 * a], atoms)
}

/// Parses a CLI argument by position with a default.
pub fn arg<T: std::str::FromStr>(n: usize, default: T) -> T {
    std::env::args()
        .nth(n)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_crystal_geometry() {
        let s = model_crystal([2, 3, 4], 5.0);
        assert_eq!(s.len(), 24);
        assert_eq!(s.lengths, [10.0, 15.0, 20.0]);
    }

    #[test]
    fn pw_atoms_inherit_table() {
        let s = model_crystal([2, 2, 2], 5.0);
        let t = PseudoTable::deep_well(2.0, 0.8);
        let atoms = to_pw_atoms(&s, &t);
        assert_eq!(atoms.len(), 8);
        assert!(atoms.iter().all(|a| a.local.z == 2.0 && a.kb_energy == 0.0));
    }
}
