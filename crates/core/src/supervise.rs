//! Fault-tolerant fragment execution: retry ladder and quarantine records.
//!
//! The paper's production runs solve tens of thousands of independent
//! fragment problems per outer iteration; at that scale a single
//! pathological fragment (a poisoned wavefunction block, a panic on a bad
//! node) must not abort the whole calculation. The SCF loop therefore
//! wraps every PEtot_F fragment solve in supervision:
//!
//! 1. the **primary** warm-started solve runs under `catch_unwind`, with
//!    typed solver errors (`ls3df_pw::SolverError`) caught as well;
//! 2. on failure a bounded, *deterministic* retry ladder runs —
//!    [`RetryAction::FreshRandomStart`] (new deterministic start block),
//!    [`RetryAction::BandByBand`] (the more robust one-band-at-a-time
//!    scheme), then [`RetryAction::ReducedCg`] (halved step budget with
//!    re-orthonormalization every step);
//! 3. if every rung fails, the fragment is **quarantined** for this outer
//!    iteration: its previous-iteration wavefunctions are restored, so
//!    Gen_dens patches the previous density for that fragment instead of
//!    garbage, and the outer loop continues.
//!
//! Every failed attempt and every quarantine is surfaced through the
//! [`ScfObserver`](crate::ScfObserver) hooks in fragment order, so the
//! event stream is deterministic regardless of the worker pool schedule.
//! The retry seeds are pure functions of (fragment index, attempt), so a
//! run that hits the same failure retries identically.

/// One rung of the deterministic retry ladder (plus the primary attempt).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetryAction {
    /// The normal warm-started solve with the configured method.
    Primary,
    /// Same method, but from a fresh deterministic random start block
    /// (discards warm-start state that may have been poisoned).
    FreshRandomStart,
    /// The band-by-band solver from a fresh start — slower, but each band
    /// is stabilized by Gram–Schmidt after every step.
    BandByBand,
    /// All remaining robustness: fresh start, halved step budget, CG
    /// memory reset and exact re-orthonormalization every step.
    ReducedCg,
}

impl RetryAction {
    /// Stable, log-friendly name.
    pub fn name(self) -> &'static str {
        match self {
            RetryAction::Primary => "primary",
            RetryAction::FreshRandomStart => "fresh-random-start",
            RetryAction::BandByBand => "band-by-band",
            RetryAction::ReducedCg => "reduced-cg",
        }
    }
}

/// The supervision schedule: the primary attempt followed by the retry
/// ladder, in the order they run.
pub const ATTEMPT_LADDER: [RetryAction; 4] = [
    RetryAction::Primary,
    RetryAction::FreshRandomStart,
    RetryAction::BandByBand,
    RetryAction::ReducedCg,
];

/// One failed solve attempt on a fragment.
#[derive(Clone, Debug)]
pub struct FragmentFault {
    /// Fragment index (position in the decomposition's fragment list).
    pub fragment: usize,
    /// Attempt number (0 = primary, 1.. = retry ladder rungs).
    pub attempt: usize,
    /// What was being attempted.
    pub action: RetryAction,
    /// Rendered failure: a `SolverError`, an invariant violation, or a
    /// panic payload.
    pub detail: String,
}

impl std::fmt::Display for FragmentFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fragment {} attempt {} ({}): {}",
            self.fragment,
            self.attempt,
            self.action.name(),
            self.detail
        )
    }
}

/// A fragment whose whole attempt ladder failed in one outer iteration.
///
/// The fragment's previous-iteration wavefunctions were restored, so
/// Gen_dens reused its previous density; the run continued.
#[derive(Clone, Debug)]
pub struct QuarantineRecord {
    /// Fragment index.
    pub fragment: usize,
    /// Every failed attempt, in ladder order.
    pub faults: Vec<FragmentFault>,
}

impl std::fmt::Display for QuarantineRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fragment {} quarantined after {} failed attempts (last: {})",
            self.fragment,
            self.faults.len(),
            self.faults.last().map_or("<none>", |f| f.detail.as_str())
        )
    }
}

/// Kinds of fault the test hooks can inject into a fragment solve.
///
/// Validation support, in the same spirit as
/// [`Ls3df::scale_fragment_psi`](crate::Ls3df::scale_fragment_psi):
/// deliberately failing a fragment lets tests (and operators qualifying a
/// deployment) confirm the supervision layer retries and quarantines
/// instead of aborting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectedFault {
    /// The solve attempt panics (exercises the `catch_unwind` path).
    Panic,
    /// The solve attempt reports a typed solver error.
    SolverError,
}

/// Renders a caught panic payload for a [`FragmentFault`].
pub(crate) fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_order_is_primary_then_escalating() {
        assert_eq!(ATTEMPT_LADDER[0], RetryAction::Primary);
        assert_eq!(ATTEMPT_LADDER.len(), 4);
        // Names are distinct (they key log lines and test assertions).
        let names: std::collections::HashSet<_> = ATTEMPT_LADDER.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn displays_carry_fragment_and_action() {
        let fault = FragmentFault {
            fragment: 7,
            attempt: 1,
            action: RetryAction::FreshRandomStart,
            detail: "non-finite residual at iteration 2".into(),
        };
        let s = fault.to_string();
        assert!(
            s.contains("fragment 7") && s.contains("fresh-random-start"),
            "{s}"
        );
        let q = QuarantineRecord {
            fragment: 7,
            faults: vec![fault],
        };
        assert!(q.to_string().contains("quarantined after 1"), "{q}");
    }

    #[test]
    fn panic_payloads_render() {
        let s: Box<dyn std::any::Any + Send> = Box::new("boom".to_string());
        assert_eq!(panic_detail(s.as_ref()), "panic: boom");
        let s2: Box<dyn std::any::Any + Send> = Box::new("static boom");
        assert_eq!(panic_detail(s2.as_ref()), "panic: static boom");
        let s3: Box<dyn std::any::Any + Send> = Box::new(42usize);
        assert!(panic_detail(s3.as_ref()).contains("non-string"));
    }
}
