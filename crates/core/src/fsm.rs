//! Folded spectrum method (FSM): band-edge states of the *full* system
//! from the converged LS3DF potential.
//!
//! The paper (§VII): "The converged potential V(r) is then used to solve
//! the Schrödinger equation for the whole system for only the band edge
//! states. This was done using our folded spectrum method [22]." FSM
//! minimizes `⟨ψ|(H − ε_ref)²|ψ⟩`: the spectrum of the folded operator has
//! its minimum at the eigenstate closest to the reference energy `ε_ref`,
//! so placing `ε_ref` inside the gap retrieves the band-edge states at
//! O(N) cost — no need to compute the N/2 occupied states below them.

use ls3df_math::gemm::{self, Op};
use ls3df_math::ortho;
use ls3df_math::vec_ops::{dotc, dscal, nrm2, scal};
use ls3df_math::{c64, eigh_fast as eigh, Matrix};
use ls3df_pw::{Hamiltonian, PwBasis};

/// Options for the folded-spectrum solve.
#[derive(Clone, Debug)]
pub struct FsmOptions {
    /// Number of states to converge around the reference energy.
    pub n_states: usize,
    /// Maximum iterations.
    pub max_iter: usize,
    /// Residual tolerance on the folded operator.
    pub tol: f64,
}

impl Default for FsmOptions {
    fn default() -> Self {
        FsmOptions {
            n_states: 4,
            max_iter: 200,
            tol: 1e-5,
        }
    }
}

/// One converged band-edge state.
pub struct FsmState {
    /// Energy `⟨ψ|H|ψ⟩` (Hartree).
    pub energy: f64,
    /// Folded eigenvalue `⟨ψ|(H−ε_ref)²|ψ⟩` (distance² to ε_ref).
    pub folded_value: f64,
    /// Planewave coefficients.
    pub coefficients: Vec<c64>,
}

/// Finds the `opts.n_states` eigenstates of `h` closest to `e_ref` by
/// minimizing the folded operator `(H − ε_ref)²` with a preconditioned
/// block steepest-descent + Rayleigh–Ritz scheme.
pub fn folded_spectrum(
    h: &Hamiltonian<'_>,
    e_ref: f64,
    opts: &FsmOptions,
    seed: u64,
) -> Vec<FsmState> {
    let basis: &PwBasis = h.basis();
    let npw = basis.len();
    let nb = opts.n_states;
    let mut psi = ls3df_pw::scf::random_start(nb, basis, seed);
    ortho::cholesky_orthonormalize(&mut psi, 1.0).expect("independent start");

    // Folded operator application: A·ψ = (H−ε)·(H−ε)·ψ.
    let apply = |block: &Matrix<c64>| -> Matrix<c64> {
        let mut first = h.apply_block(block);
        first.add_scaled(c64::real(-e_ref), block);
        let mut second = h.apply_block(&first);
        second.add_scaled(c64::real(-e_ref), &first);
        second
    };
    // Diagonal preconditioner for the folded operator: the kinetic part of
    // (H−ε)² is (½G²−ε)², regularized by the current smallest folded value.
    let g2 = basis.g2().to_vec();

    let mut apsi = apply(&psi);
    let mut lambdas = vec![0.0_f64; nb];
    for iter in 0..opts.max_iter {
        // Rayleigh–Ritz in the folded operator.
        let m = Hamiltonian::subspace_matrix(&psi, &apsi);
        let eig = eigh(&m);
        lambdas.copy_from_slice(&eig.values);
        let rotate = |block: &Matrix<c64>| -> Matrix<c64> {
            let mut out = Matrix::zeros(nb, npw);
            gemm::gemm(
                c64::ONE,
                &eig.vectors,
                Op::Trans,
                block,
                Op::None,
                c64::ZERO,
                &mut out,
            );
            out
        };
        psi = rotate(&psi);
        apsi = rotate(&apsi);

        // Residuals.
        let mut resid = apsi.clone();
        let mut worst = 0.0_f64;
        for b in 0..nb {
            let lam = lambdas[b];
            let (r, p) = (resid.row_mut(b), psi.row(b));
            for (x, &y) in r.iter_mut().zip(p) {
                *x -= y.scale(lam);
            }
            worst = worst.max(nrm2(resid.row(b)));
        }
        if worst <= opts.tol {
            break;
        }

        // Preconditioned descent block, projected out of span(ψ).
        let damp = lambdas[0].abs().max(1e-4);
        let mut d = Matrix::zeros(nb, npw);
        for b in 0..nb {
            let (dr, rr) = (d.row_mut(b), resid.row(b));
            for ((x, &r), &g2i) in dr.iter_mut().zip(rr).zip(&g2) {
                let t = 0.5 * g2i - e_ref;
                *x = r.scale(1.0 / (t * t + damp));
            }
        }
        let overlap = gemm::matmul_nh(&d, &psi);
        gemm::gemm(
            -c64::ONE,
            &overlap,
            Op::None,
            &psi,
            Op::None,
            c64::ONE,
            &mut d,
        );
        for b in 0..nb {
            let n = nrm2(d.row(b));
            if n > 1e-300 {
                dscal(1.0 / n, d.row_mut(b));
            }
        }

        // Per-band line minimization on the folded functional.
        let mut ad = apply(&d);
        for b in 0..nb {
            let a = lambdas[b];
            let c = dotc(d.row(b), ad.row(b)).re;
            let w = dotc(psi.row(b), ad.row(b));
            let wabs = w.abs();
            if wabs > 1e-300 {
                let u = -(w.conj()).scale(1.0 / wabs);
                scal(u, d.row_mut(b));
                scal(u, ad.row_mut(b));
            }
            let w_re = -wabs;
            let theta0 = 0.5 * (2.0 * w_re).atan2(a - c);
            let energy =
                |t: f64| 0.5 * (a + c) + 0.5 * (a - c) * (2.0 * t).cos() + w_re * (2.0 * t).sin();
            let t2 = theta0 + std::f64::consts::FRAC_PI_2;
            let theta = if energy(theta0) <= energy(t2) {
                theta0
            } else {
                t2
            };
            let (s, co) = theta.sin_cos();
            let (pr, dr) = (psi.row_mut(b), d.row(b));
            for (x, &y) in pr.iter_mut().zip(dr) {
                *x = x.scale(co) + y.scale(s);
            }
            let (ar, adr) = (apsi.row_mut(b), ad.row(b));
            for (x, &y) in ar.iter_mut().zip(adr) {
                *x = x.scale(co) + y.scale(s);
            }
        }

        // Keep the block orthonormal.
        if (iter + 1) % 3 == 0 {
            let s = gemm::matmul_nh(&psi, &psi);
            if let Ok(ch) = ls3df_math::Cholesky::new(&s) {
                ch.solve_l_block(&mut psi);
                ch.solve_l_block(&mut apsi);
            }
        }
    }

    // Final report: true energies via one H application.
    let hpsi = h.apply_block(&psi);
    let mut states: Vec<FsmState> = (0..nb)
        .map(|b| {
            let energy = dotc(psi.row(b), hpsi.row(b)).re;
            FsmState {
                energy,
                folded_value: lambdas[b],
                coefficients: psi.row(b).to_vec(),
            }
        })
        .collect();
    states.sort_by(|x, y| x.energy.total_cmp(&y.energy));
    states
}

/// Scans a set of reference energies and merges the resulting states into
/// a deduplicated, energy-sorted list — the way the paper maps out the
/// oxygen-induced band (its ≈0.7 eV width) without computing the occupied
/// manifold below it.
pub fn scan_band(
    h: &Hamiltonian<'_>,
    e_refs: &[f64],
    opts: &FsmOptions,
    seed: u64,
) -> Vec<FsmState> {
    let mut all: Vec<FsmState> = Vec::new();
    for (i, &e_ref) in e_refs.iter().enumerate() {
        let states = folded_spectrum(h, e_ref, opts, seed.wrapping_add(i as u64));
        for st in states {
            // Deduplicate by energy: two states within 1e-4 Ha whose
            // overlap is large are the same eigenstate.
            let dup = all.iter().any(|existing| {
                (existing.energy - st.energy).abs() < 1e-4
                    && dotc(&existing.coefficients, &st.coefficients).abs() > 0.5
            });
            if !dup {
                all.push(st);
            }
        }
    }
    all.sort_by(|a, b| a.energy.total_cmp(&b.energy));
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use ls3df_grid::{Grid3, RealField};
    use ls3df_pw::{NonlocalPotential, SolverOptions};

    #[test]
    fn scan_band_deduplicates_and_sorts() {
        let grid = Grid3::cubic(8, 7.0);
        let basis = PwBasis::new(grid.clone(), 1.0);
        let v = RealField::zeros(grid);
        let nl = NonlocalPotential::none(&basis);
        let h = Hamiltonian::new(&basis, v, &nl);
        let mut exact: Vec<f64> = basis.g2().iter().map(|&g| 0.5 * g).collect();
        exact.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Two overlapping windows around the same part of the spectrum.
        let e1 = 0.5 * (exact[4] + exact[5]);
        let states = scan_band(
            &h,
            &[e1, e1 + 0.01],
            &FsmOptions {
                n_states: 3,
                max_iter: 300,
                tol: 1e-7,
            },
            3,
        );
        // Sorted ascending…
        for w in states.windows(2) {
            assert!(w[0].energy <= w[1].energy + 1e-12);
        }
        // …and deduplicated: no two returned states share energy AND overlap.
        for i in 0..states.len() {
            for j in (i + 1)..states.len() {
                let same_e = (states[i].energy - states[j].energy).abs() < 1e-4;
                let overlap = dotc(&states[i].coefficients, &states[j].coefficients).abs();
                assert!(
                    !(same_e && overlap > 0.5),
                    "states {i} and {j} are duplicates"
                );
            }
        }
    }

    #[test]
    fn fsm_finds_interior_eigenvalues_of_free_electrons() {
        let grid = Grid3::cubic(10, 9.0);
        let basis = PwBasis::new(grid.clone(), 1.2);
        let v = RealField::zeros(grid);
        let nl = NonlocalPotential::none(&basis);
        let h = Hamiltonian::new(&basis, v, &nl);

        let mut exact: Vec<f64> = basis.g2().iter().map(|&g| 0.5 * g).collect();
        exact.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Pick a reference in the middle of the spectrum.
        let e_ref = 0.5 * (exact[10] + exact[11]);
        let states = folded_spectrum(
            &h,
            e_ref,
            &FsmOptions {
                n_states: 4,
                max_iter: 400,
                tol: 1e-8,
            },
            7,
        );
        // Every returned energy must be an exact eigenvalue near e_ref.
        for st in &states {
            let nearest = exact
                .iter()
                .map(|&e| (e - st.energy).abs())
                .fold(f64::INFINITY, f64::min);
            assert!(nearest < 1e-4, "energy {} not in spectrum", st.energy);
            assert!((st.energy - e_ref).abs() < 0.6, "state far from reference");
        }
    }

    #[test]
    fn fsm_matches_full_diagonalization_around_gap() {
        // Small potential problem: compare FSM states near a reference with
        // the corresponding states from a full all-band solve.
        let grid = Grid3::cubic(8, 7.0);
        let basis = PwBasis::new(grid.clone(), 1.0);
        let v = RealField::from_fn(grid, |r| {
            -0.9 * (-((r[0] - 3.5).powi(2) + (r[1] - 3.5).powi(2) + (r[2] - 3.5).powi(2)) / 5.0)
                .exp()
        });
        let nl = NonlocalPotential::none(&basis);
        let h = Hamiltonian::new(&basis, v, &nl);

        let nb = 8;
        let mut psi = ls3df_pw::scf::random_start(nb, &basis, 3);
        let stats = ls3df_pw::solve_all_band(
            &h,
            &mut psi,
            &SolverOptions {
                max_iter: 300,
                tol: 1e-8,
                ..Default::default()
            },
        );
        assert!(stats.converged);

        let e_ref = 0.5 * (stats.eigenvalues[2] + stats.eigenvalues[3]);
        let states = folded_spectrum(
            &h,
            e_ref,
            &FsmOptions {
                n_states: 2,
                max_iter: 400,
                tol: 1e-8,
            },
            11,
        );
        // The two FSM states bracket the reference: bands 2 and 3.
        let mut got: Vec<f64> = states.iter().map(|s| s.energy).collect();
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(
            (got[0] - stats.eigenvalues[2]).abs() < 1e-3,
            "{} vs {}",
            got[0],
            stats.eigenvalues[2]
        );
        assert!(
            (got[1] - stats.eigenvalues[3]).abs() < 1e-3,
            "{} vs {}",
            got[1],
            stats.eigenvalues[3]
        );
    }
}
