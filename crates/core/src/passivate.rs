//! Fragment atom extraction and surface passivation.
//!
//! When the supercell is cut into fragments, bonds crossing the fragment
//! boundary are left dangling. The paper passivates them with hydrogen or
//! partially charged pseudo-hydrogen atoms (ref. [18]) and additionally
//! applies a fixed boundary potential ΔV_F. We implement both mechanisms:
//!
//! * [`Passivation::PseudoH`] — a pseudo-H is placed along every cut bond
//!   at the H-bond-length fraction, carrying the II–VI fractional charge
//!   (1.5 on cation-side cuts, 0.5 on anion-side);
//! * a smooth confining wall in the outer buffer shell (the ΔV_F analogue)
//!   keeps fragment states from leaking onto neighboring-fragment atoms
//!   whose (screened) potential wells are visible in the extracted global
//!   potential.

use crate::{Fragment, FragmentGrid};
use ls3df_atoms::{bond_params, Species, Structure};
use ls3df_grid::RealField;
use ls3df_pseudo::{passivant_params, PseudoTable};
use ls3df_pw::PwAtom;

/// Boundary treatment for fragment surfaces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Passivation {
    /// Pseudo-hydrogen atoms on cut bonds + confining wall (paper's
    /// scheme).
    PseudoH,
    /// Confining wall only (ablation variant).
    WallOnly,
}

/// Atoms of one fragment, expressed in the fragment box frame.
pub struct FragmentAtoms {
    /// Region atoms + passivants, in box coordinates (Bohr).
    pub atoms: Vec<PwAtom>,
    /// Number of real (region) atoms; passivants follow them in `atoms`.
    pub n_real: usize,
    /// Total valence electrons of the fragment problem.
    pub n_electrons: f64,
    /// Global indices of the region atoms (for bookkeeping/analysis).
    pub global_indices: Vec<usize>,
}

/// Wraps `x` into `[0, l)`.
#[inline]
fn wrap(x: f64, l: f64) -> f64 {
    x.rem_euclid(l)
}

/// Extracts the atoms of fragment `f` from the global structure and
/// passivates its surface.
///
/// `neighbors` must be the global bonded topology (from
/// `Structure::neighbor_list_within(topology_cutoff(..))`).
pub fn fragment_atoms(
    structure: &Structure,
    neighbors: &[Vec<usize>],
    fg: &FragmentGrid,
    f: &Fragment,
    passivation: Passivation,
    pseudo: &PseudoTable,
) -> FragmentAtoms {
    let (lo, hi) = fg.region_bounds(f);
    let box_origin = fg.box_origin_pos(f);
    let lengths = structure.lengths;
    let region_len: [f64; 3] = std::array::from_fn(|d| hi[d] - lo[d]);

    // Membership test under periodic wrap: relative to the region origin.
    let in_region = |pos: [f64; 3]| -> bool {
        (0..3).all(|d| wrap(pos[d] - lo[d], lengths[d]) < region_len[d])
    };
    // Box-frame coordinates: offset from the box origin, wrapped into the
    // global cell first (the box is smaller than origin + global period in
    // every sane configuration).
    let to_box = |pos: [f64; 3]| -> [f64; 3] {
        std::array::from_fn(|d| wrap(pos[d] - box_origin[d], lengths[d]))
    };

    let mut atoms = Vec::new();
    let mut global_indices = Vec::new();
    let mut n_electrons = 0.0;

    for (idx, atom) in structure.atoms.iter().enumerate() {
        if in_region(atom.pos) {
            let p = pseudo.get(atom.species);
            atoms.push(PwAtom {
                pos: to_box(atom.pos),
                local: p.local,
                kb_rb: p.kb.rb,
                kb_energy: p.kb.e_kb,
            });
            global_indices.push(idx);
            n_electrons += atom.species.valence();
        }
    }
    let n_real = atoms.len();

    if passivation == Passivation::PseudoH {
        // Cut bonds: inside atom i, outside neighbor j → pseudo-H along
        // the bond at the X–H bond-length fraction.
        for (&g_idx, k) in global_indices.iter().zip(0..n_real) {
            for &j in &neighbors[g_idx] {
                if in_region(structure.atoms[j].pos) {
                    continue;
                }
                let si = structure.atoms[g_idx].species;
                let sj = structure.atoms[j].species;
                let Some(bond) = bond_params(si, sj) else {
                    continue;
                };
                let Some(h_bond) = bond_params(si, Species::H) else {
                    continue;
                };
                let frac = h_bond.d0 / bond.d0;
                // Minimum-image bond vector in the global cell.
                let mut dvec = [0.0; 3];
                for d in 0..3 {
                    let mut x = structure.atoms[j].pos[d] - structure.atoms[g_idx].pos[d];
                    x -= (x / lengths[d]).round() * lengths[d];
                    dvec[d] = x;
                }
                let inside_box = atoms[k].pos;
                let h_pos: [f64; 3] = std::array::from_fn(|d| inside_box[d] + frac * dvec[d]);
                let charge = si.passivant_charge();
                let p = passivant_params(charge);
                atoms.push(PwAtom {
                    pos: h_pos,
                    local: p.local,
                    kb_rb: p.kb.rb,
                    kb_energy: p.kb.e_kb,
                });
                n_electrons += charge;
            }
        }
    }

    FragmentAtoms {
        atoms,
        n_real,
        n_electrons,
        global_indices,
    }
}

/// Builds the confining-wall part of ΔV_F on the fragment box grid: zero
/// over the region and inner buffer, rising smoothly (cos² ramp) to
/// `height` across the outer part of the buffer. How much of the buffer
/// the ramp occupies is scheme-specific
/// ([`FragmentScheme::wall_ramp_fraction`](crate::scheme::FragmentScheme::wall_ramp_fraction);
/// the paper's sign-alternating scheme uses the outer half). This is the
/// model ΔV_F (paper: "a fixed passivation potential … only nonzero near
/// its boundary").
pub fn boundary_wall(fg: &FragmentGrid, f: &Fragment, height: f64) -> RealField {
    let grid = fg.box_grid(f);
    let dims = grid.dims;
    let spacing = grid.spacing();
    let buffer: [f64; 3] = std::array::from_fn(|d| fg.buffer_pts[d] as f64 * spacing[d]);
    let ramp_fraction = fg.scheme().wall_ramp_fraction();
    RealField::from_fn(grid, move |r| {
        let mut v: f64 = 0.0;
        for d in 0..3 {
            let len = dims[d] as f64 * spacing[d];
            // Distance from the nearer box face along axis d.
            let edge = r[d].min(len - r[d]).max(0.0);
            let ramp_width = (buffer[d] * ramp_fraction).max(spacing[d]);
            if edge < ramp_width && buffer[d] > 0.0 {
                // cos² ramp: height at the face (edge = 0), zero at the
                // inner end of the ramp.
                let t = (edge / ramp_width).clamp(0.0, 1.0);
                let s = 0.5 + 0.5 * (std::f64::consts::PI * t).cos();
                v = v.max(height * s);
            }
        }
        v
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ls3df_atoms::{topology_cutoff, znte_supercell, ZNTE_LATTICE};
    use ls3df_grid::Grid3;

    fn setup() -> (Structure, Vec<Vec<usize>>, FragmentGrid, Grid3) {
        let s = znte_supercell([2, 2, 2], ZNTE_LATTICE);
        let nbrs = s.neighbor_list_within(topology_cutoff(&s));
        let pts = 8;
        let global = Grid3::new([2 * pts, 2 * pts, 2 * pts], s.lengths);
        let fg = FragmentGrid::new([2, 2, 2], &global, [3, 3, 3]).unwrap();
        (s, nbrs, fg, global)
    }

    #[test]
    fn region_atom_counts_sum_correctly() {
        let (s, nbrs, fg, _) = setup();
        // Every atom must land in exactly one 1×1×1 fragment region.
        let mut total = 0;
        for f in fg.fragments() {
            if f.size == [1, 1, 1] {
                let fa = fragment_atoms(
                    &s,
                    &nbrs,
                    &fg,
                    f,
                    Passivation::WallOnly,
                    &PseudoTable::default(),
                );
                total += fa.n_real;
                assert_eq!(fa.n_real, 8, "one zinc-blende cell per piece");
            }
        }
        assert_eq!(total, s.len());
    }

    #[test]
    fn signed_atom_count_reproduces_total() {
        // Σ_F α_F · (region atoms) = N_atoms — the discrete partition of
        // unity applied to atoms.
        let (s, nbrs, fg, _) = setup();
        let signed: f64 = fg
            .fragments()
            .iter()
            .map(|f| {
                f.alpha()
                    * fragment_atoms(
                        &s,
                        &nbrs,
                        &fg,
                        f,
                        Passivation::WallOnly,
                        &PseudoTable::default(),
                    )
                    .n_real as f64
            })
            .sum();
        assert_eq!(signed, s.len() as f64);
    }

    #[test]
    fn one_cell_fragment_has_expected_passivation() {
        let (s, nbrs, fg, _) = setup();
        let f = Fragment::sign_alternating([0, 0, 0], [1, 1, 1]);
        let fa = fragment_atoms(
            &s,
            &nbrs,
            &fg,
            &f,
            Passivation::PseudoH,
            &PseudoTable::default(),
        );
        assert_eq!(fa.n_real, 8);
        // One conventional cell has 18 crossing bonds (9 Zn-side + 9
        // Te-side), each receiving one pseudo-H.
        assert_eq!(fa.atoms.len() - fa.n_real, 18);
        // Electron count: 32 valence + 9·1.5 + 9·0.5 = 50.
        assert!(
            (fa.n_electrons - 50.0).abs() < 1e-12,
            "n_e = {}",
            fa.n_electrons
        );
    }

    #[test]
    fn passivants_sit_in_buffer_not_region() {
        let (s, nbrs, fg, _) = setup();
        let f = Fragment::sign_alternating([1, 0, 1], [1, 1, 1]);
        let fa = fragment_atoms(
            &s,
            &nbrs,
            &fg,
            &f,
            Passivation::PseudoH,
            &PseudoTable::default(),
        );
        let grid = fg.box_grid(&f);
        let off = fg.region_offset_in_box();
        let spacing = grid.spacing();
        let region_lo: [f64; 3] = std::array::from_fn(|d| off[d] as f64 * spacing[d]);
        let region_hi: [f64; 3] =
            std::array::from_fn(|d| region_lo[d] + fg.region_dims(&f)[d] as f64 * spacing[d]);
        for h in &fa.atoms[fa.n_real..] {
            // A passivant saturates a cut bond, so it must sit close to the
            // region surface (within one X–H bond length of some face) —
            // never deep in the region interior or far out in the buffer.
            let depth = (0..3)
                .map(|d| (h.pos[d] - region_lo[d]).min(region_hi[d] - h.pos[d]))
                .fold(f64::INFINITY, f64::min);
            assert!(
                depth.abs() < 3.2,
                "passivant at {:?} is {depth:.2} Bohr from the region surface",
                h.pos
            );
            // Also within the box bounds.
            for d in 0..3 {
                assert!(h.pos[d] >= 0.0 && h.pos[d] < grid.lengths[d]);
            }
        }
    }

    #[test]
    fn boundary_wall_shape() {
        let (_, _, fg, _) = setup();
        let f = Fragment::sign_alternating([0, 0, 0], [1, 1, 1]);
        let wall = boundary_wall(&fg, &f, 2.0);
        // Zero at the box center.
        let g = wall.grid().clone();
        let c = [g.dims[0] / 2, g.dims[1] / 2, g.dims[2] / 2];
        assert_eq!(wall.at(c[0], c[1], c[2]), 0.0);
        // High at the box faces.
        assert!(wall.at(0, c[1], c[2]) > 1.0);
        assert!(wall.at(c[0], 0, c[2]) > 1.0);
        // Never negative, never above height.
        assert!(wall.min() >= 0.0);
        assert!(wall.max() <= 2.0 + 1e-12);
    }

    #[test]
    fn wall_only_electron_count_matches_region_valence() {
        let (s, nbrs, fg, _) = setup();
        let f = Fragment::sign_alternating([0, 1, 0], [2, 1, 1]);
        let fa = fragment_atoms(
            &s,
            &nbrs,
            &fg,
            &f,
            Passivation::WallOnly,
            &PseudoTable::default(),
        );
        let manual: f64 = fa
            .global_indices
            .iter()
            .map(|&i| s.atoms[i].species.valence())
            .sum();
        assert_eq!(fa.n_electrons, manual);
        assert_eq!(fa.atoms.len(), fa.n_real);
    }
}
