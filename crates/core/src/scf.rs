//! The LS3DF self-consistent loop: Gen_VF → PEtot_F → Gen_dens → GENPOT
//! (paper Fig. 2), with potential mixing between outer iterations.
//!
//! Each fragment keeps its wavefunctions between outer iterations (warm
//! start), and the fragment solves fan out over a rayon pool — the
//! shared-memory analogue of the paper's processor groups (`Ng` groups of
//! `Np` cores each). Per-step wall-clock timings are recorded so the
//! machine-model calibration in `ls3df-hpc` can use measured constants.

use crate::check;
use crate::ckpt;
use crate::distrib;
use crate::fragment::{Fragment, FragmentGrid};
use crate::groups::{plan_groups, GroupPlan};
use crate::observer::{ScfObserver, ScfStage, SilentObserver};
use crate::passivate::{boundary_wall, fragment_atoms, FragmentAtoms, Passivation};
use crate::scheme::{FragmentError, FragmentScheme, SignAlternating};
use crate::supervise::{
    panic_detail, FragmentFault, InjectedFault, QuarantineRecord, RetryAction, ATTEMPT_LADDER,
};
use ls3df_atoms::{topology_cutoff, Structure};
use ls3df_ckpt::{read_bytes, write_rotated, CheckpointConfig, CkptError, Snapshot};
use ls3df_dist::{CommError, Communicator};
use ls3df_grid::{Grid3, RealField};
use ls3df_math::{c64, Matrix};
use ls3df_obs::{counter_add, span, Counter, Stopwatch};
use ls3df_pseudo::PseudoTable;
use ls3df_pw::{
    density, effective_potential_with, initial_density, ionic_potential, solver, Hamiltonian,
    HartreeSolver, Mixer, MixerState, NonlocalPotential, PwAtom, PwBasis, SolverMethod,
    SolverOptions,
};
use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Options for an LS3DF run.
#[derive(Clone, Debug)]
pub struct Ls3dfOptions {
    /// Planewave cutoff (Hartree), shared by fragments and GENPOT.
    pub ecut: f64,
    /// Grid points per piece per dimension.
    pub piece_pts: [usize; 3],
    /// Buffer width around each fragment region (grid points).
    pub buffer_pts: [usize; 3],
    /// Surface passivation scheme.
    pub passivation: Passivation,
    /// Confining-wall height (Hartree) of the ΔV_F boundary potential.
    pub wall_height: f64,
    /// Extra empty bands per fragment.
    pub n_extra_bands: usize,
    /// Eigensolver steps per fragment per outer iteration.
    pub cg_steps: usize,
    /// Eigensolver steps on the *first* outer iteration (burn-in): the
    /// fragment wavefunctions start from random vectors, and patching
    /// unconverged fragment densities destabilizes the outer loop for
    /// many-band fragments.
    pub initial_cg_steps: usize,
    /// Per-fragment residual target: each outer iteration runs the
    /// eigensolver until this residual (or the step cap). Patching
    /// fragments with wildly different convergence levels destabilizes
    /// the outer loop; a tolerance equalizes them.
    pub fragment_tol: f64,
    /// Eigensolver flavor for PEtot_F (all-band vs band-by-band).
    pub method: SolverMethod,
    /// Potential mixing scheme for the outer loop.
    pub mixer: Mixer,
    /// Maximum outer (SCF) iterations.
    pub max_scf: usize,
    /// Convergence threshold on `∫|V_out − V_in| d³r` (paper Fig. 6).
    pub tol: f64,
    /// Pseudopotential table (defaults to the ZnTeO model database).
    pub pseudo: PseudoTable,
}

impl Default for Ls3dfOptions {
    fn default() -> Self {
        Ls3dfOptions {
            ecut: 2.0,
            piece_pts: [12, 12, 12],
            buffer_pts: [4, 4, 4],
            passivation: Passivation::PseudoH,
            wall_height: 1.5,
            n_extra_bands: 4,
            cg_steps: 5,
            initial_cg_steps: 30,
            fragment_tol: 5e-2,
            method: SolverMethod::AllBand,
            mixer: Mixer::Kerker {
                alpha: 0.7,
                q0: 1.0,
            },
            max_scf: 40,
            tol: 1e-3,
            pseudo: PseudoTable::default(),
        }
    }
}

impl Ls3dfOptions {
    /// The paper's production parameters (§V): 50 Ryd cutoff, 40³ grid
    /// points per eight-atom piece, pseudo-hydrogen passivation. These
    /// need cluster-scale compute — provided for users with the hardware
    /// and for cost-model calibration, not for the test suite.
    pub fn paper_scale() -> Self {
        Ls3dfOptions {
            ecut: 25.0, // 50 Ryd
            piece_pts: [40, 40, 40],
            buffer_pts: [12, 12, 12],
            cg_steps: 8,
            max_scf: 60,
            tol: 1e-2, // the paper's Fig. 6 stopping point
            ..Default::default()
        }
    }

    /// Single-machine parameters: reduced cutoff and grids sized so that
    /// a 2×2×2-cell ZnTeO run completes in minutes per outer iteration on
    /// one core.
    pub fn laptop() -> Self {
        Ls3dfOptions {
            ecut: 2.0,
            piece_pts: [8, 8, 8],
            buffer_pts: [3, 3, 3],
            n_extra_bands: 2,
            cg_steps: 6,
            mixer: Mixer::Kerker {
                alpha: 0.5,
                q0: 0.8,
            },
            ..Default::default()
        }
    }
}

/// Wall-clock breakdown of one outer iteration (paper §IV reports exactly
/// these four numbers).
#[derive(Clone, Copy, Debug, Default)]
pub struct StepTimings {
    /// Gen_VF: global potential → fragment potentials (seconds).
    pub gen_vf: f64,
    /// PEtot_F: all fragment eigensolves (seconds).
    pub petot_f: f64,
    /// Gen_dens: fragment densities → global density (seconds).
    pub gen_dens: f64,
    /// GENPOT: global Poisson + XC + mixing (seconds).
    pub genpot: f64,
}

/// One outer-iteration record.
#[derive(Clone, Copy, Debug)]
pub struct Ls3dfStep {
    /// Iteration number (1-based).
    pub iteration: usize,
    /// `∫|V_out − V_in| d³r` (Hartree·Bohr³) — the Fig. 6 metric.
    pub dv_integral: f64,
    /// Worst fragment eigensolver residual this iteration.
    pub worst_residual: f64,
    /// Timing breakdown.
    pub timings: StepTimings,
}

/// Pending injected failures for one fragment (validation hook: consumed
/// one per solve attempt by the supervision layer).
#[derive(Clone, Copy, Debug, Default)]
struct InjectedCounters {
    panics: usize,
    solver_errors: usize,
}

/// Per-fragment solver state (persists across outer iterations).
pub(crate) struct FragmentState {
    fragment: Fragment,
    basis: PwBasis,
    nonlocal: NonlocalPotential,
    /// Fixed ΔV_F: confining wall + passivant ionic potentials.
    delta_v: RealField,
    psi: Matrix<c64>,
    /// Previous-iteration wavefunctions, refreshed at the start of every
    /// supervised solve — the quarantine restore buffer (persistent so the
    /// SCF hot loop stays allocation-free).
    psi_backup: Matrix<c64>,
    occupations: Vec<f64>,
    atoms: FragmentAtoms,
    injected: InjectedCounters,
    /// True while the fragment carries restored (stale) wavefunctions
    /// because its last supervised solve exhausted the retry ladder;
    /// cleared by the next successful solve. Gen_dens consults this: a
    /// stale fragment density legitimately breaks the patching-
    /// cancellation charge diagnostic, so the check is suspended (the
    /// post-check renormalization still pins the exact electron count).
    quarantined: bool,
}

impl FragmentState {
    pub(crate) fn basis(&self) -> &PwBasis {
        &self.basis
    }
    pub(crate) fn nonlocal(&self) -> &NonlocalPotential {
        &self.nonlocal
    }
    pub(crate) fn psi(&self) -> &Matrix<c64> {
        &self.psi
    }
    pub(crate) fn occupations(&self) -> &[f64] {
        &self.occupations
    }
    pub(crate) fn fragment(&self) -> &Fragment {
        &self.fragment
    }
    pub(crate) fn atoms(&self) -> &FragmentAtoms {
        &self.atoms
    }
}

/// The assembled LS3DF calculation.
pub struct Ls3df {
    /// Fragment decomposition.
    pub fg: FragmentGrid,
    /// Global grid.
    pub global_grid: Grid3,
    global_basis: PwBasis,
    v_ion_global: RealField,
    fragments: Vec<FragmentState>,
    n_electrons: f64,
    opts: Ls3dfOptions,
    /// Current global input potential.
    v_in: RealField,
    /// Latest patched density.
    rho: RealField,
    /// Ion–ion Ewald energy of the real structure (fixed geometry).
    ewald: f64,
    /// Cached GENPOT Poisson solver (FFT plan + reciprocal kernel), built
    /// once per geometry rather than once per outer iteration.
    hartree: HartreeSolver,
    /// FNV-1a fingerprint of the physical options (snapshot resume guard).
    fingerprint: u64,
    /// Checkpoint cadence + destination, if any.
    ckpt: Option<CheckpointConfig>,
    /// Restored-snapshot state consumed by the next `scf_with` call.
    resume: Option<ResumeState>,
    /// Processor-group transport (a single-process world by default).
    comm: Arc<dyn Communicator>,
    /// Fragment→group assignment for `comm.size()` groups.
    plan: GroupPlan,
}

/// What a restored snapshot hands to the next SCF run (fields already
/// written back into `Ls3df` — `v_in`, `rho`, `psi` — are not repeated).
struct ResumeState {
    /// Last completed outer iteration in the snapshot.
    start_iteration: usize,
    /// Whether the snapshotted run had already converged.
    converged: bool,
    /// Convergence history up to `start_iteration`.
    history: Vec<Ls3dfStep>,
    /// Pulay `(V_in, residual)` pairs.
    mixer_history: Vec<(Vec<f64>, Vec<f64>)>,
}

/// Result of an LS3DF SCF run.
pub struct Ls3dfResult {
    /// Outer-iteration history.
    pub history: Vec<Ls3dfStep>,
    /// Whether the ΔV tolerance was reached.
    pub converged: bool,
    /// Final patched density.
    pub rho: RealField,
    /// Final self-consistent global potential.
    pub v_eff: RealField,
    /// Fragments whose whole retry ladder failed in some iteration (their
    /// previous-iteration density was reused; empty on a healthy run).
    /// In a multi-group run the global rank (0) holds the merged list;
    /// workers only see their own fragments' records.
    pub quarantined: Vec<QuarantineRecord>,
    /// PEtot_F wall seconds accumulated per processor group over the
    /// whole run (index = group rank; one entry for a single-process
    /// run). Workers only fill their own slot; the global rank holds
    /// every group's total — the per-group load report.
    pub group_petot_seconds: Vec<f64>,
}

/// Why an [`Ls3dfBuilder`] refused to assemble a calculation.
///
/// Every variant is a geometry/input problem detectable before any heavy
/// work starts; [`Ls3dfBuilder::build`] returns these instead of
/// panicking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Ls3dfError {
    /// [`Ls3dfBuilder::fragments`] was never called: the piece counts
    /// have no meaningful default (they are the problem size).
    FragmentsNotSet,
    /// The fragmentation scheme rejected the decomposition (too few
    /// pieces, indivisible grid, degenerate scheme parameters — see
    /// [`FragmentError`]).
    Fragmentation(FragmentError),
    /// `piece_pts` is zero along `axis`: the global grid would be empty.
    EmptyPiece {
        /// Offending dimension (0 = x, 1 = y, 2 = z).
        axis: usize,
    },
    /// The initial potential's grid does not match the global grid
    /// implied by `m × piece_pts`.
    PotentialGridMismatch {
        /// Global grid dimensions the decomposition defines.
        expected: [usize; 3],
        /// Dimensions of the supplied potential's grid.
        got: [usize; 3],
    },
    /// [`Ls3dfBuilder::resume_from`] could not restore the snapshot
    /// (corrupt file, wrong physics fingerprint, I/O failure…).
    Resume(CkptError),
    /// The processor-group communicator failed (worker process down,
    /// bounded receive timed out, malformed traffic, bootstrap failure).
    /// The error names the rank involved. [`Ls3df::scf`] treats this as
    /// fatal (the `MPI_ERRORS_ARE_FATAL` analogue); use
    /// [`Ls3df::try_scf`] to handle it.
    Comm(CommError),
}

impl std::fmt::Display for Ls3dfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ls3dfError::FragmentsNotSet => {
                write!(f, "Ls3dfBuilder: fragments([m1, m2, m3]) was never set")
            }
            Ls3dfError::Fragmentation(e) => write!(f, "Ls3dfBuilder: {e}"),
            Ls3dfError::EmptyPiece { axis } => write!(
                f,
                "Ls3dfBuilder: options.piece_pts is 0 along axis {axis} — \
                 the global grid would be empty"
            ),
            Ls3dfError::PotentialGridMismatch { expected, got } => write!(
                f,
                "Ls3dfBuilder: initial potential grid {got:?} does not match \
                 the global grid {expected:?} implied by fragments × piece_pts"
            ),
            Ls3dfError::Resume(e) => write!(f, "Ls3dfBuilder: resume failed: {e}"),
            Ls3dfError::Comm(e) => write!(f, "Ls3df: {e}"),
        }
    }
}

impl std::error::Error for Ls3dfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Ls3dfError::Resume(e) => Some(e),
            Ls3dfError::Fragmentation(e) => Some(e),
            Ls3dfError::Comm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CkptError> for Ls3dfError {
    fn from(e: CkptError) -> Self {
        Ls3dfError::Resume(e)
    }
}

impl From<FragmentError> for Ls3dfError {
    fn from(e: FragmentError) -> Self {
        Ls3dfError::Fragmentation(e)
    }
}

impl From<CommError> for Ls3dfError {
    fn from(e: CommError) -> Self {
        Ls3dfError::Comm(e)
    }
}

/// Tag bit distinguishing the snapshot-iteration psi gather from the
/// per-iteration PEtot report (both are worker→rank-0 sends keyed by the
/// iteration number, and point-to-point matching is by `(from, tag)`).
const PSI_GATHER_TAG: u32 = 0x8000_0000;

/// Wire-format failures on communicator traffic are protocol errors.
fn proto_err(e: CkptError) -> Ls3dfError {
    Ls3dfError::Comm(CommError::Protocol {
        detail: e.to_string(),
    })
}

/// Stable kind string for a [`CommError`], stamped on `down` rank
/// sections in merged run reports.
fn comm_error_kind(e: &CommError) -> &'static str {
    match e {
        CommError::RankDown { .. } => "rank_down",
        CommError::Timeout { .. } => "timeout",
        CommError::Protocol { .. } => "protocol",
        CommError::Io { .. } => "io",
        CommError::Bootstrap { .. } => "bootstrap",
    }
}

/// Fluent constructor for [`Ls3df`].
///
/// ```ignore
/// let calc = Ls3df::builder(&structure)
///     .fragments([2, 2, 2])
///     .options(Ls3dfOptions::laptop())
///     .build()?;
/// ```
///
/// [`build`](Ls3dfBuilder::build) reports bad geometry as a typed
/// [`Ls3dfError`] (never a panic), and an initial potential can be
/// supplied up front
/// ([`initial_potential`](Ls3dfBuilder::initial_potential)) rather than
/// patched in afterwards with a mutable setter.
pub struct Ls3dfBuilder<'a> {
    structure: &'a Structure,
    m: Option<[usize; 3]>,
    opts: Ls3dfOptions,
    scheme: Arc<dyn FragmentScheme>,
    initial_potential: Option<RealField>,
    ckpt: Option<CheckpointConfig>,
    resume_from: Option<PathBuf>,
    groups: Option<usize>,
}

impl<'a> Ls3dfBuilder<'a> {
    /// Sets the piece decomposition `m = [m1, m2, m3]` (required; the
    /// scheme's [`min_pieces`](FragmentScheme::min_pieces) bounds apply —
    /// `m[d] ≥ 2` for the default scheme).
    pub fn fragments(mut self, m: [usize; 3]) -> Self {
        self.m = Some(m);
        self
    }

    /// Selects the fragmentation scheme (defaults to the paper's
    /// [`SignAlternating`]; see [`crate::scheme`] for alternatives like
    /// [`Overlapping`](crate::scheme::Overlapping)).
    pub fn scheme(mut self, scheme: impl FragmentScheme + 'static) -> Self {
        self.scheme = Arc::new(scheme);
        self
    }

    /// Like [`Ls3dfBuilder::scheme`] but takes an already-erased scheme —
    /// the form [`crate::scheme::registered_schemes`] hands out, so sweeps
    /// over the registry can drive the builder directly.
    pub fn scheme_arc(mut self, scheme: Arc<dyn FragmentScheme>) -> Self {
        self.scheme = scheme;
        self
    }

    /// Replaces the default [`Ls3dfOptions`].
    pub fn options(mut self, opts: Ls3dfOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Starts the SCF from this global input potential instead of the
    /// superposed-atomic-density guess (diagnostics: e.g. patching a
    /// converged direct-DFT potential through one LS3DF cycle). Its grid
    /// must match the global grid `m × piece_pts`.
    pub fn initial_potential(mut self, v: RealField) -> Self {
        self.initial_potential = Some(v);
        self
    }

    /// Enables checkpointing: the SCF loop writes rotated, checksummed
    /// snapshots into `config.dir` on the cadence `config.policy`.
    pub fn checkpoint(mut self, config: CheckpointConfig) -> Self {
        self.ckpt = Some(config);
        self
    }

    /// Resumes the run from a snapshot written by a previous process.
    ///
    /// [`build`](Ls3dfBuilder::build) restores the global potential,
    /// patched density, mixer history, convergence history and every
    /// fragment's wavefunctions, then verifies the snapshot's options
    /// fingerprint against this builder's physics — resuming under
    /// different physics is refused with
    /// [`Ls3dfError::Resume`]`(`[`CkptError::FingerprintMismatch`]`)`.
    /// The subsequent [`scf`](Ls3df::scf) continues at the snapshot's
    /// iteration and is bit-identical to a run that was never interrupted.
    pub fn resume_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.resume_from = Some(path.into());
        self
    }

    /// Requests `n` processor groups (the paper's two-level hierarchy,
    /// §III): fragments are assigned to groups by the space-filling-curve
    /// cost-model scheduler ([`crate::groups`]), each group solves its
    /// own fragments, and the global layer patches the density and
    /// broadcasts the GENPOT potential over the `ls3df-dist`
    /// communicator.
    ///
    /// `n ≤ 1` (the default) keeps today's single-process behavior. With
    /// `n > 1` the build spawns `n - 1` worker processes that re-exec
    /// this executable (`mpirun` semantics — the program must be SPMD:
    /// every process reaches the same `build()`/`scf()` calls). When not
    /// set, the `LS3DF_GROUPS` environment variable is consulted. The
    /// patched density is bit-identical at any group count.
    pub fn groups(mut self, n: usize) -> Self {
        self.groups = Some(n);
        self
    }

    /// Validates the geometry and assembles the calculation (fragment
    /// bases, projectors, ΔV_F potentials — the expensive part, fanned
    /// out over the worker pool).
    pub fn build(self) -> Result<Ls3df, Ls3dfError> {
        let m = self.m.ok_or(Ls3dfError::FragmentsNotSet)?;
        self.scheme.validate(m)?;
        for axis in 0..3 {
            if self.opts.piece_pts[axis] == 0 {
                return Err(Ls3dfError::EmptyPiece { axis });
            }
        }
        if let Some(v) = &self.initial_potential {
            let expected: [usize; 3] = std::array::from_fn(|d| m[d] * self.opts.piece_pts[d]);
            if v.grid().dims != expected {
                return Err(Ls3dfError::PotentialGridMismatch {
                    expected,
                    got: v.grid().dims,
                });
            }
        }
        let mut calc = Ls3df::assemble(self.structure, m, self.opts, self.scheme)?;
        if let Some(v) = self.initial_potential {
            calc.v_in = v;
        }
        calc.ckpt = self.ckpt;
        // Processor groups: explicit builder setting, then the env knob.
        // In a spawned worker process `communicator` ignores the count
        // and joins the launcher's world (`LS3DF_DIST_RANK` is set).
        let groups = self
            .groups
            .or_else(|| {
                std::env::var("LS3DF_GROUPS")
                    .ok()
                    .and_then(|v| v.parse().ok())
            })
            .unwrap_or(1);
        let comm = ls3df_dist::communicator(groups)?;
        if comm.size() > 1 {
            calc.plan = plan_groups(&calc.fg, self.structure, comm.size());
        }
        calc.comm = comm;
        if let Some(path) = self.resume_from {
            calc.restore_from(&path)?;
        }
        Ok(calc)
    }
}

/// Occupations allowing a fractional last band (passivated fragments can
/// carry non-integer electron counts).
pub fn fragment_occupations(n_bands: usize, n_electrons: f64) -> Vec<f64> {
    let mut occ = vec![0.0; n_bands];
    let mut remaining = n_electrons;
    for o in occ.iter_mut() {
        let fill = remaining.min(2.0);
        *o = fill;
        remaining -= fill;
        if remaining <= 0.0 {
            break;
        }
    }
    assert!(
        remaining <= 1e-9,
        "fragment_occupations: {n_bands} bands cannot hold {n_electrons} electrons"
    );
    occ
}

/// What one supervised PEtot_F pass produced (fragment order throughout).
#[derive(Default)]
pub(crate) struct PetotOutcome {
    /// Worst converged-fragment residual (quarantined fragments excluded).
    pub(crate) worst_residual: f64,
    /// Every failed attempt across all fragments.
    pub(crate) faults: Vec<FragmentFault>,
    /// Fragments whose whole ladder failed this pass.
    pub(crate) quarantined: Vec<QuarantineRecord>,
}

/// One fragment's supervised-solve result.
struct FragmentOutcome {
    residual: f64,
    faults: Vec<FragmentFault>,
    quarantined: bool,
}

/// Start-block seed for retry rung `attempt` on fragment `index` — a pure
/// function of both, so a rerun that hits the same failure retries from
/// bit-identical vectors.
fn retry_seed(index: usize, attempt: usize) -> u64 {
    0x5EED_F00D ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((attempt as u64) << 48)
}

/// Runs one fragment's solve under supervision: the primary warm-started
/// attempt, then the retry ladder, then quarantine (restore the
/// previous-iteration wavefunctions so Gen_dens patches the previous
/// density for this fragment).
fn supervised_solve(
    fs: &mut FragmentState,
    vf: &RealField,
    index: usize,
    base: &SolverOptions,
    fresh_steps: usize,
    method: SolverMethod,
) -> FragmentOutcome {
    let _frag_span = span!("frag", index);
    counter_add(Counter::FragmentSolves, 1);
    // Refresh the quarantine restore buffer with the warm-start block as
    // it stood before this iteration touched it.
    fs.psi_backup
        .as_mut_slice()
        .copy_from_slice(fs.psi.as_slice());
    let mut faults = Vec::new();
    for (attempt, &action) in ATTEMPT_LADDER.iter().enumerate() {
        let opts = if action == RetryAction::Primary {
            base.clone()
        } else {
            // Escalation rungs discard the (possibly poisoned) block for a
            // fresh deterministic start, and get the burn-in step budget.
            fs.psi =
                ls3df_pw::scf::random_start(fs.psi.rows(), &fs.basis, retry_seed(index, attempt));
            SolverOptions {
                max_iter: fresh_steps,
                ..base.clone()
            }
        };
        match catch_unwind(AssertUnwindSafe(|| {
            run_attempt(fs, vf, index, attempt, action, &opts, method)
        })) {
            Ok(Ok(residual)) => {
                fs.quarantined = false;
                return FragmentOutcome {
                    residual,
                    faults,
                    quarantined: false,
                };
            }
            Ok(Err(detail)) => faults.push(FragmentFault {
                fragment: index,
                attempt,
                action,
                detail,
            }),
            Err(payload) => faults.push(FragmentFault {
                fragment: index,
                attempt,
                action,
                detail: panic_detail(payload.as_ref()),
            }),
        }
    }
    fs.psi
        .as_mut_slice()
        .copy_from_slice(fs.psi_backup.as_slice());
    fs.quarantined = true;
    FragmentOutcome {
        residual: 0.0,
        faults,
        quarantined: true,
    }
}

/// One solve attempt: consumes a pending injected fault if any, runs the
/// rung's solver flavor, and re-checks the numeric invariants *inside*
/// the supervised scope so a violation is retried rather than aborting.
fn run_attempt(
    fs: &mut FragmentState,
    vf: &RealField,
    index: usize,
    attempt: usize,
    action: RetryAction,
    base: &SolverOptions,
    method: SolverMethod,
) -> Result<f64, String> {
    if fs.injected.panics > 0 {
        fs.injected.panics -= 1;
        // panic_any, not panic!: the supervision layer must handle
        // arbitrary payloads, and the house no-panic lint stays meaningful.
        std::panic::panic_any(format!(
            "injected panic (fragment {index}, attempt {attempt})"
        ));
    }
    if fs.injected.solver_errors > 0 {
        fs.injected.solver_errors -= 1;
        return Err(format!(
            "injected solver error (fragment {index}, attempt {attempt})"
        ));
    }
    let h = Hamiltonian::new(&fs.basis, vf.clone(), &fs.nonlocal);
    let stats = match action {
        RetryAction::BandByBand => solver::try_solve_band_by_band(&h, &mut fs.psi, base),
        RetryAction::ReducedCg => {
            let reduced = SolverOptions {
                max_iter: (base.max_iter / 2).max(1),
                ortho_every: 1,
                cg_reset: 1,
                ..*base
            };
            match method {
                SolverMethod::AllBand => solver::try_solve_all_band(&h, &mut fs.psi, &reduced),
                SolverMethod::BandByBand => {
                    solver::try_solve_band_by_band(&h, &mut fs.psi, &reduced)
                }
            }
        }
        RetryAction::Primary | RetryAction::FreshRandomStart => match method {
            SolverMethod::AllBand => solver::try_solve_all_band(&h, &mut fs.psi, base),
            SolverMethod::BandByBand => solver::try_solve_band_by_band(&h, &mut fs.psi, base),
        },
    }
    .map_err(|e| e.to_string())?;
    if check::ENABLED {
        check::orthonormal("PEtot_F", &fs.psi, 1.0)
            .map_err(|v| v.for_fragment(index).to_string())?;
        check::finite_scalar("PEtot_F", "residual", stats.residual)
            .map_err(|v| v.for_fragment(index).to_string())?;
    }
    Ok(stats.residual)
}

impl Ls3df {
    /// Starts a fluent [`Ls3dfBuilder`] for `structure` (the non-panicking
    /// construction path; see the builder docs).
    pub fn builder(structure: &Structure) -> Ls3dfBuilder<'_> {
        Ls3dfBuilder {
            structure,
            m: None,
            opts: Ls3dfOptions::default(),
            scheme: Arc::new(SignAlternating),
            initial_potential: None,
            ckpt: None,
            resume_from: None,
            groups: None,
        }
    }

    /// Construction body behind [`Ls3dfBuilder::build`]; bad geometry
    /// the builder didn't pre-validate surfaces as a typed
    /// [`FragmentError`].
    fn assemble(
        structure: &Structure,
        m: [usize; 3],
        opts: Ls3dfOptions,
        scheme: Arc<dyn FragmentScheme>,
    ) -> Result<Self, FragmentError> {
        let global_dims: [usize; 3] = std::array::from_fn(|d| m[d] * opts.piece_pts[d]);
        let global_grid = Grid3::new(global_dims, structure.lengths);
        let fg = FragmentGrid::with_scheme(scheme, m, &global_grid, opts.buffer_pts)?;
        if check::ENABLED {
            check::enforce(check::patching_weights(&fg, &global_grid));
        }
        let neighbors = structure.neighbor_list_within(topology_cutoff(structure));

        let global_basis = PwBasis::new(global_grid.clone(), opts.ecut);
        let global_atoms: Vec<PwAtom> = structure
            .atoms
            .iter()
            .map(|a| {
                let p = opts.pseudo.get(a.species);
                PwAtom {
                    pos: a.pos,
                    local: p.local,
                    kb_rb: p.kb.rb,
                    kb_energy: p.kb.e_kb,
                }
            })
            .collect();
        let v_ion_global = ionic_potential(&global_basis, &global_atoms);
        let rho0 = initial_density(&global_basis, &global_atoms, 1.4);
        let hartree = HartreeSolver::new(global_grid.clone());
        let (v_in, _) = effective_potential_with(&global_basis, &v_ion_global, &rho0, &hartree);

        // Build fragment states in parallel (basis + projectors + ΔV_F).
        let fragments: Vec<FragmentState> = fg
            .fragments()
            .par_iter()
            .map(|&f| {
                let fa = fragment_atoms(
                    structure,
                    &neighbors,
                    &fg,
                    &f,
                    opts.passivation,
                    &opts.pseudo,
                );
                let box_grid = fg.box_grid(&f);
                let basis = PwBasis::new(box_grid, opts.ecut);
                let positions: Vec<[f64; 3]> = fa.atoms.iter().map(|a| a.pos).collect();
                let e_kb: Vec<f64> = fa.atoms.iter().map(|a| a.kb_energy).collect();
                let widths: Vec<f64> = fa.atoms.iter().map(|a| a.kb_rb).collect();
                let nonlocal = NonlocalPotential::new_batched(
                    &basis,
                    &positions,
                    |a, qs, out| {
                        ls3df_pseudo::KbProjector {
                            rb: widths[a],
                            e_kb: e_kb[a],
                        }
                        .fourier_batch(qs, out)
                    },
                    &e_kb,
                );
                // ΔV_F = confining wall + passivant ionic potentials.
                let mut delta_v = boundary_wall(&fg, &f, opts.wall_height);
                let passivants: Vec<PwAtom> = fa.atoms[fa.n_real..].to_vec();
                if !passivants.is_empty() {
                    let v_h = ionic_potential(&basis, &passivants);
                    delta_v.add_scaled(1.0, &v_h);
                }
                let n_occ = (fa.n_electrons / 2.0).ceil() as usize;
                let n_bands = (n_occ + opts.n_extra_bands).max(1);
                let occupations = fragment_occupations(n_bands, fa.n_electrons);
                // Seed by fragment *type* only: fragments of the same size
                // start from the same guess, so identical pieces produce
                // bit-identical fragment solutions (exact patched-density
                // periodicity for ideal crystals — tested in
                // tests/ls3df_pipeline.rs).
                let psi = ls3df_pw::scf::random_start(
                    n_bands,
                    &basis,
                    0xF00D ^ (f.size[0] * 31 + f.size[1] * 37 + f.size[2] * 41) as u64,
                );
                let psi_backup = psi.clone();
                FragmentState {
                    fragment: f,
                    basis,
                    nonlocal,
                    delta_v,
                    psi,
                    psi_backup,
                    occupations,
                    atoms: fa,
                    injected: InjectedCounters::default(),
                    quarantined: false,
                }
            })
            .collect();

        let n_electrons = structure.num_electrons();
        let positions: Vec<[f64; 3]> = structure.atoms.iter().map(|a| a.pos).collect();
        let charges: Vec<f64> = structure
            .atoms
            .iter()
            .map(|a| a.species.valence())
            .collect();
        let ewald = ls3df_pw::ewald::ewald_energy(&positions, &charges, structure.lengths);
        let fingerprint = ckpt::options_fingerprint(structure, m, &opts, fg.scheme());
        let n_fragments = fragments.len();
        Ok(Ls3df {
            fg,
            global_grid,
            global_basis,
            v_ion_global,
            fragments,
            n_electrons,
            opts,
            v_in,
            rho: rho0,
            ewald,
            hartree,
            fingerprint,
            ckpt: None,
            resume: None,
            comm: Arc::new(ls3df_dist::SingleProcess::new()),
            plan: GroupPlan::single(n_fragments),
        })
    }

    /// Ion–ion Ewald energy of the structure.
    pub fn ewald_energy(&self) -> f64 {
        self.ewald
    }

    /// The processor-group communicator this calculation runs over (a
    /// [`ls3df_dist::SingleProcess`] world unless
    /// [`Ls3dfBuilder::groups`] / `LS3DF_GROUPS` asked for more).
    pub fn comm(&self) -> &Arc<dyn Communicator> {
        &self.comm
    }

    /// The fragment→group assignment (trivial — everything in group 0 —
    /// for a single-process world).
    pub fn group_plan(&self) -> &GroupPlan {
        &self.plan
    }

    /// The latest patched density.
    pub fn rho_ref(&self) -> &RealField {
        &self.rho
    }

    pub(crate) fn fragment_states(&self) -> &[FragmentState] {
        &self.fragments
    }

    /// Number of fragments.
    pub fn n_fragments(&self) -> usize {
        self.fragments.len()
    }

    /// Total electrons of the real (global) system.
    pub fn n_electrons(&self) -> f64 {
        self.n_electrons
    }

    /// Current global input potential.
    pub fn v_in(&self) -> &RealField {
        &self.v_in
    }

    /// Overrides the global input potential (diagnostics; e.g. patching a
    /// converged direct-DFT potential through one LS3DF cycle).
    pub fn set_v_in(&mut self, v: RealField) {
        assert_eq!(v.grid(), &self.global_grid, "set_v_in: grid mismatch");
        self.v_in = v;
    }

    /// Scales every coefficient of fragment `index`'s wavefunction block.
    ///
    /// Validation-support hook: deliberately corrupting one fragment lets
    /// tests (and operators chasing a bad node) confirm that the Gen_dens
    /// charge-conservation invariant catches a fragment whose density has
    /// gone wrong, instead of letting the renormalization silently absorb
    /// it.
    pub fn scale_fragment_psi(&mut self, index: usize, factor: f64) {
        self.fragments[index].psi.scale_real(factor);
    }

    /// **Gen_VF**: slices the global potential into per-fragment
    /// `V_F = V_in|ΩF + ΔV_F`.
    pub fn gen_vf(&self) -> Vec<RealField> {
        self.fragments
            .par_iter()
            .enumerate()
            .map(|(i, fs)| {
                let origin = self.fg.box_origin(&fs.fragment);
                let mut vf = self.v_in.extract_subbox(origin, fs.basis.grid());
                vf.add_scaled(1.0, &fs.delta_v);
                if check::ENABLED {
                    check::enforce(
                        check::finite_field("Gen_VF", &vf).map_err(|v| v.for_fragment(i)),
                    );
                }
                vf
            })
            .collect()
    }

    /// **PEtot_F**: advances every fragment's eigenproblem by
    /// `opts.cg_steps` solver iterations in its current potential.
    /// Returns the worst residual across fragments.
    pub fn petot_f(&mut self, vfs: &[RealField]) -> f64 {
        self.petot_f_steps(vfs, self.opts.cg_steps)
    }

    /// [`Ls3df::petot_f`] with an explicit step budget (used for the
    /// burn-in first iteration).
    pub fn petot_f_steps(&mut self, vfs: &[RealField], steps: usize) -> f64 {
        self.petot_f_supervised(vfs, steps).worst_residual
    }

    /// The supervised PEtot_F stage: every fragment solve runs under
    /// `catch_unwind` with the deterministic retry ladder
    /// ([`ATTEMPT_LADDER`]); fragments that exhaust it are quarantined
    /// (previous-iteration wavefunctions restored) instead of aborting
    /// the run.
    pub(crate) fn petot_f_supervised(&mut self, vfs: &[RealField], steps: usize) -> PetotOutcome {
        let solver_opts = SolverOptions {
            max_iter: steps,
            tol: self.opts.fragment_tol,
            ..Default::default()
        };
        let method = self.opts.method;
        // Escalation rungs discard the warm start, so they get at least
        // the burn-in budget — a fresh random block under the warm-start's
        // few steps would patch an unconverged density into Gen_dens.
        let fresh_steps = steps.max(self.opts.initial_cg_steps);
        // In a multi-group world each rank solves only the fragments its
        // group owns; non-owned fragments keep their state untouched (the
        // global layer never reads it, and snapshot iterations gather the
        // owners' blocks explicitly). With one group the filter admits
        // everything and this is exactly the single-process stage.
        let multi = self.plan.n_groups > 1;
        let my_group = self.comm.rank();
        let owner = &self.plan.owner;
        let outcomes: Vec<Option<FragmentOutcome>> = self
            .fragments
            .par_iter_mut()
            .zip(vfs.par_iter())
            .enumerate()
            .map(|(index, (fs, vf))| {
                if multi && owner[index] != my_group {
                    return None;
                }
                Some(supervised_solve(
                    fs,
                    vf,
                    index,
                    &solver_opts,
                    fresh_steps,
                    method,
                ))
            })
            .collect();
        // reduce-audit: `collect` returns outcomes in fragment order
        // no matter how the pool scheduled the solves, so the max below is
        // a fixed left-to-right scan and the fault/quarantine lists are in
        // fragment order — the event stream a ScfObserver sees depends only
        // on the fragment list, never on LS3DF_THREADS.
        let mut out = PetotOutcome::default();
        for (index, o) in outcomes.into_iter().enumerate() {
            let Some(o) = o else { continue };
            out.worst_residual = out.worst_residual.max(o.residual);
            if o.quarantined {
                out.quarantined.push(QuarantineRecord {
                    fragment: index,
                    faults: o.faults.clone(),
                });
            }
            out.faults.extend(o.faults);
        }
        out
    }

    /// **Gen_dens**: patches fragment densities into the global density
    /// with the scheme's `α_F` weights, then rescales to the exact
    /// electron count.
    pub fn gen_dens(&self) -> RealField {
        let all: Vec<usize> = (0..self.fragments.len()).collect();
        self.patch_density(self.gen_dens_parts(&all))
    }

    /// The parallel half of **Gen_dens**, restricted to `indices`: each
    /// listed fragment's box density reduced to its region. In a
    /// multi-group run every rank computes this for its owned fragments
    /// and the global layer merges the parts; single-process runs pass
    /// every index.
    pub(crate) fn gen_dens_parts(&self, indices: &[usize]) -> Vec<(usize, RealField)> {
        indices
            .par_iter()
            .map(|&i| {
                let fs = &self.fragments[i];
                let rho_f = density::compute_density(&fs.basis, &fs.psi, &fs.occupations);
                // Extract the region part of the box density.
                let off = self.fg.region_offset_in_box();
                let rd = self.fg.region_dims(&fs.fragment);
                let region_grid = {
                    let h = fs.basis.grid().spacing();
                    Grid3::new(
                        rd,
                        [
                            rd[0] as f64 * h[0],
                            rd[1] as f64 * h[1],
                            rd[2] as f64 * h[2],
                        ],
                    )
                };
                let region = rho_f
                    .extract_subbox([off[0] as i64, off[1] as i64, off[2] as i64], &region_grid);
                if check::ENABLED {
                    check::enforce(
                        check::finite_field("Gen_dens", &region).map_err(|v| v.for_fragment(i)),
                    );
                }
                (i, region)
            })
            .collect()
    }

    /// The sequential half of **Gen_dens**: accumulates region parts in
    /// fixed ascending fragment order (the global-array reduction),
    /// verifies the patching invariants, and renormalizes to the exact
    /// electron count. `parts` must be sorted by fragment index — the
    /// caller guarantees it (`gen_dens_parts` preserves the order of its
    /// `indices`, and the distributed merge sorts), so the summation tree
    /// is a function of the fragment list alone — the patched density is
    /// bit-identical from run to run, across LS3DF_THREADS settings, and
    /// across group counts.
    pub(crate) fn patch_density(&self, parts: Vec<(usize, RealField)>) -> RealField {
        let mut rho = RealField::zeros(self.global_grid.clone());
        let mut signed_region_charge = 0.0;
        let mut gross_patch_scale = 0.0;
        for (i, region) in parts {
            let fs = &self.fragments[i];
            let origin = self.fg.region_origin(&fs.fragment);
            rho.accumulate_subbox(origin, &region, fs.fragment.alpha());
            if check::ENABLED {
                let region_q = region.integrate();
                let n_e_f: f64 = fs.occupations.iter().sum();
                // Structural per-fragment bound: the box density
                // integrates to the fragment's own electron count and is
                // nonnegative, so the region part lives in [0, n_e(F)]
                // at any solver state — the sharp detector for a
                // corrupted fragment density. A quarantined fragment
                // patches its restore-buffer density, which may predate
                // orthonormalization, so the bound holds only for
                // fragments the solver actually produced.
                if !fs.quarantined {
                    check::enforce(
                        check::fragment_region_charge("Gen_dens", region_q, n_e_f)
                            .map_err(|v| v.for_fragment(i)),
                    );
                }
                signed_region_charge += fs.fragment.alpha() * region_q;
                gross_patch_scale += fs.fragment.alpha().abs() * n_e_f;
            }
        }
        // Global invariants, verified *before* the renormalization hides
        // any violation. Patching linearity (∫ρ = Σ α_F ∫ρ_F|region) is
        // exact up to rounding at every iteration and catches assembly
        // bugs; the physics check against the electron count is a loose
        // measured bound relative to the gross patch scale, because the
        // signed sum is a small difference of large region charges and
        // unconverged fragments legitimately drift it by a fraction of
        // the gross sum (see check::CHARGE_TOL_REL). The charge
        // diagnostic assumes every fragment density came from the same
        // input potential; a quarantined fragment patches a stale
        // density, so while one is present only finiteness is enforced
        // (the renormalization below still pins the exact electron
        // count).
        let q = rho.integrate();
        if check::ENABLED {
            check::enforce(check::patching_linearity(
                "Gen_dens",
                q,
                signed_region_charge,
            ));
            if self.fragments.iter().any(|fs| fs.quarantined) {
                check::enforce(check::finite_scalar("Gen_dens", "patched charge", q));
            } else {
                check::enforce(check::charge_conservation(
                    "Gen_dens",
                    q,
                    self.n_electrons,
                    gross_patch_scale,
                ));
            }
        }
        // Charge renormalization.
        if q.abs() > 1e-12 {
            rho.scale(self.n_electrons / q);
        }
        rho
    }

    /// **GENPOT**: global Poisson + XC from the patched density, through
    /// the cached per-geometry Poisson solver.
    pub fn genpot(&self, rho: &RealField) -> RealField {
        let (v_out, _) =
            effective_potential_with(&self.global_basis, &self.v_ion_global, rho, &self.hartree);
        if check::ENABLED {
            check::enforce(check::finite_field("GENPOT", &v_out));
        }
        v_out
    }

    /// Runs the full outer SCF loop.
    ///
    /// Communicator failures (a worker process dying, a bounded receive
    /// timing out) are **fatal**: the process prints the error and exits —
    /// the `MPI_ERRORS_ARE_FATAL` analogue, since a rank cannot generally
    /// recover a collective on its own. Use [`Ls3df::try_scf`] to handle
    /// them as typed [`Ls3dfError::Comm`] values instead.
    pub fn scf(&mut self) -> Ls3dfResult {
        self.scf_with(SilentObserver)
    }

    /// Fallible [`Ls3df::scf`]: communicator failures surface as
    /// [`Ls3dfError::Comm`] (naming the rank involved) instead of
    /// terminating the process. Single-process runs never return `Err`.
    pub fn try_scf(&mut self) -> Result<Ls3dfResult, Ls3dfError> {
        self.try_scf_with(SilentObserver)
    }

    /// Runs the outer SCF loop, streaming progress through an
    /// [`ScfObserver`] (stage timings, per-iteration steps, convergence).
    /// A plain `FnMut(&Ls3dfStep)` closure is accepted too — it receives
    /// the per-iteration [`ScfObserver::on_step`] events.
    ///
    /// Fatal on communicator failure, like [`Ls3df::scf`]; see
    /// [`Ls3df::try_scf_with`] for the fallible form.
    pub fn scf_with<O: ScfObserver>(&mut self, observer: O) -> Ls3dfResult {
        match self.try_scf_with(observer) {
            Ok(result) => result,
            Err(e) => {
                // The MPI_ERRORS_ARE_FATAL analogue: a dead peer leaves
                // the collective schedule unrecoverable from inside the
                // loop, so the default driver surface aborts loudly. 74 is
                // BSD's EX_IOERR, the closest sysexits code to "transport
                // failed".
                eprintln!("ls3df: fatal: {e}");
                std::process::exit(74);
            }
        }
    }

    /// Fallible [`Ls3df::scf_with`]: the full outer SCF loop over the
    /// processor-group communicator.
    ///
    /// With one group this is exactly the single-process loop. With more,
    /// every rank runs the same loop SPMD-style: all ranks slice Gen_VF,
    /// each rank solves only its group's fragments, workers ship their
    /// bit-exact region densities (plus fault/quarantine events and
    /// timings) to the global layer, rank 0 replays the sequential
    /// patch/GENPOT/mixing exactly as a single-process run would, and
    /// the next-iteration potential is broadcast so every rank stays in
    /// lockstep. The patched density is bit-identical at any group count.
    pub fn try_scf_with<O: ScfObserver>(
        &mut self,
        mut observer: O,
    ) -> Result<Ls3dfResult, Ls3dfError> {
        let comm = Arc::clone(&self.comm);
        let multi = comm.size() > 1;
        let rank = comm.rank();
        // Stamp the world coordinates into the obs sink so this rank's
        // harvest is attributable, and hand the scheduler's predicted
        // cost bins to the report merge for the imbalance section.
        ls3df_obs::telemetry::set_rank(rank, comm.size());
        if ls3df_obs::ENABLED && rank == 0 {
            ls3df_obs::telemetry::set_predicted_costs(self.plan.costs.clone());
        }
        let mut group_petot_seconds = vec![0.0f64; comm.size()];
        let mut mixer = MixerState::new(self.opts.mixer.clone());
        let mut history = Vec::new();
        let mut converged = false;
        let mut quarantined = Vec::new();
        let mut start_iteration = 0usize;
        if let Some(resume) = self.resume.take() {
            mixer.restore_history(resume.mixer_history);
            history = resume.history;
            converged = resume.converged;
            start_iteration = resume.start_iteration;
            observer.on_snapshot_restored(start_iteration);
        }

        // The iteration loop runs inside a closure so a communicator
        // failure mid-run still reaches the telemetry epilogue below:
        // rank 0 can then mark the culprit rank `down` in the merged
        // report instead of losing every rank's sections.
        let loop_result: Result<(), Ls3dfError> = (|| {
            for iteration in (start_iteration + 1)..=self.opts.max_scf {
                if converged {
                    break;
                }
                let mut timings = StepTimings::default();
                let _iter_span = span!("scf_iter", iteration);

                let t = Stopwatch::start();
                let vfs = {
                    let _s = span!("gen_vf");
                    self.gen_vf()
                };
                timings.gen_vf = t.seconds();
                observer.on_stage(iteration, ScfStage::GenVf, timings.gen_vf);

                let t = Stopwatch::start();
                let steps = if iteration == 1 {
                    self.opts.initial_cg_steps.max(self.opts.cg_steps)
                } else {
                    self.opts.cg_steps
                };
                let mut petot = {
                    let _s = span!("petot_f");
                    self.petot_f_supervised(&vfs, steps)
                };
                let local_petot = t.seconds();
                group_petot_seconds[rank] += local_petot;

                if multi && rank != 0 {
                    // Group layer (worker rank): report this group's outcome
                    // to the global layer, then adopt its broadcast state.
                    // Region densities travel bit-exact, so rank 0's patch
                    // replays the single-process accumulation unchanged.
                    timings.petot_f = local_petot;
                    observer.on_stage(iteration, ScfStage::PetotF, timings.petot_f);
                    quarantined.extend(petot.quarantined.iter().cloned());
                    let mine: Vec<usize> = self.plan.groups[rank].clone();
                    let flags: Vec<(usize, bool)> = mine
                        .iter()
                        .map(|&i| (i, self.fragments[i].quarantined))
                        .collect();
                    let regions = {
                        let _s = span!("gen_dens");
                        self.gen_dens_parts(&mine)
                    };
                    let report = distrib::PetotReport {
                        worst_residual: petot.worst_residual,
                        petot_seconds: local_petot,
                        flags,
                        faults: petot.faults,
                        quarantined: petot.quarantined,
                        regions,
                    };
                    comm.send_sections(
                        0,
                        iteration as u32,
                        &distrib::encode_petot_report(&report),
                    )?;

                    // End-of-iteration broadcast: next V_in, patched ρ, and
                    // the completed step record.
                    let bytes = comm.broadcast(0, Vec::new())?;
                    let snap = Snapshot::decode(&bytes).map_err(proto_err)?;
                    let msg = distrib::decode_vnext(&snap).map_err(proto_err)?;
                    let step = msg.step;
                    self.v_in = msg.v_in;
                    self.rho = msg.rho;
                    converged = msg.converged;
                    observer.on_step(&step);
                    history.push(step);

                    if let Some(cfg) = &self.ckpt {
                        if cfg.policy.wants_snapshot(iteration, converged) {
                            // Rank 0 cuts the snapshot; this rank contributes
                            // its owned wavefunction blocks.
                            let blocks: Vec<(usize, &Matrix<c64>)> =
                                mine.iter().map(|&i| (i, &self.fragments[i].psi)).collect();
                            comm.send_sections(
                                0,
                                PSI_GATHER_TAG | iteration as u32,
                                &distrib::encode_psi_gather(&blocks),
                            )?;
                        }
                    }
                    if converged {
                        observer.on_converged(&step);
                    }
                    continue;
                }

                // Global layer: fold every group's report into the local
                // outcome before the fault replay, so observer events and
                // counters cover the whole run in merged fragment order. The
                // PEtot_F stage time includes the wait — it is the true
                // barrier wall time (the paper reports the stage, not a rank).
                let mut remote_parts: Vec<(usize, RealField)> = Vec::new();
                if multi {
                    for r in 1..comm.size() {
                        let snap = comm.recv_sections(r, iteration as u32)?;
                        let report = distrib::decode_petot_report(&snap).map_err(proto_err)?;
                        petot.worst_residual = petot.worst_residual.max(report.worst_residual);
                        group_petot_seconds[r] += report.petot_seconds;
                        // Remote quarantine flags drive the same Gen_dens
                        // check suspension as local ones.
                        for (i, q) in report.flags {
                            let Some(fs) = self.fragments.get_mut(i) else {
                                return Err(Ls3dfError::Comm(CommError::Protocol {
                                    detail: format!("group {r} reported unknown fragment {i}"),
                                }));
                            };
                            fs.quarantined = q;
                        }
                        petot.faults.extend(report.faults);
                        petot.quarantined.extend(report.quarantined);
                        remote_parts.extend(report.regions);
                    }
                    petot.faults.sort_by_key(|f| (f.fragment, f.attempt));
                    petot.quarantined.sort_by_key(|r| r.fragment);
                }
                timings.petot_f = t.seconds();
                // Fault events replay in fragment order after the parallel
                // stage completes, so the observer stream is deterministic.
                counter_add(Counter::RetryRungs, petot.faults.len() as u64);
                counter_add(Counter::Quarantines, petot.quarantined.len() as u64);
                for fault in &petot.faults {
                    observer.on_fragment_retry(iteration, fault);
                }
                for record in &petot.quarantined {
                    observer.on_fragment_quarantined(iteration, record);
                }
                let worst_residual = petot.worst_residual;
                quarantined.extend(petot.quarantined);
                observer.on_stage(iteration, ScfStage::PetotF, timings.petot_f);

                let t = Stopwatch::start();
                let rho = {
                    let _s = span!("gen_dens");
                    let mut parts = self.gen_dens_parts(&self.plan.groups[0]);
                    parts.extend(remote_parts);
                    // Ascending fragment order replays the single-process
                    // accumulation sequence exactly — the bit-identity across
                    // group counts rests on this sort.
                    parts.sort_by_key(|&(i, _)| i);
                    self.patch_density(parts)
                };
                timings.gen_dens = t.seconds();
                observer.on_stage(iteration, ScfStage::GenDens, timings.gen_dens);

                let t = Stopwatch::start();
                let (v_out, dv_integral, mixed) = {
                    let _s = span!("genpot");
                    let v_out = self.genpot(&rho);
                    let dv_integral = v_out.diff(&self.v_in).integrate_abs();
                    let mixed = {
                        let _m = span!("mix");
                        mixer.mix(&self.v_in, &v_out, self.global_basis.fft())
                    };
                    (v_out, dv_integral, mixed)
                };
                timings.genpot = t.seconds();
                observer.on_stage(iteration, ScfStage::Genpot, timings.genpot);

                self.rho = rho;
                converged = dv_integral < self.opts.tol;
                // V_in becomes the *next* iteration's input before any
                // snapshot is cut, so a resumed run starts from exactly the
                // potential an uninterrupted run would have used.
                self.v_in = if converged { v_out } else { mixed };
                let step = Ls3dfStep {
                    iteration,
                    dv_integral,
                    worst_residual,
                    timings,
                };
                if multi {
                    // End-of-iteration broadcast: every rank finishes the
                    // iteration with identical state and identical history.
                    let msg = distrib::VnextMessage {
                        v_in: self.v_in.clone(),
                        rho: self.rho.clone(),
                        step,
                        converged,
                    };
                    let bytes = distrib::encode_vnext(&msg).encode().map_err(proto_err)?;
                    comm.broadcast(0, bytes)?;
                }
                observer.on_step(&step);
                history.push(step);

                let wants_snapshot = self
                    .ckpt
                    .as_ref()
                    .is_some_and(|cfg| cfg.policy.wants_snapshot(iteration, converged));
                if wants_snapshot {
                    let _s = span!("snapshot");
                    if multi {
                        // Gather the workers' wavefunction blocks first, so
                        // the snapshot covers every fragment — snapshots stay
                        // group-count-independent and resumable at any
                        // LS3DF_GROUPS.
                        for r in 1..comm.size() {
                            let snap = comm.recv_sections(r, PSI_GATHER_TAG | iteration as u32)?;
                            let blocks = distrib::decode_psi_gather(&snap).map_err(proto_err)?;
                            for (i, psi) in blocks {
                                let Some(fs) = self.fragments.get_mut(i) else {
                                    return Err(Ls3dfError::Comm(CommError::Protocol {
                                        detail: format!(
                                            "psi gather from group {r} names unknown fragment {i}"
                                        ),
                                    }));
                                };
                                if psi.rows() != fs.psi.rows() || psi.cols() != fs.psi.cols() {
                                    return Err(Ls3dfError::Comm(CommError::Protocol {
                                        detail: format!(
                                            "psi gather from group {r}: fragment {i} block is \
                                         {}×{}, expected {}×{}",
                                            psi.rows(),
                                            psi.cols(),
                                            fs.psi.rows(),
                                            fs.psi.cols()
                                        ),
                                    }));
                                }
                                fs.psi = psi;
                            }
                        }
                    }
                    if let Some(cfg) = &self.ckpt {
                        match self.snapshot_bytes(iteration, converged, &history, mixer.history()) {
                            Ok(bytes) => {
                                match write_rotated(&cfg.dir, iteration, &bytes, cfg.keep_last) {
                                    Ok(path) => observer.on_snapshot_written(iteration, &path),
                                    Err(e) => observer.on_snapshot_failed(iteration, &e),
                                }
                            }
                            Err(e) => observer.on_snapshot_failed(iteration, &e),
                        }
                    }
                }

                if converged {
                    observer.on_converged(&step);
                }
            }
            Ok(())
        })();

        // Telemetry epilogue: after the final iteration, worker ranks
        // ship their harvested spans/counters/comm histograms to rank 0
        // on a disjoint tag; rank 0 stashes each payload for the report
        // merge. Every failure mode degrades to a `Missing`/`Down`
        // payload (⇒ `telemetry_incomplete` in the report) — it never
        // becomes an error and never hangs (receives stay bounded by
        // the communicator's timeout).
        if ls3df_obs::ENABLED && multi {
            if rank != 0 {
                if loop_result.is_ok() {
                    let data = ls3df_obs::harvest();
                    let t = ls3df_obs::RankTelemetry {
                        rank,
                        size: comm.size(),
                        spans: data.spans,
                        threads: data.threads,
                        counters: data
                            .counters
                            .into_iter()
                            .map(|(name, value)| (name.to_string(), value))
                            .collect(),
                        comm: ls3df_dist::drain_telemetry(),
                    };
                    // Best-effort: if rank 0 is already gone there is
                    // nobody left to read the report anyway.
                    let _ = comm.send_sections(
                        0,
                        ls3df_dist::TELEMETRY_TAG,
                        &distrib::encode_obstelem(&t),
                    );
                }
            } else {
                match &loop_result {
                    Ok(()) => {
                        for r in 1..comm.size() {
                            let payload = match comm.recv_sections(r, ls3df_dist::TELEMETRY_TAG) {
                                Ok(snap) => match distrib::decode_obstelem(&snap) {
                                    Ok(t) if t.rank == r && t.size == comm.size() => {
                                        ls3df_obs::RankPayload::Telemetry(t)
                                    }
                                    // Shape mismatch or codec error:
                                    // drop the payload, keep the run.
                                    _ => ls3df_obs::RankPayload::Missing { rank: r },
                                },
                                Err(CommError::RankDown { .. }) => ls3df_obs::RankPayload::Down {
                                    rank: r,
                                    kind: "rank_down".to_string(),
                                },
                                Err(_) => ls3df_obs::RankPayload::Missing { rank: r },
                            };
                            ls3df_obs::telemetry::submit_remote(payload);
                        }
                    }
                    Err(Ls3dfError::Comm(e)) => {
                        // The run died on a communicator fault: mark the
                        // culprit rank down (typed by the error kind) and
                        // everyone else missing — no further receives.
                        let culprit = match e {
                            CommError::RankDown { rank } => Some(*rank),
                            CommError::Timeout { from, .. } => Some(*from),
                            _ => None,
                        };
                        for r in 1..comm.size() {
                            let payload = if Some(r) == culprit {
                                ls3df_obs::RankPayload::Down {
                                    rank: r,
                                    kind: comm_error_kind(e).to_string(),
                                }
                            } else {
                                ls3df_obs::RankPayload::Missing { rank: r }
                            };
                            ls3df_obs::telemetry::submit_remote(payload);
                        }
                    }
                    Err(_) => {}
                }
            }
        }

        loop_result?;

        Ok(Ls3dfResult {
            history,
            converged,
            rho: self.rho.clone(),
            v_eff: self.v_in.clone(),
            quarantined,
            group_petot_seconds,
        })
    }

    /// The options fingerprint snapshots are stamped with (equal
    /// fingerprints ⇒ bit-identical SCF trajectories).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Queues `attempts` injected failures on fragment `index`'s next
    /// solve attempts (each attempt consumes one).
    ///
    /// Validation-support hook, like [`Ls3df::scale_fragment_psi`]:
    /// deliberately failing a fragment lets tests and operators confirm
    /// the supervision layer retries and quarantines instead of aborting.
    pub fn inject_fragment_fault(&mut self, index: usize, fault: InjectedFault, attempts: usize) {
        match fault {
            InjectedFault::Panic => self.fragments[index].injected.panics += attempts,
            InjectedFault::SolverError => self.fragments[index].injected.solver_errors += attempts,
        }
    }

    /// Serializes the full resumable state after a completed iteration
    /// into the snapshot container (see `crate::ckpt` for the section
    /// layout).
    fn snapshot_bytes(
        &self,
        iteration: usize,
        converged: bool,
        history: &[Ls3dfStep],
        mixer_history: &[(Vec<f64>, Vec<f64>)],
    ) -> Result<Vec<u8>, CkptError> {
        let mut snap = Snapshot::new();
        snap.push(ckpt::SEC_FPRINT, ckpt::encode_fingerprint(self.fingerprint))
            .push(
                ckpt::SEC_SCHEME,
                ckpt::encode_scheme_id(self.fg.scheme().id()),
            )
            .push(ckpt::SEC_STATE, ckpt::encode_state(iteration, converged))
            .push(ckpt::SEC_HIST, ckpt::encode_history(history))
            .push(ckpt::SEC_VIN, ls3df_grid::encode_field(&self.v_in))
            .push(ckpt::SEC_RHO, ls3df_grid::encode_field(&self.rho))
            .push(ckpt::SEC_MIXER, ckpt::encode_mixer_history(mixer_history))
            .push(
                ckpt::SEC_PSI,
                ckpt::encode_psi_blocks(self.fragments.iter().map(|f| &f.psi)),
            );
        snap.encode()
    }

    /// Restores this calculation's resumable state from a snapshot file.
    ///
    /// Verifies the options fingerprint and every section's shape against
    /// the freshly assembled calculation before touching any state, then
    /// installs the global potential, density, mixer/convergence history
    /// and every fragment's wavefunctions. Returns the last completed
    /// iteration; the next [`scf`](Ls3df::scf) call continues after it.
    pub fn restore_from(&mut self, path: &Path) -> Result<usize, CkptError> {
        let bytes = read_bytes(path)?;
        let snap = Snapshot::decode(&bytes)?;
        let stored = ckpt::decode_fingerprint(snap.require(ckpt::SEC_FPRINT)?)?;
        if stored != self.fingerprint {
            // Older snapshots carry no scheme section; report what's known
            // so a cross-scheme resume names both schemes in the error.
            let stored_scheme = snap
                .get(ckpt::SEC_SCHEME)
                .and_then(|b| ckpt::decode_scheme_id(b).ok())
                .unwrap_or_else(|| "unknown".to_string());
            return Err(CkptError::FingerprintMismatch {
                stored,
                current: self.fingerprint,
                stored_scheme,
                current_scheme: self.fg.scheme().id().to_string(),
            });
        }
        let (start_iteration, converged) = ckpt::decode_state(snap.require(ckpt::SEC_STATE)?)?;
        let history = ckpt::decode_history(snap.require(ckpt::SEC_HIST)?)?;
        let v_in = ls3df_grid::decode_field(snap.require(ckpt::SEC_VIN)?)?;
        let rho = ls3df_grid::decode_field(snap.require(ckpt::SEC_RHO)?)?;
        for (name, field) in [("VIN", &v_in), ("RHO", &rho)] {
            if field.grid() != &self.global_grid {
                return Err(CkptError::Malformed {
                    section: name.to_string(),
                    detail: format!(
                        "snapshot grid {:?} does not match the global grid {:?}",
                        field.grid().dims,
                        self.global_grid.dims
                    ),
                });
            }
        }
        let mixer_history = ckpt::decode_mixer_history(snap.require(ckpt::SEC_MIXER)?)?;
        let shapes: Vec<(usize, usize)> = self
            .fragments
            .iter()
            .map(|f| (f.psi.rows(), f.psi.cols()))
            .collect();
        let blocks = ckpt::decode_psi_blocks(snap.require(ckpt::SEC_PSI)?, &shapes)?;
        // All sections validated — now install the state.
        self.v_in = v_in;
        self.rho = rho;
        for (fs, psi) in self.fragments.iter_mut().zip(blocks) {
            fs.psi_backup.as_mut_slice().copy_from_slice(psi.as_slice());
            fs.psi = psi;
        }
        self.resume = Some(ResumeState {
            start_iteration,
            converged,
            history,
            mixer_history,
        });
        Ok(start_iteration)
    }

    /// The global planewave basis (for post-processing: FSM, full-system
    /// diagonalization in the converged potential).
    pub fn global_basis(&self) -> &PwBasis {
        &self.global_basis
    }

    /// The global ionic potential.
    pub fn v_ion(&self) -> &RealField {
        &self.v_ion_global
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_occupations_fractional() {
        assert_eq!(fragment_occupations(4, 6.0), vec![2.0, 2.0, 2.0, 0.0]);
        assert_eq!(fragment_occupations(4, 5.0), vec![2.0, 2.0, 1.0, 0.0]);
        let occ = fragment_occupations(5, 7.5);
        assert_eq!(occ, vec![2.0, 2.0, 2.0, 1.5, 0.0]);
        let total: f64 = occ.iter().sum();
        assert_eq!(total, 7.5);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn too_many_electrons_rejected() {
        let _ = fragment_occupations(2, 6.0);
    }

    #[test]
    fn builder_rejects_bad_geometry_without_panicking() {
        let s = Structure::new([10.0, 10.0, 10.0], Vec::new());
        assert_eq!(
            Ls3df::builder(&s).build().err().expect("must fail"),
            Ls3dfError::FragmentsNotSet
        );
        assert_eq!(
            Ls3df::builder(&s)
                .fragments([1, 2, 2])
                .build()
                .err()
                .expect("must fail"),
            Ls3dfError::Fragmentation(FragmentError::TooFewPieces {
                scheme: "sign-alternating",
                axis: 0,
                m: 1,
                min: 2,
            })
        );
        let opts = Ls3dfOptions {
            piece_pts: [8, 0, 8],
            ..Default::default()
        };
        assert_eq!(
            Ls3df::builder(&s)
                .fragments([2, 2, 2])
                .options(opts)
                .build()
                .err()
                .expect("must fail"),
            Ls3dfError::EmptyPiece { axis: 1 }
        );
    }

    #[test]
    fn builder_rejects_mismatched_initial_potential() {
        let s = Structure::new([10.0, 10.0, 10.0], Vec::new());
        let wrong = RealField::zeros(Grid3::cubic(4, 10.0));
        let opts = Ls3dfOptions {
            piece_pts: [8, 8, 8],
            ..Default::default()
        };
        let err = Ls3df::builder(&s)
            .fragments([2, 2, 2])
            .options(opts)
            .initial_potential(wrong)
            .build()
            .err()
            .expect("must fail");
        assert_eq!(
            err,
            Ls3dfError::PotentialGridMismatch {
                expected: [16, 16, 16],
                got: [4, 4, 4],
            }
        );
        // Errors are displayable (they reach CLI users via `?`).
        assert!(err.to_string().contains("does not match"));
    }
}
