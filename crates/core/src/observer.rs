//! Observation hooks for the LS3DF outer SCF loop.
//!
//! [`Ls3df::scf_with`](crate::Ls3df::scf_with) streams progress through
//! the [`ScfObserver`] trait instead of a bare closure, so bench
//! binaries, progress printers and future tracing backends can attach
//! richer instrumentation (per-stage timings, convergence events)
//! without the driver's signature changing again. Plain
//! `FnMut(&Ls3dfStep)` closures keep working through a blanket impl —
//! they see only the per-iteration [`ScfObserver::on_step`] hook.

use crate::scf::Ls3dfStep;
use crate::supervise::{FragmentFault, QuarantineRecord};
use ls3df_ckpt::CkptError;
use std::path::Path;

/// One of the four timed stages of an LS3DF outer iteration
/// (paper Fig. 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScfStage {
    /// Global potential → fragment potentials.
    GenVf,
    /// Fragment eigensolves (the parallel hot path).
    PetotF,
    /// Fragment densities → patched global density.
    GenDens,
    /// Global Poisson + XC + mixing.
    Genpot,
}

impl ScfStage {
    /// The paper's name for the stage (stable, log-friendly).
    pub fn name(self) -> &'static str {
        match self {
            ScfStage::GenVf => "Gen_VF",
            ScfStage::PetotF => "PEtot_F",
            ScfStage::GenDens => "Gen_dens",
            ScfStage::Genpot => "GENPOT",
        }
    }
}

/// Receiver for LS3DF outer-loop progress events.
///
/// All hooks have empty defaults: implement only what you need. A
/// `FnMut(&Ls3dfStep)` closure is an observer via the blanket impl
/// (receiving [`on_step`](ScfObserver::on_step) only), so the
/// pre-existing call style `calc.scf_with(|step| …)` still compiles.
///
/// To keep a struct observer inspectable after the run, give it `&mut`
/// fields borrowing the caller's locals (the driver takes the observer
/// by value):
///
/// ```ignore
/// struct Wall<'a> {
///     petot: &'a mut f64,
/// }
/// impl ScfObserver for Wall<'_> {
///     fn on_stage(&mut self, _: usize, stage: ScfStage, seconds: f64) {
///         if stage == ScfStage::PetotF {
///             *self.petot += seconds;
///         }
///     }
/// }
/// ```
pub trait ScfObserver {
    /// Called after every completed outer iteration.
    fn on_step(&mut self, _step: &Ls3dfStep) {}

    /// Called after each of the four stages inside an iteration, with the
    /// stage's wall-clock seconds (timing hook; fires before `on_step`).
    fn on_stage(&mut self, _iteration: usize, _stage: ScfStage, _seconds: f64) {}

    /// Called once if the ΔV tolerance is reached, with the converging
    /// step (after its `on_step`). Not called when the iteration cap ends
    /// the run.
    fn on_converged(&mut self, _step: &Ls3dfStep) {}

    /// Called for every failed fragment solve attempt (primary or retry
    /// rung), in fragment order within the iteration.
    fn on_fragment_retry(&mut self, _iteration: usize, _fault: &FragmentFault) {}

    /// Called when a fragment exhausts the retry ladder and is quarantined
    /// for this iteration (its previous-iteration density is reused).
    fn on_fragment_quarantined(&mut self, _iteration: usize, _record: &QuarantineRecord) {}

    /// Called after a checkpoint snapshot is durably written (fires after
    /// `on_step`, before `on_converged`).
    fn on_snapshot_written(&mut self, _iteration: usize, _path: &Path) {}

    /// Called when a checkpoint write fails. Snapshot failures never abort
    /// the SCF loop (the science result is still computable) — this hook
    /// is the only place the failure surfaces.
    fn on_snapshot_failed(&mut self, _iteration: usize, _error: &CkptError) {}

    /// Called once at the start of a resumed run, with the iteration the
    /// restored snapshot was taken at.
    fn on_snapshot_restored(&mut self, _resumed_from_iteration: usize) {}
}

impl<F: FnMut(&Ls3dfStep)> ScfObserver for F {
    fn on_step(&mut self, step: &Ls3dfStep) {
        self(step);
    }
}

/// The no-op observer ([`Ls3df::scf`](crate::Ls3df::scf) uses it).
#[derive(Clone, Copy, Debug, Default)]
pub struct SilentObserver;

impl ScfObserver for SilentObserver {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scf::StepTimings;

    fn step(iteration: usize) -> Ls3dfStep {
        Ls3dfStep {
            iteration,
            dv_integral: 1.0,
            worst_residual: 0.5,
            timings: StepTimings::default(),
        }
    }

    #[test]
    fn closures_are_observers() {
        let mut count = 0usize;
        {
            let mut obs = |s: &Ls3dfStep| count += s.iteration;
            obs.on_step(&step(2));
            obs.on_step(&step(3));
            // Closures only get on_step; the other hooks default to no-ops.
            obs.on_stage(1, ScfStage::PetotF, 0.1);
            obs.on_converged(&step(3));
        }
        assert_eq!(count, 5);
    }

    #[test]
    fn struct_observer_with_borrowed_state() {
        struct Recorder<'a> {
            stages: &'a mut Vec<&'static str>,
            converged: &'a mut bool,
        }
        impl ScfObserver for Recorder<'_> {
            fn on_stage(&mut self, _i: usize, stage: ScfStage, _s: f64) {
                self.stages.push(stage.name());
            }
            fn on_converged(&mut self, _step: &Ls3dfStep) {
                *self.converged = true;
            }
        }
        let mut stages = Vec::new();
        let mut converged = false;
        {
            let mut obs = Recorder {
                stages: &mut stages,
                converged: &mut converged,
            };
            obs.on_stage(1, ScfStage::GenVf, 0.0);
            obs.on_stage(1, ScfStage::PetotF, 0.0);
            obs.on_converged(&step(1));
        }
        assert_eq!(stages, vec!["Gen_VF", "PEtot_F"]);
        assert!(converged);
    }

    #[test]
    fn stage_names_match_paper() {
        assert_eq!(ScfStage::GenVf.name(), "Gen_VF");
        assert_eq!(ScfStage::PetotF.name(), "PEtot_F");
        assert_eq!(ScfStage::GenDens.name(), "Gen_dens");
        assert_eq!(ScfStage::Genpot.name(), "GENPOT");
    }
}
