//! Fragment→processor-group assignment (the paper's two-level hierarchy).
//!
//! LS3DF §III divides the machine into `M` processor groups, each solving
//! its own set of fragments between the global Gen_dens/GENPOT steps. The
//! balance of that division decides the weak-scaling slope, and the paper
//! balances on a *per-fragment cost model*, not a fragment count.
//!
//! The assignment here follows the JAIST domain-decomposition recipe:
//!
//! 1. order fragments along a **space-filling curve** (Morton order of
//!    the fragment corner indices), so each group owns a spatially
//!    compact run of fragments rather than a scatter;
//! 2. weight each fragment with an **integer cost model**
//!    `n_pieces · (1 + atoms in region)` — the solve cost grows with the
//!    fragment volume and with the nonlocal-projector count, both of
//!    which the atom count proxies. Integer costs keep the plan
//!    platform-deterministic (no float comparisons);
//! 3. **greedy bin-packing over the curve**: walk the curve once,
//!    filling group `g` until it reaches the running target
//!    `ceil(remaining cost / groups left)`, with a feasibility guard
//!    that leaves at least one fragment for every later group.
//!
//! The adaptive target makes the imbalance provably small: targets are
//! non-increasing along the walk, so every group's cost is below
//! `ceil(total/M) + max single fragment cost` — i.e. the max/mean
//! imbalance is bounded by the heaviest single fragment over the mean
//! (the bound the proptest in `tests/group_balance.rs` checks exactly).
//!
//! The plan is a pure function of geometry and group count. It never
//! feeds the density patching path, so group count cannot perturb
//! physics — bit-identity across `LS3DF_GROUPS` is enforced separately
//! by the cross-process digest gate.

use crate::fragment::FragmentGrid;
use ls3df_atoms::Structure;

/// A fragment→group assignment for `n_groups` processor groups.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupPlan {
    /// Number of processor groups (world size; group 0 is the global
    /// layer's own group).
    pub n_groups: usize,
    /// `owner[f]` is the group that solves fragment `f` (canonical
    /// fragment-grid index).
    pub owner: Vec<usize>,
    /// Fragment indices per group, ascending. Groups may be empty when
    /// there are fewer fragments than groups.
    pub groups: Vec<Vec<usize>>,
    /// Modeled cost per group (sum of member fragment costs).
    pub costs: Vec<u64>,
}

impl GroupPlan {
    /// The group owning fragment `f`.
    pub fn group_of(&self, f: usize) -> usize {
        self.owner[f]
    }

    /// Whether fragment `f` is solved by group `g`.
    pub fn owns(&self, g: usize, f: usize) -> bool {
        self.owner[f] == g
    }

    /// A plan that assigns everything to one group (the single-process
    /// world).
    pub fn single(n_fragments: usize) -> Self {
        GroupPlan {
            n_groups: 1,
            owner: vec![0; n_fragments],
            groups: vec![(0..n_fragments).collect()],
            costs: vec![0],
        }
    }
}

/// Spreads the low 21 bits of `x` so consecutive bits land 3 apart
/// (the standard 3-D Morton dilation).
fn spread_bits(x: u64) -> u64 {
    let mut v = x & 0x1f_ffff; // 21 bits per axis fills 63 bits
    v = (v | (v << 32)) & 0x001f_0000_0000_ffff;
    v = (v | (v << 16)) & 0x001f_0000_ff00_00ff;
    v = (v | (v << 8)) & 0x100f_00f0_0f00_f00f;
    v = (v | (v << 4)) & 0x10c3_0c30_c30c_30c3;
    v = (v | (v << 2)) & 0x1249_2492_4924_9249;
    v
}

/// Morton (Z-order) key of a fragment corner: spatially close corners
/// get numerically close keys, so contiguous curve runs are compact
/// spatial blocks.
fn morton_key(corner: [usize; 3]) -> u64 {
    spread_bits(corner[0] as u64)
        | (spread_bits(corner[1] as u64) << 1)
        | (spread_bits(corner[2] as u64) << 2)
}

/// Number of atoms whose wrapped position falls inside the fragment's
/// region `[lo, hi)` (periodic per axis).
fn atoms_in_region(structure: &Structure, lo: [f64; 3], hi: [f64; 3]) -> u64 {
    let lengths = structure.lengths;
    structure
        .atoms
        .iter()
        .filter(|a| {
            (0..3).all(|d| {
                let span = hi[d] - lo[d];
                let rel = (a.pos[d] - lo[d]).rem_euclid(lengths[d]);
                rel < span
            })
        })
        .count() as u64
}

/// The integer cost model: fragment volume (piece count) scaled by one
/// plus the atoms inside its region. Every fragment costs at least 1.
fn fragment_cost(fg: &FragmentGrid, structure: &Structure, f: &crate::fragment::Fragment) -> u64 {
    let (lo, hi) = fg.region_bounds(f);
    f.n_pieces() as u64 * (1 + atoms_in_region(structure, lo, hi))
}

/// Modeled per-fragment solve costs in canonical fragment order — the
/// bin-packing inputs of [`plan_groups`], exposed so balance tests and
/// benchmarks can state the imbalance bound exactly.
pub fn fragment_costs(fg: &FragmentGrid, structure: &Structure) -> Vec<u64> {
    fg.fragments()
        .iter()
        .map(|f| fragment_cost(fg, structure, f))
        .collect()
}

/// Assigns fragments to `n_groups` processor groups.
///
/// Deterministic for a fixed geometry and group count: the curve order,
/// the integer cost model, and the greedy walk contain no floating-point
/// comparisons, hashing, or iteration-order dependence. Fragments are
/// indexed in the fragment grid's canonical order.
pub fn plan_groups(fg: &FragmentGrid, structure: &Structure, n_groups: usize) -> GroupPlan {
    let n = fg.n_fragments();
    let g = n_groups.max(1);
    let fragments = fg.fragments();

    // Space-filling-curve order of fragment indices; ties (fragments of
    // different sizes sharing a corner) break on the canonical index.
    let mut curve: Vec<usize> = (0..n).collect();
    curve.sort_by_key(|&i| (morton_key(fragments[i].corner), i));

    let cost: Vec<u64> = fragments
        .iter()
        .map(|f| fragment_cost(fg, structure, f))
        .collect();
    let mut remaining_cost: u64 = cost.iter().sum();

    let mut owner = vec![0usize; n];
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); g];
    let mut costs = vec![0u64; g];
    let mut pos = 0usize;
    for gi in 0..g {
        let groups_left = g - gi;
        // Adaptive target: the mean of what is still unassigned. Taking
        // at least the target each round makes later targets no larger,
        // which is what bounds the final imbalance.
        let target = remaining_cost.div_ceil(groups_left as u64);
        let mut acc = 0u64;
        while pos < n && acc < target && (n - pos) > (groups_left - 1) {
            let f = curve[pos];
            owner[f] = gi;
            groups[gi].push(f);
            acc += cost[f];
            pos += 1;
        }
        remaining_cost -= acc;
        costs[gi] = acc;
        groups[gi].sort_unstable();
    }
    debug_assert_eq!(pos, n, "every fragment assigned");
    GroupPlan {
        n_groups: g,
        owner,
        groups,
        costs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_bits_interleaves_cleanly() {
        // 0b111 spread 3 apart: bits 0, 3, 6.
        assert_eq!(spread_bits(0b111), 0b1001001);
        // Keys of distinct corners are distinct.
        let a = morton_key([1, 0, 0]);
        let b = morton_key([0, 1, 0]);
        let c = morton_key([0, 0, 1]);
        assert!(a != b && b != c && a != c);
        // Axis 0 is the least-significant interleave slot.
        assert_eq!(morton_key([1, 0, 0]), 1);
        assert_eq!(morton_key([0, 1, 0]), 2);
        assert_eq!(morton_key([0, 0, 1]), 4);
    }

    #[test]
    fn single_plan_owns_everything() {
        let plan = GroupPlan::single(5);
        assert_eq!(plan.n_groups, 1);
        assert!(plan.owner.iter().all(|&g| g == 0));
        assert_eq!(plan.groups[0], vec![0, 1, 2, 3, 4]);
    }
}
