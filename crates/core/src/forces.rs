//! LS3DF atomic forces.
//!
//! Paper §V: "the LS3DF method can be used to calculate the force and
//! relax the atomic position" (validated there to 10⁻⁵ a.u. against
//! direct DFT). The decomposition mirrors the energy:
//!
//! * **local + Ewald** — exact functionals of the *patched global*
//!   density and the fixed ion geometry (reuse of `ls3df_pw::forces`);
//! * **nonlocal** — per-fragment Kleinman–Bylander forces from the
//!   fragment wavefunctions, accumulated with the `α_F` weights onto the
//!   real atoms each fragment contains (passivants feel forces too, but
//!   they are not real atoms and are discarded).

use crate::scf::Ls3df;
use ls3df_atoms::Structure;
use ls3df_pseudo::PseudoTable;
use ls3df_pw::{ewald_forces, local_forces, nonlocal_forces, PwAtom};
use rayon::prelude::*;

impl Ls3df {
    /// Hellmann–Feynman forces on the real atoms of `structure` at the
    /// current LS3DF state (call after [`Ls3df::scf`]). `structure` and
    /// `pseudo` must be the ones the calculation was built with.
    pub fn forces(&self, structure: &Structure, pseudo: &PseudoTable) -> Vec<[f64; 3]> {
        let n = structure.len();
        // Global pieces from the patched density.
        let atoms: Vec<PwAtom> = structure
            .atoms
            .iter()
            .map(|a| {
                let p = pseudo.get(a.species);
                PwAtom {
                    pos: a.pos,
                    local: p.local,
                    kb_rb: p.kb.rb,
                    kb_energy: p.kb.e_kb,
                }
            })
            .collect();
        let mut forces = local_forces(self.global_basis(), &atoms, self.rho_ref());
        let pos: Vec<[f64; 3]> = atoms.iter().map(|a| a.pos).collect();
        let charges: Vec<f64> = atoms.iter().map(|a| a.local.z).collect();
        let f_ew = ewald_forces(&pos, &charges, structure.lengths);
        for i in 0..n {
            for c in 0..3 {
                forces[i][c] += f_ew[i][c];
            }
        }

        // Signed fragment nonlocal forces mapped back to global atoms.
        let per_fragment: Vec<Vec<(usize, [f64; 3])>> = self
            .fragment_states()
            .par_iter()
            .map(|fs| {
                let alpha = fs.fragment().alpha();
                let fa = fs.atoms();
                if fa.atoms[..fa.n_real].iter().all(|a| a.kb_energy == 0.0) {
                    return Vec::new();
                }
                let f_nl = nonlocal_forces(
                    fs.basis(),
                    &fa.atoms[..fa.n_real],
                    fs.psi(),
                    fs.occupations(),
                );
                fa.global_indices
                    .iter()
                    .zip(f_nl)
                    .map(|(&g, f)| (g, [alpha * f[0], alpha * f[1], alpha * f[2]]))
                    .collect()
            })
            .collect();
        for contributions in per_fragment {
            for (g, f) in contributions {
                for c in 0..3 {
                    forces[g][c] += f[c];
                }
            }
        }
        forces
    }
}

#[cfg(test)]
mod tests {
    use crate::{Ls3df, Ls3dfOptions, Passivation};
    use ls3df_atoms::{Atom, Species, Structure};
    use ls3df_pseudo::PseudoTable;
    use ls3df_pw::Mixer;

    #[test]
    fn symmetric_crystal_forces_are_small_and_balanced() {
        // Ideal simple-cubic deep-well crystal: every atom sits on an
        // inversion-symmetric site → forces ≈ 0; and momentum conservation
        // must hold regardless.
        let a = 6.5;
        let mut atoms = Vec::new();
        for k in 0..2 {
            for j in 0..2 {
                for i in 0..2 {
                    atoms.push(Atom {
                        species: Species::Zn,
                        pos: [
                            (i as f64 + 0.5) * a,
                            (j as f64 + 0.5) * a,
                            (k as f64 + 0.5) * a,
                        ],
                    });
                }
            }
        }
        let s = Structure::new([2.0 * a; 3], atoms);
        let table = PseudoTable::deep_well(2.0, 0.8);
        let opts = Ls3dfOptions {
            ecut: 1.5,
            piece_pts: [8; 3],
            buffer_pts: [3; 3],
            passivation: Passivation::WallOnly,
            wall_height: 1.5,
            n_extra_bands: 2,
            cg_steps: 6,
            initial_cg_steps: 10,
            fragment_tol: 1e-9,
            mixer: Mixer::Kerker {
                alpha: 0.6,
                q0: 0.8,
            },
            max_scf: 8,
            tol: 1e-4,
            pseudo: table,
            ..Default::default()
        };
        let mut calc = Ls3df::builder(&s)
            .fragments([2, 2, 2])
            .options(opts)
            .build()
            .unwrap();
        let _ = calc.scf();
        let f = calc.forces(&s, &table);
        assert_eq!(f.len(), 8);
        // Near-conservation of momentum: exact only at perfect
        // self-consistency; at this truncated-SCF scale a small residual
        // set by the remaining ΔV survives.
        for c in 0..3 {
            let total: f64 = f.iter().map(|v| v[c]).sum();
            assert!(total.abs() < 0.02, "ΣF[{c}] = {total}");
        }
        // Symmetric sites: individual residual forces stay small (set by
        // the patched-density noise at this tiny scale).
        for (i, fi) in f.iter().enumerate() {
            for c in 0..3 {
                assert!(fi[c].abs() < 0.08, "atom {i} F[{c}] = {}", fi[c]);
            }
        }
    }
}
