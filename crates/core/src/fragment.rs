//! Fragment geometry: the heart of the LS3DF patching scheme.
//!
//! The periodic supercell is divided into `M = m1 × m2 × m3` *pieces*
//! (the paper uses one eight-atom zinc-blende cell per piece). From every
//! piece corner `(i, j, k)`, **eight fragments** are defined with sizes
//! `{1,2} × {1,2} × {1,2}` pieces and weight
//!
//! ```text
//! α_F = Π_d sign_d,   sign_d = +1 if size_d = 2, −1 if size_d = 1
//! ```
//!
//! (`+1` for 2×2×2; `−1` for the three 2×2×1 types; `+1` for the three
//! 2×1×1 types; `−1` for 1×1×1 — the 3-D extension of the paper's Fig. 1).
//! Summing `α_F · (anything accumulated over the fragment interior)` over
//! all corners covers every piece with net weight exactly **one** while
//! cancelling every artificial surface, edge and corner term pairwise —
//! the property tested by [`partition_of_unity`] and exploited by
//! `Gen_dens`.

use ls3df_grid::Grid3;

/// One fragment: corner piece index, size in pieces, and sign weight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fragment {
    /// Piece index of the fragment's low corner `(i, j, k)`.
    pub corner: [usize; 3],
    /// Fragment extent in pieces per dimension (1 or 2).
    pub size: [usize; 3],
}

impl Fragment {
    /// The patching weight `α_F`.
    pub fn alpha(&self) -> f64 {
        let mut a = 1.0;
        for d in 0..3 {
            a *= if self.size[d] == 2 { 1.0 } else { -1.0 };
        }
        a
    }

    /// Number of pieces covered.
    pub fn n_pieces(&self) -> usize {
        self.size[0] * self.size[1] * self.size[2]
    }

    /// Stable identifier `(corner, size)` for logs.
    pub fn label(&self) -> String {
        format!(
            "F[{},{},{}]({}x{}x{})",
            self.corner[0],
            self.corner[1],
            self.corner[2],
            self.size[0],
            self.size[1],
            self.size[2]
        )
    }
}

/// The fragment decomposition of a supercell.
#[derive(Clone, Debug)]
pub struct FragmentGrid {
    /// Pieces per dimension.
    pub m: [usize; 3],
    /// Grid points per piece per dimension (global grid must be
    /// `m[d] · piece_pts[d]` points along axis `d`).
    pub piece_pts: [usize; 3],
    /// Physical piece lengths (Bohr).
    pub piece_len: [f64; 3],
    /// Buffer width added around the fragment region on each side, in
    /// grid points per dimension (sets the fragment box ΩF).
    pub buffer_pts: [usize; 3],
}

impl FragmentGrid {
    /// Builds the decomposition for a global grid of `m · piece_pts`
    /// points. Requires `m[d] ≥ 2` (a size-2 fragment must not wrap onto
    /// itself).
    pub fn new(m: [usize; 3], global: &Grid3, buffer_pts: [usize; 3]) -> Self {
        for d in 0..3 {
            assert!(
                m[d] >= 2,
                "FragmentGrid: need ≥ 2 pieces per dimension (got {})",
                m[d]
            );
            assert_eq!(
                global.dims[d] % m[d],
                0,
                "FragmentGrid: global grid axis {d} ({}) not divisible into {} pieces",
                global.dims[d],
                m[d]
            );
        }
        let piece_pts = [
            global.dims[0] / m[0],
            global.dims[1] / m[1],
            global.dims[2] / m[2],
        ];
        let piece_len = [
            global.lengths[0] / m[0] as f64,
            global.lengths[1] / m[1] as f64,
            global.lengths[2] / m[2] as f64,
        ];
        FragmentGrid {
            m,
            piece_pts,
            piece_len,
            buffer_pts,
        }
    }

    /// Total number of corners (= pieces).
    pub fn n_corners(&self) -> usize {
        self.m[0] * self.m[1] * self.m[2]
    }

    /// Total number of fragments (8 per corner).
    pub fn n_fragments(&self) -> usize {
        8 * self.n_corners()
    }

    /// Iterates over all fragments of all corners.
    pub fn fragments(&self) -> Vec<Fragment> {
        let mut out = Vec::with_capacity(self.n_fragments());
        for k in 0..self.m[2] {
            for j in 0..self.m[1] {
                for i in 0..self.m[0] {
                    for &s3 in &[1usize, 2] {
                        for &s2 in &[1usize, 2] {
                            for &s1 in &[1usize, 2] {
                                out.push(Fragment {
                                    corner: [i, j, k],
                                    size: [s1, s2, s3],
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Origin of the fragment *region* in global grid points (may exceed
    /// the global grid; callers wrap periodically).
    pub fn region_origin(&self, f: &Fragment) -> [i64; 3] {
        std::array::from_fn(|d| (f.corner[d] * self.piece_pts[d]) as i64)
    }

    /// Size of the fragment region in grid points.
    pub fn region_dims(&self, f: &Fragment) -> [usize; 3] {
        std::array::from_fn(|d| f.size[d] * self.piece_pts[d])
    }

    /// Origin of the fragment *box* ΩF (region minus buffer) in global
    /// grid points.
    pub fn box_origin(&self, f: &Fragment) -> [i64; 3] {
        let r = self.region_origin(f);
        std::array::from_fn(|d| r[d] - self.buffer_pts[d] as i64)
    }

    /// The fragment box grid (region + buffer on both sides), with the
    /// same grid spacing as the global grid.
    pub fn box_grid(&self, f: &Fragment) -> Grid3 {
        let rd = self.region_dims(f);
        let dims: [usize; 3] = std::array::from_fn(|d| rd[d] + 2 * self.buffer_pts[d]);
        let spacing: [f64; 3] =
            std::array::from_fn(|d| self.piece_len[d] / self.piece_pts[d] as f64);
        let lengths: [f64; 3] = std::array::from_fn(|d| dims[d] as f64 * spacing[d]);
        Grid3::new(dims, lengths)
    }

    /// Physical coordinates (in the global cell, unwrapped) of the box
    /// origin.
    pub fn box_origin_pos(&self, f: &Fragment) -> [f64; 3] {
        let o = self.box_origin(f);
        let spacing: [f64; 3] =
            std::array::from_fn(|d| self.piece_len[d] / self.piece_pts[d] as f64);
        std::array::from_fn(|d| o[d] as f64 * spacing[d])
    }

    /// Physical bounds (unwrapped) of the fragment region:
    /// `[origin, origin + size·piece_len)`.
    pub fn region_bounds(&self, f: &Fragment) -> ([f64; 3], [f64; 3]) {
        let lo: [f64; 3] = std::array::from_fn(|d| f.corner[d] as f64 * self.piece_len[d]);
        let hi: [f64; 3] = std::array::from_fn(|d| lo[d] + f.size[d] as f64 * self.piece_len[d]);
        (lo, hi)
    }

    /// Offset (in box grid points) of the fragment region inside its box.
    pub fn region_offset_in_box(&self) -> [usize; 3] {
        self.buffer_pts
    }

    /// Verifies the partition of unity: accumulating `α_F` over every
    /// fragment region covers each global grid point with net weight 1.
    /// Returns the maximum deviation (0 for a correct decomposition).
    pub fn partition_of_unity(&self, global: &Grid3) -> f64 {
        let mut weight = vec![0.0_f64; global.len()];
        for f in self.fragments() {
            let alpha = f.alpha();
            let origin = self.region_origin(&f);
            let dims = self.region_dims(&f);
            for dz in 0..dims[2] {
                for dy in 0..dims[1] {
                    for dx in 0..dims[0] {
                        let idx = global.index_wrapped(
                            origin[0] + dx as i64,
                            origin[1] + dy as i64,
                            origin[2] + dz as i64,
                        );
                        weight[idx] += alpha;
                    }
                }
            }
        }
        weight.iter().map(|w| (w - 1.0).abs()).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(m: [usize; 3], pts: usize) -> Grid3 {
        Grid3::new(
            [m[0] * pts, m[1] * pts, m[2] * pts],
            [m[0] as f64 * 4.0, m[1] as f64 * 4.0, m[2] as f64 * 4.0],
        )
    }

    #[test]
    fn alpha_signs_match_paper() {
        // 2D analogue in the paper: +1 for 1×1 and 2×2, −1 for mixed.
        // 3D: α = (−1)^(#dims of size 1).
        let mk = |s: [usize; 3]| {
            Fragment {
                corner: [0, 0, 0],
                size: s,
            }
            .alpha()
        };
        assert_eq!(mk([2, 2, 2]), 1.0);
        assert_eq!(mk([1, 2, 2]), -1.0);
        assert_eq!(mk([2, 1, 2]), -1.0);
        assert_eq!(mk([2, 2, 1]), -1.0);
        assert_eq!(mk([1, 1, 2]), 1.0);
        assert_eq!(mk([1, 2, 1]), 1.0);
        assert_eq!(mk([2, 1, 1]), 1.0);
        assert_eq!(mk([1, 1, 1]), -1.0);
    }

    #[test]
    fn alpha_sum_per_corner_is_one_piece() {
        // Σ_S α_S · volume(S) = 1 piece: 8 − 3·4 + 3·2 − 1 = 1.
        let fg = FragmentGrid::new([2, 2, 2], &grid([2, 2, 2], 4), [1, 1, 1]);
        let total: f64 = fg
            .fragments()
            .iter()
            .take(8) // one corner
            .map(|f| f.alpha() * f.n_pieces() as f64)
            .sum();
        assert_eq!(total, 1.0);
    }

    #[test]
    fn partition_of_unity_exact() {
        for m in [[2usize, 2, 2], [3, 2, 4], [3, 3, 3]] {
            let g = grid(m, 3);
            let fg = FragmentGrid::new(m, &g, [1, 1, 1]);
            assert_eq!(fg.partition_of_unity(&g), 0.0, "m = {m:?}");
        }
    }

    #[test]
    fn fragment_count() {
        let g = grid([3, 3, 3], 4);
        let fg = FragmentGrid::new([3, 3, 3], &g, [2, 2, 2]);
        assert_eq!(fg.n_fragments(), 8 * 27);
        assert_eq!(fg.fragments().len(), 8 * 27);
    }

    #[test]
    fn box_geometry() {
        let g = grid([4, 4, 4], 6);
        let fg = FragmentGrid::new([4, 4, 4], &g, [2, 2, 2]);
        let f = Fragment {
            corner: [1, 2, 3],
            size: [2, 1, 2],
        };
        assert_eq!(fg.region_origin(&f), [6, 12, 18]);
        assert_eq!(fg.region_dims(&f), [12, 6, 12]);
        assert_eq!(fg.box_origin(&f), [4, 10, 16]);
        let bg = fg.box_grid(&f);
        assert_eq!(bg.dims, [16, 10, 16]);
        // Same spacing as global.
        let h_global = g.spacing();
        let h_box = bg.spacing();
        for d in 0..3 {
            assert!((h_global[d] - h_box[d]).abs() < 1e-12);
        }
    }

    #[test]
    fn region_bounds_physical() {
        let g = grid([2, 2, 2], 4);
        let fg = FragmentGrid::new([2, 2, 2], &g, [1, 1, 1]);
        let f = Fragment {
            corner: [1, 0, 1],
            size: [1, 2, 1],
        };
        let (lo, hi) = fg.region_bounds(&f);
        assert_eq!(lo, [4.0, 0.0, 4.0]);
        assert_eq!(hi, [8.0, 8.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "≥ 2 pieces")]
    fn single_piece_dimension_rejected() {
        let g = Grid3::new([4, 8, 8], [4.0, 8.0, 8.0]);
        let _ = FragmentGrid::new([1, 2, 2], &g, [1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_grid_rejected() {
        let g = Grid3::new([9, 8, 8], [8.0, 8.0, 8.0]);
        let _ = FragmentGrid::new([2, 2, 2], &g, [1, 1, 1]);
    }
}
