//! Fragment geometry: the heart of the LS3DF patching scheme.
//!
//! The periodic supercell is divided into `M = m1 × m2 × m3` *pieces*
//! (the paper uses one eight-atom zinc-blende cell per piece). Which
//! fragments exist — and with what patching weight `α_F` — is decided by
//! a [`FragmentScheme`](crate::scheme::FragmentScheme). The paper's
//! sign-alternating scheme defines **eight fragments** per corner with
//! sizes `{1,2} × {1,2} × {1,2}` pieces and weight
//!
//! ```text
//! α_F = Π_d sign_d,   sign_d = +1 if size_d = 2, −1 if size_d = 1
//! ```
//!
//! (`+1` for 2×2×2; `−1` for the three 2×2×1 types; `+1` for the three
//! 2×1×1 types; `−1` for 1×1×1 — the 3-D extension of the paper's Fig. 1).
//! Summing `α_F · (anything accumulated over the fragment interior)` over
//! all fragments covers every piece with net weight exactly **one** —
//! the partition of unity tested by [`FragmentGrid::partition_of_unity`]
//! and exploited by `Gen_dens`. Other schemes (e.g.
//! [`Overlapping`](crate::scheme::Overlapping)) satisfy the same
//! invariant with different fragment sets and weights; each declares its
//! own tolerance via
//! [`FragmentScheme::unity_tolerance`](crate::scheme::FragmentScheme::unity_tolerance).
//!
//! [`FragmentGrid`] carries the metric bookkeeping (piece sizes, buffer
//! widths, box/region geometry) shared by every scheme; the scheme
//! contributes only the fragment enumeration and weights.

use crate::scheme::{FragmentError, FragmentScheme, SignAlternating};
use ls3df_grid::Grid3;
use std::sync::Arc;

/// One fragment: corner piece index, size in pieces, and patching weight.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fragment {
    /// Piece index of the fragment's low corner `(i, j, k)`.
    pub corner: [usize; 3],
    /// Fragment extent in pieces per dimension.
    pub size: [usize; 3],
    /// Patching weight `α_F` (the sign-alternating scheme uses `±1`;
    /// overlapping schemes use normalized positive reals).
    pub weight: f64,
}

impl Fragment {
    /// A fragment with an explicit patching weight.
    pub fn new(corner: [usize; 3], size: [usize; 3], weight: f64) -> Self {
        Fragment {
            corner,
            size,
            weight,
        }
    }

    /// A fragment weighted by the paper's sign rule
    /// `α_F = Π_d (+1 if size_d = 2, −1 otherwise)`.
    pub fn sign_alternating(corner: [usize; 3], size: [usize; 3]) -> Self {
        let mut weight = 1.0;
        for d in 0..3 {
            weight *= if size[d] == 2 { 1.0 } else { -1.0 };
        }
        Fragment {
            corner,
            size,
            weight,
        }
    }

    /// The patching weight `α_F`.
    pub fn alpha(&self) -> f64 {
        self.weight
    }

    /// Number of pieces covered.
    pub fn n_pieces(&self) -> usize {
        self.size[0] * self.size[1] * self.size[2]
    }

    /// Stable `Copy` identifier `(corner, size)` for logs and fault
    /// reports — formats like `F[1,2,3](2x1x2)` without allocating until
    /// actually displayed.
    pub fn id(&self) -> FragmentId {
        FragmentId {
            corner: self.corner,
            size: self.size,
        }
    }
}

/// Allocation-free fragment identifier: carries corner and extent, and
/// renders as `F[i,j,k](s1xs2xs3)` via [`Display`](std::fmt::Display).
/// Replaces the old `Fragment::label() -> String` in fault/observer hot
/// paths — `Copy`, `Eq`, and `Hash`, so it can key maps and travel
/// through channels without heap traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FragmentId {
    /// Piece index of the fragment's low corner.
    pub corner: [usize; 3],
    /// Fragment extent in pieces per dimension.
    pub size: [usize; 3],
}

impl std::fmt::Display for FragmentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "F[{},{},{}]({}x{}x{})",
            self.corner[0],
            self.corner[1],
            self.corner[2],
            self.size[0],
            self.size[1],
            self.size[2]
        )
    }
}

/// The fragment decomposition of a supercell: a
/// [`FragmentScheme`](crate::scheme::FragmentScheme) bound to concrete
/// piece/buffer geometry, with the fragment list enumerated once and
/// cached in the scheme's canonical order.
#[derive(Clone, Debug)]
pub struct FragmentGrid {
    /// Pieces per dimension.
    pub m: [usize; 3],
    /// Grid points per piece per dimension (global grid must be
    /// `m[d] · piece_pts[d]` points along axis `d`).
    pub piece_pts: [usize; 3],
    /// Physical piece lengths (Bohr).
    pub piece_len: [f64; 3],
    /// Buffer width added around the fragment region on each side, in
    /// grid points per dimension (sets the fragment box ΩF).
    pub buffer_pts: [usize; 3],
    scheme: Arc<dyn FragmentScheme>,
    fragments: Vec<Fragment>,
}

impl FragmentGrid {
    /// Builds the decomposition for a global grid of `m · piece_pts`
    /// points under the default sign-alternating scheme. Rejects bad
    /// geometry with a typed [`FragmentError`] instead of panicking.
    pub fn new(
        m: [usize; 3],
        global: &Grid3,
        buffer_pts: [usize; 3],
    ) -> Result<Self, FragmentError> {
        Self::with_scheme(Arc::new(SignAlternating), m, global, buffer_pts)
    }

    /// Builds the decomposition under an explicit scheme. The scheme
    /// validates the piece counts against its own minimums; divisibility
    /// of the global grid into pieces is checked here.
    pub fn with_scheme(
        scheme: Arc<dyn FragmentScheme>,
        m: [usize; 3],
        global: &Grid3,
        buffer_pts: [usize; 3],
    ) -> Result<Self, FragmentError> {
        scheme.validate(m)?;
        for axis in 0..3 {
            if !global.dims[axis].is_multiple_of(m[axis]) {
                return Err(FragmentError::Indivisible {
                    axis,
                    points: global.dims[axis],
                    m: m[axis],
                });
            }
        }
        let piece_pts = [
            global.dims[0] / m[0],
            global.dims[1] / m[1],
            global.dims[2] / m[2],
        ];
        let piece_len = [
            global.lengths[0] / m[0] as f64,
            global.lengths[1] / m[1] as f64,
            global.lengths[2] / m[2] as f64,
        ];
        let fragments = scheme.fragments(m);
        Ok(FragmentGrid {
            m,
            piece_pts,
            piece_len,
            buffer_pts,
            scheme,
            fragments,
        })
    }

    /// The scheme this decomposition was built under.
    pub fn scheme(&self) -> &dyn FragmentScheme {
        &*self.scheme
    }

    /// Shared handle to the scheme (for rebuilding a compatible grid).
    pub fn scheme_arc(&self) -> Arc<dyn FragmentScheme> {
        Arc::clone(&self.scheme)
    }

    /// The scheme's partition-of-unity tolerance (see
    /// [`FragmentScheme::unity_tolerance`](crate::scheme::FragmentScheme::unity_tolerance)).
    pub fn unity_tolerance(&self) -> f64 {
        self.scheme.unity_tolerance()
    }

    /// Total number of corners (= pieces).
    pub fn n_corners(&self) -> usize {
        self.m[0] * self.m[1] * self.m[2]
    }

    /// Total number of fragments.
    pub fn n_fragments(&self) -> usize {
        self.fragments.len()
    }

    /// All fragments, in the scheme's canonical (deterministic) order.
    pub fn fragments(&self) -> &[Fragment] {
        &self.fragments
    }

    /// Origin of the fragment *region* in global grid points (may exceed
    /// the global grid; callers wrap periodically).
    pub fn region_origin(&self, f: &Fragment) -> [i64; 3] {
        std::array::from_fn(|d| (f.corner[d] * self.piece_pts[d]) as i64)
    }

    /// Size of the fragment region in grid points.
    pub fn region_dims(&self, f: &Fragment) -> [usize; 3] {
        std::array::from_fn(|d| f.size[d] * self.piece_pts[d])
    }

    /// Origin of the fragment *box* ΩF (region minus buffer) in global
    /// grid points.
    pub fn box_origin(&self, f: &Fragment) -> [i64; 3] {
        let r = self.region_origin(f);
        std::array::from_fn(|d| r[d] - self.buffer_pts[d] as i64)
    }

    /// The fragment box grid (region + buffer on both sides), with the
    /// same grid spacing as the global grid.
    pub fn box_grid(&self, f: &Fragment) -> Grid3 {
        let rd = self.region_dims(f);
        let dims: [usize; 3] = std::array::from_fn(|d| rd[d] + 2 * self.buffer_pts[d]);
        let spacing: [f64; 3] =
            std::array::from_fn(|d| self.piece_len[d] / self.piece_pts[d] as f64);
        let lengths: [f64; 3] = std::array::from_fn(|d| dims[d] as f64 * spacing[d]);
        Grid3::new(dims, lengths)
    }

    /// Physical coordinates (in the global cell, unwrapped) of the box
    /// origin.
    pub fn box_origin_pos(&self, f: &Fragment) -> [f64; 3] {
        let o = self.box_origin(f);
        let spacing: [f64; 3] =
            std::array::from_fn(|d| self.piece_len[d] / self.piece_pts[d] as f64);
        std::array::from_fn(|d| o[d] as f64 * spacing[d])
    }

    /// Physical bounds (unwrapped) of the fragment region:
    /// `[origin, origin + size·piece_len)`.
    pub fn region_bounds(&self, f: &Fragment) -> ([f64; 3], [f64; 3]) {
        let lo: [f64; 3] = std::array::from_fn(|d| f.corner[d] as f64 * self.piece_len[d]);
        let hi: [f64; 3] = std::array::from_fn(|d| lo[d] + f.size[d] as f64 * self.piece_len[d]);
        (lo, hi)
    }

    /// Offset (in box grid points) of the fragment region inside its box.
    pub fn region_offset_in_box(&self) -> [usize; 3] {
        self.buffer_pts
    }

    /// Verifies the partition of unity: accumulating `α_F` over every
    /// fragment region covers each global grid point with net weight 1.
    /// Returns the maximum deviation; a correct decomposition stays
    /// within [`unity_tolerance`](Self::unity_tolerance).
    pub fn partition_of_unity(&self, global: &Grid3) -> f64 {
        let mut weight = vec![0.0_f64; global.len()];
        for f in &self.fragments {
            let alpha = f.alpha();
            let origin = self.region_origin(f);
            let dims = self.region_dims(f);
            for dz in 0..dims[2] {
                for dy in 0..dims[1] {
                    for dx in 0..dims[0] {
                        let idx = global.index_wrapped(
                            origin[0] + dx as i64,
                            origin[1] + dy as i64,
                            origin[2] + dz as i64,
                        );
                        weight[idx] += alpha;
                    }
                }
            }
        }
        weight.iter().map(|w| (w - 1.0).abs()).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Overlapping;

    fn grid(m: [usize; 3], pts: usize) -> Grid3 {
        Grid3::new(
            [m[0] * pts, m[1] * pts, m[2] * pts],
            [m[0] as f64 * 4.0, m[1] as f64 * 4.0, m[2] as f64 * 4.0],
        )
    }

    #[test]
    fn alpha_signs_match_paper() {
        // 2D analogue in the paper: +1 for 1×1 and 2×2, −1 for mixed.
        // 3D: α = (−1)^(#dims of size 1).
        let mk = |s: [usize; 3]| Fragment::sign_alternating([0, 0, 0], s).alpha();
        assert_eq!(mk([2, 2, 2]), 1.0);
        assert_eq!(mk([1, 2, 2]), -1.0);
        assert_eq!(mk([2, 1, 2]), -1.0);
        assert_eq!(mk([2, 2, 1]), -1.0);
        assert_eq!(mk([1, 1, 2]), 1.0);
        assert_eq!(mk([1, 2, 1]), 1.0);
        assert_eq!(mk([2, 1, 1]), 1.0);
        assert_eq!(mk([1, 1, 1]), -1.0);
    }

    #[test]
    fn alpha_sum_per_corner_is_one_piece() {
        // Σ_S α_S · volume(S) = 1 piece: 8 − 3·4 + 3·2 − 1 = 1.
        let fg = FragmentGrid::new([2, 2, 2], &grid([2, 2, 2], 4), [1, 1, 1]).unwrap();
        let total: f64 = fg
            .fragments()
            .iter()
            .take(8) // one corner
            .map(|f| f.alpha() * f.n_pieces() as f64)
            .sum();
        assert_eq!(total, 1.0);
    }

    #[test]
    fn partition_of_unity_exact() {
        for m in [[2usize, 2, 2], [3, 2, 4], [3, 3, 3]] {
            let g = grid(m, 3);
            let fg = FragmentGrid::new(m, &g, [1, 1, 1]).unwrap();
            assert_eq!(fg.partition_of_unity(&g), 0.0, "m = {m:?}");
        }
    }

    #[test]
    fn partition_of_unity_overlapping() {
        // 1/8 weights are exact in binary: deviation is exactly 0.
        let g = grid([3, 3, 3], 3);
        let fg =
            FragmentGrid::with_scheme(Arc::new(Overlapping::default()), [3, 3, 3], &g, [1, 1, 1])
                .unwrap();
        assert_eq!(fg.partition_of_unity(&g), 0.0);
        assert_eq!(fg.n_fragments(), 27, "one fragment per corner");
        // 1/27 weights round: deviation bounded by the declared tolerance.
        let fg = FragmentGrid::with_scheme(
            Arc::new(Overlapping::new([3, 3, 3])),
            [3, 3, 3],
            &g,
            [1, 1, 1],
        )
        .unwrap();
        let dev = fg.partition_of_unity(&g);
        assert!(dev <= fg.unity_tolerance(), "dev {dev:e}");
    }

    #[test]
    fn fragment_count() {
        let g = grid([3, 3, 3], 4);
        let fg = FragmentGrid::new([3, 3, 3], &g, [2, 2, 2]).unwrap();
        assert_eq!(fg.n_fragments(), 8 * 27);
        assert_eq!(fg.fragments().len(), 8 * 27);
    }

    #[test]
    fn box_geometry() {
        let g = grid([4, 4, 4], 6);
        let fg = FragmentGrid::new([4, 4, 4], &g, [2, 2, 2]).unwrap();
        let f = Fragment::sign_alternating([1, 2, 3], [2, 1, 2]);
        assert_eq!(fg.region_origin(&f), [6, 12, 18]);
        assert_eq!(fg.region_dims(&f), [12, 6, 12]);
        assert_eq!(fg.box_origin(&f), [4, 10, 16]);
        let bg = fg.box_grid(&f);
        assert_eq!(bg.dims, [16, 10, 16]);
        // Same spacing as global.
        let h_global = g.spacing();
        let h_box = bg.spacing();
        for d in 0..3 {
            assert!((h_global[d] - h_box[d]).abs() < 1e-12);
        }
    }

    #[test]
    fn region_bounds_physical() {
        let g = grid([2, 2, 2], 4);
        let fg = FragmentGrid::new([2, 2, 2], &g, [1, 1, 1]).unwrap();
        let f = Fragment::sign_alternating([1, 0, 1], [1, 2, 1]);
        let (lo, hi) = fg.region_bounds(&f);
        assert_eq!(lo, [4.0, 0.0, 4.0]);
        assert_eq!(hi, [8.0, 8.0, 8.0]);
    }

    #[test]
    fn single_piece_dimension_rejected() {
        let g = Grid3::new([4, 8, 8], [4.0, 8.0, 8.0]);
        let err = FragmentGrid::new([1, 2, 2], &g, [1, 1, 1]).unwrap_err();
        assert_eq!(
            err,
            FragmentError::TooFewPieces {
                scheme: "sign-alternating",
                axis: 0,
                m: 1,
                min: 2,
            }
        );
    }

    #[test]
    fn indivisible_grid_rejected() {
        let g = Grid3::new([9, 8, 8], [8.0, 8.0, 8.0]);
        let err = FragmentGrid::new([2, 2, 2], &g, [1, 1, 1]).unwrap_err();
        assert_eq!(
            err,
            FragmentError::Indivisible {
                axis: 0,
                points: 9,
                m: 2,
            }
        );
    }

    #[test]
    fn fragment_id_displays_without_allocation_until_rendered() {
        let f = Fragment::sign_alternating([1, 2, 3], [2, 1, 2]);
        let id = f.id();
        let copied = id; // Copy: no clone needed
        assert_eq!(copied.to_string(), "F[1,2,3](2x1x2)");
        assert_eq!(id, copied);
    }
}
