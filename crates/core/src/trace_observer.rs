//! The observability-collecting [`ScfObserver`]: assembles a
//! schema-versioned [`Report`] from one SCF run.
//!
//! [`TraceObserver`] listens to the driver's stage/step/convergence
//! hooks (always available) and, when the workspace `obs` feature is on,
//! harvests the span buffers and counter registry that the instrumented
//! kernels filled in — turning one [`Ls3df::scf_with`] call into a
//! `BENCH_*.json` document with per-stage times, per-fragment times,
//! flop rates and %-of-peak.
//!
//! ```ignore
//! let mut tracer = TraceObserver::new("fig6")
//!     .with_machine(MachineRef { name: "laptop".into(), peak_gflops: 8.0 })
//!     .with_trace_file("TRACE_fig6.json");
//! let result = calc.scf_with(&mut tracer);
//! let report = tracer.finish();
//! print!("{}", report.summary_table());
//! report.write(Path::new("BENCH_scf.json"))?;
//! ```
//!
//! [`Ls3df::scf_with`]: crate::Ls3df::scf_with

use crate::observer::{ScfObserver, ScfStage};
use crate::scf::Ls3dfStep;
use crate::supervise::{FragmentFault, QuarantineRecord};
use ls3df_obs::report::{StageRow, StepRow};
use ls3df_obs::trace::TraceLane;
use ls3df_obs::{Json, MachineRef, Report, Stopwatch};
use std::path::PathBuf;

/// Collects one SCF run's observability record; see the module docs.
///
/// Construction resets the global span/counter registries
/// ([`ls3df_obs::reset`]), so everything [`finish`](TraceObserver::finish)
/// harvests is attributable to the run between the two calls. Pass it to
/// the driver as `&mut` (`calc.scf_with(&mut tracer)`) so it stays
/// inspectable afterwards.
pub struct TraceObserver {
    stopwatch: Stopwatch,
    command: String,
    machine: Option<MachineRef>,
    trace_path: Option<PathBuf>,
    /// Aggregate (calls, seconds) per stage, indexed by [`stage_slot`].
    stage_totals: [(u64, f64); 4],
    steps: Vec<StepRow>,
    converged: bool,
    resumed_from: Option<usize>,
    retries: u64,
    quarantines: u64,
}

/// Fixed report order of the four stages (paper Fig. 2).
const STAGES: [ScfStage; 4] = [
    ScfStage::GenVf,
    ScfStage::PetotF,
    ScfStage::GenDens,
    ScfStage::Genpot,
];

fn stage_slot(stage: ScfStage) -> usize {
    match stage {
        ScfStage::GenVf => 0,
        ScfStage::PetotF => 1,
        ScfStage::GenDens => 2,
        ScfStage::Genpot => 3,
    }
}

impl TraceObserver {
    /// Starts collection for a run labeled `command` (the report's
    /// `"command"` field). Resets the global span/counter state.
    pub fn new(command: impl Into<String>) -> Self {
        ls3df_obs::reset();
        // Also drain the communicator histograms so comm rows harvested
        // at `finish` are attributable to this run alone.
        let _ = ls3df_dist::drain_telemetry();
        TraceObserver {
            stopwatch: Stopwatch::start(),
            command: command.into(),
            machine: None,
            trace_path: None,
            stage_totals: [(0, 0.0); 4],
            steps: Vec::new(),
            converged: false,
            resumed_from: None,
            retries: 0,
            quarantines: 0,
        }
    }

    /// Rates the run against a machine model (%-of-peak in the report).
    pub fn with_machine(mut self, machine: MachineRef) -> Self {
        self.machine = Some(machine);
        self
    }

    /// Additionally writes a chrome://tracing trace-event file on
    /// [`finish`](TraceObserver::finish) (only meaningful with the `obs`
    /// feature on; without it there are no spans to draw). The write is
    /// best-effort — failures land in the report's `extra` section
    /// instead of aborting the run.
    pub fn with_trace_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace_path = Some(path.into());
        self
    }

    /// Stops the clock, harvests spans and counters, and assembles the
    /// final [`Report`].
    pub fn finish(self) -> Report {
        let wall = self.stopwatch.seconds();
        let data = ls3df_obs::harvest();
        let mut report =
            Report::from_run(&self.command, wall, &data, self.machine, "frag", "scf_iter");
        report.converged = Some(self.converged);
        report.stages = STAGES
            .iter()
            .map(|&stage| {
                let (calls, seconds) = self.stage_totals[stage_slot(stage)];
                StageRow {
                    name: stage.name().to_string(),
                    calls,
                    seconds,
                }
            })
            .collect();
        report.steps = self.steps;
        if let Some(iteration) = self.resumed_from {
            report.extra.push((
                "resumed_from_iteration".to_string(),
                Json::num(iteration as f64),
            ));
        }
        if self.retries > 0 {
            report.extra.push((
                "fragment_retries".to_string(),
                Json::num(self.retries as f64),
            ));
        }
        if self.quarantines > 0 {
            report.extra.push((
                "fragment_quarantines".to_string(),
                Json::num(self.quarantines as f64),
            ));
        }
        // Rank-aware assembly: when the run was distributed, rank 0's
        // SCF epilogue stashed every worker's telemetry payload (or a
        // `Down`/`Missing` marker) for us to fold into the schema-v2
        // `ranks` section. The trace then gets one lane per rank
        // (`pid` = rank) instead of a single flat process.
        let rank = ls3df_obs::telemetry::rank();
        let multi = ls3df_obs::ENABLED && ls3df_obs::telemetry::world_size() > 1;
        let (remote, predicted_costs) = if multi && rank == 0 {
            ls3df_obs::telemetry::take_stash()
        } else {
            (Vec::new(), Vec::new())
        };
        if let Some(path) = &self.trace_path {
            let written = if multi {
                let mut lanes = vec![TraceLane {
                    pid: rank as u64,
                    name: format!("rank {rank}"),
                    spans: &data.spans,
                    threads: &data.threads,
                }];
                for payload in &remote {
                    if let ls3df_obs::RankPayload::Telemetry(t) = payload {
                        lanes.push(TraceLane {
                            pid: t.rank as u64,
                            name: format!("rank {}", t.rank),
                            spans: &t.spans,
                            threads: &t.threads,
                        });
                    }
                }
                ls3df_obs::trace::write_chrome_trace_lanes(path, &lanes)
            } else {
                ls3df_obs::trace::write_chrome_trace(path, &data.spans, &data.threads)
            };
            match written {
                Ok(()) => report.extra.push((
                    "trace_file".to_string(),
                    Json::str(path.display().to_string()),
                )),
                Err(e) => report
                    .extra
                    .push(("trace_file_error".to_string(), Json::str(e.to_string()))),
            }
        }
        if multi && rank == 0 {
            let local = ls3df_obs::RankTelemetry {
                rank: 0,
                size: ls3df_obs::telemetry::world_size(),
                spans: data.spans,
                threads: data.threads,
                counters: data
                    .counters
                    .into_iter()
                    .map(|(name, value)| (name.to_string(), value))
                    .collect(),
                comm: ls3df_dist::drain_telemetry(),
            };
            ls3df_obs::telemetry::merge_ranks(&mut report, local, remote, &predicted_costs);
        }
        report
    }
}

// Implemented for `&mut TraceObserver` specifically (a generic
// forwarding impl would collide with the crate's blanket
// `impl<F: FnMut(&Ls3dfStep)> ScfObserver for F`): the driver takes the
// observer by value, and the caller needs the collector back for
// `finish`.
impl ScfObserver for &mut TraceObserver {
    fn on_step(&mut self, step: &Ls3dfStep) {
        let t = &step.timings;
        self.steps.push(StepRow {
            iteration: step.iteration as u64,
            dv_integral: step.dv_integral,
            worst_residual: step.worst_residual,
            stage_seconds: vec![
                (ScfStage::GenVf.name().to_string(), t.gen_vf),
                (ScfStage::PetotF.name().to_string(), t.petot_f),
                (ScfStage::GenDens.name().to_string(), t.gen_dens),
                (ScfStage::Genpot.name().to_string(), t.genpot),
            ],
        });
    }

    fn on_stage(&mut self, _iteration: usize, stage: ScfStage, seconds: f64) {
        let slot = &mut self.stage_totals[stage_slot(stage)];
        slot.0 += 1;
        slot.1 += seconds;
    }

    fn on_converged(&mut self, _step: &Ls3dfStep) {
        self.converged = true;
    }

    fn on_fragment_retry(&mut self, _iteration: usize, _fault: &FragmentFault) {
        self.retries += 1;
    }

    fn on_fragment_quarantined(&mut self, _iteration: usize, _record: &QuarantineRecord) {
        self.quarantines += 1;
    }

    fn on_snapshot_restored(&mut self, resumed_from_iteration: usize) {
        self.resumed_from = Some(resumed_from_iteration);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scf::StepTimings;

    #[test]
    fn collects_stages_steps_and_convergence() {
        let mut tracer = TraceObserver::new("unit");
        {
            let mut obs = &mut tracer;
            obs.on_stage(1, ScfStage::GenVf, 0.5);
            obs.on_stage(1, ScfStage::PetotF, 2.0);
            obs.on_stage(2, ScfStage::PetotF, 1.0);
            let step = Ls3dfStep {
                iteration: 1,
                dv_integral: 0.25,
                worst_residual: 1e-4,
                timings: StepTimings {
                    gen_vf: 0.5,
                    petot_f: 2.0,
                    gen_dens: 0.0,
                    genpot: 0.0,
                },
            };
            obs.on_step(&step);
            obs.on_converged(&step);
        }
        let report = tracer.finish();
        assert_eq!(report.converged, Some(true));
        assert_eq!(report.stages.len(), 4);
        assert_eq!(report.stages[0].name, "Gen_VF");
        assert_eq!(report.stages[1].calls, 2);
        assert!((report.stages[1].seconds - 3.0).abs() < 1e-12);
        assert_eq!(report.steps.len(), 1);
        assert_eq!(report.steps[0].iteration, 1);
        // The assembled document passes its own schema validation.
        let text = report.to_json().render();
        assert!(ls3df_obs::report::validate_report_str(&text).is_ok());
    }
}
