//! Runtime numeric invariants for the LS3DF pipeline.
//!
//! LS3DF's accuracy claim rests on the sign-alternating patching sum
//! `ρ_tot = Σ_F α_F ρ_F` reproducing direct DFT to meV/atom (paper
//! §Gen_dens). A silently-propagated NaN, a non-conserved charge, or a
//! schedule-dependent reduction order destroys that claim without failing
//! any test — so the SCF loop re-derives the invariants at every step
//! when checking is active:
//!
//! * **finiteness** — every field/wavefunction produced by an SCF step is
//!   NaN/Inf-free; the first offending step taints the run with its name
//!   (`Gen_VF`, `PEtot_F`, `Gen_dens`, `GENPOT`);
//! * **charge conservation** — the patched density integrates to the
//!   global electron count *before* Gen_dens renormalizes it (a loose,
//!   measured bound relative to the gross patch scale `Σ|α_F|·n_e(F)`:
//!   unconverged fragments legitimately swing the signed sum by a
//!   fraction of the gross sum — see [`CHARGE_TOL_REL`]);
//! * **per-fragment region charge** — each fragment's region charge
//!   stays within `[0, n_e(F)]`, a structural bound that holds at any
//!   solver state and pins down *which* fragment's density is corrupted;
//! * **patching linearity** — the assembled density's integral equals
//!   the signed sum of per-fragment region charges to rounding accuracy
//!   (tight at every iteration, independent of solver convergence);
//! * **partition of unity** — the `α_F` weights sum to 1 on every grid
//!   point within the fragmentation scheme's declared tolerance (checked
//!   once at assembly);
//! * **orthonormality** — fragment wavefunction blocks stay orthonormal
//!   after each PEtot_F eigensolver pass.
//!
//! Checking is compiled in for debug/test builds and for release builds
//! with the `validate` feature; otherwise [`ENABLED`] is `false` and
//! every check site folds away to nothing (zero release-mode cost).
//!
//! A violated invariant is a programming error (or corrupted state), not
//! an environmental condition, so [`enforce`] aborts the computation by
//! panicking with the step name — the same contract as `debug_assert!`.

use ls3df_grid::RealField;
use ls3df_math::{c64, Matrix};

/// Whether invariant checking is active in this build.
pub const ENABLED: bool = cfg!(any(debug_assertions, feature = "validate"));

/// Relative tolerance for pre-normalization charge conservation,
/// measured against the **gross patch scale** `Σ_F |α_F|·n_e(F)` — not
/// against the electron count itself. The patched charge is a small
/// *difference* of large per-fragment region charges (the gross scale is
/// ≈ 6–7·N on the quickstart workload), so its burn-in drift is
/// proportional to the gross sum, not to N: fragment-level disagreement
/// of O(1) electrons — unavoidable at the burn-in `fragment_tol` of
/// 5e-2, where 35–55 % of each fragment's density still sits in its
/// buffer — moves the signed total by a sizeable fraction of the gross
/// scale. Instrumented sweeps on the 64-atom ZnTe quickstart observed
/// legitimate pre-normalization values anywhere from 0.004·N to 1.35·N
/// (i.e. drift up to ≈ 1.0·N ≈ 0.15 × gross). A bound relative to N can
/// therefore never separate healthy burn-in from corruption; 0.25 × the
/// gross scale clears the observed band with margin while still
/// rejecting a density that was patched into the wrong order of
/// magnitude. The *sharp* corruption detectors are the ones that do not
/// depend on solver convergence: [`patching_linearity`] (assembly
/// integrity, exact) and [`fragment_region_charge`] (each fragment's
/// region charge bounded by its own electron count, structural).
pub const CHARGE_TOL_REL: f64 = 0.25;

/// Slack on the per-fragment region-charge bound
/// ([`fragment_region_charge`]), relative to the fragment's electron
/// count. A fragment's density integrates over its *whole box* to its
/// own electron count (occupations × band norms, with the eigensolvers
/// holding band norms to [`ORTHO_TOL`]), and the density is pointwise
/// nonnegative — so the region part must land in `[0, n_e(F)]` up to
/// orthonormality slack and FFT rounding, at **any** solver state. 1e-4
/// covers `ORTHO_TOL`-level norm drift on a ≥100-electron fragment with
/// two orders of margin; real corruption (a rescaled wavefunction block,
/// a density added twice) overshoots the bound by O(1)·n_e.
pub const REGION_CHARGE_TOL_REL: f64 = 1e-4;

/// Relative tolerance for the patching-linearity invariant: the
/// assembled density's integral must equal the independently summed
/// `Σ_F α_F ∫_region ρ_F` up to floating-point reassociation (the two
/// sides sum the same ~10⁵ samples in different orders). Unlike
/// [`CHARGE_TOL_REL`] this bound does not depend on solver convergence,
/// so it stays tight at every iteration.
pub const PATCH_LINEARITY_TOL_REL: f64 = 1e-8;

/// Orthonormality residual allowed for a fragment wavefunction block
/// after an eigensolver pass (the solvers re-orthonormalize every
/// iteration; anything worse than this means the block degenerated).
pub const ORTHO_TOL: f64 = 1e-6;

/// Allowed deviation of the per-grid-point `Σ_F α_F` patching weight
/// from 1 for the sign-alternating scheme (exact integer cancellation —
/// any deviation is a geometry bug). Other schemes declare their own
/// allowance via `FragmentScheme::unity_tolerance`, which is what
/// [`patching_weights`] actually enforces.
pub const WEIGHT_TOL: f64 = 0.0;

/// A violated numeric invariant: which SCF step produced the bad value,
/// and what was wrong with it.
#[derive(Clone, Debug)]
pub struct InvariantViolation {
    /// SCF step name (`Gen_VF`, `PEtot_F`, `Gen_dens`, `GENPOT`, …).
    pub step: String,
    /// Offending fragment index, when the check ran inside a per-fragment
    /// stage — on a 10⁴-fragment run, "which fragment" is the difference
    /// between a debuggable taint and a shrug.
    pub fragment: Option<usize>,
    /// Human-readable description of the violation.
    pub detail: String,
}

impl InvariantViolation {
    /// Taints the violation with the fragment it occurred in (per-fragment
    /// check sites wrap their results with this).
    pub fn for_fragment(mut self, index: usize) -> Self {
        self.fragment = Some(index);
        self
    }
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.fragment {
            Some(id) => write!(
                f,
                "LS3DF invariant violated at {} (fragment {id}): {}",
                self.step, self.detail
            ),
            None => write!(
                f,
                "LS3DF invariant violated at {}: {}",
                self.step, self.detail
            ),
        }
    }
}

impl std::error::Error for InvariantViolation {}

/// Panics on a violation (the `debug_assert!` contract: invariant
/// violations are programming errors and must not propagate silently).
pub fn enforce(result: Result<(), InvariantViolation>) {
    if let Err(v) = result {
        panic!("{v}");
    }
}

/// Every sample of `field` is finite; on failure reports the first
/// offending grid index and value, tainted with `step`.
pub fn finite_field(step: &str, field: &RealField) -> Result<(), InvariantViolation> {
    match field.as_slice().iter().position(|v| !v.is_finite()) {
        None => Ok(()),
        Some(idx) => Err(InvariantViolation {
            step: step.to_string(),
            fragment: None,
            detail: format!(
                "non-finite value {} at grid index {idx} (of {})",
                field.as_slice()[idx],
                field.as_slice().len()
            ),
        }),
    }
}

/// Every coefficient of `m` is finite (wavefunction blocks, overlap
/// matrices); reports the first offending (band, coefficient) pair.
pub fn finite_matrix(step: &str, m: &Matrix<c64>) -> Result<(), InvariantViolation> {
    match m
        .as_slice()
        .iter()
        .position(|v| !v.re.is_finite() || !v.im.is_finite())
    {
        None => Ok(()),
        Some(idx) => {
            let cols = m.cols().max(1);
            Err(InvariantViolation {
                step: step.to_string(),
                fragment: None,
                detail: format!(
                    "non-finite coefficient at band {}, index {}",
                    idx / cols,
                    idx % cols
                ),
            })
        }
    }
}

/// One finite scalar (residuals, integrals).
pub fn finite_scalar(step: &str, name: &str, x: f64) -> Result<(), InvariantViolation> {
    if x.is_finite() {
        Ok(())
    } else {
        Err(InvariantViolation {
            step: step.to_string(),
            fragment: None,
            detail: format!("non-finite {name}: {x}"),
        })
    }
}

/// Pre-normalization charge conservation: the patched density must carry
/// the global electron count within [`CHARGE_TOL_REL`] × the gross patch
/// scale `Σ_F |α_F|·n_e(F)` (the natural size of the cancellation noise
/// in the signed patching sum — see [`CHARGE_TOL_REL`] for the measured
/// justification). `gross_scale` is floored at `|n_electrons|` so the
/// bound never degenerates below one electron-count of slack.
pub fn charge_conservation(
    step: &str,
    patched_charge: f64,
    n_electrons: f64,
    gross_scale: f64,
) -> Result<(), InvariantViolation> {
    finite_scalar(step, "patched charge", patched_charge)?;
    finite_scalar(step, "gross patch scale", gross_scale)?;
    let scale = gross_scale.abs().max(n_electrons.abs()).max(1.0);
    if (patched_charge - n_electrons).abs() > CHARGE_TOL_REL * scale {
        return Err(InvariantViolation {
            step: step.to_string(),
            fragment: None,
            detail: format!(
                "charge not conserved: patched density integrates to {patched_charge:.6} \
                 but the structure carries {n_electrons:.6} electrons (allowed drift \
                 {:.3} = {CHARGE_TOL_REL} × gross patch scale {scale:.3})",
                CHARGE_TOL_REL * scale
            ),
        });
    }
    Ok(())
}

/// Per-fragment structural charge bound: a fragment's density integrates
/// over its whole box to its own electron count and is pointwise
/// nonnegative, so the region part must satisfy
/// `0 ≤ ∫_region ρ_F ≤ n_e(F)` within [`REGION_CHARGE_TOL_REL`] slack —
/// independent of how converged the fragment is. This is the check that
/// catches a corrupted fragment density (rescaled wavefunctions, a
/// double-counted band) which the loose global bound can miss when the
/// corruption cancels in the signed sum.
pub fn fragment_region_charge(
    step: &str,
    region_charge: f64,
    fragment_electrons: f64,
) -> Result<(), InvariantViolation> {
    finite_scalar(step, "region charge", region_charge)?;
    let slack = REGION_CHARGE_TOL_REL * fragment_electrons.abs().max(1.0);
    if region_charge < -slack || region_charge > fragment_electrons + slack {
        return Err(InvariantViolation {
            step: step.to_string(),
            fragment: None,
            detail: format!(
                "fragment region charge {region_charge:.6} outside [0, {fragment_electrons:.6}] \
                 (slack {slack:.1e}) — the fragment density no longer integrates to its own \
                 electron count; its wavefunctions or occupations are corrupted"
            ),
        });
    }
    Ok(())
}

/// Patching linearity: the integral of the assembled (patched) density
/// equals the signed sum of per-fragment region integrals. Integration
/// is linear, so any violation beyond rounding means the assembly
/// itself is corrupted — a fragment patched twice or not at all, a
/// zeroed region, a wrong weight — independent of how converged the
/// fragment solutions are (which is what makes this check sharp where
/// [`charge_conservation`] has to stay loose).
pub fn patching_linearity(
    step: &str,
    assembled_charge: f64,
    signed_region_charge: f64,
) -> Result<(), InvariantViolation> {
    finite_scalar(step, "assembled charge", assembled_charge)?;
    finite_scalar(step, "signed region charge", signed_region_charge)?;
    let scale = assembled_charge
        .abs()
        .max(signed_region_charge.abs())
        .max(1.0);
    if (assembled_charge - signed_region_charge).abs() > PATCH_LINEARITY_TOL_REL * scale {
        return Err(InvariantViolation {
            step: step.to_string(),
            fragment: None,
            detail: format!(
                "patching not linear: assembled density integrates to \
                 {assembled_charge:.9} but the signed per-fragment region sum is \
                 {signed_region_charge:.9} (tolerance {PATCH_LINEARITY_TOL_REL:.0e} \
                 relative) — a fragment was patched twice, dropped, or misweighted"
            ),
        });
    }
    Ok(())
}

/// The `Σ_F α_F` partition of unity over the global grid (every point
/// covered with net weight 1, within the scheme's declared tolerance).
pub fn patching_weights(
    fg: &crate::fragment::FragmentGrid,
    global: &ls3df_grid::Grid3,
) -> Result<(), InvariantViolation> {
    let deviation = fg.partition_of_unity(global);
    let tol = fg.unity_tolerance();
    if deviation > tol {
        return Err(InvariantViolation {
            step: "patching-weights".to_string(),
            fragment: None,
            detail: format!(
                "Σ_F α_F deviates from 1 by {deviation:.3e} somewhere on the global grid \
                 — scheme `{}` allows {tol:.1e}; fragment geometry is inconsistent",
                fg.scheme().id()
            ),
        });
    }
    Ok(())
}

/// Fragment wavefunction block orthonormality after an eigensolver pass.
pub fn orthonormal(step: &str, psi: &Matrix<c64>, metric: f64) -> Result<(), InvariantViolation> {
    finite_matrix(step, psi)?;
    let residual = ls3df_math::ortho::orthonormality_residual(psi, metric);
    if !residual.is_finite() || residual > ORTHO_TOL {
        return Err(InvariantViolation {
            step: step.to_string(),
            fragment: None,
            detail: format!(
                "wavefunction block lost orthonormality: residual {residual:.3e} \
                 (tolerance {ORTHO_TOL:.0e})"
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ls3df_grid::Grid3;

    fn small_field(value: f64) -> RealField {
        RealField::constant(Grid3::cubic(4, 2.0), value)
    }

    #[test]
    fn finite_field_accepts_clean_data() {
        assert!(finite_field("Gen_dens", &small_field(1.0)).is_ok());
    }

    #[test]
    fn finite_field_reports_step_and_index() {
        let mut f = small_field(1.0);
        f.as_mut_slice()[7] = f64::NAN;
        let err = finite_field("Gen_VF", &f).unwrap_err();
        assert_eq!(err.step, "Gen_VF");
        assert!(err.detail.contains("index 7"), "{}", err.detail);
        let mut g = small_field(0.0);
        g.as_mut_slice()[0] = f64::INFINITY;
        assert!(finite_field("GENPOT", &g).is_err());
    }

    #[test]
    fn charge_conservation_window() {
        // Quickstart-like geometry: N = 100 electrons, gross patch scale
        // ≈ 6·N. The allowed drift is 0.25 × 600 = 150.
        assert!(charge_conservation("Gen_dens", 100.0, 100.0, 600.0).is_ok());
        assert!(charge_conservation("Gen_dens", 110.0, 100.0, 600.0).is_ok());
        // Burn-in drift: unconverged fragments legitimately swing the
        // signed sum by up to ≈ N (measured: 0.004·N to 1.35·N on the
        // quickstart workload) — the whole observed band must pass.
        assert!(charge_conservation("Gen_dens", 135.0, 100.0, 600.0).is_ok());
        assert!(charge_conservation("Gen_dens", 1.0, 100.0, 600.0).is_ok());
        assert!(charge_conservation("Gen_dens", 200.0, 100.0, 600.0).is_ok());
        // Order-of-magnitude corruption must still fail…
        let err = charge_conservation("Gen_dens", 900.0, 100.0, 600.0).unwrap_err();
        assert!(
            err.detail.contains("charge not conserved"),
            "{}",
            err.detail
        );
        assert!(charge_conservation("Gen_dens", -300.0, 100.0, 600.0).is_err());
        assert!(charge_conservation("Gen_dens", f64::NAN, 100.0, 600.0).is_err());
        assert!(charge_conservation("Gen_dens", 100.0, 100.0, f64::INFINITY).is_err());
        // …and the scale floors at the electron count, so a degenerate
        // gross scale cannot switch the check off.
        assert!(charge_conservation("Gen_dens", 160.0, 100.0, 0.0).is_err());
    }

    #[test]
    fn fragment_region_charge_bounds() {
        // Healthy: anywhere in [0, n_e], including all-in-buffer (0) and
        // fully-converged (≈ n_e with rounding slack).
        assert!(fragment_region_charge("Gen_dens", 152.6, 256.0).is_ok());
        assert!(fragment_region_charge("Gen_dens", 0.0, 256.0).is_ok());
        assert!(fragment_region_charge("Gen_dens", 256.0 + 1e-6, 256.0).is_ok());
        // Corrupted: a ×10 wavefunction scaling inflates the density
        // ×100; even a doubled density overshoots the box integral.
        let err = fragment_region_charge("Gen_dens", 15_260.0, 256.0).unwrap_err();
        assert!(err.detail.contains("region charge"), "{}", err.detail);
        assert!(fragment_region_charge("Gen_dens", 300.0, 256.0).is_err());
        assert!(fragment_region_charge("Gen_dens", -1.0, 256.0).is_err());
        assert!(fragment_region_charge("Gen_dens", f64::NAN, 256.0).is_err());
    }

    #[test]
    fn patching_linearity_window() {
        // Reassociation-level disagreement passes…
        assert!(patching_linearity("Gen_dens", 256.0, 256.0 + 1e-9).is_ok());
        // …assembly corruption does not: one dropped 1×1×1 region is a
        // ~9 % discrepancy on the quickstart workload.
        let err = patching_linearity("Gen_dens", 256.0, 278.7).unwrap_err();
        assert!(err.detail.contains("patching not linear"), "{}", err.detail);
        assert!(patching_linearity("Gen_dens", f64::NAN, 256.0).is_err());
        assert!(patching_linearity("Gen_dens", 256.0, f64::INFINITY).is_err());
    }

    #[test]
    fn orthonormality_detects_scaling() {
        let psi = Matrix::<c64>::identity(4);
        assert!(orthonormal("PEtot_F", &psi, 1.0).is_ok());
        let mut bad = Matrix::<c64>::identity(4);
        bad.scale_real(10.0);
        assert!(orthonormal("PEtot_F", &bad, 1.0).is_err());
    }

    #[test]
    fn weights_ok_for_valid_decomposition() {
        let g = Grid3::new([6, 6, 6], [6.0, 6.0, 6.0]);
        let fg = crate::fragment::FragmentGrid::new([2, 2, 2], &g, [1, 1, 1]).unwrap();
        assert!(patching_weights(&fg, &g).is_ok());
    }

    #[test]
    fn weights_ok_for_overlapping_scheme_within_tolerance() {
        use crate::scheme::Overlapping;
        let g = Grid3::new([9, 9, 9], [9.0, 9.0, 9.0]);
        let fg = crate::fragment::FragmentGrid::with_scheme(
            std::sync::Arc::new(Overlapping::new([3, 3, 3])),
            [3, 3, 3],
            &g,
            [1, 1, 1],
        )
        .unwrap();
        // 1/27 weights don't cancel exactly; the scheme's declared
        // tolerance must absorb the rounding.
        assert!(patching_weights(&fg, &g).is_ok());
    }

    #[test]
    #[should_panic(expected = "LS3DF invariant violated at Gen_dens")]
    fn enforce_panics_with_step_name() {
        enforce(charge_conservation("Gen_dens", 900.0, 100.0, 600.0));
    }

    #[test]
    fn fragment_taint_appears_in_message() {
        let mut f = small_field(1.0);
        f.as_mut_slice()[3] = f64::NAN;
        let err = finite_field("Gen_VF", &f).unwrap_err().for_fragment(12);
        assert_eq!(err.fragment, Some(12));
        let msg = err.to_string();
        assert!(
            msg.contains("at Gen_VF (fragment 12):"),
            "fragment id missing from taint: {msg}"
        );
    }

    #[test]
    fn checking_is_active_in_test_builds() {
        let enabled = [false, ENABLED];
        assert!(
            enabled[1],
            "debug/test builds must compile the invariant layer in"
        );
    }
}
