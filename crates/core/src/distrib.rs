//! Wire codecs for the distributed SCF exchanges (group layer ↔ global
//! layer), over the `ls3df-ckpt` section container.
//!
//! Three message shapes cross the communicator per outer iteration:
//!
//! * **PEtot report** (worker → rank 0, tag = iteration): the worker's
//!   supervised-solve outcome — worst residual, PEtot_F wall seconds,
//!   per-fragment quarantine flags, the fault/quarantine event lists,
//!   and the *bit-exact* region densities of its owned fragments
//!   (`ls3df_grid::encode_field`, raw little-endian f64 bits). Rank 0
//!   merges these with its own parts and replays the sequential
//!   fragment-order patch loop unchanged, which is what makes the
//!   patched density bit-identical to a single-process run.
//! * **Vnext broadcast** (rank 0 → all): the next input potential, the
//!   patched density, and the completed step record (+ convergence
//!   flag), so every rank finishes the iteration with identical state
//!   and identical history.
//! * **Psi gather** (worker → rank 0, snapshot iterations only): the
//!   owned fragments' wavefunction blocks, so rank 0 can cut a snapshot
//!   containing every fragment — snapshots stay group-count-independent
//!   and resumable at any `LS3DF_GROUPS`.
//!
//! Everything here is pure serialization: typed errors, no physics.

use crate::scf::{Ls3dfStep, StepTimings};
use crate::supervise::{FragmentFault, QuarantineRecord, RetryAction};
use ls3df_ckpt::{ByteReader, ByteWriter, CkptError, SectionId, Snapshot};
use ls3df_grid::{decode_field, encode_field, RealField};
use ls3df_math::{c64, Matrix};

/// Worker solve summary (residual, seconds, flags, events).
pub(crate) const SEC_DSUMMARY: SectionId = SectionId::new("DSUMMARY");
/// Owned-fragment region densities (bit-exact fields).
pub(crate) const SEC_DREGIONS: SectionId = SectionId::new("DREGIONS");
/// Next-iteration input potential (broadcast).
pub(crate) const SEC_DVIN: SectionId = SectionId::new("DVIN");
/// Patched density (broadcast).
pub(crate) const SEC_DRHO: SectionId = SectionId::new("DRHO");
/// Completed step record + convergence flag (broadcast).
pub(crate) const SEC_DSTEP: SectionId = SectionId::new("DSTEP");
/// Owned-fragment wavefunction blocks (snapshot gather).
pub(crate) const SEC_DPSI: SectionId = SectionId::new("DPSI");

/// Count guard shared by every length-prefixed list here.
const MAX_COUNT: u64 = 1 << 32;

/// One group's PEtot_F outcome, as exchanged with the global layer.
pub(crate) struct PetotReport {
    /// Worst residual across the group's solved fragments.
    pub(crate) worst_residual: f64,
    /// PEtot_F wall seconds on this rank (per-group load report).
    pub(crate) petot_seconds: f64,
    /// `(fragment index, quarantined?)` for every owned fragment.
    pub(crate) flags: Vec<(usize, bool)>,
    /// Every failed attempt, fragment order.
    pub(crate) faults: Vec<FragmentFault>,
    /// Fragments whose whole ladder failed, fragment order.
    pub(crate) quarantined: Vec<QuarantineRecord>,
    /// `(fragment index, region density)` for every owned fragment.
    pub(crate) regions: Vec<(usize, RealField)>,
}

fn put_fault(w: &mut ByteWriter, fault: &FragmentFault) {
    w.put_u64(fault.fragment as u64)
        .put_u64(fault.attempt as u64)
        .put_u32(action_code(fault.action))
        .put_u64(fault.detail.len() as u64)
        .put_bytes(fault.detail.as_bytes());
}

fn get_fault(r: &mut ByteReader<'_>) -> Result<FragmentFault, CkptError> {
    let fragment = r.get_u64("fault fragment")? as usize;
    let attempt = r.get_u64("fault attempt")? as usize;
    let action = decode_action(r.get_u32("fault action")?)?;
    let len = r.get_count(MAX_COUNT, "fault detail length")?;
    let detail = String::from_utf8_lossy(r.get_bytes(len, "fault detail")?).into_owned();
    Ok(FragmentFault {
        fragment,
        attempt,
        action,
        detail,
    })
}

/// Stable wire code for a retry-ladder action.
fn action_code(action: RetryAction) -> u32 {
    match action {
        RetryAction::Primary => 0,
        RetryAction::FreshRandomStart => 1,
        RetryAction::BandByBand => 2,
        RetryAction::ReducedCg => 3,
    }
}

fn decode_action(code: u32) -> Result<RetryAction, CkptError> {
    match code {
        0 => Ok(RetryAction::Primary),
        1 => Ok(RetryAction::FreshRandomStart),
        2 => Ok(RetryAction::BandByBand),
        3 => Ok(RetryAction::ReducedCg),
        other => Err(CkptError::Malformed {
            section: "DSUMMARY".to_string(),
            detail: format!("unknown retry action code {other}"),
        }),
    }
}

/// Serializes a worker's PEtot report into a section container.
pub(crate) fn encode_petot_report(report: &PetotReport) -> Snapshot {
    let mut summary = ByteWriter::with_capacity(256);
    summary
        .put_f64(report.worst_residual)
        .put_f64(report.petot_seconds)
        .put_u64(report.flags.len() as u64);
    for &(index, quarantined) in &report.flags {
        summary
            .put_u64(index as u64)
            .put_u32(u32::from(quarantined));
    }
    summary.put_u64(report.faults.len() as u64);
    for fault in &report.faults {
        put_fault(&mut summary, fault);
    }
    summary.put_u64(report.quarantined.len() as u64);
    for record in &report.quarantined {
        summary
            .put_u64(record.fragment as u64)
            .put_u64(record.faults.len() as u64);
        for fault in &record.faults {
            put_fault(&mut summary, fault);
        }
    }

    let mut regions = ByteWriter::new();
    regions.put_u64(report.regions.len() as u64);
    for (index, field) in &report.regions {
        let bytes = encode_field(field);
        regions
            .put_u64(*index as u64)
            .put_u64(bytes.len() as u64)
            .put_bytes(&bytes);
    }

    let mut snap = Snapshot::new();
    snap.push(SEC_DSUMMARY, summary.into_bytes());
    snap.push(SEC_DREGIONS, regions.into_bytes());
    snap
}

/// Parses a worker's PEtot report.
pub(crate) fn decode_petot_report(snap: &Snapshot) -> Result<PetotReport, CkptError> {
    let mut r = ByteReader::new(snap.require(SEC_DSUMMARY)?);
    let worst_residual = r.get_f64("worst residual")?;
    let petot_seconds = r.get_f64("petot seconds")?;
    let n_flags = r.get_count(MAX_COUNT, "flag count")?;
    let mut flags = Vec::with_capacity(n_flags);
    for _ in 0..n_flags {
        let index = r.get_u64("flag fragment")? as usize;
        let quarantined = r.get_u32("flag value")? != 0;
        flags.push((index, quarantined));
    }
    let n_faults = r.get_count(MAX_COUNT, "fault count")?;
    let mut faults = Vec::with_capacity(n_faults);
    for _ in 0..n_faults {
        faults.push(get_fault(&mut r)?);
    }
    let n_records = r.get_count(MAX_COUNT, "quarantine count")?;
    let mut quarantined = Vec::with_capacity(n_records);
    for _ in 0..n_records {
        let fragment = r.get_u64("quarantine fragment")? as usize;
        let n = r.get_count(MAX_COUNT, "quarantine fault count")?;
        let mut record_faults = Vec::with_capacity(n);
        for _ in 0..n {
            record_faults.push(get_fault(&mut r)?);
        }
        quarantined.push(QuarantineRecord {
            fragment,
            faults: record_faults,
        });
    }

    let mut r = ByteReader::new(snap.require(SEC_DREGIONS)?);
    let n_regions = r.get_count(MAX_COUNT, "region count")?;
    let mut regions = Vec::with_capacity(n_regions);
    for _ in 0..n_regions {
        let index = r.get_u64("region fragment")? as usize;
        let len = r.get_count(MAX_COUNT, "region byte length")?;
        let field = decode_field(r.get_bytes(len, "region field")?)?;
        regions.push((index, field));
    }
    Ok(PetotReport {
        worst_residual,
        petot_seconds,
        flags,
        faults,
        quarantined,
        regions,
    })
}

/// What rank 0 broadcasts at the end of every iteration.
pub(crate) struct VnextMessage {
    pub(crate) v_in: RealField,
    pub(crate) rho: RealField,
    pub(crate) step: Ls3dfStep,
    pub(crate) converged: bool,
}

/// Serializes the end-of-iteration broadcast.
pub(crate) fn encode_vnext(msg: &VnextMessage) -> Snapshot {
    let mut step = ByteWriter::with_capacity(64);
    step.put_u64(msg.step.iteration as u64)
        .put_f64(msg.step.dv_integral)
        .put_f64(msg.step.worst_residual)
        .put_f64(msg.step.timings.gen_vf)
        .put_f64(msg.step.timings.petot_f)
        .put_f64(msg.step.timings.gen_dens)
        .put_f64(msg.step.timings.genpot)
        .put_u32(u32::from(msg.converged));
    let mut snap = Snapshot::new();
    snap.push(SEC_DVIN, encode_field(&msg.v_in));
    snap.push(SEC_DRHO, encode_field(&msg.rho));
    snap.push(SEC_DSTEP, step.into_bytes());
    snap
}

/// Parses the end-of-iteration broadcast.
pub(crate) fn decode_vnext(snap: &Snapshot) -> Result<VnextMessage, CkptError> {
    let v_in = decode_field(snap.require(SEC_DVIN)?)?;
    let rho = decode_field(snap.require(SEC_DRHO)?)?;
    let mut r = ByteReader::new(snap.require(SEC_DSTEP)?);
    let iteration = r.get_u64("step iteration")? as usize;
    let dv_integral = r.get_f64("step dv integral")?;
    let worst_residual = r.get_f64("step worst residual")?;
    let timings = StepTimings {
        gen_vf: r.get_f64("step gen_vf seconds")?,
        petot_f: r.get_f64("step petot_f seconds")?,
        gen_dens: r.get_f64("step gen_dens seconds")?,
        genpot: r.get_f64("step genpot seconds")?,
    };
    let converged = r.get_u32("step converged flag")? != 0;
    Ok(VnextMessage {
        v_in,
        rho,
        step: Ls3dfStep {
            iteration,
            dv_integral,
            worst_residual,
            timings,
        },
        converged,
    })
}

/// Serializes indexed wavefunction blocks (snapshot-iteration gather).
pub(crate) fn encode_psi_gather(blocks: &[(usize, &Matrix<c64>)]) -> Snapshot {
    let mut w = ByteWriter::new();
    w.put_u64(blocks.len() as u64);
    for (index, psi) in blocks {
        w.put_u64(*index as u64)
            .put_u64(psi.rows() as u64)
            .put_u64(psi.cols() as u64);
        for v in psi.as_slice() {
            w.put_f64(v.re).put_f64(v.im);
        }
    }
    let mut snap = Snapshot::new();
    snap.push(SEC_DPSI, w.into_bytes());
    snap
}

/// Parses indexed wavefunction blocks.
pub(crate) fn decode_psi_gather(snap: &Snapshot) -> Result<Vec<(usize, Matrix<c64>)>, CkptError> {
    let mut r = ByteReader::new(snap.require(SEC_DPSI)?);
    let n = r.get_count(MAX_COUNT, "psi block count")?;
    let mut blocks = Vec::with_capacity(n);
    for _ in 0..n {
        let index = r.get_u64("psi block fragment")? as usize;
        let rows = r.get_count(MAX_COUNT, "psi block rows")?;
        let cols = r.get_count(MAX_COUNT, "psi block cols")?;
        let mut m = Matrix::<c64>::zeros(rows, cols);
        for v in m.as_mut_slice() {
            v.re = r.get_f64("psi value re")?;
            v.im = r.get_f64("psi value im")?;
        }
        blocks.push((index, m));
    }
    Ok(blocks)
}

/// Section id of a shipped per-rank observability payload (the
/// post-run telemetry frame, tag `ls3df_dist::TELEMETRY_TAG`).
pub(crate) const SEC_OBSTELEM: SectionId = SectionId::new("OBSTELEM");

/// Wraps one rank's harvested telemetry as an `OBSTELEM` section so it
/// ships over the same CRC-checked snapshot wire format as SCF data.
pub(crate) fn encode_obstelem(t: &ls3df_obs::RankTelemetry) -> Snapshot {
    let mut snap = Snapshot::new();
    snap.push(SEC_OBSTELEM, ls3df_obs::telemetry::encode_telemetry(t));
    snap
}

/// Unwraps and decodes a shipped telemetry payload. Errors are plain
/// strings because the caller never propagates them — a bad payload
/// degrades the report to `telemetry_incomplete`, nothing more.
pub(crate) fn decode_obstelem(snap: &Snapshot) -> Result<ls3df_obs::RankTelemetry, String> {
    let bytes = snap.require(SEC_OBSTELEM).map_err(|e| e.to_string())?;
    ls3df_obs::telemetry::decode_telemetry(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ls3df_grid::Grid3;

    fn sample_field(seed: f64) -> RealField {
        let mut f = RealField::zeros(Grid3::cubic(3, 2.0));
        for (i, v) in f.as_mut_slice().iter_mut().enumerate() {
            *v = seed + i as f64 * 0.125;
        }
        f
    }

    #[test]
    fn petot_report_roundtrip_is_bit_exact() {
        let report = PetotReport {
            worst_residual: 3.25e-4,
            petot_seconds: 1.5,
            flags: vec![(0, false), (3, true)],
            faults: vec![FragmentFault {
                fragment: 3,
                attempt: 1,
                action: RetryAction::FreshRandomStart,
                detail: "injected".to_string(),
            }],
            quarantined: vec![QuarantineRecord {
                fragment: 3,
                faults: vec![FragmentFault {
                    fragment: 3,
                    attempt: 2,
                    action: RetryAction::BandByBand,
                    detail: "still bad".to_string(),
                }],
            }],
            regions: vec![(0, sample_field(0.5)), (3, sample_field(-1.0))],
        };
        let snap = encode_petot_report(&report);
        let bytes = snap.encode().unwrap();
        let back = decode_petot_report(&Snapshot::decode(&bytes).unwrap()).unwrap();
        assert_eq!(
            back.worst_residual.to_bits(),
            report.worst_residual.to_bits()
        );
        assert_eq!(back.flags, report.flags);
        assert_eq!(back.faults.len(), 1);
        assert_eq!(back.faults[0].action, RetryAction::FreshRandomStart);
        assert_eq!(back.faults[0].detail, "injected");
        assert_eq!(back.quarantined.len(), 1);
        assert_eq!(back.quarantined[0].faults[0].detail, "still bad");
        assert_eq!(back.regions.len(), 2);
        assert_eq!(back.regions[1].0, 3);
        for (a, b) in back.regions[0]
            .1
            .as_slice()
            .iter()
            .zip(report.regions[0].1.as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn vnext_roundtrip_preserves_step_and_fields() {
        let msg = VnextMessage {
            v_in: sample_field(2.0),
            rho: sample_field(-3.0),
            step: Ls3dfStep {
                iteration: 7,
                dv_integral: 0.125,
                worst_residual: 1e-5,
                timings: StepTimings {
                    gen_vf: 0.1,
                    petot_f: 0.2,
                    gen_dens: 0.3,
                    genpot: 0.4,
                },
            },
            converged: true,
        };
        let bytes = encode_vnext(&msg).encode().unwrap();
        let back = decode_vnext(&Snapshot::decode(&bytes).unwrap()).unwrap();
        assert_eq!(back.step.iteration, 7);
        assert_eq!(
            back.step.dv_integral.to_bits(),
            msg.step.dv_integral.to_bits()
        );
        assert!(back.converged);
        for (a, b) in back.v_in.as_slice().iter().zip(msg.v_in.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn psi_gather_roundtrip_preserves_blocks() {
        let mut m = Matrix::<c64>::zeros(2, 3);
        for (i, v) in m.as_mut_slice().iter_mut().enumerate() {
            v.re = i as f64;
            v.im = -(i as f64) * 0.5;
        }
        let bytes = encode_psi_gather(&[(4, &m)]).encode().unwrap();
        let back = decode_psi_gather(&Snapshot::decode(&bytes).unwrap()).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].0, 4);
        assert_eq!(back[0].1.rows(), 2);
        for (a, b) in back[0].1.as_slice().iter().zip(m.as_slice()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    fn bad_action_code_is_rejected() {
        assert!(decode_action(9).is_err());
        for code in 0..4 {
            assert_eq!(action_code(decode_action(code).unwrap()), code);
        }
    }

    fn sample_telemetry() -> ls3df_obs::RankTelemetry {
        ls3df_obs::RankTelemetry {
            rank: 1,
            size: 2,
            spans: Vec::new(),
            threads: vec![(0, "main".to_string())],
            counters: vec![("fragment_solves".to_string(), 6)],
            comm: vec![ls3df_obs::CommRow {
                op: "send".to_string(),
                kind: "data".to_string(),
                tag_class: "user".to_string(),
                frames: 3,
                bytes: 96,
                latency_ns: 1_500,
                size_buckets: vec![0, 0, 0, 0, 0, 0, 3],
                latency_buckets: vec![0, 3],
            }],
        }
    }

    #[test]
    fn obstelem_roundtrips_through_the_section_wire_format() {
        let t = sample_telemetry();
        // Full path a shipped payload takes: telemetry codec →
        // OBSTELEM section → snapshot container bytes → back.
        let bytes = encode_obstelem(&t).encode().unwrap();
        let back = decode_obstelem(&Snapshot::decode(&bytes).unwrap()).unwrap();
        assert_eq!((back.rank, back.size), (1, 2));
        assert_eq!(back.counters, t.counters);
        assert_eq!(back.comm, t.comm);
    }

    #[test]
    fn corrupt_obstelem_is_an_error_never_a_panic() {
        let mut bytes = encode_obstelem(&sample_telemetry()).encode().unwrap();
        // Flip a payload bit: the snapshot section CRC catches it
        // before the telemetry codec even runs.
        let n = bytes.len();
        bytes[n - 5] ^= 0x10;
        match Snapshot::decode(&bytes) {
            Err(_) => {} // container-level CRC rejection
            Ok(snap) => {
                // CRC happens to pass (flipped a non-payload byte):
                // the telemetry codec must still fail typed.
                assert!(decode_obstelem(&snap).is_err());
            }
        }
        // Truncations anywhere must also be typed errors.
        let good = encode_obstelem(&sample_telemetry()).encode().unwrap();
        for cut in [1, good.len() / 2, good.len() - 1] {
            match Snapshot::decode(&good[..cut]) {
                Err(_) => {}
                Ok(snap) => {
                    assert!(decode_obstelem(&snap).is_err());
                }
            }
        }
    }
}
