//! LS3DF total energy assembly.
//!
//! The method's total energy combines signed fragment quantum energies
//! with global electrostatics (paper §III: "the total quantum energy of
//! the system can be calculated as E = Σ α_S·E_S", with the long-range
//! electrostatic part solved globally):
//!
//! ```text
//! E = Σ_F α_F·(T_F + E_NL,F)  +  ∫V_ion·ρ_tot  +  E_H[ρ_tot]
//!   + E_xc[ρ_tot]  +  E_Ewald
//! T_F + E_NL,F = Σ_b f_b·ε_b^F − ∫_ΩF V_F·ρ_F
//! ```
//!
//! The artificial boundary contributions to `T_F + E_NL,F` cancel between
//! the ± fragments exactly like the density patching does.

use crate::scf::Ls3df;
use ls3df_pw::{density, effective_potential, Hamiltonian};

/// Energy decomposition of an LS3DF state.
#[derive(Clone, Copy, Debug)]
pub struct Ls3dfEnergy {
    /// Signed fragment kinetic + nonlocal energy `Σ α_F (T_F + E_NL,F)`.
    pub quantum: f64,
    /// `∫V_ion·ρ_tot`.
    pub ion_electron: f64,
    /// Hartree energy of the patched density.
    pub hartree: f64,
    /// XC energy of the patched density.
    pub xc: f64,
    /// Ion–ion Ewald energy.
    pub ewald: f64,
}

impl Ls3dfEnergy {
    /// Total energy (Hartree).
    pub fn total(&self) -> f64 {
        self.quantum + self.ion_electron + self.hartree + self.xc + self.ewald
    }
}

impl Ls3df {
    /// Evaluates the LS3DF total energy at the current state (call after
    /// [`Ls3df::scf`]). One extra Hamiltonian application per fragment.
    pub fn total_energy(&self) -> Ls3dfEnergy {
        // Signed fragment quantum energies.
        let vfs = self.gen_vf();
        let quantum: f64 = self.fragment_quantum_energies(&vfs).iter().sum();

        // Global electrostatic + XC pieces from the patched density.
        let rho = self.rho_ref();
        let (_, energies) = effective_potential(self.global_basis(), self.v_ion(), rho);
        Ls3dfEnergy {
            quantum,
            ion_electron: energies.ion_rho,
            hartree: energies.hartree,
            xc: energies.xc,
            ewald: self.ewald_energy(),
        }
    }

    /// Per-fragment α-weighted quantum energies `α_F·(T_F + E_NL,F)`
    /// (the weights come from the fragmentation scheme: `±1` for
    /// sign-alternating, normalized positive reals for overlapping).
    pub fn fragment_quantum_energies(&self, vfs: &[ls3df_grid::RealField]) -> Vec<f64> {
        use rayon::prelude::*;
        self.fragment_states()
            .par_iter()
            .zip(vfs.par_iter())
            .map(|(fs, vf)| {
                let h = Hamiltonian::new(fs.basis(), vf.clone(), fs.nonlocal());
                let hpsi = h.apply_block(fs.psi());
                // Band energies as Rayleigh quotients (robust even when the
                // block is not perfectly converged).
                let mut band_energy = 0.0;
                for (b, &f) in fs.occupations().iter().enumerate() {
                    if f == 0.0 {
                        continue;
                    }
                    let eps = ls3df_math::vec_ops::dotc(fs.psi().row(b), hpsi.row(b)).re;
                    band_energy += f * eps;
                }
                // Remove the local-potential double count over ΩF.
                let rho_f = density::compute_density(fs.basis(), fs.psi(), fs.occupations());
                let v_rho: f64 = vf
                    .as_slice()
                    .iter()
                    .zip(rho_f.as_slice())
                    .map(|(&v, &r)| v * r)
                    .sum::<f64>()
                    * fs.basis().grid().dv();
                fs.fragment().alpha() * (band_energy - v_rho)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::{Ls3df, Ls3dfOptions, Passivation};
    use ls3df_atoms::{Atom, Species, Structure};
    use ls3df_pseudo::PseudoTable;
    use ls3df_pw::Mixer;

    fn model_crystal(m: usize, a: f64) -> Structure {
        let mut atoms = Vec::new();
        for k in 0..m {
            for j in 0..m {
                for i in 0..m {
                    atoms.push(Atom {
                        species: Species::Zn,
                        pos: [
                            (i as f64 + 0.5) * a,
                            (j as f64 + 0.5) * a,
                            (k as f64 + 0.5) * a,
                        ],
                    });
                }
            }
        }
        Structure::new([m as f64 * a; 3], atoms)
    }

    #[test]
    fn energy_decomposition_is_finite_and_bound() {
        let s = model_crystal(2, 6.5);
        let table = PseudoTable::deep_well(2.0, 0.8);
        let opts = Ls3dfOptions {
            ecut: 1.5,
            piece_pts: [8; 3],
            buffer_pts: [3; 3],
            passivation: Passivation::WallOnly,
            wall_height: 1.5,
            n_extra_bands: 2,
            cg_steps: 6,
            initial_cg_steps: 10,
            fragment_tol: 1e-9,
            mixer: Mixer::Kerker {
                alpha: 0.6,
                q0: 0.8,
            },
            max_scf: 8,
            tol: 1e-4,
            pseudo: table,
            ..Default::default()
        };
        let mut calc = Ls3df::builder(&s)
            .fragments([2, 2, 2])
            .options(opts)
            .build()
            .unwrap();
        let _ = calc.scf();
        let e = calc.total_energy();
        assert!(e.total().is_finite());
        // Sanity on the pieces: Hartree > 0, XC < 0, bound total.
        assert!(e.hartree > 0.0, "E_H = {}", e.hartree);
        assert!(e.xc < 0.0, "E_xc = {}", e.xc);
        // 8 deep-well He-like atoms: direct result is ≈ −11.46 Ha; the
        // signed-fragment assembly at this tiny scale should land within
        // ~10% of it.
        assert!(
            (-14.0..-9.0).contains(&e.total()),
            "E_total = {} (decomposition {e:?})",
            e.total()
        );
    }
}
