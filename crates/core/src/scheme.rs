//! Pluggable fragmentation schemes: the [`FragmentScheme`] trait and the
//! two shipped implementations.
//!
//! The paper's sign-alternating `{1,2}³` corner decomposition is one
//! point in a family of divide-and-conquer schemes; the
//! overlapping-fragments method (Vukmirović & Wang) trades fragment count
//! against patching error differently — one fragment per corner with
//! uniform positive weights instead of eight with alternating signs. A
//! scheme owns three things:
//!
//! 1. **Enumeration** — which fragments exist for an `m₁×m₂×m₃` piece
//!    decomposition, each with corner, extent, and patching weight `α_F`
//!    (generalized from the `{±1}` sign rule to arbitrary reals);
//! 2. **the partition-of-unity contract** — the tolerance within which
//!    `Σ_F α_F` must equal 1 on every global grid point
//!    ([`FragmentScheme::unity_tolerance`]; the invariant layer in
//!    [`crate::check`] enforces it at assembly);
//! 3. **scheme-specific passivation geometry** — today the confining-wall
//!    ramp fraction ([`FragmentScheme::wall_ramp_fraction`]).
//!
//! Schemes also fingerprint themselves into the checkpoint options
//! fingerprint, so a snapshot written under one scheme refuses to resume
//! under another with a typed
//! [`FingerprintMismatch`](ls3df_ckpt::CkptError::FingerprintMismatch)
//! naming both schemes.
//!
//! # Adding a scheme
//!
//! Implement [`FragmentScheme`] (enumeration, minimum piece counts, unity
//! tolerance, fingerprint parameters), pass an instance to
//! [`Ls3dfBuilder::scheme`](crate::scf::Ls3dfBuilder::scheme), and add it
//! to [`registered_schemes`] so the property suite
//! (`tests/scheme_contract.rs`) sweeps its partition-of-unity contract
//! across decompositions and buffer widths.

use crate::fragment::Fragment;
use ls3df_ckpt::Fingerprint;

/// Why a fragment decomposition could not be built. Surfaced by the
/// builder as [`Ls3dfError::Fragmentation`](crate::scf::Ls3dfError);
/// nothing in the construction path panics on bad geometry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FragmentError {
    /// Fewer pieces along `axis` than the scheme's largest fragment
    /// extent: a fragment would wrap onto itself.
    TooFewPieces {
        /// Scheme that rejected the decomposition.
        scheme: &'static str,
        /// Offending dimension (0 = x, 1 = y, 2 = z).
        axis: usize,
        /// The requested piece count.
        m: usize,
        /// The scheme's minimum along this axis.
        min: usize,
    },
    /// The global grid does not divide evenly into `m` pieces along
    /// `axis`, so pieces would have fractional grid points.
    Indivisible {
        /// Offending dimension (0 = x, 1 = y, 2 = z).
        axis: usize,
        /// Global grid points along the axis.
        points: usize,
        /// The requested piece count.
        m: usize,
    },
    /// A scheme parameter implies zero-extent fragments along `axis`.
    EmptyExtent {
        /// Scheme that carries the bad parameter.
        scheme: &'static str,
        /// Offending dimension (0 = x, 1 = y, 2 = z).
        axis: usize,
    },
}

impl std::fmt::Display for FragmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FragmentError::TooFewPieces {
                scheme,
                axis,
                m,
                min,
            } => write!(
                f,
                "fragmentation scheme `{scheme}`: axis {axis} has {m} piece(s), \
                 needs ≥ {min} so no fragment wraps onto itself"
            ),
            FragmentError::Indivisible { axis, points, m } => write!(
                f,
                "global grid axis {axis} ({points} points) not divisible into {m} pieces"
            ),
            FragmentError::EmptyExtent { scheme, axis } => write!(
                f,
                "fragmentation scheme `{scheme}`: fragment extent is 0 along axis {axis}"
            ),
        }
    }
}

impl std::error::Error for FragmentError {}

/// A fragmentation scheme: enumerates weighted fragments for a piece
/// decomposition and states the contracts the SCF machinery holds it to.
///
/// Implementations must be geometry-free (no grids, no structures): a
/// scheme is pure combinatorics over piece indices, which is what lets
/// [`FragmentGrid`](crate::fragment::FragmentGrid) carry the metric
/// bookkeeping for every scheme uniformly.
pub trait FragmentScheme: Send + Sync + std::fmt::Debug {
    /// Stable identifier, used in checkpoint fingerprints and error
    /// messages (`"sign-alternating"`, `"overlapping"`, …).
    fn id(&self) -> &'static str;

    /// Minimum pieces required along `axis` (the largest fragment extent:
    /// a fragment must not wrap onto itself).
    fn min_pieces(&self, axis: usize) -> usize;

    /// Enumerates every fragment of the `m₁×m₂×m₃` decomposition, in the
    /// scheme's canonical order. The order is part of the determinism
    /// contract: Gen_dens accumulates fragment densities in exactly this
    /// order, so it must be a pure function of `m`.
    fn fragments(&self, m: [usize; 3]) -> Vec<Fragment>;

    /// Partition-of-unity contract: the maximum allowed deviation of
    /// `Σ_F α_F` from 1 on any global grid point. `0.0` means the weights
    /// cancel exactly in floating point (integer or power-of-two
    /// weights); schemes whose weights are not exactly representable
    /// declare a small rounding allowance instead.
    fn unity_tolerance(&self) -> f64;

    /// Scheme-specific passivation geometry: the fraction of the buffer
    /// width the confining-wall cos² ramp occupies (measured inward from
    /// the box face). The sign-alternating scheme uses `0.5` (wall
    /// confined to the outer half of the buffer, the paper's choice);
    /// overlapping schemes may widen it.
    fn wall_ramp_fraction(&self) -> f64 {
        0.5
    }

    /// Folds the scheme's *parameters* into a checkpoint fingerprint
    /// (the id itself is pushed by the caller). Two schemes that
    /// fingerprint identically must enumerate identical fragments.
    fn fingerprint(&self, fp: &mut Fingerprint);

    /// Validates a piece decomposition against [`min_pieces`]
    /// (FragmentScheme::min_pieces) and any scheme parameters.
    fn validate(&self, m: [usize; 3]) -> Result<(), FragmentError> {
        for axis in 0..3 {
            let min = self.min_pieces(axis);
            if min == 0 {
                return Err(FragmentError::EmptyExtent {
                    scheme: self.id(),
                    axis,
                });
            }
            if m[axis] < min {
                return Err(FragmentError::TooFewPieces {
                    scheme: self.id(),
                    axis,
                    m: m[axis],
                    min,
                });
            }
        }
        Ok(())
    }
}

/// The paper's sign-alternating `{1,2}³` corner scheme: eight fragments
/// per piece corner with sizes `{1,2}×{1,2}×{1,2}` and weight
/// `α_F = Π_d (+1 if size_d = 2, −1 if size_d = 1)`.
///
/// Every artificial fragment surface appears once with `+1` and once with
/// `−1`, cancelling pairwise — the partition of unity is *exact* (integer
/// weights), so [`unity_tolerance`](FragmentScheme::unity_tolerance) is
/// `0.0`. This is the default scheme of
/// [`Ls3dfBuilder`](crate::scf::Ls3dfBuilder) and is bit-identical to the
/// pre-trait hard-wired geometry (gated by the subprocess digest test in
/// `tests/scheme_digest.rs`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SignAlternating;

impl FragmentScheme for SignAlternating {
    fn id(&self) -> &'static str {
        "sign-alternating"
    }

    fn min_pieces(&self, _axis: usize) -> usize {
        2
    }

    fn fragments(&self, m: [usize; 3]) -> Vec<Fragment> {
        let mut out = Vec::with_capacity(8 * m[0] * m[1] * m[2]);
        for k in 0..m[2] {
            for j in 0..m[1] {
                for i in 0..m[0] {
                    for &s3 in &[1usize, 2] {
                        for &s2 in &[1usize, 2] {
                            for &s1 in &[1usize, 2] {
                                out.push(Fragment::sign_alternating([i, j, k], [s1, s2, s3]));
                            }
                        }
                    }
                }
            }
        }
        out
    }

    fn unity_tolerance(&self) -> f64 {
        // ±1 weights cancel exactly; any deviation is a geometry bug.
        0.0
    }

    fn fingerprint(&self, _fp: &mut Fingerprint) {
        // Parameter-free: the id alone identifies the scheme.
    }
}

/// The overlapping-fragments scheme (Vukmirović & Wang): **one** fragment
/// per piece corner, of fixed extent `e₁×e₂×e₃` pieces, with uniform
/// normalized positive weight `α_F = 1/(e₁·e₂·e₃)`.
///
/// Every piece is covered by exactly `e₁·e₂·e₃` fragments (one per corner
/// within reach), so `Σ_F α_F = (e₁e₂e₃)·1/(e₁e₂e₃) = 1` on every grid
/// point. With 8× fewer fragments than the sign-alternating scheme the
/// patching has no sign cancellation — boundary errors average instead of
/// cancelling — trading accuracy for fragment-solve count. The
/// `znteo_scheme_ablation` bench bin measures exactly that trade.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Overlapping {
    /// Fragment extent in pieces per dimension (default 2×2×2).
    pub extent: [usize; 3],
}

impl Overlapping {
    /// An overlapping scheme with the given fragment extent.
    pub fn new(extent: [usize; 3]) -> Self {
        Overlapping { extent }
    }

    /// Fragments covering each piece (= pieces per fragment).
    fn overlap_count(&self) -> usize {
        self.extent[0] * self.extent[1] * self.extent[2]
    }
}

impl Default for Overlapping {
    fn default() -> Self {
        Overlapping { extent: [2, 2, 2] }
    }
}

impl FragmentScheme for Overlapping {
    fn id(&self) -> &'static str {
        "overlapping"
    }

    fn min_pieces(&self, axis: usize) -> usize {
        // 0 here makes validate() report EmptyExtent; otherwise a
        // fragment must not wrap onto itself, and m = 1 degenerates
        // every scheme, so at least max(extent, 2) pieces.
        if self.extent[axis] == 0 {
            0
        } else {
            self.extent[axis].max(2)
        }
    }

    fn fragments(&self, m: [usize; 3]) -> Vec<Fragment> {
        let weight = 1.0 / self.overlap_count() as f64;
        let mut out = Vec::with_capacity(m[0] * m[1] * m[2]);
        for k in 0..m[2] {
            for j in 0..m[1] {
                for i in 0..m[0] {
                    out.push(Fragment::new([i, j, k], self.extent, weight));
                }
            }
        }
        out
    }

    fn unity_tolerance(&self) -> f64 {
        // 1/n is exact in binary iff n is a power of two; then n copies
        // sum to exactly 1.0. Otherwise allow accumulation rounding.
        if self.overlap_count().is_power_of_two() {
            0.0
        } else {
            1e-12
        }
    }

    fn wall_ramp_fraction(&self) -> f64 {
        // Positive weights average boundary errors instead of cancelling
        // them, so a gentler wall (full-buffer ramp) reduces the seam
        // error each fragment contributes.
        1.0
    }

    fn fingerprint(&self, fp: &mut Fingerprint) {
        for d in 0..3 {
            fp.push_u64(self.extent[d] as u64);
        }
    }
}

/// Every shipped scheme (one instance per distinct parameterization worth
/// sweeping), for the partition-of-unity property suite. A new scheme is
/// not "registered" until it appears here — the property tests iterate
/// this list.
pub fn registered_schemes() -> Vec<std::sync::Arc<dyn FragmentScheme>> {
    vec![
        std::sync::Arc::new(SignAlternating),
        std::sync::Arc::new(Overlapping::default()),
        std::sync::Arc::new(Overlapping::new([3, 3, 3])),
        std::sync::Arc::new(Overlapping::new([2, 3, 2])),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_alternating_reproduces_paper_signs() {
        let frags = SignAlternating.fragments([2, 2, 2]);
        assert_eq!(frags.len(), 64);
        for f in &frags {
            let expect = (0..3)
                .map(|d| if f.size[d] == 2 { 1.0 } else { -1.0 })
                .product::<f64>();
            assert_eq!(f.weight, expect, "size {:?}", f.size);
        }
        // Σ_S α_S · volume(S) = 1 piece per corner: 8 − 3·4 + 3·2 − 1 = 1.
        let per_corner: f64 = frags[..8]
            .iter()
            .map(|f| f.weight * f.n_pieces() as f64)
            .sum();
        assert_eq!(per_corner, 1.0);
    }

    #[test]
    fn overlapping_weights_are_uniform_and_normalized() {
        let s = Overlapping::default();
        let frags = s.fragments([3, 3, 3]);
        assert_eq!(frags.len(), 27, "one fragment per corner");
        for f in &frags {
            assert_eq!(f.size, [2, 2, 2]);
            assert_eq!(f.weight, 0.125);
        }
        // Signed volume telescopes: 27 fragments × 8 pieces × 1/8 = 27.
        let signed: f64 = frags.iter().map(|f| f.weight * f.n_pieces() as f64).sum();
        assert_eq!(signed, 27.0);
    }

    #[test]
    fn validate_rejects_small_decompositions_with_typed_errors() {
        assert_eq!(
            SignAlternating.validate([1, 2, 2]),
            Err(FragmentError::TooFewPieces {
                scheme: "sign-alternating",
                axis: 0,
                m: 1,
                min: 2,
            })
        );
        let big = Overlapping::new([3, 3, 3]);
        assert!(big.validate([3, 3, 3]).is_ok());
        assert_eq!(
            big.validate([3, 2, 3]),
            Err(FragmentError::TooFewPieces {
                scheme: "overlapping",
                axis: 1,
                m: 2,
                min: 3,
            })
        );
        let empty = Overlapping::new([2, 0, 2]);
        assert_eq!(
            empty.validate([2, 2, 2]),
            Err(FragmentError::EmptyExtent {
                scheme: "overlapping",
                axis: 1,
            })
        );
    }

    #[test]
    fn unity_tolerance_tracks_weight_representability() {
        assert_eq!(SignAlternating.unity_tolerance(), 0.0);
        assert_eq!(Overlapping::default().unity_tolerance(), 0.0); // 1/8 exact
        assert!(Overlapping::new([3, 3, 3]).unity_tolerance() > 0.0); // 1/27 inexact
    }

    #[test]
    fn fingerprints_distinguish_schemes_and_parameters() {
        let digest = |s: &dyn FragmentScheme| {
            let mut fp = Fingerprint::new();
            fp.push_str(s.id());
            s.fingerprint(&mut fp);
            fp.finish()
        };
        let a = digest(&SignAlternating);
        let b = digest(&Overlapping::default());
        let c = digest(&Overlapping::new([3, 3, 3]));
        assert_ne!(a, b);
        assert_ne!(b, c);
    }

    #[test]
    fn errors_are_displayable() {
        let e = FragmentError::Indivisible {
            axis: 1,
            points: 9,
            m: 2,
        };
        assert!(e.to_string().contains("not divisible"), "{e}");
        let e = SignAlternating.validate([2, 1, 2]).unwrap_err();
        assert!(e.to_string().contains("sign-alternating"), "{e}");
    }

    #[test]
    fn registry_contains_both_families() {
        let reg = registered_schemes();
        assert!(reg.iter().any(|s| s.id() == "sign-alternating"));
        assert!(reg.iter().any(|s| s.id() == "overlapping"));
    }
}
