//! # ls3df-core
//!
//! The paper's primary contribution: the **linearly scaling
//! three-dimensional fragment (LS3DF) method** — a divide-and-conquer
//! Kohn–Sham DFT scheme whose sign-alternating fragment patching cancels
//! the artificial boundary effects of dividing the supercell.
//!
//! * [`scheme`] — the [`FragmentScheme`] trait: pluggable fragmentation
//!   (the paper's sign-alternating `{1,2}³` scheme and the
//!   overlapping-fragments alternative), each owning its `α_F` weights
//!   and partition-of-unity contract;
//! * [`FragmentGrid`]/[`Fragment`] — a scheme bound to concrete
//!   piece/buffer geometry (paper Fig. 1, extended to 3-D);
//! * [`passivate`] — pseudo-hydrogen passivation of cut bonds and the
//!   ΔV_F boundary potential;
//! * [`Ls3df`] — the four-step SCF loop Gen_VF → PEtot_F → Gen_dens →
//!   GENPOT (paper Fig. 2), fragment solves fanned out over rayon;
//! * [`groups`] — fragment→processor-group assignment (space-filling
//!   curve + cost-model bin-packing) for the paper's two-level
//!   hierarchy, running over the `ls3df-dist` communicator;
//! * [`fsm`] — the folded spectrum method for band-edge states of the
//!   full system from the converged potential (paper §VII);
//! * [`analysis`] — localization metrics for the oxygen-induced states
//!   (paper Fig. 7).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod check;
mod ckpt;
mod distrib;
mod energy;
mod forces;
mod fragment;
pub mod fsm;
pub mod groups;
pub mod observer;
mod passivate;
pub mod scf;
pub mod scheme;
pub mod supervise;
mod trace_observer;

pub use energy::Ls3dfEnergy;
pub use fragment::{Fragment, FragmentGrid, FragmentId};
pub use fsm::{folded_spectrum, scan_band, FsmOptions, FsmState};
pub use groups::{fragment_costs, plan_groups, GroupPlan};
pub use scheme::{registered_schemes, FragmentError, FragmentScheme, Overlapping, SignAlternating};
// Checkpoint configuration/error types are part of the driver's public
// surface (builder + observer signatures), so re-export them here.
pub use ls3df_ckpt::{CheckpointConfig, CheckpointPolicy, CkptError, CkptErrorKind};
pub use observer::{ScfObserver, ScfStage, SilentObserver};
pub use passivate::{boundary_wall, fragment_atoms, FragmentAtoms, Passivation};
pub use scf::{
    fragment_occupations, Ls3df, Ls3dfBuilder, Ls3dfError, Ls3dfOptions, Ls3dfResult, Ls3dfStep,
    StepTimings,
};
pub use supervise::{FragmentFault, InjectedFault, QuarantineRecord, RetryAction, ATTEMPT_LADDER};
pub use trace_observer::TraceObserver;
