//! Wavefunction analysis for the paper's science results (Fig. 7):
//! localization of the band-edge and oxygen-induced states.

use ls3df_atoms::{Species, Structure};
use ls3df_grid::RealField;
use ls3df_math::c64;
use ls3df_pw::PwBasis;

/// Converts a planewave state to its grid density `|ψ(r)|²` (integrates
/// to 1).
pub fn state_density(basis: &PwBasis, coefficients: &[c64]) -> RealField {
    let mut buf = vec![c64::ZERO; basis.grid().len()];
    basis.wave_to_grid(coefficients, &mut buf);
    let data: Vec<f64> = buf.iter().map(|z| z.norm_sqr()).collect();
    RealField::from_vec(basis.grid().clone(), data)
}

/// Inverse participation ratio `IPR = Ω·∫|ψ|⁴ / (∫|ψ|²)²`.
///
/// IPR = 1 for a fully extended (uniform) state; it grows as the state
/// localizes — the metric behind the paper's observation that high-energy
/// oxygen-band states are "more localized … which will significantly
/// reduce the electron mobility".
pub fn inverse_participation_ratio(density: &RealField) -> f64 {
    let dv = density.grid().dv();
    let p2: f64 = density.as_slice().iter().map(|&d| d * d).sum::<f64>() * dv;
    let p1: f64 = density.as_slice().iter().sum::<f64>() * dv;
    density.grid().volume() * p2 / (p1 * p1).max(1e-300)
}

/// Fraction of `|ψ|²` within `radius` (Bohr) of any atom of the given
/// species — e.g. the "oxygen weight" of a state (Fig. 7: O-induced states
/// cluster on the oxygen atoms).
pub fn species_weight(
    density: &RealField,
    structure: &Structure,
    species: Species,
    radius: f64,
) -> f64 {
    let grid = density.grid();
    let sites: Vec<[f64; 3]> = structure
        .atoms
        .iter()
        .filter(|a| a.species == species)
        .map(|a| a.pos)
        .collect();
    if sites.is_empty() {
        return 0.0;
    }
    let mut inside = 0.0;
    let mut total = 0.0;
    for (idx, &d) in density.as_slice().iter().enumerate() {
        let (ix, iy, iz) = grid.coords(idx);
        let r = grid.position(ix, iy, iz);
        total += d;
        if sites.iter().any(|s| grid.distance(*s, r) <= radius) {
            inside += d;
        }
    }
    inside / total.max(1e-300)
}

/// Dipole moment `p = ∫ r·ρ(r) d³r` of a density distribution relative to
/// the box center, computed with minimum-image coordinates so a localized
/// blob near the boundary is handled correctly. The paper's earlier
/// validation (ref. [16]) compared thousand-atom quantum-rod dipole
/// moments between LS3DF and direct LDA to <1%.
pub fn dipole_moment(density: &RealField) -> [f64; 3] {
    let grid = density.grid();
    let center = [
        grid.lengths[0] * 0.5,
        grid.lengths[1] * 0.5,
        grid.lengths[2] * 0.5,
    ];
    let dv = grid.dv();
    let mut p = [0.0_f64; 3];
    for (idx, &d) in density.as_slice().iter().enumerate() {
        let (ix, iy, iz) = grid.coords(idx);
        let r = grid.position(ix, iy, iz);
        let rel = grid.min_image(center, r);
        for c in 0..3 {
            // A point exactly half a box away is equidistant through both
            // images; its first moment averages to zero.
            let x = if (rel[c].abs() - 0.5 * grid.lengths[c]).abs() < 1e-9 {
                0.0
            } else {
                rel[c]
            };
            p[c] += x * d * dv;
        }
    }
    p
}

/// Fraction of the cell volume within `radius` of atoms of `species`
/// (the baseline against which [`species_weight`] indicates clustering).
pub fn species_volume_fraction(
    grid: &ls3df_grid::Grid3,
    structure: &Structure,
    species: Species,
    radius: f64,
) -> f64 {
    let sites: Vec<[f64; 3]> = structure
        .atoms
        .iter()
        .filter(|a| a.species == species)
        .map(|a| a.pos)
        .collect();
    if sites.is_empty() {
        return 0.0;
    }
    let mut inside = 0usize;
    for (ix, iy, iz) in grid.iter_points() {
        let r = grid.position(ix, iy, iz);
        if sites.iter().any(|s| grid.distance(*s, r) <= radius) {
            inside += 1;
        }
    }
    inside as f64 / grid.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ls3df_atoms::Atom;
    use ls3df_grid::Grid3;

    #[test]
    fn uniform_state_has_ipr_one() {
        let grid = Grid3::cubic(8, 5.0);
        let basis = PwBasis::new(grid, 1.0);
        let mut c = vec![c64::ZERO; basis.len()];
        c[basis.g0_index()] = c64::ONE;
        let d = state_density(&basis, &c);
        assert!((inverse_participation_ratio(&d) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn localized_state_has_large_ipr() {
        let grid = Grid3::cubic(12, 10.0);
        let d = RealField::from_fn(grid, |r| {
            let r2 = (r[0] - 5.0).powi(2) + (r[1] - 5.0).powi(2) + (r[2] - 5.0).powi(2);
            (-r2).exp()
        });
        let ipr = inverse_participation_ratio(&d);
        assert!(ipr > 10.0, "IPR = {ipr}");
    }

    #[test]
    fn species_weight_detects_concentration() {
        let grid = Grid3::cubic(12, 10.0);
        let s = Structure::new(
            [10.0, 10.0, 10.0],
            vec![
                Atom {
                    species: Species::O,
                    pos: [5.0, 5.0, 5.0],
                },
                Atom {
                    species: Species::Zn,
                    pos: [0.0, 0.0, 0.0],
                },
            ],
        );
        // Density concentrated at the O site.
        let on_o = RealField::from_fn(grid.clone(), |r| {
            let r2 = (r[0] - 5.0).powi(2) + (r[1] - 5.0).powi(2) + (r[2] - 5.0).powi(2);
            (-2.0 * r2).exp()
        });
        let w = species_weight(&on_o, &s, Species::O, 2.5);
        assert!(w > 0.9, "w = {w}");
        // Uniform density has weight ≈ volume fraction.
        let uniform = RealField::constant(grid.clone(), 1.0);
        let wu = species_weight(&uniform, &s, Species::O, 2.5);
        let vf = species_volume_fraction(&grid, &s, Species::O, 2.5);
        assert!((wu - vf).abs() < 1e-12);
        assert!(
            w > 5.0 * vf,
            "clustered state must exceed the volume baseline"
        );
    }

    #[test]
    fn dipole_of_symmetric_density_vanishes() {
        let grid = Grid3::cubic(10, 8.0);
        let sym = RealField::from_fn(grid.clone(), |r| {
            let d2 = (r[0] - 4.0).powi(2) + (r[1] - 4.0).powi(2) + (r[2] - 4.0).powi(2);
            (-d2 / 3.0).exp()
        });
        let p = dipole_moment(&sym);
        for c in 0..3 {
            assert!(p[c].abs() < 1e-10, "p[{c}] = {}", p[c]);
        }
    }

    #[test]
    fn dipole_points_from_center_to_offset_blob() {
        let grid = Grid3::cubic(12, 9.0);
        let blob = RealField::from_fn(grid.clone(), |r| {
            let d2 = (r[0] - 6.5).powi(2) + (r[1] - 4.5).powi(2) + (r[2] - 4.5).powi(2);
            (-d2).exp()
        });
        let p = dipole_moment(&blob);
        let q = blob.integrate();
        // Centroid offset ≈ +2 Bohr along x from the box center (4.5).
        assert!((p[0] / q - 2.0).abs() < 0.05, "⟨x⟩ = {}", p[0] / q);
        assert!(p[1].abs() / q < 0.05 && p[2].abs() / q < 0.05);
    }

    #[test]
    fn absent_species_gives_zero() {
        let grid = Grid3::cubic(6, 4.0);
        let s = Structure::new(
            [4.0, 4.0, 4.0],
            vec![Atom {
                species: Species::Zn,
                pos: [1.0, 1.0, 1.0],
            }],
        );
        let d = RealField::constant(grid.clone(), 1.0);
        assert_eq!(species_weight(&d, &s, Species::O, 1.0), 0.0);
        assert_eq!(species_volume_fraction(&grid, &s, Species::O, 1.0), 0.0);
    }
}
