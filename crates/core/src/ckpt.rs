//! SCF snapshot assembly: section codecs and the options fingerprint.
//!
//! The byte-level container (magic, versioning, per-section CRC32, atomic
//! placement, rotation) lives in `ls3df-ckpt`; this module owns *what*
//! goes into an LS3DF SCF snapshot and how each piece is encoded:
//!
//! | section    | contents |
//! |------------|----------|
//! | `FPRINT`   | FNV-1a fingerprint of the physical options (refuses resume under different physics) |
//! | `SCHEME`   | fragmentation-scheme id (names both schemes in a cross-scheme refusal) |
//! | `STATE`    | last completed outer iteration + converged flag |
//! | `SCFHIST`  | the [`Ls3dfStep`] convergence history |
//! | `VIN`      | global input potential (the mixed `V_in` for the next iteration) |
//! | `RHO`      | latest patched density |
//! | `MIXER`    | Pulay `(V_in, residual)` history |
//! | `PSI`      | every fragment's wavefunction block (warm-start state) |
//!
//! `PSI` is what makes checkpoint+kill+resume **bit-identical** to an
//! uninterrupted run: fragments warm-start from their previous
//! wavefunctions, so resuming with anything but the exact blocks would
//! converge to the same physics along a different bit pattern.
//!
//! The fingerprint covers the physics (geometry, cutoff, decomposition,
//! solver schedule, mixer, pseudopotentials) but deliberately **not** the
//! run-control knobs `max_scf` and `tol` — resuming a run with a larger
//! iteration cap or tighter tolerance is the normal workflow.

use crate::passivate::Passivation;
use crate::scf::{Ls3dfOptions, Ls3dfStep, StepTimings};
use crate::scheme::FragmentScheme;
use ls3df_atoms::{Species, Structure};
use ls3df_ckpt::{ByteReader, ByteWriter, CkptError, Fingerprint, SectionId};
use ls3df_math::{c64, Matrix};
use ls3df_pseudo::PseudoParams;
use ls3df_pw::{Mixer, SolverMethod};

/// Options-fingerprint section.
pub(crate) const SEC_FPRINT: SectionId = SectionId::new("FPRINT");
/// Fragmentation-scheme id section (diagnostic: lets a fingerprint
/// refusal name the snapshot's scheme).
pub(crate) const SEC_SCHEME: SectionId = SectionId::new("SCHEME");
/// Iteration counter + converged flag section.
pub(crate) const SEC_STATE: SectionId = SectionId::new("STATE");
/// Convergence-history section.
pub(crate) const SEC_HIST: SectionId = SectionId::new("SCFHIST");
/// Global input potential section.
pub(crate) const SEC_VIN: SectionId = SectionId::new("VIN");
/// Patched density section.
pub(crate) const SEC_RHO: SectionId = SectionId::new("RHO");
/// Mixer history section.
pub(crate) const SEC_MIXER: SectionId = SectionId::new("MIXER");
/// Fragment wavefunction section.
pub(crate) const SEC_PSI: SectionId = SectionId::new("PSI");

/// Upper bound on counts read from snapshot length fields (fragments,
/// history entries, bands) — corruption guard, far above real sizes.
const MAX_COUNT: u64 = 1 << 32;

// ---------------------------------------------------------------------
// Fingerprint

fn push_pseudo(fp: &mut Fingerprint, p: &PseudoParams) {
    fp.push_f64(p.local.z)
        .push_f64(p.local.rc)
        .push_f64(p.local.a)
        .push_f64(p.local.w)
        .push_f64(p.kb.rb)
        .push_f64(p.kb.e_kb);
}

/// FNV-1a fingerprint of everything that defines the *physics* of a run.
/// Two calculations with equal fingerprints produce bit-identical SCF
/// trajectories; a snapshot only resumes into an equal fingerprint.
pub(crate) fn options_fingerprint(
    structure: &Structure,
    m: [usize; 3],
    opts: &Ls3dfOptions,
    scheme: &dyn FragmentScheme,
) -> u64 {
    let mut fp = Fingerprint::new();
    // Fragmentation scheme: id + its own parameters. A snapshot written
    // under one scheme must refuse to resume under another — the fragment
    // sets (and so the PSI section layout) differ.
    fp.push_str("scheme");
    fp.push_str(scheme.id());
    scheme.fingerprint(&mut fp);
    // Geometry.
    for d in 0..3 {
        fp.push_f64(structure.lengths[d]);
        fp.push_u64(m[d] as u64);
        fp.push_u64(opts.piece_pts[d] as u64);
        fp.push_u64(opts.buffer_pts[d] as u64);
    }
    fp.push_u64(structure.atoms.len() as u64);
    for a in &structure.atoms {
        fp.push_u64(match a.species {
            Species::Zn => 1,
            Species::Te => 2,
            Species::O => 3,
            Species::H => 4,
        });
        for d in 0..3 {
            fp.push_f64(a.pos[d]);
        }
    }
    // Discretization + fragment physics.
    fp.push_f64(opts.ecut);
    fp.push_u64(match opts.passivation {
        Passivation::PseudoH => 1,
        Passivation::WallOnly => 2,
    });
    fp.push_f64(opts.wall_height);
    fp.push_u64(opts.n_extra_bands as u64);
    // Solver schedule (part of the bit-exact trajectory).
    fp.push_u64(opts.cg_steps as u64);
    fp.push_u64(opts.initial_cg_steps as u64);
    fp.push_f64(opts.fragment_tol);
    fp.push_u64(match opts.method {
        SolverMethod::AllBand => 1,
        SolverMethod::BandByBand => 2,
    });
    // Mixer.
    match opts.mixer {
        Mixer::Linear { alpha } => {
            fp.push_str("linear").push_f64(alpha);
        }
        Mixer::Kerker { alpha, q0 } => {
            fp.push_str("kerker").push_f64(alpha).push_f64(q0);
        }
        Mixer::Pulay { alpha, depth } => {
            fp.push_str("pulay").push_f64(alpha).push_u64(depth as u64);
        }
    }
    // Pseudopotential database.
    for p in [
        &opts.pseudo.zn,
        &opts.pseudo.te,
        &opts.pseudo.o,
        &opts.pseudo.h,
    ] {
        push_pseudo(&mut fp, p);
    }
    fp.finish()
}

// ---------------------------------------------------------------------
// Section payload codecs

pub(crate) fn encode_fingerprint(fingerprint: u64) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(8);
    w.put_u64(fingerprint);
    w.into_bytes()
}

pub(crate) fn decode_fingerprint(payload: &[u8]) -> Result<u64, CkptError> {
    ByteReader::new(payload).get_u64("options fingerprint")
}

pub(crate) fn encode_scheme_id(id: &str) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(8 + id.len());
    w.put_u64(id.len() as u64);
    w.put_bytes(id.as_bytes());
    w.into_bytes()
}

pub(crate) fn decode_scheme_id(payload: &[u8]) -> Result<String, CkptError> {
    let mut r = ByteReader::new(payload);
    let n = r.get_count(MAX_COUNT, "scheme id length")?;
    let bytes = r.get_bytes(n, "scheme id")?;
    String::from_utf8(bytes.to_vec()).map_err(|_| CkptError::Malformed {
        section: SEC_SCHEME.name(),
        detail: "scheme id is not valid UTF-8".to_string(),
    })
}

pub(crate) fn encode_state(iteration: usize, converged: bool) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(12);
    w.put_u64(iteration as u64).put_u32(u32::from(converged));
    w.into_bytes()
}

pub(crate) fn decode_state(payload: &[u8]) -> Result<(usize, bool), CkptError> {
    let mut r = ByteReader::new(payload);
    let iteration = r.get_count(MAX_COUNT, "completed iteration")?;
    let converged = match r.get_u32("converged flag")? {
        0 => false,
        1 => true,
        other => {
            return Err(CkptError::Malformed {
                section: SEC_STATE.name(),
                detail: format!("converged flag is {other}, expected 0 or 1"),
            })
        }
    };
    Ok((iteration, converged))
}

pub(crate) fn encode_history(history: &[Ls3dfStep]) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(8 + history.len() * 56);
    w.put_u64(history.len() as u64);
    for s in history {
        w.put_u64(s.iteration as u64)
            .put_f64(s.dv_integral)
            .put_f64(s.worst_residual)
            .put_f64(s.timings.gen_vf)
            .put_f64(s.timings.petot_f)
            .put_f64(s.timings.gen_dens)
            .put_f64(s.timings.genpot);
    }
    w.into_bytes()
}

pub(crate) fn decode_history(payload: &[u8]) -> Result<Vec<Ls3dfStep>, CkptError> {
    let mut r = ByteReader::new(payload);
    let n = r.get_count(MAX_COUNT, "history length")?;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let iteration = r.get_count(MAX_COUNT, &format!("history[{i}].iteration"))?;
        let dv_integral = r.get_f64(&format!("history[{i}].dv_integral"))?;
        let worst_residual = r.get_f64(&format!("history[{i}].worst_residual"))?;
        let mut t = [0f64; 4];
        for (k, slot) in t.iter_mut().enumerate() {
            *slot = r.get_f64(&format!("history[{i}].timings[{k}]"))?;
        }
        out.push(Ls3dfStep {
            iteration,
            dv_integral,
            worst_residual,
            timings: StepTimings {
                gen_vf: t[0],
                petot_f: t[1],
                gen_dens: t[2],
                genpot: t[3],
            },
        });
    }
    Ok(out)
}

/// Mixer memory: one `(V_in, residual)` pair per retained iteration.
pub(crate) type MixerHistory = Vec<(Vec<f64>, Vec<f64>)>;

pub(crate) fn encode_mixer_history(history: &[(Vec<f64>, Vec<f64>)]) -> Vec<u8> {
    let per: usize = history
        .iter()
        .map(|(a, b)| 16 + 8 * (a.len() + b.len()))
        .sum();
    let mut w = ByteWriter::with_capacity(8 + per);
    w.put_u64(history.len() as u64);
    for (v_in, resid) in history {
        w.put_u64(v_in.len() as u64);
        w.put_f64_slice(v_in);
        w.put_u64(resid.len() as u64);
        w.put_f64_slice(resid);
    }
    w.into_bytes()
}

pub(crate) fn decode_mixer_history(payload: &[u8]) -> Result<MixerHistory, CkptError> {
    let mut r = ByteReader::new(payload);
    let n = r.get_count(MAX_COUNT, "mixer history length")?;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let nv = r.get_count(MAX_COUNT, &format!("mixer entry {i} V_in length"))?;
        let v_in = r.get_f64_vec(nv, &format!("mixer entry {i} V_in"))?;
        let nr = r.get_count(MAX_COUNT, &format!("mixer entry {i} residual length"))?;
        let resid = r.get_f64_vec(nr, &format!("mixer entry {i} residual"))?;
        out.push((v_in, resid));
    }
    Ok(out)
}

pub(crate) fn encode_psi_blocks<'a>(
    blocks: impl ExactSizeIterator<Item = &'a Matrix<c64>>,
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(blocks.len() as u64);
    for m in blocks {
        w.put_u64(m.rows() as u64).put_u64(m.cols() as u64);
        for v in m.as_slice() {
            w.put_f64(v.re).put_f64(v.im);
        }
    }
    w.into_bytes()
}

/// Decodes the `PSI` section, validating the fragment count and each
/// block's shape against the freshly assembled calculation.
pub(crate) fn decode_psi_blocks(
    payload: &[u8],
    expected_shapes: &[(usize, usize)],
) -> Result<Vec<Matrix<c64>>, CkptError> {
    let mut r = ByteReader::new(payload);
    let n = r.get_count(MAX_COUNT, "fragment count")?;
    if n != expected_shapes.len() {
        return Err(CkptError::Malformed {
            section: SEC_PSI.name(),
            detail: format!(
                "snapshot has {n} fragments, this decomposition has {}",
                expected_shapes.len()
            ),
        });
    }
    let mut out = Vec::with_capacity(n);
    for (i, &(nb, npw)) in expected_shapes.iter().enumerate() {
        let rows = r.get_count(MAX_COUNT, &format!("fragment {i} band count"))?;
        let cols = r.get_count(MAX_COUNT, &format!("fragment {i} planewave count"))?;
        if (rows, cols) != (nb, npw) {
            return Err(CkptError::Malformed {
                section: SEC_PSI.name(),
                detail: format!(
                    "fragment {i} block is {rows}×{cols}, this calculation needs {nb}×{npw}"
                ),
            });
        }
        let flat = r.get_f64_vec(2 * rows * cols, &format!("fragment {i} wavefunctions"))?;
        let data: Vec<c64> = flat.chunks_exact(2).map(|p| c64::new(p[0], p[1])).collect();
        out.push(Matrix::from_vec(rows, cols, data));
    }
    if r.remaining() != 0 {
        return Err(CkptError::Malformed {
            section: SEC_PSI.name(),
            detail: format!("{} trailing bytes after the last fragment", r.remaining()),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_and_history_roundtrip() {
        let (it, conv) = decode_state(&encode_state(17, true)).unwrap();
        assert_eq!((it, conv), (17, true));
        assert!(decode_state(&encode_state(0, false)).unwrap() == (0, false));
        let hist = vec![
            Ls3dfStep {
                iteration: 1,
                dv_integral: 0.5,
                worst_residual: 1e-3,
                timings: StepTimings {
                    gen_vf: 0.1,
                    petot_f: 2.0,
                    gen_dens: 0.2,
                    genpot: 0.3,
                },
            },
            Ls3dfStep {
                iteration: 2,
                dv_integral: 0.25,
                worst_residual: 5e-4,
                timings: StepTimings::default(),
            },
        ];
        let back = decode_history(&encode_history(&hist)).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].iteration, 1);
        assert_eq!(back[0].dv_integral.to_bits(), 0.5f64.to_bits());
        assert_eq!(back[1].worst_residual.to_bits(), 5e-4f64.to_bits());
    }

    #[test]
    fn bad_converged_flag_is_malformed() {
        let mut w = ByteWriter::new();
        w.put_u64(3).put_u32(7);
        assert_eq!(
            decode_state(&w.into_bytes()).unwrap_err().kind(),
            ls3df_ckpt::CkptErrorKind::Malformed
        );
    }

    #[test]
    fn mixer_history_roundtrip_bit_exact() {
        let hist = vec![
            (vec![1.0, -2.5, 3.75], vec![0.1, 0.2, 0.3]),
            (vec![4.0, 5.0, 6.0], vec![-0.5, 0.25, 0.125]),
        ];
        let back = decode_mixer_history(&encode_mixer_history(&hist)).unwrap();
        assert_eq!(back, hist);
        assert!(decode_mixer_history(&encode_mixer_history(&[]))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn psi_blocks_roundtrip_and_validate_shape() {
        let a = Matrix::from_fn(2, 3, |i, j| c64::new(i as f64, j as f64 + 0.5));
        let b = Matrix::from_fn(1, 4, |_, j| c64::new(-(j as f64), 2.0));
        let bytes = encode_psi_blocks([&a, &b].into_iter());
        let back = decode_psi_blocks(&bytes, &[(2, 3), (1, 4)]).unwrap();
        assert_eq!(back[0].as_slice(), a.as_slice());
        assert_eq!(back[1].as_slice(), b.as_slice());
        // Wrong fragment count and wrong shape are typed Malformed errors.
        assert_eq!(
            decode_psi_blocks(&bytes, &[(2, 3)]).unwrap_err().kind(),
            ls3df_ckpt::CkptErrorKind::Malformed
        );
        assert_eq!(
            decode_psi_blocks(&bytes, &[(2, 3), (4, 1)])
                .unwrap_err()
                .kind(),
            ls3df_ckpt::CkptErrorKind::Malformed
        );
    }

    #[test]
    fn fingerprint_tracks_physics_not_run_control() {
        use crate::scheme::SignAlternating;
        let s = Structure::new([10.0, 10.0, 10.0], Vec::new());
        let base = Ls3dfOptions::default();
        let scheme = SignAlternating;
        let f0 = options_fingerprint(&s, [2, 2, 2], &base, &scheme);
        // Same inputs → same fingerprint.
        assert_eq!(f0, options_fingerprint(&s, [2, 2, 2], &base, &scheme));
        // max_scf / tol are run control, not physics.
        let relaxed = Ls3dfOptions {
            max_scf: 500,
            tol: 1e-9,
            ..base.clone()
        };
        assert_eq!(f0, options_fingerprint(&s, [2, 2, 2], &relaxed, &scheme));
        // Cutoff, decomposition and mixer ARE physics.
        let hot = Ls3dfOptions {
            ecut: base.ecut * 2.0,
            ..base.clone()
        };
        assert_ne!(f0, options_fingerprint(&s, [2, 2, 2], &hot, &scheme));
        assert_ne!(f0, options_fingerprint(&s, [2, 2, 4], &base, &scheme));
        let remixed = Ls3dfOptions {
            mixer: Mixer::Pulay {
                alpha: 0.5,
                depth: 4,
            },
            ..base.clone()
        };
        assert_ne!(f0, options_fingerprint(&s, [2, 2, 2], &remixed, &scheme));
        // So is the fragmentation scheme — and its parameters.
        use crate::scheme::Overlapping;
        let f_ov = options_fingerprint(&s, [2, 2, 2], &base, &Overlapping::default());
        assert_ne!(f0, f_ov);
        assert_ne!(
            f_ov,
            options_fingerprint(&s, [3, 3, 3], &base, &Overlapping::new([3, 3, 3]))
        );
    }

    #[test]
    fn scheme_id_roundtrips() {
        let bytes = encode_scheme_id("sign-alternating");
        assert_eq!(decode_scheme_id(&bytes).unwrap(), "sign-alternating");
        // Truncated payload is a typed error, not a panic.
        assert!(decode_scheme_id(&bytes[..bytes.len() - 3]).is_err());
    }
}
