//! The lint engine's regression corpus. Every file in `tests/fixtures/`
//! declares the workspace path it pretends to be on line 1
//! (`//! lint-path: <path>` — scoping rules key off it) and marks each
//! expected violation inline with `//~ ERROR <rule>`. The harness lints
//! each fixture through `xtask::lint::lint_source` and asserts *exact*
//! agreement: a missing hit is a regression, an extra hit is a false
//! positive. Fixtures are lexed, never compiled — `collect_rs_files`
//! skips `fixtures/` directories, and cargo only builds top-level
//! `tests/*.rs`.

use std::path::PathBuf;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// The path after `lint-path:`, with any trailing `//~` marker stripped
/// (the missing-root-attribute fixture expects a violation on line 1).
fn virtual_path(content: &str, file: &str) -> String {
    let line1 = content.lines().next().unwrap_or_default();
    let rest = line1
        .strip_prefix("//! lint-path:")
        .unwrap_or_else(|| panic!("{file}: line 1 must be `//! lint-path: <path>`"));
    rest.split("//~")
        .next()
        .unwrap_or_default()
        .trim()
        .to_string()
}

/// `(line, rule)` for every `//~ ERROR <rule>` marker, sorted.
fn expected(content: &str, file: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (i, line) in content.lines().enumerate() {
        let mut rest = line;
        while let Some(pos) = rest.find("//~ ERROR ") {
            rest = &rest[pos + "//~ ERROR ".len()..];
            let rule = rest
                .split_whitespace()
                .next()
                .unwrap_or_default()
                .to_string();
            assert!(
                xtask::lint::RULES.contains(&rule.as_str()),
                "{file}:{}: marker names unknown rule `{rule}`",
                i + 1
            );
            out.push((i + 1, rule));
        }
    }
    out.sort();
    out
}

#[test]
fn fixtures_match_their_golden_expectations() {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(fixtures_dir())
        .expect("tests/fixtures/ must exist")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    paths.sort();

    let mut checked = 0;
    for path in paths {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let content = std::fs::read_to_string(&path).expect("read fixture");
        let vpath = virtual_path(&content, &name);
        assert!(!vpath.is_empty(), "{name}: empty lint-path");
        let want = expected(&content, &name);
        let mut got: Vec<(usize, String)> = xtask::lint::lint_source(&vpath, &content)
            .violations
            .into_iter()
            .map(|v| (v.line, v.rule.to_string()))
            .collect();
        got.sort();
        assert_eq!(
            got, want,
            "{name} (linted as {vpath}): engine disagrees with the golden markers"
        );
        checked += 1;
    }
    assert!(
        checked >= 8,
        "fixture corpus shrank: only {checked} files checked"
    );
}

#[test]
fn atomic_fixture_feeds_the_ordering_inventory() {
    let path = fixtures_dir().join("atomic_ordering.rs");
    let content = std::fs::read_to_string(path).expect("read atomic_ordering.rs");
    let report = xtask::lint::lint_source("shims/rayon/src/pool.rs", &content);
    let sites = &report.ordering_sites;
    assert_eq!(sites.len(), 2, "bare + justified sites, nothing else");
    assert_eq!(sites[0].ordering, "Release");
    assert!(
        sites[0].justification.is_none(),
        "bare site must inventory as unjustified"
    );
    assert_eq!(sites[1].ordering, "Acquire");
    assert_eq!(
        sites[1].justification.as_deref(),
        Some("Acquire pairs with the Release store in `bare`.")
    );
}
