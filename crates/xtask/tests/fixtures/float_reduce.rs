//! lint-path: crates/pw/src/density.rs
//!
//! float-reduce: schedule-shaped reductions chained on parallel
//! iterators fire; the ordered-collect house pattern, sequential
//! iterators, and audited sites stay silent.

fn bad_sum(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x * 2.0).sum::<f64>() //~ ERROR float-reduce
}

fn bad_fold(xs: Vec<f64>) -> f64 {
    xs.into_par_iter().fold(0.0, |a, b| a + b) //~ ERROR float-reduce
}

fn bad_multiline(xs: &[f64]) -> f64 {
    xs.par_iter()
        .map(|x| x.sqrt())
        .sum::<f64>() //~ ERROR float-reduce
}

fn bad_for_each(xs: &[f64], total: &mut f64) {
    xs.par_iter().for_each(|x| {
        *total += x; //~ ERROR float-reduce
    });
}

fn ordered_collect(xs: &[f64]) -> f64 {
    let v: Vec<f64> = xs.par_iter().map(|x| x * 2.0).collect();
    v.iter().sum()
}

fn sequential(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}

fn audited(xs: &[f64]) -> u64 {
    // reduce-audit: integer count — order-free, no floats involved.
    xs.par_iter().map(|x| x.abs() as u64).sum::<u64>()
}

fn audited_chunked(rows: &mut [f64], n: usize) {
    // reduce-audit: rows are disjoint; each inner loop is
    // sequential, so the combine order is fixed per row.
    rows.par_chunks_mut(n).for_each(|r| {
        r[0] += 1.0;
    });
}

fn legacy_phrasing_retired(rows: &mut [f64], n: usize) {
    // Audited reduction: this pre-PR-6 phrasing no longer escapes.
    rows.par_chunks_mut(n).for_each(|r| {
        r[0] += 1.0; //~ ERROR float-reduce
    });
}
