//! lint-path: crates/core/src/scheme.rs
//!
//! Scheme-weighted accumulations: an α-weighted parallel reduction is
//! exactly the schedule-shaped float sum the determinism contract bans
//! (weights of mixed sign make the combine order visible in the last
//! bits), and a weight table in a randomized-iteration container fires
//! hash-iter. The ordered-collect house pattern and audited sites are
//! silent.

use std::collections::HashMap; //~ ERROR hash-iter

fn bad_weighted_sum(fragments: &[Fragment], densities: &[f64]) -> f64 {
    fragments
        .par_iter()
        .zip(densities.par_iter())
        .map(|(f, rho)| f.alpha() * rho)
        .sum::<f64>() //~ ERROR float-reduce
}

fn bad_weight_accumulate(fragments: &[Fragment], total: &mut f64) {
    fragments.par_iter().for_each(|f| {
        *total += f.alpha(); //~ ERROR float-reduce
    });
}

fn ordered_weighted_sum(fragments: &[Fragment], densities: &[f64]) -> f64 {
    // House pattern: materialize per-fragment parts in index order, then
    // reduce sequentially — the α signs cancel in a fixed order.
    let parts: Vec<f64> = fragments
        .par_iter()
        .zip(densities.par_iter())
        .map(|(f, rho)| f.alpha() * rho)
        .collect();
    parts.iter().sum()
}

fn audited_solve_count(fragments: &[Fragment]) -> u64 {
    // reduce-audit: integer fragment count — order-free, no floats.
    fragments.par_iter().map(|f| f.n_pieces() as u64).sum::<u64>()
}

fn lookup_only_weights() {
    // hash-audit: keyed weight lookups only — never iterated.
    let by_id: HashMap<u64, f64> = HashMap::new();
    drop(by_id);
}

fn sequential_weighted(fragments: &[Fragment]) -> f64 {
    fragments.iter().map(|f| f.alpha()).sum::<f64>()
}
