//! lint-path: crates/pw/src/davidson.rs
//!
//! seeded-rng: every ambient-entropy entry point fires; explicitly
//! seeded construction stays silent. Policed in tests too.

fn ambient_thread_rng() -> f64 {
    let mut r = thread_rng(); //~ ERROR seeded-rng
    r.gen()
}

fn ambient_entropy() {
    let _r = SmallRng::from_entropy(); //~ ERROR seeded-rng
}

fn ambient_random() -> f64 {
    rand::random() //~ ERROR seeded-rng
}

fn seeded_is_fine() {
    let _r = StdRng::seed_from_u64(0x5eed);
}

#[cfg(test)]
mod tests {
    #[test]
    fn even_tests_must_seed() {
        let _r = thread_rng(); //~ ERROR seeded-rng
    }
}
