//! lint-path: crates/pw/src/mixing.rs
//!
//! no-unwrap: positives in library code, negatives for near-miss
//! identifiers and the test region. (Fixtures are lexed, never
//! compiled, so undefined names are fine.)

fn f(x: Option<u32>) -> u32 {
    x.unwrap() //~ ERROR no-unwrap
}

fn g(x: Option<u32>) -> u32 {
    x.expect("present by construction") //~ ERROR no-unwrap
}

fn h() {
    panic!("library code must not panic"); //~ ERROR no-unwrap
}

fn near_misses(x: Option<u32>) -> u32 {
    // unwrap_or / unwrap_or_else are different identifiers entirely.
    let a = x.unwrap_or(7);
    let b = x.unwrap_or_else(|| 9);
    a + b
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_assert_hard() {
        Some(1u32).unwrap();
        std::panic::catch_unwind(|| panic!("fine in tests")).ok();
    }
}
