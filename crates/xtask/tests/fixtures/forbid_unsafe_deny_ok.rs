//! lint-path: shims/rayon/src/lib.rs
//!
//! A designated unsafe-surface crate root carrying
//! `#![deny(unsafe_code)]`: clean. Per-site `#[allow]` + SAFETY
//! comments are the pool's business, not the root's.

#![deny(unsafe_code)]

pub mod pool_stub {}
