//! lint-path: crates/hpc/src/launch.rs
//!
//! comm-audit in a non-surface crate: raw process spawning and raw
//! sockets outside `crates/dist`/`crates/xtask` fire; the escape
//! comment silences a justified site within its 3-line window;
//! near-miss identifiers and test code stay silent.

use std::os::unix::net::UnixStream; //~ ERROR comm-audit
use std::process::{Command, Stdio}; //~ ERROR comm-audit //~ ERROR comm-audit

fn side_channel(addr: &str) -> std::io::Result<UnixStream> { //~ ERROR comm-audit
    UnixStream::connect(addr) //~ ERROR comm-audit
}

fn audited(exe: &str) {
    // comm-audit: re-exec for an isolated measurement process; no data
    // flows outside the ls3df-dist communicator.
    let c = Command::new(exe);
    drop(c);
}

fn near_miss() {
    // Exact identifier matches only: a lookalike name or a string
    // literal mentioning "Command" never fires.
    let label = "Command";
    let tool = CommandLine::default();
    drop((label, tool));
}

#[derive(Default)]
struct CommandLine;

#[cfg(test)]
mod tests {
    // Test code is exempt: the SPMD subprocess tests re-exec the test
    // binary by design.
    fn spawn_child(exe: &str) {
        let c = std::process::Command::new(exe);
        drop(c);
    }
}
