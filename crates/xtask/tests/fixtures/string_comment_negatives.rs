//! lint-path: crates/fft/src/plan.rs
//!
//! The false-positive regression corpus: every needle below lives in a
//! string literal, raw string, or comment — exactly where the old
//! line-stripping lint fired and the token engine must not. The virtual
//! path is a hot-path, instrumented, physics-scope file, so every rule
//! that could fire is armed. Expected violations: none.

fn strings_are_data() -> Vec<&'static str> {
    collect_prose(
        ".unwrap() and .expect(oops) and panic!(no)",
        "vec![0.0; n] Vec::with_capacity(9) data.to_vec() x.clone()",
        "Instant::now() in a string is just prose",
        "HashMap and HashSet as words",
        "thread_rng from_entropy rand::random",
    )
}

fn raw_strings_too() -> &'static str {
    r#"unsafe { transmute() } // still just bytes"#
}

// A line comment may say anything: x.unwrap(); panic!("x"); unsafe {}
// vec![1; 2]; Instant::now(); xs.par_iter().sum::<f64>(); HashMap::new()
/// Doc comments as well: `a == 1.0` and `fs::File::create(p)`.
fn comments_are_prose() {}

/* Block comments: .expect("…") and Vec::with_capacity(4) and
   /* nested: from_entropy() and x == 2.5 */ unsafe impl Send */
fn block_comments_too() {}
