//! lint-path: crates/dist/src/local.rs
//!
//! raw-timer in the transport layer: `crates/dist` is instrumented
//! (send/recv latency histograms feed the run report), so ad-hoc
//! clocks fire there like in the other instrumented crates.

fn unaudited_deadline() {
    let t = Instant::now(); //~ ERROR raw-timer
    drop(t);
}

fn audited_bookkeeping() {
    // obs-audit: socket read deadline, not a report-bearing measurement.
    let deadline = std::time::Instant::now();
    drop(deadline);
}
