//! lint-path: crates/grid/src/lib.rs //~ ERROR forbid-unsafe
//!
//! A non-designated crate root with no `#![forbid(unsafe_code)]`: the
//! missing attribute fires on line 1, and the unsafe token fires on its
//! own — a SAFETY comment cannot move a file onto the unsafe surface.

fn sneaky(p: *const f64) -> f64 {
    // SAFETY: satisfies unsafe-comment, not forbid-unsafe.
    unsafe { *p } //~ ERROR forbid-unsafe
}
