//! lint-path: crates/core/src/supervise.rs
//!
//! hash-iter: randomized-iteration containers fire in physics crates;
//! ordered containers, audited lookup-only maps, and test code do not.

use std::collections::HashMap; //~ ERROR hash-iter

fn worst(pending: HashSet<u32>) { //~ ERROR hash-iter
    drop(pending);
}

fn ordered(m: BTreeMap<u32, f64>, s: BTreeSet<u32>) {
    drop((m, s));
}

fn lookup_only() {
    // hash-audit: keyed lookups only — never iterated.
    let m: HashMap<u32, f64> = HashMap::new();
    drop(m);
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn tests_may_hash() {
        drop(HashSet::<u32>::new());
    }
}
