//! lint-path: crates/math/src/lib.rs
//!
//! A physics crate root carrying `#![forbid(unsafe_code)]`: clean,
//! including its (sequential, fixed-order) reduction.

#![forbid(unsafe_code)]

pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}
