//! lint-path: shims/rayon/src/pool.rs
//!
//! atomic-ordering: a bare memory ordering fires; a justified one is
//! silent but still lands in the report inventory. `cmp::Ordering` and
//! mentions inside comments are invisible.

fn bare(flag: &AtomicBool) {
    flag.store(true, Ordering::Release); //~ ERROR atomic-ordering
}

fn justified(flag: &AtomicBool) -> bool {
    // ORDERING: Acquire pairs with the Release store in `bare`.
    flag.load(Ordering::Acquire)
}

fn not_an_atomic(a: u32, b: u32) -> bool {
    a.cmp(&b) == std::cmp::Ordering::Less
}

/// Doc text naming `Ordering::SeqCst` is not a site.
// Neither is Ordering::Relaxed in a line comment.
fn mentions_only() {}
