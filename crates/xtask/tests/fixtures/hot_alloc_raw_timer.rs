//! lint-path: crates/fft/src/plan.rs
//!
//! hot-alloc and raw-timer in an SCF hot-path file: unaudited
//! allocations and ad-hoc clocks fire; the escape comments silence them
//! within their 3-line windows.

fn hot(n: usize, src: &[f64]) {
    let v = vec![0.0; n]; //~ ERROR hot-alloc
    let w = Vec::with_capacity(n); //~ ERROR hot-alloc
    let x = src.to_vec(); //~ ERROR hot-alloc
    let y = v.clone(); //~ ERROR hot-alloc
    let t = Instant::now(); //~ ERROR raw-timer
    drop((w, x, y, t));
}

fn audited(n: usize) {
    // alloc-audit: one-time plan construction, outside the SCF loop.
    let v = vec![0.0; n];
    // obs-audit: local diagnostic, intentionally outside the run report.
    let t = std::time::Instant::now();
    drop((v, t));
}

fn non_allocating(n: usize) {
    // Vec::new is allocation-free until first push; not policed.
    let v: Vec<f64> = Vec::new();
    drop((v, n));
}
