//! lint-path: crates/core/src/scf.rs
//!
//! ckpt-atomic outside the snapshot crate: only writes whose surrounding
//! lines look snapshot-shaped (`.ls3df`, "snapshot") are in scope.

fn writes_a_checkpoint(dir: &Path, bytes: &[u8]) {
    let p = dir.join("scf-000001.ls3df");
    fs::write(&p, bytes); //~ ERROR ckpt-atomic
}

fn unrelated_output(path: &Path) {
    let f = std::fs::File::create(path);
    drop(f);
}
