//! lint-path: crates/pw/src/mixing.rs
//!
//! no-float-eq: float comparisons fire, the exact-zero sentinel and
//! integer/string comparisons stay silent, and operand runs stop at
//! delimiters (a float in a *different* call argument is not evidence).

fn bad_literal(a: f64) -> bool {
    a == 1.0 //~ ERROR no-float-eq
}

fn bad_on_left(b: f64) -> bool {
    0.5 != b //~ ERROR no-float-eq
}

fn bad_cast(a: u32, b: f64) -> bool {
    f64::from(a) * 2.0 == b //~ ERROR no-float-eq
}

fn zero_sentinel(a: f64, e_kb: f64) -> bool {
    // Exact-zero is well-defined IEEE equality (unset occupation, G = 0).
    a == 0.0 && e_kb != 0.0 && a == -0.0 && a == 0.0_f64
}

fn integers(n: usize) -> bool {
    n == 2
}

fn delimiter_bounds(helper_result: u32, a: u32, b: u32) -> bool {
    // The 1.0 lives in another argument; `a == b` is an int comparison.
    helper(1.0, a == b) && helper_result == 3
}
