//! lint-path: crates/ckpt/src/writer.rs
//!
//! ckpt-atomic inside the snapshot crate: every raw file creation is
//! suspect unless the ckpt-audit escape marks the atomic writer itself.

fn raw_write(path: &Path) {
    let f = fs::File::create(path); //~ ERROR ckpt-atomic
    drop(f);
}

fn raw_fs_write(path: &Path, bytes: &[u8]) {
    fs::write(path, bytes); //~ ERROR ckpt-atomic
}

fn the_atomic_writer(tmp: &Path) {
    // ckpt-audit: the atomic temp + fsync + rename writer itself.
    let f = fs::File::create(tmp);
    drop(f);
}
