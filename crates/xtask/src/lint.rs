//! The LS3DF source lint pass: syntactic (no `syn`, no external deps —
//! the build runs offline), line-oriented, with comment/string stripping
//! so rules fire on code only.
//!
//! Rules (ids are what the allowlist references):
//!
//! * `no-unwrap` — no `.unwrap()`, `.expect(...)`, or `panic!` in library
//!   code. A silently-propagated panic in a fragment solve kills a whole
//!   LS3DF run; library paths must return `Result` (see
//!   `ls3df_grid::io`/`ls3df_atoms::xyz` for the house pattern). Test
//!   code — `tests/`, `benches/`, `examples/`, and everything from a
//!   file's first `#[cfg(test)]` line onward — is exempt, as are binary
//!   drivers (`src/bin/`, `src/main.rs`): a top-level CLI may abort.
//! * `no-float-eq` — no `==`/`!=` where an operand looks like a float
//!   (float literal, `f32`/`f64` token). Exact float equality silently
//!   breaks under reordered reductions; compare against a tolerance.
//!   Comparisons against the literal `0.0` are exempt: the exact-zero
//!   sentinel (unset occupation, the G = 0 vector, LU breakdown) is
//!   well-defined IEEE equality and fuzzing it would be wrong.
//! * `unsafe-comment` — every `unsafe` needs a `// SAFETY:` comment on
//!   one of the three preceding lines (or its own).
//! * `seeded-rng` — no `thread_rng()`, `from_entropy()`, or
//!   `rand::random` anywhere: every random draw in this workspace must be
//!   seeded, or the bit-identical-runs guarantee (ls3df-core::check) dies.
//! * `hot-alloc` — no `vec![`, `Vec::with_capacity`, `.to_vec()`, or
//!   `.clone()` in the SCF hot-path files (`crates/fft/src/` and the
//!   `hamiltonian`/`solver`/`basis` modules of `ls3df-pw`) unless one of
//!   the three preceding lines (or the line itself) carries an
//!   `// alloc-audit:` comment explaining why the allocation is outside
//!   the steady-state loop. The `alloc-count` zero-allocation test proves
//!   the steady state is heap-free; this rule keeps new allocations from
//!   creeping in un-reviewed.
//! * `ckpt-atomic` — no direct `File::create`/`fs::write` of snapshot
//!   files: everywhere inside `crates/ckpt/src/`, and anywhere else when
//!   the surrounding lines mention a snapshot (`.ls3df`, "snapshot").
//!   A half-written snapshot that survives a crash would poison the next
//!   resume, so all snapshot writes must flow through the atomic
//!   temp + fsync + rename writer (`ls3df_ckpt::atomic`). That writer
//!   itself is marked with a `// ckpt-audit:` comment — the escape hatch
//!   this rule honors (same 3-line window as `alloc-audit`). Test code
//!   is exempt: deliberately writing damaged snapshots is how the
//!   corruption tests work.
//! * `raw-timer` — no ad-hoc `std::time::Instant` in the instrumented
//!   crates (`crates/fft`, `crates/pw`, `crates/core`): timing there must
//!   flow through `ls3df-obs` (`Stopwatch` for coarse wall clocks, the
//!   `span!` macro for everything else) so every measurement lands in the
//!   run report on one shared timeline and compiles out with the feature.
//!   Escape hatch: an `// obs-audit:` comment in the usual 3-line window.
//!   Tests, benches, examples and `ls3df-obs` itself (the one place the
//!   raw clock belongs) stay exempt.
//!
//! Allowlist: `xtask-lint-allow.txt` at the workspace root. Each
//! non-comment line is `<path> <rule-id> <reason…>` (whitespace-separated,
//! path relative to the root, reason mandatory). An entry silences the
//! rule for that whole file; entries that match nothing are themselves
//! errors, so the allowlist cannot go stale.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

const RULES: [&str; 7] = [
    "no-unwrap",
    "no-float-eq",
    "unsafe-comment",
    "seeded-rng",
    "hot-alloc",
    "ckpt-atomic",
    "raw-timer",
];

/// Files whose steady-state behavior the `alloc-count` test guards:
/// allocation-looking calls here need an `// alloc-audit:` justification.
const HOT_PATHS: [&str; 3] = [
    "crates/pw/src/hamiltonian.rs",
    "crates/pw/src/solver.rs",
    "crates/pw/src/basis.rs",
];

fn is_hot_path(path: &str) -> bool {
    path.starts_with("crates/fft/src/") || HOT_PATHS.contains(&path)
}

const ALLOWLIST_FILE: &str = "xtask-lint-allow.txt";

/// Directories under the workspace root that contain lintable sources.
const SOURCE_ROOTS: [&str; 5] = ["crates", "shims", "src", "tests", "examples"];

struct AllowEntry {
    path: String,
    rule: String,
    used: bool,
}

struct Violation {
    path: String,
    line: usize,
    rule: &'static str,
    message: String,
}

/// Runs the lint pass; returns the number of violations (0 = clean).
pub fn run(root: &Path) -> Result<usize, String> {
    let mut allow = load_allowlist(root)?;
    let mut files = Vec::new();
    for dir in SOURCE_ROOTS {
        collect_rs_files(&root.join(dir), &mut files);
    }
    files.sort();

    let mut violations = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let content =
            std::fs::read_to_string(file).map_err(|e| format!("cannot read {rel}: {e}"))?;
        lint_file(&rel, &content, &mut allow, &mut violations);
    }

    let mut out = String::new();
    for v in &violations {
        let _ = writeln!(out, "{}:{}: [{}] {}", v.path, v.line, v.rule, v.message);
    }
    let mut stale = 0;
    for entry in &allow {
        if !entry.used {
            let _ = writeln!(
                out,
                "{ALLOWLIST_FILE}: stale entry `{} {}` matches no violation — remove it",
                entry.path, entry.rule
            );
            stale += 1;
        }
    }
    if !out.is_empty() {
        eprint!("{out}");
    }
    Ok(violations.len() + stale)
}

fn load_allowlist(root: &Path) -> Result<Vec<AllowEntry>, String> {
    let path = root.join(ALLOWLIST_FILE);
    let Ok(content) = std::fs::read_to_string(&path) else {
        return Ok(Vec::new()); // no allowlist = nothing allowed
    };
    let mut entries = Vec::new();
    for (i, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(path), Some(rule)) = (parts.next(), parts.next()) else {
            return Err(format!(
                "{ALLOWLIST_FILE}:{}: need `<path> <rule> <reason…>`",
                i + 1
            ));
        };
        if !RULES.contains(&rule) {
            return Err(format!(
                "{ALLOWLIST_FILE}:{}: unknown rule `{rule}` (known: {})",
                i + 1,
                RULES.join(", ")
            ));
        }
        if parts.next().is_none() {
            return Err(format!(
                "{ALLOWLIST_FILE}:{}: entry `{path} {rule}` has no reason — justify it",
                i + 1
            ));
        }
        entries.push(AllowEntry {
            path: path.to_string(),
            rule: rule.to_string(),
            used: false,
        });
    }
    Ok(entries)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name != "target" && name != ".git" {
                collect_rs_files(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn allowed(allow: &mut [AllowEntry], path: &str, rule: &str) -> bool {
    let mut hit = false;
    for e in allow.iter_mut() {
        if e.rule == rule && e.path == path {
            e.used = true;
            hit = true;
        }
    }
    hit
}

/// Is the whole file exempt from the library-only rules (`no-unwrap`,
/// `no-float-eq`)? Tests, benches and examples may assert and compare
/// exactly.
fn is_test_path(path: &str) -> bool {
    ["tests/", "benches/", "examples/"]
        .iter()
        .any(|d| path.starts_with(d) || path.contains(&format!("/{d}")))
}

/// Binary drivers: exempt from `no-unwrap` only (a CLI entry point may
/// abort on bad input; everything it calls may not).
fn is_bin_path(path: &str) -> bool {
    path.contains("/bin/") || path == "src/main.rs" || path.ends_with("/src/main.rs")
}

fn lint_file(path: &str, content: &str, allow: &mut [AllowEntry], violations: &mut Vec<Violation>) {
    let stripped = strip_comments_and_strings(content);
    let raw_lines: Vec<&str> = content.lines().collect();
    let code_lines: Vec<&str> = stripped.lines().collect();

    // Everything from the first `#[cfg(test)]` onward is the unit-test
    // module (house convention: test modules close the file).
    let test_region_start = raw_lines
        .iter()
        .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
        .unwrap_or(usize::MAX);
    let path_exempt = is_test_path(path);
    let bin_exempt = is_bin_path(path);

    let report = |violations: &mut Vec<Violation>,
                  allow: &mut [AllowEntry],
                  line: usize,
                  rule: &'static str,
                  message: String| {
        if !allowed(allow, path, rule) {
            violations.push(Violation {
                path: path.to_string(),
                line: line + 1,
                rule,
                message,
            });
        }
    };

    for (i, code) in code_lines.iter().enumerate() {
        let in_test_code = path_exempt || i >= test_region_start;

        if !in_test_code {
            for needle in [".unwrap()", ".expect(", "panic!"] {
                if !bin_exempt && code.contains(needle) {
                    report(
                        violations,
                        allow,
                        i,
                        "no-unwrap",
                        format!("`{needle}` in library code — return a Result instead"),
                    );
                }
            }
            if let Some(op) = float_eq_operator(code) {
                report(
                    violations,
                    allow,
                    i,
                    "no-float-eq",
                    format!("float `{op}` comparison — use a tolerance"),
                );
            }
            if hot_exempt_missing(path, code, &raw_lines, i) {
                report(
                    violations,
                    allow,
                    i,
                    "hot-alloc",
                    "allocation in an SCF hot-path file — justify with an \
                     `// alloc-audit:` comment on it or the 3 lines above, \
                     or move it out of the steady-state loop"
                        .into(),
                );
            }
            if ckpt_atomic_missing(path, code, &raw_lines, i) {
                report(
                    violations,
                    allow,
                    i,
                    "ckpt-atomic",
                    "direct file write of a snapshot path — route it through \
                     the atomic writer (ls3df_ckpt::atomic) or justify with a \
                     `// ckpt-audit:` comment on it or the 3 lines above"
                        .into(),
                );
            }
            if raw_timer_missing(path, code, &raw_lines, i) {
                report(
                    violations,
                    allow,
                    i,
                    "raw-timer",
                    "ad-hoc `Instant` in an instrumented crate — time through \
                     ls3df-obs (`Stopwatch` or `span!`) so the measurement \
                     reaches the run report, or justify with an \
                     `// obs-audit:` comment on it or the 3 lines above"
                        .into(),
                );
            }
        }

        // `unsafe` and unseeded RNG are policed everywhere, tests included.
        if has_word(code, "unsafe") {
            let documented = (i.saturating_sub(3)..=i)
                .any(|j| raw_lines.get(j).is_some_and(|l| l.contains("SAFETY:")));
            if !documented {
                report(
                    violations,
                    allow,
                    i,
                    "unsafe-comment",
                    "`unsafe` without a `// SAFETY:` comment on it or the 3 lines above".into(),
                );
            }
        }
        for needle in ["thread_rng()", "from_entropy()", "rand::random"] {
            if code.contains(needle) {
                report(
                    violations,
                    allow,
                    i,
                    "seeded-rng",
                    format!("`{needle}` — all randomness must be explicitly seeded"),
                );
            }
        }
    }
}

/// `hot-alloc`: true when a hot-path code line contains an
/// allocation-looking call with no `// alloc-audit:` comment on it or the
/// three lines above (same window as `unsafe-comment`).
fn hot_exempt_missing(path: &str, code: &str, raw_lines: &[&str], i: usize) -> bool {
    if !is_hot_path(path) {
        return false;
    }
    let allocates = ["vec![", "Vec::with_capacity", ".to_vec()", ".clone()"]
        .iter()
        .any(|needle| code.contains(needle));
    if !allocates {
        return false;
    }
    !(i.saturating_sub(3)..=i).any(|j| raw_lines.get(j).is_some_and(|l| l.contains("alloc-audit:")))
}

/// `ckpt-atomic`: true when a library code line creates a file on a
/// snapshot-looking path with no `// ckpt-audit:` justification in the
/// same 3-line window. Scope: every raw create inside the snapshot crate
/// (`crates/ckpt/src/`), and creates elsewhere whose nearby lines mention
/// snapshot paths.
fn ckpt_atomic_missing(path: &str, code: &str, raw_lines: &[&str], i: usize) -> bool {
    let writes = ["File::create(", "fs::write("]
        .iter()
        .any(|needle| code.contains(needle));
    if !writes {
        return false;
    }
    let window = i.saturating_sub(3)..=i;
    let in_scope = path.starts_with("crates/ckpt/src/")
        || window.clone().any(|j| {
            raw_lines
                .get(j)
                .is_some_and(|l| l.contains(".ls3df") || l.to_lowercase().contains("snapshot"))
        });
    if !in_scope {
        return false;
    }
    !window
        .into_iter()
        .any(|j| raw_lines.get(j).is_some_and(|l| l.contains("ckpt-audit:")))
}

/// Files where timing must flow through ls3df-obs: the three instrumented
/// crates. `ls3df-obs` itself (crates/obs) owns the raw clock and is out
/// of scope by construction.
fn raw_timer_in_scope(path: &str) -> bool {
    ["crates/fft/src/", "crates/pw/src/", "crates/core/src/"]
        .iter()
        .any(|p| path.starts_with(p))
}

/// `raw-timer`: true when an in-scope code line mentions `Instant` with no
/// `// obs-audit:` justification on it or the three lines above.
fn raw_timer_missing(path: &str, code: &str, raw_lines: &[&str], i: usize) -> bool {
    if !raw_timer_in_scope(path) || !has_word(code, "Instant") {
        return false;
    }
    !(i.saturating_sub(3)..=i).any(|j| raw_lines.get(j).is_some_and(|l| l.contains("obs-audit:")))
}

/// Does the line contain `==`/`!=` with a float-looking operand? Returns
/// the operator for the message. Purely syntactic: an operand "looks
/// float" if it contains a `digits.digits` literal, an `f32`/`f64` token,
/// or a float-suffixed literal.
fn float_eq_operator(code: &str) -> Option<&'static str> {
    let bytes = code.as_bytes();
    for (idx, pair) in bytes.windows(2).enumerate() {
        let op = match pair {
            b"==" => "==",
            b"!=" => "!=",
            _ => continue,
        };
        // Skip `<=`, `>=`, `===`-like runs and pattern arm `=>`.
        if idx > 0 && matches!(bytes[idx - 1], b'<' | b'>' | b'=' | b'!') {
            continue;
        }
        if idx + 2 < bytes.len() && bytes[idx + 2] == b'=' {
            continue;
        }
        let lhs = &code[..idx];
        let rhs = &code[idx + 2..];
        let lhs_operand = operand_slice(lhs, true);
        let rhs_operand = operand_slice(rhs, false);
        if is_zero_literal(lhs_operand) || is_zero_literal(rhs_operand) {
            continue; // exact-zero sentinel: well-defined IEEE equality
        }
        if looks_float(lhs_operand) || looks_float(rhs_operand) {
            return Some(op);
        }
    }
    None
}

/// The operand text adjacent to a comparison: up to the nearest
/// expression delimiter.
fn operand_slice(s: &str, from_end: bool) -> &str {
    let delims = [',', ';', '(', ')', '{', '}', '[', ']', '&', '|'];
    if from_end {
        match s.rfind(delims) {
            Some(p) => &s[p + 1..],
            None => s,
        }
    } else {
        match s.find(delims) {
            Some(p) => &s[..p],
            None => s,
        }
    }
}

/// `0.0`, `-0.0`, `0.`, `0.0f64`, `0.0_f32` — the exact-zero sentinel.
fn is_zero_literal(operand: &str) -> bool {
    let s = operand.trim().trim_start_matches('-');
    let s = s
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .trim_end_matches('_');
    !s.is_empty() && s.contains('.') && s.bytes().all(|b| b == b'0' || b == b'.')
}

fn looks_float(operand: &str) -> bool {
    let bytes = operand.as_bytes();
    // digits '.' digit  (1.0, 0.5, 3.14) or digit '.' at operand end (1.)
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'.'
            && i > 0
            && bytes[i - 1].is_ascii_digit()
            && (i + 1 >= bytes.len() || bytes[i + 1].is_ascii_digit())
        {
            return true;
        }
    }
    has_word(operand, "f64") || has_word(operand, "f32")
}

/// Word-boundary search (identifier characters delimit).
fn has_word(code: &str, word: &str) -> bool {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident_char(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Replaces comment and string-literal contents with spaces (newlines
/// kept, so line numbers survive). Handles `//`, nested `/* */`, string
/// and char literals with escapes, and `r#"…"#` raw strings.
fn strip_comments_and_strings(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1;
                out.push(b' ');
                out.push(b' ');
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 1;
                        out.push(b' ');
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 1;
                        out.push(b' ');
                    }
                    out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
                continue;
            }
            b'r' if i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'#') => {
                // Raw string r"…" / r#"…"# / r##"…"##.
                let mut j = i + 1;
                let mut hashes = 0;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    out.extend(std::iter::repeat_n(b' ', j - i + 1));
                    i = j + 1;
                    'raw: while i < b.len() {
                        if b[i] == b'"' {
                            let mut k = i + 1;
                            let mut h = 0;
                            while k < b.len() && b[k] == b'#' && h < hashes {
                                h += 1;
                                k += 1;
                            }
                            if h == hashes {
                                out.extend(std::iter::repeat_n(b' ', k - i));
                                i = k;
                                break 'raw;
                            }
                        }
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                    continue;
                }
                out.push(b[i]);
                i += 1;
            }
            b'"' => {
                out.push(b' ');
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' {
                        out.push(b' ');
                        if i + 1 < b.len() {
                            out.push(if b[i + 1] == b'\n' { b'\n' } else { b' ' });
                        }
                        i += 2;
                        continue;
                    }
                    if b[i] == b'"' {
                        out.push(b' ');
                        i += 1;
                        break;
                    }
                    out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal ('x', '\n', '\'') vs lifetime ('a) — a char
                // literal closes with a quote within a few bytes.
                let close = (i + 1..(i + 5).min(b.len()))
                    .find(|&k| b[k] == b'\'' && (b[k - 1] != b'\\' || b[k - 2] == b'\\'));
                if let Some(k) = close {
                    out.extend(std::iter::repeat_n(b' ', k - i + 1));
                    i = k + 1;
                } else {
                    out.push(b[i]); // lifetime tick
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripping_preserves_line_structure() {
        let src =
            "let a = 1; // comment with .unwrap()\nlet b = \"panic!\";\n/* panic!\n*/ let c = 2;\n";
        let s = strip_comments_and_strings(src);
        assert_eq!(s.lines().count(), src.lines().count());
        assert!(!s.contains("unwrap"));
        assert!(!s.contains("panic"));
        assert!(s.contains("let a = 1;"));
        assert!(s.contains("let c = 2;"));
    }

    #[test]
    fn float_eq_detection() {
        assert!(float_eq_operator("if x == 1.0 {").is_some());
        assert!(float_eq_operator("if 0.5 != y {").is_some());
        assert!(float_eq_operator("a == b as f64").is_some());
        assert!(float_eq_operator("if n == 2 {").is_none());
        assert!(float_eq_operator("if s == t {").is_none());
        assert!(float_eq_operator("x <= 1.0").is_none());
        assert!(float_eq_operator("match x { _ => 1.0 }").is_none());
        // Delimiter bounds the operand: the float in the *other* argument
        // of a call must not taint an integer comparison.
        assert!(float_eq_operator("f(1.0, a == b)").is_none());
    }

    #[test]
    fn zero_sentinel_is_exempt() {
        assert!(float_eq_operator("if f == 0.0 {").is_none());
        assert!(float_eq_operator("e_kb != 0.0").is_none());
        assert!(float_eq_operator("x == -0.0").is_none());
        assert!(float_eq_operator("y == 0.0_f64").is_none());
        // …but only the literal zero; near-zero constants still fire.
        assert!(float_eq_operator("x == 0.01").is_some());
        assert!(float_eq_operator("x == 10.0").is_some());
        assert!(is_zero_literal(" 0. "));
        assert!(!is_zero_literal("0"));
        assert!(!is_zero_literal(""));
    }

    #[test]
    fn bin_paths_detected() {
        assert!(is_bin_path("crates/bench/src/bin/fig3.rs"));
        assert!(is_bin_path("crates/xtask/src/main.rs"));
        assert!(!is_bin_path("crates/pw/src/solver.rs"));
    }

    #[test]
    fn word_boundaries() {
        assert!(has_word("x as f64", "f64"));
        assert!(!has_word("f64s", "f64"));
        assert!(!has_word("my_f64x", "f64"));
        assert!(has_word("unsafe {", "unsafe"));
        assert!(!has_word("unsafely", "unsafe"));
    }

    #[test]
    fn hot_alloc_scoping_and_escape() {
        // Only hot-path files are in scope.
        assert!(is_hot_path("crates/fft/src/plan.rs"));
        assert!(is_hot_path("crates/fft/src/fft3.rs"));
        assert!(is_hot_path("crates/pw/src/solver.rs"));
        assert!(!is_hot_path("crates/pw/src/mixing.rs"));
        assert!(!is_hot_path("crates/core/src/scf.rs"));
        // Un-audited allocation in scope fires…
        let lines = ["let x = 1;", "let v = data.to_vec();"];
        assert!(hot_exempt_missing(
            "crates/fft/src/plan.rs",
            lines[1],
            &lines,
            1
        ));
        // …an alloc-audit comment within the 3-line window silences it…
        let lines = ["// alloc-audit: one-time plan setup", "let v = vec![0; n];"];
        assert!(!hot_exempt_missing(
            "crates/fft/src/plan.rs",
            lines[1],
            &lines,
            1
        ));
        // …and out-of-scope files never fire.
        assert!(!hot_exempt_missing(
            "crates/pw/src/mixing.rs",
            "let v = data.to_vec();",
            &["let v = data.to_vec();"],
            0
        ));
        // Non-allocating lines are fine in scope.
        assert!(!hot_exempt_missing(
            "crates/pw/src/solver.rs",
            "let v = Vec::new();",
            &["let v = Vec::new();"],
            0
        ));
    }

    #[test]
    fn ckpt_atomic_scoping_and_escape() {
        // Inside the snapshot crate every raw create is suspect…
        let lines = [
            "let tmp = dir.join(name);",
            "let f = fs::File::create(&tmp)?;",
        ];
        assert!(ckpt_atomic_missing(
            "crates/ckpt/src/atomic.rs",
            lines[1],
            &lines,
            1
        ));
        // …unless a ckpt-audit comment in the 3-line window justifies it.
        let lines = [
            "// ckpt-audit: the atomic writer itself",
            "let f = fs::File::create(&tmp)?;",
        ];
        assert!(!ckpt_atomic_missing(
            "crates/ckpt/src/atomic.rs",
            lines[1],
            &lines,
            1
        ));
        // Elsewhere only snapshot-looking paths are in scope (raw lines
        // carry the evidence — string literals are stripped from code).
        let raw = [
            "let p = dir.join(\"scf-000001.ls3df\");",
            "fs::write(&p, bytes)?;",
        ];
        let code = ["let p = dir.join(           );", "fs::write(&p, bytes)?;"];
        assert!(ckpt_atomic_missing(
            "crates/core/src/scf.rs",
            code[1],
            &raw,
            1
        ));
        // Unrelated writes never fire.
        assert!(!ckpt_atomic_missing(
            "crates/atoms/src/xyz.rs",
            "let w = std::fs::File::create(path)?;",
            &["let w = std::fs::File::create(path)?;"],
            0
        ));
    }

    #[test]
    fn raw_timer_scoping_and_escape() {
        // Only the instrumented crates are in scope.
        assert!(raw_timer_in_scope("crates/core/src/scf.rs"));
        assert!(raw_timer_in_scope("crates/fft/src/plan.rs"));
        assert!(raw_timer_in_scope("crates/pw/src/solver.rs"));
        assert!(!raw_timer_in_scope("crates/obs/src/clock.rs"));
        assert!(!raw_timer_in_scope("crates/xtask/src/ci.rs"));
        assert!(!raw_timer_in_scope("crates/bench/src/bin/fig6.rs"));
        // An in-scope `Instant` fires…
        let lines = ["let t = Instant::now();"];
        assert!(raw_timer_missing(
            "crates/core/src/scf.rs",
            lines[0],
            &lines,
            0
        ));
        // …word-boundary: identifiers containing the word do not.
        let lines = ["let x = InstantaneousRate::new();"];
        assert!(!raw_timer_missing(
            "crates/core/src/scf.rs",
            lines[0],
            &lines,
            0
        ));
        // …an obs-audit comment within the window silences it…
        let lines = [
            "// obs-audit: clock for a diagnostic outside the report",
            "let t = std::time::Instant::now();",
        ];
        assert!(!raw_timer_missing(
            "crates/core/src/scf.rs",
            lines[1],
            &lines,
            1
        ));
        // …and out-of-scope files never fire.
        assert!(!raw_timer_missing(
            "crates/hpc/src/machine.rs",
            "let t = Instant::now();",
            &["let t = Instant::now();"],
            0
        ));
    }

    #[test]
    fn raw_strings_stripped() {
        let s = strip_comments_and_strings("let x = r#\"panic! .unwrap()\"#; let y = 1;");
        assert!(!s.contains("panic"));
        assert!(s.contains("let y = 1;"));
    }
}
