//! The LS3DF source lint pass — a token-aware analysis engine (no `syn`,
//! no external deps — the build runs offline). Every file is lexed by
//! [`crate::lexer`] into real tokens, so rules fire on code only:
//! `panic!` inside a string literal, `Ordering::Relaxed` in a doc
//! comment, or `unsafe` in a raw string can never trip a rule (the
//! failure mode of the old line-stripping lint — see
//! `tests/fixtures/` for the regression corpus).
//!
//! Rules (ids are what the allowlist references):
//!
//! * `no-unwrap` — no `.unwrap()`, `.expect(...)`, or `panic!` in library
//!   code. A silently-propagated panic in a fragment solve kills a whole
//!   LS3DF run; library paths must return `Result` (see
//!   `ls3df_grid::io`/`ls3df_atoms::xyz` for the house pattern). Test
//!   code — `tests/`, `benches/`, `examples/`, and everything from a
//!   file's first `#[cfg(test)]` line onward — is exempt, as are binary
//!   drivers (`src/bin/`, `src/main.rs`): a top-level CLI may abort.
//! * `no-float-eq` — no `==`/`!=` where an operand looks like a float
//!   (float literal, `f32`/`f64` token). Exact float equality silently
//!   breaks under reordered reductions; compare against a tolerance.
//!   Comparisons against the literal `0.0` are exempt: the exact-zero
//!   sentinel (unset occupation, the G = 0 vector, LU breakdown) is
//!   well-defined IEEE equality and fuzzing it would be wrong.
//! * `unsafe-comment` — every `unsafe` needs a `// SAFETY:` comment on
//!   one of the three preceding lines (or its own).
//! * `seeded-rng` — no `thread_rng`, `from_entropy`, or `rand::random`
//!   anywhere: every random draw in this workspace must be seeded, or
//!   the bit-identical-runs guarantee (ls3df-core::check) dies.
//! * `hot-alloc` — no `vec![`, `Vec::with_capacity`, `.to_vec()`, or
//!   `.clone()` in the SCF hot-path files (`crates/fft/src/` and the
//!   `hamiltonian`/`solver`/`basis` modules of `ls3df-pw`) unless an
//!   `// alloc-audit:` comment within the 3-line window explains why the
//!   allocation is outside the steady-state loop.
//! * `ckpt-atomic` — no direct `File::create`/`fs::write` of snapshot
//!   files: everywhere inside `crates/ckpt/src/`, and anywhere else when
//!   the surrounding lines mention a snapshot (`.ls3df`, "snapshot").
//!   All snapshot writes must flow through the atomic temp + fsync +
//!   rename writer (`ls3df_ckpt::atomic`); that writer itself carries the
//!   `// ckpt-audit:` escape. Test code is exempt: deliberately writing
//!   damaged snapshots is how the corruption tests work.
//! * `raw-timer` — no ad-hoc `std::time::Instant` in the instrumented
//!   crates (`crates/fft`, `crates/pw`, `crates/core`, `crates/dist`):
//!   timing must flow through `ls3df-obs` so every measurement lands in
//!   the run report. Escape: `// obs-audit:` in the 3-line window.
//! * `atomic-ordering` — every `Ordering::{Relaxed, Acquire, Release,
//!   AcqRel, SeqCst}` in the unsafe/concurrency pool (`shims/rayon/src/`,
//!   `crates/obs/src/`, `src/`) must carry an `// ORDERING:` comment on
//!   its line or the 3 above justifying the memory ordering (why this
//!   strength suffices, what it synchronizes with). Applies to test code
//!   too. Every site — justified or not — is inventoried in
//!   `target/lint-report.json`, so the concurrency surface is reviewable
//!   at a glance before the fragment/processor-group refactor multiplies
//!   it.
//! * `float-reduce` — in the physics crates (`crates/{core,pw,fft,math}/
//!   src`), no schedule-shaped floating-point reduction over a parallel
//!   iterator: a `.sum()`/`.fold(..)`/`.reduce(..)` chained directly on a
//!   `par_iter`-family source, or a `+=`/`-=`/`*=` accumulation inside a
//!   parallel `for_each` closure. The LS3DF determinism contract (thread-
//!   matrix bit-identity) holds because every reduction is a fixed-order
//!   tree (`ls3df_pw::density`, the ordered-`collect` house pattern) —
//!   this rule keeps it honest *by construction*, not just by test.
//!   Escape: a `// reduce-audit:` comment within 8 lines above the
//!   parallel source or the offending token — the wider window because
//!   determinism arguments are written as paragraphs. (The pre-PR-6
//!   `// Audited reduction:` phrasing is no longer honored; every site
//!   has been converted.)
//! * `hash-iter` — no `HashMap`/`HashSet` in the physics crates
//!   (`crates/{core,pw,fft,math,grid,atoms,pseudo}/src`): their iteration
//!   order is randomized per process, so anything they feed — a float
//!   accumulation, a file, an event stream — loses run-to-run
//!   reproducibility. Use `BTreeMap`/`BTreeSet` or an index-keyed `Vec`.
//!   Escape: `// hash-audit:` in the 3-line window (for maps that are
//!   provably never iterated). Test code is exempt.
//! * `comm-audit` — no raw process/socket primitives (`Command`, `Stdio`,
//!   `UnixStream`, `UnixListener`, `TcpStream`, `TcpListener`) outside
//!   the communication surface: `crates/dist/src/` (the transport + the
//!   worker launcher) and `crates/xtask/src/` (the CI driver). Everything
//!   else must go through the `ls3df-dist` communicator, or the
//!   processor-group determinism story fragments into ad-hoc side
//!   channels the digest gates can't see. Escape: `// comm-audit:` in
//!   the 3-line window (e.g. a bench driver re-execing itself to get an
//!   isolated measurement process). Test code is exempt — the SPMD
//!   subprocess tests re-exec the test binary by design.
//! * `forbid-unsafe` — the workspace's unsafe surface is exactly three
//!   places: `shims/rayon` (the work-stealing pool), `crates/obs`
//!   (reserved for future probe internals), and the `ls3df` facade
//!   (`src/alloc_count.rs`). Those crate roots must carry
//!   `#![deny(unsafe_code)]` (with per-site `#[allow]` + `SAFETY:`
//!   comments); every other crate root must carry
//!   `#![forbid(unsafe_code)]`, and an `unsafe` token anywhere in a
//!   forbidden crate is a violation in its own right.
//!
//! Allowlist: `xtask-lint-allow.txt` at the workspace root. Each
//! non-comment line is `<path> <rule-id> <reason…>` (whitespace-separated,
//! path relative to the root, reason mandatory). An entry silences the
//! rule for that whole file; entries that match nothing are hard CI
//! failures (with a sharper message when the file itself is gone — the
//! moved/renamed-file case), so the allowlist cannot go stale.
//!
//! Machine-readable output: every run writes `target/lint-report.json`
//! (schema `ls3df-lint-report/v1`) with per-rule violation counts, file
//! counts, and the full atomic-ordering inventory, so BENCH-style trend
//! tracking can pick it up.

use crate::lexer::{self, Token, TokenKind};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Every rule id, in reporting order.
pub const RULES: [&str; 12] = [
    "no-unwrap",
    "no-float-eq",
    "unsafe-comment",
    "seeded-rng",
    "hot-alloc",
    "ckpt-atomic",
    "raw-timer",
    "atomic-ordering",
    "float-reduce",
    "hash-iter",
    "comm-audit",
    "forbid-unsafe",
];

/// Files whose steady-state behavior the `alloc-count` test guards:
/// allocation-looking calls here need an `// alloc-audit:` justification.
const HOT_PATHS: [&str; 3] = [
    "crates/pw/src/hamiltonian.rs",
    "crates/pw/src/solver.rs",
    "crates/pw/src/basis.rs",
];

fn is_hot_path(path: &str) -> bool {
    path.starts_with("crates/fft/src/") || HOT_PATHS.contains(&path)
}

/// The unsafe/concurrency pool: every atomic memory ordering here needs
/// an `// ORDERING:` justification and lands in the report inventory.
const ATOMIC_SCOPE: [&str; 3] = ["shims/rayon/src/", "crates/obs/src/", "src/"];

fn in_atomic_scope(path: &str) -> bool {
    ATOMIC_SCOPE.iter().any(|p| path.starts_with(p))
}

/// Crates whose reductions must be fixed-order trees (the determinism
/// contract's floating-point surface).
const FLOAT_REDUCE_SCOPE: [&str; 4] = [
    "crates/core/src/",
    "crates/pw/src/",
    "crates/fft/src/",
    "crates/math/src/",
];

fn in_float_reduce_scope(path: &str) -> bool {
    FLOAT_REDUCE_SCOPE.iter().any(|p| path.starts_with(p))
}

/// Physics crates where hash-iteration order would leak into results.
const HASH_ITER_SCOPE: [&str; 7] = [
    "crates/core/src/",
    "crates/pw/src/",
    "crates/fft/src/",
    "crates/math/src/",
    "crates/grid/src/",
    "crates/atoms/src/",
    "crates/pseudo/src/",
];

fn in_hash_iter_scope(path: &str) -> bool {
    HASH_ITER_SCOPE.iter().any(|p| path.starts_with(p))
}

/// The sanctioned communication surface: the `ls3df-dist` transport (it
/// owns the sockets and the worker launcher) and the xtask CI driver
/// (it shells out to cargo). Raw process/socket primitives anywhere else
/// need a `// comm-audit:` justification.
const COMM_SURFACE: [&str; 2] = ["crates/dist/src/", "crates/xtask/src/"];

fn in_comm_surface(path: &str) -> bool {
    COMM_SURFACE.iter().any(|p| path.starts_with(p))
}

/// The primitives `comm-audit` polices: process spawning and raw
/// sockets. Exact identifier matches — `CommandLine` or a string literal
/// containing "Command" never fire.
const COMM_IDENTS: [&str; 6] = [
    "Command",
    "Stdio",
    "UnixStream",
    "UnixListener",
    "TcpStream",
    "TcpListener",
];

/// Crates allowed to contain `unsafe` (root must `#![deny(unsafe_code)]`
/// and every site needs `#[allow]` + `SAFETY:`). Everything else must
/// `#![forbid(unsafe_code)]`.
const UNSAFE_CRATES: [&str; 3] = ["shims/rayon/", "crates/obs/", "src/"];

fn in_unsafe_crate(path: &str) -> bool {
    UNSAFE_CRATES.iter().any(|p| path.starts_with(p))
}

/// Is `path` a crate root whose `#![forbid/deny(unsafe_code)]` attribute
/// the `forbid-unsafe` rule checks? Library roots only — binaries and
/// examples are covered by the per-token check instead.
fn is_crate_root(path: &str) -> bool {
    if path == "src/lib.rs" {
        return true;
    }
    let parts: Vec<&str> = path.split('/').collect();
    matches!(parts.as_slice(), [top, _, "src", "lib.rs"] if *top == "crates" || *top == "shims")
}

/// The parallel-iterator sources of the rayon shim: a reduction chained
/// on any of these is schedule-shaped unless audited.
const PAR_SOURCES: [&str; 6] = [
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_chunks_mut",
    "par_bridge",
];

const ALLOWLIST_FILE: &str = "xtask-lint-allow.txt";

/// Directories under the workspace root that contain lintable sources.
const SOURCE_ROOTS: [&str; 5] = ["crates", "shims", "src", "tests", "examples"];

struct AllowEntry {
    path: String,
    rule: String,
    used: bool,
}

/// One rule hit.
pub struct Violation {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id (one of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

/// One `Ordering::…` site found by the `atomic-ordering` rule —
/// justified or not, every site is inventoried in the report.
pub struct OrderingSite {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The ordering variant (`Relaxed`, `Acquire`, …).
    pub ordering: String,
    /// The text after `ORDERING:` when justified, `None` otherwise.
    pub justification: Option<String>,
}

/// Everything the engine extracts from one file.
#[derive(Default)]
pub struct FileReport {
    /// Rule hits, in source order.
    pub violations: Vec<Violation>,
    /// Atomic-ordering inventory entries (in-scope files only).
    pub ordering_sites: Vec<OrderingSite>,
}

/// Runs the lint pass over the workspace; returns the number of problems
/// (violations + stale allowlist entries; 0 = clean) and writes the
/// machine-readable report to `target/lint-report.json`.
pub fn run(root: &Path) -> Result<usize, String> {
    let mut allow = load_allowlist(root)?;
    let mut files = Vec::new();
    for dir in SOURCE_ROOTS {
        collect_rs_files(&root.join(dir), &mut files);
    }
    files.sort();

    let mut violations = Vec::new();
    let mut ordering_sites = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let content =
            std::fs::read_to_string(file).map_err(|e| format!("cannot read {rel}: {e}"))?;
        let mut report = lint_source(&rel, &content);
        report
            .violations
            .retain(|v| !allowed(&mut allow, &v.path, v.rule));
        violations.extend(report.violations);
        ordering_sites.extend(report.ordering_sites);
    }

    let mut out = String::new();
    for v in &violations {
        let _ = writeln!(out, "{}:{}: [{}] {}", v.path, v.line, v.rule, v.message);
    }
    let mut stale = 0;
    for entry in &allow {
        if !entry.used {
            let gone = !root.join(&entry.path).is_file();
            let why = if gone {
                "the file no longer exists (moved or renamed?) — update the path"
            } else {
                "the rule no longer fires there"
            };
            let _ = writeln!(
                out,
                "{ALLOWLIST_FILE}: stale entry `{} {}`: {why}; remove it (stale entries \
                 are hard CI failures)",
                entry.path, entry.rule
            );
            stale += 1;
        }
    }
    if !out.is_empty() {
        eprint!("{out}");
    }
    write_report(root, files.len(), &violations, stale, &ordering_sites)?;
    Ok(violations.len() + stale)
}

/// Lints a single source file (no allowlist, no filesystem): the entry
/// point the fixture corpus drives. `path` is workspace-relative and
/// decides rule scoping exactly as in a real run.
pub fn lint_source(path: &str, content: &str) -> FileReport {
    let tokens = lexer::lex(content);
    let file = FileCtx {
        path,
        raw_lines: content.lines().collect(),
        toks: lexer::code_tokens(&tokens),
        test_start_line: test_region_start(&tokens),
        path_exempt: is_test_path(path),
        bin_exempt: is_bin_path(path),
    };
    let mut report = FileReport::default();
    rule_no_unwrap(&file, &mut report);
    rule_no_float_eq(&file, &mut report);
    rule_unsafe_comment(&file, &mut report);
    rule_seeded_rng(&file, &mut report);
    rule_hot_alloc(&file, &mut report);
    rule_ckpt_atomic(&file, &mut report);
    rule_raw_timer(&file, &mut report);
    rule_atomic_ordering(&file, &mut report);
    rule_float_reduce(&file, &mut report);
    rule_hash_iter(&file, &mut report);
    rule_comm_audit(&file, &mut report);
    rule_forbid_unsafe(&file, &mut report);
    report
}

// ---------------------------------------------------------------------------
// Per-file context and token helpers
// ---------------------------------------------------------------------------

struct FileCtx<'a> {
    path: &'a str,
    raw_lines: Vec<&'a str>,
    /// Code tokens only — comments are filtered out up front, so a rule
    /// that matches idents can never fire inside one.
    toks: Vec<&'a Token<'a>>,
    /// 1-based line of the first `#[cfg(test)]`; `usize::MAX` when none.
    test_start_line: usize,
    path_exempt: bool,
    bin_exempt: bool,
}

impl FileCtx<'_> {
    /// Is this 1-based line test code (path-exempt file or past the
    /// first `#[cfg(test)]`)?
    fn in_test(&self, line: usize) -> bool {
        self.path_exempt || line >= self.test_start_line
    }

    /// Does any raw line in `[line - above, line]` (1-based) contain
    /// `marker`? The standard escape-hatch window is `above = 3`.
    fn window_has(&self, line: usize, above: usize, marker: &str) -> bool {
        let lo = line.saturating_sub(above + 1);
        self.raw_lines[lo..line.min(self.raw_lines.len())]
            .iter()
            .any(|l| l.contains(marker))
    }

    fn report(&self, out: &mut FileReport, line: usize, rule: &'static str, message: String) {
        out.violations.push(Violation {
            path: self.path.to_string(),
            line,
            rule,
            message,
        });
    }
}

fn is_ident(t: &Token<'_>, s: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == s
}

fn is_punct(t: &Token<'_>, s: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == s
}

/// 1-based line of the first `#[cfg(test)]` attribute (house convention:
/// the unit-test module closes the file), or `usize::MAX`.
fn test_region_start(tokens: &[Token<'_>]) -> usize {
    let toks = lexer::code_tokens(tokens);
    for i in 0..toks.len() {
        let pat = ["#", "[", "cfg", "(", "test", ")", "]"];
        if toks[i..].len() >= pat.len()
            && toks[i..i + pat.len()]
                .iter()
                .zip(pat)
                .all(|(t, p)| t.text == p)
        {
            return toks[i].line;
        }
    }
    usize::MAX
}

/// Is the whole file exempt from the library-only rules? Tests, benches
/// and examples may assert and compare exactly.
fn is_test_path(path: &str) -> bool {
    ["tests/", "benches/", "examples/"]
        .iter()
        .any(|d| path.starts_with(d) || path.contains(&format!("/{d}")))
}

/// Binary drivers: exempt from `no-unwrap` only (a CLI entry point may
/// abort on bad input; everything it calls may not).
fn is_bin_path(path: &str) -> bool {
    path.contains("/bin/") || path == "src/main.rs" || path.ends_with("/src/main.rs")
}

// ---------------------------------------------------------------------------
// Rule passes
// ---------------------------------------------------------------------------

fn rule_no_unwrap(f: &FileCtx<'_>, out: &mut FileReport) {
    if f.path_exempt || f.bin_exempt {
        return;
    }
    for i in 0..f.toks.len() {
        let t = f.toks[i];
        if f.in_test(t.line) {
            continue;
        }
        let needle = if is_punct(t, ".")
            && f.toks.get(i + 1).is_some_and(|n| is_ident(n, "unwrap"))
            && f.toks.get(i + 2).is_some_and(|n| is_punct(n, "("))
        {
            Some(".unwrap()")
        } else if is_punct(t, ".")
            && f.toks.get(i + 1).is_some_and(|n| is_ident(n, "expect"))
            && f.toks.get(i + 2).is_some_and(|n| is_punct(n, "("))
        {
            Some(".expect(")
        } else if is_ident(t, "panic") && f.toks.get(i + 1).is_some_and(|n| is_punct(n, "!")) {
            Some("panic!")
        } else {
            None
        };
        if let Some(needle) = needle {
            f.report(
                out,
                t.line,
                "no-unwrap",
                format!("`{needle}` in library code — return a Result instead"),
            );
        }
    }
}

/// Delimiters that bound a comparison operand (token edition of the old
/// character scan; `&&`/`||` lex as single tokens).
fn is_operand_delim(t: &Token<'_>) -> bool {
    t.kind == TokenKind::Punct
        && matches!(
            t.text,
            "," | ";" | "(" | ")" | "{" | "}" | "[" | "]" | "&" | "|" | "&&" | "||"
        )
}

/// `0.0`, `0.`, `0.0f64`, `0_0.0` — the exact-zero sentinel.
fn is_zero_float(t: &Token<'_>) -> bool {
    if t.kind != TokenKind::Float {
        return false;
    }
    let s = t
        .text
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .trim_end_matches('_');
    s.contains('.') && s.bytes().all(|b| matches!(b, b'0' | b'.' | b'_'))
}

fn rule_no_float_eq(f: &FileCtx<'_>, out: &mut FileReport) {
    if f.path_exempt {
        return;
    }
    for i in 0..f.toks.len() {
        let t = f.toks[i];
        if f.in_test(t.line) || !(is_punct(t, "==") || is_punct(t, "!=")) {
            continue;
        }
        // Operand token runs on each side, bounded by delimiters.
        let lhs: Vec<&Token<'_>> = f.toks[..i]
            .iter()
            .rev()
            .take_while(|t| !is_operand_delim(t))
            .copied()
            .collect();
        let rhs: Vec<&Token<'_>> = f.toks[i + 1..]
            .iter()
            .take_while(|t| !is_operand_delim(t))
            .copied()
            .collect();
        // Exact-zero sentinel: an operand that is just `0.0` (optionally
        // negated) is well-defined IEEE equality.
        let side_is_zero = |side: &[&Token<'_>]| {
            let non_sign: Vec<&&Token<'_>> = side.iter().filter(|t| !is_punct(t, "-")).collect();
            non_sign.len() == 1 && is_zero_float(non_sign[0])
        };
        if side_is_zero(&lhs) || side_is_zero(&rhs) {
            continue;
        }
        let looks_float = |side: &[&Token<'_>]| {
            side.iter()
                .any(|t| t.kind == TokenKind::Float || is_ident(t, "f64") || is_ident(t, "f32"))
        };
        if looks_float(&lhs) || looks_float(&rhs) {
            f.report(
                out,
                t.line,
                "no-float-eq",
                format!("float `{}` comparison — use a tolerance", t.text),
            );
        }
    }
}

fn rule_unsafe_comment(f: &FileCtx<'_>, out: &mut FileReport) {
    // Policed everywhere, tests included.
    for t in &f.toks {
        if is_ident(t, "unsafe") && !f.window_has(t.line, 3, "SAFETY:") {
            f.report(
                out,
                t.line,
                "unsafe-comment",
                "`unsafe` without a `// SAFETY:` comment on it or the 3 lines above".into(),
            );
        }
    }
}

fn rule_seeded_rng(f: &FileCtx<'_>, out: &mut FileReport) {
    // Policed everywhere, tests included.
    for i in 0..f.toks.len() {
        let t = f.toks[i];
        let needle = if is_ident(t, "thread_rng") {
            Some("thread_rng")
        } else if is_ident(t, "from_entropy") {
            Some("from_entropy")
        } else if is_ident(t, "rand")
            && f.toks.get(i + 1).is_some_and(|n| is_punct(n, "::"))
            && f.toks.get(i + 2).is_some_and(|n| is_ident(n, "random"))
        {
            Some("rand::random")
        } else {
            None
        };
        if let Some(needle) = needle {
            f.report(
                out,
                t.line,
                "seeded-rng",
                format!("`{needle}` — all randomness must be explicitly seeded"),
            );
        }
    }
}

fn rule_hot_alloc(f: &FileCtx<'_>, out: &mut FileReport) {
    if !is_hot_path(f.path) {
        return;
    }
    for i in 0..f.toks.len() {
        let t = f.toks[i];
        if f.in_test(t.line) {
            continue;
        }
        let allocates = (is_ident(t, "vec") && f.toks.get(i + 1).is_some_and(|n| is_punct(n, "!")))
            || (is_ident(t, "Vec")
                && f.toks.get(i + 1).is_some_and(|n| is_punct(n, "::"))
                && f.toks
                    .get(i + 2)
                    .is_some_and(|n| is_ident(n, "with_capacity")))
            || (is_punct(t, ".")
                && f.toks
                    .get(i + 1)
                    .is_some_and(|n| is_ident(n, "to_vec") || is_ident(n, "clone"))
                && f.toks.get(i + 2).is_some_and(|n| is_punct(n, "(")));
        if allocates && !f.window_has(t.line, 3, "alloc-audit:") {
            f.report(
                out,
                t.line,
                "hot-alloc",
                "allocation in an SCF hot-path file — justify with an \
                 `// alloc-audit:` comment on it or the 3 lines above, \
                 or move it out of the steady-state loop"
                    .into(),
            );
        }
    }
}

fn rule_ckpt_atomic(f: &FileCtx<'_>, out: &mut FileReport) {
    if f.path_exempt {
        return;
    }
    for i in 0..f.toks.len() {
        let t = f.toks[i];
        if f.in_test(t.line) {
            continue;
        }
        let writes = ((is_ident(t, "File")
            && f.toks.get(i + 1).is_some_and(|n| is_punct(n, "::"))
            && f.toks.get(i + 2).is_some_and(|n| is_ident(n, "create")))
            || (is_ident(t, "fs")
                && f.toks.get(i + 1).is_some_and(|n| is_punct(n, "::"))
                && f.toks.get(i + 2).is_some_and(|n| is_ident(n, "write"))))
            && f.toks.get(i + 3).is_some_and(|n| is_punct(n, "("));
        if !writes {
            continue;
        }
        let in_scope =
            f.path.starts_with("crates/ckpt/src/") || f.window_has(t.line, 3, ".ls3df") || {
                let lo = t.line.saturating_sub(4);
                f.raw_lines[lo..t.line.min(f.raw_lines.len())]
                    .iter()
                    .any(|l| l.to_lowercase().contains("snapshot"))
            };
        if in_scope && !f.window_has(t.line, 3, "ckpt-audit:") {
            f.report(
                out,
                t.line,
                "ckpt-atomic",
                "direct file write of a snapshot path — route it through \
                 the atomic writer (ls3df_ckpt::atomic) or justify with a \
                 `// ckpt-audit:` comment on it or the 3 lines above"
                    .into(),
            );
        }
    }
}

/// Files where timing must flow through ls3df-obs: the four
/// instrumented crates (the transport layer records send/recv latency
/// histograms, so its timing is report-bearing too). `ls3df-obs` itself
/// (crates/obs) owns the raw clock and is out of scope by construction.
fn raw_timer_in_scope(path: &str) -> bool {
    [
        "crates/fft/src/",
        "crates/pw/src/",
        "crates/core/src/",
        "crates/dist/src/",
    ]
    .iter()
    .any(|p| path.starts_with(p))
}

fn rule_raw_timer(f: &FileCtx<'_>, out: &mut FileReport) {
    if !raw_timer_in_scope(f.path) || f.path_exempt {
        return;
    }
    for t in &f.toks {
        if f.in_test(t.line) {
            continue;
        }
        if is_ident(t, "Instant") && !f.window_has(t.line, 3, "obs-audit:") {
            f.report(
                out,
                t.line,
                "raw-timer",
                "ad-hoc `Instant` in an instrumented crate — time through \
                 ls3df-obs (`Stopwatch` or `span!`) so the measurement \
                 reaches the run report, or justify with an \
                 `// obs-audit:` comment on it or the 3 lines above"
                    .into(),
            );
        }
    }
}

const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

fn rule_atomic_ordering(f: &FileCtx<'_>, out: &mut FileReport) {
    if !in_atomic_scope(f.path) {
        return;
    }
    // Policed everywhere, tests included: a test's atomics document the
    // contract just like library code's.
    for i in 0..f.toks.len() {
        let t = f.toks[i];
        if !is_ident(t, "Ordering") || !f.toks.get(i + 1).is_some_and(|n| is_punct(n, "::")) {
            continue;
        }
        let Some(variant) = f
            .toks
            .get(i + 2)
            .filter(|n| ATOMIC_ORDERINGS.iter().any(|o| is_ident(n, o)))
        else {
            continue; // `cmp::Ordering::Less` and friends are not atomics
        };
        let justification = ordering_justification(f, t.line);
        if justification.is_none() {
            f.report(
                out,
                t.line,
                "atomic-ordering",
                format!(
                    "`Ordering::{}` without an `// ORDERING:` justification on its \
                     line or the 3 above — state why this memory ordering suffices",
                    variant.text
                ),
            );
        }
        out.ordering_sites.push(OrderingSite {
            path: f.path.to_string(),
            line: t.line,
            ordering: variant.text.to_string(),
            justification,
        });
    }
}

/// The text after `ORDERING:` in the escape window, when present.
fn ordering_justification(f: &FileCtx<'_>, line: usize) -> Option<String> {
    let lo = line.saturating_sub(4);
    for l in f.raw_lines[lo..line.min(f.raw_lines.len())].iter().rev() {
        if let Some(pos) = l.find("ORDERING:") {
            return Some(l[pos + "ORDERING:".len()..].trim().to_string());
        }
    }
    None
}

/// `reduce-audit:` is the one and only escape phrasing; the legacy
/// `Audited reduction:` form was retired once the last sites converted.
fn reduce_audited(f: &FileCtx<'_>, line: usize) -> bool {
    f.window_has(line, 8, "reduce-audit:")
}

fn rule_float_reduce(f: &FileCtx<'_>, out: &mut FileReport) {
    if !in_float_reduce_scope(f.path) || f.path_exempt {
        return;
    }
    for i in 0..f.toks.len() {
        let t = f.toks[i];
        if f.in_test(t.line) || !PAR_SOURCES.iter().any(|s| is_ident(t, s)) {
            continue;
        }
        scan_par_chain(f, out, i);
    }
}

/// Walks the method chain after a parallel-source token, flagging
/// schedule-shaped reductions. `depth` is bracket nesting relative to
/// the chain: terminal adapters live at depth 0; closure bodies are
/// deeper. An ordered `collect` ends the parallel part of the chain.
fn scan_par_chain(f: &FileCtx<'_>, out: &mut FileReport, start: usize) {
    let par_line = f.toks[start].line;
    let mut depth = 0i64;
    let mut i = start + 1;
    while i < f.toks.len() {
        let t = f.toks[i];
        match t.text {
            "(" | "[" | "{" if t.kind == TokenKind::Punct => depth += 1,
            ")" | "]" | "}" if t.kind == TokenKind::Punct => {
                depth -= 1;
                if depth < 0 {
                    return; // left the enclosing expression
                }
            }
            ";" if t.kind == TokenKind::Punct && depth == 0 => return,
            _ => {}
        }
        if depth == 0 && is_punct(t, ".") {
            if let Some(m) = f.toks.get(i + 1) {
                if is_ident(m, "collect") {
                    return; // materialized in source order — the house pattern
                }
                if is_ident(m, "sum") || is_ident(m, "fold") || is_ident(m, "reduce") {
                    if !reduce_audited(f, par_line) && !reduce_audited(f, m.line) {
                        f.report(
                            out,
                            m.line,
                            "float-reduce",
                            format!(
                                "`.{}(..)` chained on a parallel iterator — combine through \
                                 a fixed-order tree (ordered `collect` + sequential \
                                 combine, see ls3df_pw::density) or justify with \
                                 `// reduce-audit:`",
                                m.text
                            ),
                        );
                    }
                    return;
                }
                if is_ident(m, "for_each") {
                    scan_for_each_closure(f, out, i + 1, par_line);
                    return;
                }
            }
        }
        i += 1;
    }
}

/// Flags `+=`-style accumulation inside a parallel `for_each` closure:
/// the iteration order over items is schedule-dependent, so compound
/// assignment onto anything shared is a determinism (or soundness) bug.
fn scan_for_each_closure(
    f: &FileCtx<'_>,
    out: &mut FileReport,
    for_each_idx: usize,
    par_line: usize,
) {
    let mut depth = 0i64;
    let mut entered = false;
    for i in for_each_idx..f.toks.len() {
        let t = f.toks[i];
        match t.text {
            "(" | "[" | "{" if t.kind == TokenKind::Punct => {
                depth += 1;
                entered = true;
            }
            ")" | "]" | "}" if t.kind == TokenKind::Punct => {
                depth -= 1;
                if entered && depth == 0 {
                    return; // closed the for_each argument list
                }
            }
            "+=" | "-=" | "*="
                if t.kind == TokenKind::Punct
                    && !reduce_audited(f, par_line)
                    && !reduce_audited(f, t.line) =>
            {
                f.report(
                    out,
                    t.line,
                    "float-reduce",
                    format!(
                        "`{}` accumulation inside a parallel `for_each` — item \
                         order is schedule-dependent; reduce through an ordered \
                         `collect` + fixed-order combine, or justify the \
                         disjointness with `// reduce-audit:`",
                        t.text
                    ),
                );
                return; // one report per closure is enough
            }
            _ => {}
        }
    }
}

fn rule_hash_iter(f: &FileCtx<'_>, out: &mut FileReport) {
    if !in_hash_iter_scope(f.path) || f.path_exempt {
        return;
    }
    for t in &f.toks {
        if f.in_test(t.line) {
            continue;
        }
        if (is_ident(t, "HashMap") || is_ident(t, "HashSet"))
            && !f.window_has(t.line, 3, "hash-audit:")
        {
            f.report(
                out,
                t.line,
                "hash-iter",
                format!(
                    "`{}` in a physics crate — its iteration order is randomized \
                     per process, so anything it feeds (float sums, I/O, event \
                     order) loses reproducibility; use BTreeMap/BTreeSet or an \
                     index-keyed Vec, or justify a never-iterated map with \
                     `// hash-audit:`",
                    t.text
                ),
            );
        }
    }
}

fn rule_comm_audit(f: &FileCtx<'_>, out: &mut FileReport) {
    if in_comm_surface(f.path) || f.path_exempt {
        return;
    }
    for t in &f.toks {
        if f.in_test(t.line) {
            continue;
        }
        if t.kind == TokenKind::Ident
            && COMM_IDENTS.contains(&t.text)
            && !f.window_has(t.line, 3, "comm-audit:")
        {
            f.report(
                out,
                t.line,
                "comm-audit",
                format!(
                    "`{}` outside the communication surface (crates/dist, \
                     crates/xtask) — inter-process traffic must flow through \
                     the ls3df-dist communicator, or justify with a \
                     `// comm-audit:` comment on it or the 3 lines above",
                    t.text
                ),
            );
        }
    }
}

fn rule_forbid_unsafe(f: &FileCtx<'_>, out: &mut FileReport) {
    let designated = in_unsafe_crate(f.path);
    if is_crate_root(f.path) {
        let want = if designated { "deny" } else { "forbid" };
        if !has_crate_unsafe_attr(f, want) {
            f.report(
                out,
                1,
                "forbid-unsafe",
                format!(
                    "crate root must carry `#![{want}(unsafe_code)]` — {}",
                    if designated {
                        "this crate is on the audited unsafe surface (per-site \
                         `#[allow]` + `SAFETY:` only)"
                    } else {
                        "the workspace's unsafe surface is shims/rayon, crates/obs \
                         and src/alloc_count.rs only"
                    }
                ),
            );
        }
    }
    if !designated {
        for t in &f.toks {
            if is_ident(t, "unsafe") {
                f.report(
                    out,
                    t.line,
                    "forbid-unsafe",
                    "`unsafe` outside the audited surface (shims/rayon, crates/obs, \
                     src/alloc_count.rs) — move the code behind a safe API there"
                        .into(),
                );
            }
        }
    }
}

/// Does the file carry `#![level(unsafe_code)]`?
fn has_crate_unsafe_attr(f: &FileCtx<'_>, level: &str) -> bool {
    let pat = ["#", "!", "[", level, "(", "unsafe_code", ")", "]"];
    (0..f.toks.len()).any(|i| {
        f.toks[i..].len() >= pat.len()
            && f.toks[i..i + pat.len()]
                .iter()
                .zip(pat)
                .all(|(t, p)| t.text == p)
    })
}

// ---------------------------------------------------------------------------
// Allowlist, file walk, report
// ---------------------------------------------------------------------------

fn load_allowlist(root: &Path) -> Result<Vec<AllowEntry>, String> {
    let path = root.join(ALLOWLIST_FILE);
    let Ok(content) = std::fs::read_to_string(&path) else {
        return Ok(Vec::new()); // no allowlist = nothing allowed
    };
    let mut entries = Vec::new();
    for (i, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(path), Some(rule)) = (parts.next(), parts.next()) else {
            return Err(format!(
                "{ALLOWLIST_FILE}:{}: need `<path> <rule> <reason…>`",
                i + 1
            ));
        };
        if !RULES.contains(&rule) {
            return Err(format!(
                "{ALLOWLIST_FILE}:{}: unknown rule `{rule}` (known: {})",
                i + 1,
                RULES.join(", ")
            ));
        }
        if parts.next().is_none() {
            return Err(format!(
                "{ALLOWLIST_FILE}:{}: entry `{path} {rule}` has no reason — justify it",
                i + 1
            ));
        }
        entries.push(AllowEntry {
            path: path.to_string(),
            rule: rule.to_string(),
            used: false,
        });
    }
    Ok(entries)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            // `fixtures` holds the lint engine's own known-positive
            // corpus — linting it would report every planted violation.
            if name != "target" && name != ".git" && name != "fixtures" {
                collect_rs_files(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn allowed(allow: &mut [AllowEntry], path: &str, rule: &str) -> bool {
    let mut hit = false;
    for e in allow.iter_mut() {
        if e.rule == rule && e.path == path {
            e.used = true;
            hit = true;
        }
    }
    hit
}

/// Writes `target/lint-report.json`: per-rule counts plus the full
/// atomic-ordering inventory (hand-rolled JSON — same no-deps policy as
/// `ls3df-obs`).
fn write_report(
    root: &Path,
    files_scanned: usize,
    violations: &[Violation],
    stale: usize,
    ordering_sites: &[OrderingSite],
) -> Result<(), String> {
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"ls3df-lint-report/v1\",");
    let _ = writeln!(json, "  \"files_scanned\": {files_scanned},");
    let _ = writeln!(json, "  \"violations\": {},", violations.len());
    let _ = writeln!(json, "  \"stale_allowlist_entries\": {stale},");
    json.push_str("  \"rules\": {\n");
    for (k, rule) in RULES.iter().enumerate() {
        let count = violations.iter().filter(|v| v.rule == *rule).count();
        let comma = if k + 1 < RULES.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{rule}\": {count}{comma}");
    }
    json.push_str("  },\n");
    json.push_str("  \"atomic_ordering_inventory\": [\n");
    for (k, site) in ordering_sites.iter().enumerate() {
        let comma = if k + 1 < ordering_sites.len() {
            ","
        } else {
            ""
        };
        let justification = match &site.justification {
            Some(j) => format!("\"{}\"", json_escape(j)),
            None => "null".to_string(),
        };
        let _ = writeln!(
            json,
            "    {{\"file\": \"{}\", \"line\": {}, \"ordering\": \"{}\", \
             \"justification\": {}}}{comma}",
            json_escape(&site.path),
            site.line,
            site.ordering,
            justification
        );
    }
    json.push_str("  ]\n}\n");

    let target = root.join("target");
    std::fs::create_dir_all(&target).map_err(|e| format!("cannot create target/: {e}"))?;
    let path = target.join("lint-report.json");
    std::fs::write(&path, json).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violations(path: &str, src: &str) -> Vec<(usize, &'static str)> {
        lint_source(path, src)
            .violations
            .into_iter()
            .map(|v| (v.line, v.rule))
            .collect()
    }

    fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
        violations(path, src).into_iter().map(|(_, r)| r).collect()
    }

    #[test]
    fn unwrap_in_library_code_fires() {
        let v = rules_hit("crates/pw/src/mixing.rs", "fn f() { x.unwrap(); }");
        assert!(v.contains(&"no-unwrap"));
        // …but `.unwrap_or` is a different identifier entirely.
        let v = rules_hit("crates/pw/src/mixing.rs", "fn f() { x.unwrap_or(0); }");
        assert!(!v.contains(&"no-unwrap"));
    }

    #[test]
    fn unwrap_in_strings_and_comments_is_invisible() {
        let src = "fn f() {\n  let a = \".unwrap()\";\n  // also .unwrap() and panic!\n  let b = r#\"panic!\"#;\n}";
        assert!(violations("crates/pw/src/mixing.rs", src).is_empty());
    }

    #[test]
    fn float_eq_detection() {
        let path = "crates/pw/src/mixing.rs";
        assert!(rules_hit(path, "fn f() { if x == 1.0 {} }").contains(&"no-float-eq"));
        assert!(rules_hit(path, "fn f() { if 0.5 != y {} }").contains(&"no-float-eq"));
        assert!(rules_hit(path, "fn f() { let c = a == b as f64; }").contains(&"no-float-eq"));
        assert!(rules_hit(path, "fn f() { if n == 2 {} }").is_empty());
        assert!(rules_hit(path, "fn f() { if s == t {} }").is_empty());
        assert!(rules_hit(path, "fn f() { let c = x <= 1.0; }").is_empty());
        assert!(rules_hit(path, "fn f() { match x { _ => 1.0 }; }").is_empty());
        // Delimiter bounds the operand: the float in the *other* argument
        // of a call must not taint an integer comparison.
        assert!(rules_hit(path, "fn f() { g(1.0, a == b); }").is_empty());
    }

    #[test]
    fn zero_sentinel_is_exempt() {
        let path = "crates/pw/src/mixing.rs";
        assert!(rules_hit(path, "fn f() { if f == 0.0 {} }").is_empty());
        assert!(rules_hit(path, "fn f() { let c = e_kb != 0.0; }").is_empty());
        assert!(rules_hit(path, "fn f() { let c = x == -0.0; }").is_empty());
        assert!(rules_hit(path, "fn f() { let c = y == 0.0_f64; }").is_empty());
        // …but only the literal zero; near-zero constants still fire.
        assert!(rules_hit(path, "fn f() { let c = x == 0.01; }").contains(&"no-float-eq"));
        assert!(rules_hit(path, "fn f() { let c = x == 10.0; }").contains(&"no-float-eq"));
    }

    #[test]
    fn bin_paths_detected() {
        assert!(is_bin_path("crates/bench/src/bin/fig3.rs"));
        assert!(is_bin_path("crates/xtask/src/main.rs"));
        assert!(!is_bin_path("crates/pw/src/solver.rs"));
    }

    #[test]
    fn test_region_starts_at_cfg_test() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\n";
        assert!(violations("crates/pw/src/mixing.rs", src).is_empty());
        let src = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {}\n";
        assert_eq!(
            violations("crates/pw/src/mixing.rs", src),
            [(1, "no-unwrap")]
        );
    }

    #[test]
    fn hot_alloc_scoping_and_escape() {
        assert!(is_hot_path("crates/fft/src/plan.rs"));
        assert!(is_hot_path("crates/pw/src/solver.rs"));
        assert!(!is_hot_path("crates/pw/src/mixing.rs"));
        let v = rules_hit(
            "crates/fft/src/plan.rs",
            "fn f() { let v = data.to_vec(); }",
        );
        assert!(v.contains(&"hot-alloc"));
        let v = rules_hit(
            "crates/fft/src/plan.rs",
            "// alloc-audit: one-time plan setup\nfn f() { let v = vec![0; n]; }",
        );
        assert!(!v.contains(&"hot-alloc"));
        let v = rules_hit(
            "crates/pw/src/mixing.rs",
            "fn f() { let v = data.to_vec(); }",
        );
        assert!(!v.contains(&"hot-alloc"));
        // Non-allocating lines are fine in scope.
        let v = rules_hit("crates/pw/src/solver.rs", "fn f() { let v = Vec::new(); }");
        assert!(!v.contains(&"hot-alloc"));
    }

    #[test]
    fn ckpt_atomic_scoping_and_escape() {
        // Inside the snapshot crate every raw create is suspect…
        let v = rules_hit(
            "crates/ckpt/src/atomic.rs",
            "fn f() { let h = fs::File::create(&tmp); }",
        );
        assert!(v.contains(&"ckpt-atomic"));
        // …unless a ckpt-audit comment in the window justifies it.
        let v = rules_hit(
            "crates/ckpt/src/atomic.rs",
            "// ckpt-audit: the atomic writer itself\nfn f() { let h = fs::File::create(&tmp); }",
        );
        assert!(!v.contains(&"ckpt-atomic"));
        // Elsewhere only snapshot-looking paths are in scope (the string
        // literal carries the evidence).
        let v = rules_hit(
            "crates/core/src/scf.rs",
            "fn f() { let p = dir.join(\"scf-000001.ls3df\");\n fs::write(&p, bytes); }",
        );
        assert!(v.contains(&"ckpt-atomic"));
        // Unrelated writes never fire.
        let v = rules_hit(
            "crates/atoms/src/xyz.rs",
            "fn f() { let w = std::fs::File::create(path); }",
        );
        assert!(!v.contains(&"ckpt-atomic"));
    }

    #[test]
    fn raw_timer_scoping_and_escape() {
        let v = rules_hit(
            "crates/core/src/scf.rs",
            "fn f() { let t = Instant::now(); }",
        );
        assert!(v.contains(&"raw-timer"));
        // Identifiers merely containing the word do not fire.
        let v = rules_hit(
            "crates/core/src/scf.rs",
            "fn f() { let x = InstantaneousRate::new(); }",
        );
        assert!(!v.contains(&"raw-timer"));
        let v = rules_hit(
            "crates/core/src/scf.rs",
            "// obs-audit: diagnostic outside the report\nfn f() { let t = std::time::Instant::now(); }",
        );
        assert!(!v.contains(&"raw-timer"));
        let v = rules_hit(
            "crates/hpc/src/machine.rs",
            "fn f() { let t = Instant::now(); }",
        );
        assert!(!v.contains(&"raw-timer"));
        // The transport layer is in scope (latency histograms are
        // report-bearing timing), with the same escape hatch.
        let v = rules_hit(
            "crates/dist/src/local.rs",
            "fn f() { let deadline = Instant::now(); }",
        );
        assert!(v.contains(&"raw-timer"));
        let v = rules_hit(
            "crates/dist/src/local.rs",
            "// obs-audit: socket bookkeeping, not a measurement\nfn f() { let deadline = Instant::now(); }",
        );
        assert!(!v.contains(&"raw-timer"));
    }

    #[test]
    fn atomic_ordering_justified_vs_bare() {
        let path = "shims/rayon/src/pool.rs";
        let bare = "fn f() { x.store(true, Ordering::Release); }";
        let v = lint_source(path, bare);
        assert_eq!(v.violations.len(), 1);
        assert_eq!(v.violations[0].rule, "atomic-ordering");
        assert_eq!(v.ordering_sites.len(), 1);
        assert!(v.ordering_sites[0].justification.is_none());

        let ok = "// ORDERING: Release pairs with the Acquire probe\n\
                  fn f() { x.store(true, Ordering::Release); }";
        let v = lint_source(path, ok);
        assert!(v.violations.is_empty());
        assert_eq!(
            v.ordering_sites[0].justification.as_deref(),
            Some("Release pairs with the Acquire probe")
        );

        // `cmp::Ordering` is not an atomic.
        let cmp = "fn f() { let o = std::cmp::Ordering::Less; }";
        let v = lint_source(path, cmp);
        assert!(v.violations.is_empty() && v.ordering_sites.is_empty());

        // Out-of-scope files are not policed (and not inventoried).
        let v = lint_source("crates/pw/src/mixing.rs", bare);
        assert!(v.violations.is_empty() && v.ordering_sites.is_empty());
    }

    #[test]
    fn ordering_in_doc_comment_is_invisible() {
        let src = "/// Uses `Ordering::Relaxed` internally.\n// Ordering::SeqCst too\nfn f() {}";
        let v = lint_source("shims/rayon/src/pool.rs", src);
        assert!(v.violations.is_empty() && v.ordering_sites.is_empty());
    }

    #[test]
    fn float_reduce_flags_terminal_reductions() {
        let path = "crates/pw/src/density.rs";
        let bad = "fn f() { let s = xs.par_iter().map(|x| x * 2.0).sum::<f64>(); }";
        assert!(rules_hit(path, bad).contains(&"float-reduce"));
        let bad = "fn f() { let s = xs.into_par_iter().fold(0.0, |a, b| a + b); }";
        assert!(rules_hit(path, bad).contains(&"float-reduce"));
        // The house pattern — ordered collect — is clean.
        let ok = "fn f() { let v: Vec<f64> = xs.par_iter().map(|x| x * 2.0).collect(); }";
        assert!(!rules_hit(path, ok).contains(&"float-reduce"));
        // A sequential sum *after* the materializing collect is clean.
        let ok = "fn f() { let v: Vec<f64> = xs.par_iter().map(g).collect(); let s: f64 = v.iter().sum(); }";
        assert!(!rules_hit(path, ok).contains(&"float-reduce"));
        // Sequential iterators are out of scope entirely.
        let ok = "fn f() { let s = xs.iter().sum::<f64>(); }";
        assert!(!rules_hit(path, ok).contains(&"float-reduce"));
        // An audited site is exempt.
        let ok = "// reduce-audit: integer count, order-free\nfn f() { let s = xs.par_iter().map(|x| x * 2.0).sum::<f64>(); }";
        assert!(!rules_hit(path, ok).contains(&"float-reduce"));
    }

    #[test]
    fn float_reduce_flags_for_each_accumulation() {
        let path = "crates/math/src/gemm.rs";
        let bad = "fn f() { xs.par_iter().for_each(|x| { total += x; }); }";
        assert!(rules_hit(path, bad).contains(&"float-reduce"));
        // Disjoint-output for_each without compound assignment is clean.
        let ok = "fn f() { rows.par_chunks_mut(n).for_each(|r| { fill(r); }); }";
        assert!(!rules_hit(path, ok).contains(&"float-reduce"));
        // The retired legacy phrasing no longer escapes anything.
        let bad = "// Audited reduction: disjoint rows, sequential inner loops\n\
                   fn f() { rows.par_chunks_mut(n).for_each(|r| { r[0] += 1.0; }); }";
        assert!(rules_hit(path, bad).contains(&"float-reduce"));
        // The canonical phrasing is honored within its 8-line window.
        let ok = "// reduce-audit: disjoint rows, sequential inner loops\n\
                  fn f() { rows.par_chunks_mut(n).for_each(|r| { r[0] += 1.0; }); }";
        assert!(!rules_hit(path, ok).contains(&"float-reduce"));
        // `+=` inside a *sequential* for_each is out of scope.
        let ok = "fn f() { xs.iter().for_each(|x| { total += x; }); }";
        assert!(!rules_hit(path, ok).contains(&"float-reduce"));
    }

    #[test]
    fn hash_iter_scoping() {
        let bad = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, f64>) {}";
        assert!(rules_hit("crates/pw/src/scf.rs", bad).contains(&"hash-iter"));
        // Out of physics scope: fine.
        assert!(!rules_hit("crates/hpc/src/cost.rs", bad).contains(&"hash-iter"));
        // Test code: fine.
        let test_only = "#[cfg(test)]\nmod tests { use std::collections::HashSet;\n }";
        assert!(!rules_hit("crates/core/src/supervise.rs", test_only).contains(&"hash-iter"));
        // Audited: fine.
        let ok = "// hash-audit: lookup-only, never iterated\nuse std::collections::HashMap;";
        assert!(!rules_hit("crates/pw/src/scf.rs", ok).contains(&"hash-iter"));
    }

    #[test]
    fn comm_audit_scoping_and_escape() {
        let spawn = "fn f() { let c = std::process::Command::new(\"cargo\"); }";
        // Outside the surface, raw process/socket primitives fire.
        assert!(rules_hit("crates/core/src/scf.rs", spawn).contains(&"comm-audit"));
        assert!(rules_hit(
            "crates/hpc/src/launch.rs",
            "use std::os::unix::net::UnixStream;\nfn f() {}"
        )
        .contains(&"comm-audit"));
        // The transport and the CI driver are the sanctioned surface.
        assert!(!rules_hit("crates/dist/src/local.rs", spawn).contains(&"comm-audit"));
        assert!(!rules_hit("crates/xtask/src/ci.rs", spawn).contains(&"comm-audit"));
        // Tests re-exec the binary by design (SPMD child pattern).
        assert!(!rules_hit("tests/dist_digest.rs", spawn).contains(&"comm-audit"));
        // The escape comment within its 3-line window silences the rule.
        let ok = "// comm-audit: isolated measurement process per point\n\
                  fn f() { let c = std::process::Command::new(exe); }";
        assert!(!rules_hit("crates/bench/src/bin/petot_scaling.rs", ok).contains(&"comm-audit"));
        // Exact ident match only: `CommandLine` and string literals stay
        // silent.
        let near = "fn f() { let c = CommandLine::parse(\"Command\"); }";
        assert!(!rules_hit("crates/core/src/scf.rs", near).contains(&"comm-audit"));
    }

    #[test]
    fn forbid_unsafe_root_attributes() {
        // A non-designated crate root needs forbid…
        let v = rules_hit("crates/fft/src/lib.rs", "//! Docs.\nfn f() {}");
        assert!(v.contains(&"forbid-unsafe"));
        let v = rules_hit(
            "crates/fft/src/lib.rs",
            "#![forbid(unsafe_code)]\nfn f() {}",
        );
        assert!(!v.contains(&"forbid-unsafe"));
        // …a designated one needs deny…
        let v = rules_hit(
            "shims/rayon/src/lib.rs",
            "#![forbid(unsafe_code)]\nfn f() {}",
        );
        assert!(v.contains(&"forbid-unsafe"));
        let v = rules_hit("shims/rayon/src/lib.rs", "#![deny(unsafe_code)]\nfn f() {}");
        assert!(!v.contains(&"forbid-unsafe"));
        // …and unsafe tokens outside the surface fire wherever they are.
        let v = rules_hit(
            "crates/fft/src/plan.rs",
            "// SAFETY: irrelevant\nfn f() { unsafe { g() } }",
        );
        assert!(v.contains(&"forbid-unsafe"));
        // Inside the surface, `unsafe` is the unsafe-comment rule's job.
        let v = rules_hit(
            "shims/rayon/src/pool.rs",
            "// SAFETY: contract upheld by caller\nfn f() { unsafe { g() } }",
        );
        assert!(!v.contains(&"forbid-unsafe"));
    }

    #[test]
    fn unsafe_in_string_is_invisible() {
        let src = "fn f() { let s = \"unsafe\"; let r = r#\"unsafe { }\"#; }";
        assert!(violations("crates/fft/src/plan.rs", src).is_empty());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
