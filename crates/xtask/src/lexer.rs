//! A small hand-rolled Rust lexer for the lint engine — no `syn`, no
//! external deps (the build runs offline; same policy as `ls3df-obs`'s
//! in-house JSON writer).
//!
//! The lexer turns a source file into a flat token list with line
//! numbers. It is *not* a full Rust front end: it has no macro
//! expansion, no parse tree, and it treats every keyword as an
//! identifier. What it does get exactly right is the part the old
//! line-oriented lint could only approximate — the boundaries of
//! comments, string literals (cooked, raw, byte), char literals vs
//! lifetimes (including `'\u{…}'` escapes longer than the old
//! fixed-width window), nested block comments, and multi-character
//! operators. Rule passes therefore see `panic!` inside a string as a
//! [`TokenKind::Str`] token, `Ordering::Relaxed` inside a doc comment as
//! a [`TokenKind::LineComment`] token, and never confuse `<=` with `=`.
//!
//! Guarantees the rule passes rely on:
//!
//! * every byte of the input belongs to exactly one token (whitespace is
//!   skipped, everything else is covered);
//! * `line` is the 1-based line of the token's first byte;
//! * maximal munch for operators ([`PUNCTS`] is longest-first), so `==`
//!   never lexes as two `=`;
//! * comment tokens carry their full text (`// …`, `/* … */`) so escape
//!   hatches (`// SAFETY:`, `// ORDERING:`, …) can be matched against
//!   real comments instead of raw lines.

/// What a token is. Classification is shallow on purpose: rules match
/// on (kind, text) pairs and short sequences of them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `fn`, `Ordering`, `r#type`).
    Ident,
    /// Lifetime (`'a`, `'static`) — the tick plus its identifier.
    Lifetime,
    /// Integer literal (`42`, `0xff`, `1_000u64`), incl. tuple indices.
    Int,
    /// Float literal (`1.0`, `2.`, `1e-3`, `0.5f32`).
    Float,
    /// Cooked string or byte-string literal (`"…"`, `b"…"`), escapes and
    /// embedded newlines included.
    Str,
    /// Raw string or raw byte-string literal (`r"…"`, `r#"…"#`, `br#"…"#`).
    RawStr,
    /// Char or byte literal (`'x'`, `'\n'`, `'\u{1F600}'`, `b'\0'`).
    Char,
    /// Line comment, doc comments included (`//`, `///`, `//!`).
    LineComment,
    /// Block comment, nesting handled (`/* /* … */ */`, `/** … */`).
    BlockComment,
    /// Operator or punctuation, maximal munch (`==`, `+=`, `::`, `..=`).
    Punct,
}

impl TokenKind {
    /// Comment tokens — skipped by [`code_tokens`].
    pub fn is_comment(self) -> bool {
        matches!(self, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// One lexed token: classification, exact source text, 1-based start line.
#[derive(Clone, Copy, Debug)]
pub struct Token<'a> {
    /// Shallow classification (see [`TokenKind`]).
    pub kind: TokenKind,
    /// The token's exact source text (escapes unprocessed).
    pub text: &'a str,
    /// 1-based line of the token's first byte.
    pub line: usize,
}

/// Multi-character operators, longest first (maximal munch).
const PUNCTS: [&str; 25] = [
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "=",
];

/// Lexes `src` into tokens. Never fails: malformed input (an unclosed
/// string, a stray byte) degrades into best-effort tokens rather than an
/// error, because the lint must still run over work-in-progress code.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
    }
    .run()
}

/// Indices of `tokens` that are code (not comments): the view most rule
/// passes iterate.
pub fn code_tokens<'a>(tokens: &'a [Token<'a>]) -> Vec<&'a Token<'a>> {
    tokens.iter().filter(|t| !t.kind.is_comment()).collect()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        let mut out = Vec::new();
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => out.push(self.line_comment()),
                b'/' if self.peek(1) == Some(b'*') => out.push(self.block_comment()),
                b'"' => out.push(self.cooked_string(self.pos)),
                b'\'' => out.push(self.char_or_lifetime()),
                b'r' if self.raw_string_ahead(self.pos) => out.push(self.raw_string(self.pos)),
                b'b' if self.peek(1) == Some(b'"') => {
                    let start = self.pos;
                    self.pos += 1; // past the b; cooked_string eats the quote
                    out.push(self.cooked_string(start));
                }
                b'b' if self.peek(1) == Some(b'\'') => {
                    let start = self.pos;
                    self.pos += 1;
                    out.push(self.byte_char(start));
                }
                b'b' if self.peek(1) == Some(b'r') && self.raw_string_ahead(self.pos + 1) => {
                    let start = self.pos;
                    self.pos += 1;
                    out.push(self.raw_string(start));
                }
                _ if is_ident_start(b) => out.push(self.ident()),
                _ if b.is_ascii_digit() => out.push(self.number()),
                _ => out.push(self.punct()),
            }
        }
        out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn token(&self, kind: TokenKind, start: usize, line: usize) -> Token<'a> {
        Token {
            kind,
            text: &self.src[start..self.pos],
            line,
        }
    }

    /// Advances one byte, tracking line numbers inside multi-line tokens.
    fn bump(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn line_comment(&mut self) -> Token<'a> {
        let (start, line) = (self.pos, self.line);
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.token(TokenKind::LineComment, start, line)
    }

    fn block_comment(&mut self) -> Token<'a> {
        let (start, line) = (self.pos, self.line);
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.bump();
            }
        }
        self.token(TokenKind::BlockComment, start, line)
    }

    /// A `"…"` literal; `start` may point at a `b` prefix. The caller has
    /// positioned `self.pos` on the opening quote.
    fn cooked_string(&mut self, start: usize) -> Token<'a> {
        let line = self.line;
        self.pos += 1; // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    self.bump();
                    if self.pos < self.bytes.len() {
                        self.bump(); // the escaped byte (may be a newline)
                    }
                }
                b'"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.bump(),
            }
        }
        self.token(TokenKind::Str, start, line)
    }

    /// Is `r"` / `r#…#"` ahead at `at` (which points at the `r`)?
    fn raw_string_ahead(&self, at: usize) -> bool {
        let mut j = at + 1;
        while self.bytes.get(j) == Some(&b'#') {
            j += 1;
        }
        j > at && self.bytes.get(j) == Some(&b'"')
    }

    /// A raw string starting at `start` (`r…` or `br…`); `self.pos` is on
    /// the `r`.
    fn raw_string(&mut self, start: usize) -> Token<'a> {
        let line = self.line;
        self.pos += 1; // the r
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'"' {
                let mut h = 0usize;
                while h < hashes && self.bytes.get(self.pos + 1 + h) == Some(&b'#') {
                    h += 1;
                }
                if h == hashes {
                    self.pos += 1 + hashes;
                    return self.token(TokenKind::RawStr, start, line);
                }
            }
            self.bump();
        }
        self.token(TokenKind::RawStr, start, line)
    }

    /// `'x'`-style literal or `'a` lifetime. A lifetime is a tick
    /// followed by an identifier *not* closed by another tick (so `'a'`
    /// is a char, `'a` is a lifetime) — the classic ambiguity the old
    /// fixed-window heuristic got wrong for long `'\u{…}'` escapes.
    fn char_or_lifetime(&mut self) -> Token<'a> {
        let (start, line) = (self.pos, self.line);
        if let Some(b) = self.peek(1) {
            if is_ident_start(b) && b != b'\\' {
                // Scan the identifier after the tick; a closing tick right
                // after makes it a char literal ('x'), otherwise lifetime.
                let mut j = self.pos + 2;
                while self.bytes.get(j).copied().is_some_and(is_ident_char) {
                    j += 1;
                }
                if self.bytes.get(j) != Some(&b'\'') {
                    self.pos = j;
                    return self.token(TokenKind::Lifetime, start, line);
                }
            }
        }
        // Char literal: tick, one (possibly escaped, possibly multi-byte)
        // char, closing tick.
        self.pos += 1;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    self.bump();
                    if self.pos < self.bytes.len() {
                        self.bump();
                    }
                }
                b'\'' => {
                    self.pos += 1;
                    break;
                }
                _ => self.bump(),
            }
        }
        self.token(TokenKind::Char, start, line)
    }

    /// `b'x'` byte literal; `self.pos` is on the quote, `start` on the b.
    fn byte_char(&mut self, start: usize) -> Token<'a> {
        let line = self.line;
        self.pos += 1;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    self.bump();
                    if self.pos < self.bytes.len() {
                        self.bump();
                    }
                }
                b'\'' => {
                    self.pos += 1;
                    break;
                }
                _ => self.bump(),
            }
        }
        self.token(TokenKind::Char, start, line)
    }

    fn ident(&mut self) -> Token<'a> {
        let (start, line) = (self.pos, self.line);
        // `r#ident` raw identifiers lex as one Ident token.
        if self.bytes[self.pos] == b'r' && self.peek(1) == Some(b'#') {
            self.pos += 2;
        }
        while self.bytes.get(self.pos).copied().is_some_and(is_ident_char) {
            self.pos += 1;
        }
        self.token(TokenKind::Ident, start, line)
    }

    fn number(&mut self) -> Token<'a> {
        let (start, line) = (self.pos, self.line);
        let mut float = false;
        if self.bytes[self.pos] == b'0' && matches!(self.peek(1), Some(b'x' | b'o' | b'b')) {
            // Radix literal: digits + underscores + hex letters + suffix.
            self.pos += 2;
            while self.bytes.get(self.pos).copied().is_some_and(is_ident_char) {
                self.pos += 1;
            }
            return self.token(TokenKind::Int, start, line);
        }
        while self
            .bytes
            .get(self.pos)
            .copied()
            .is_some_and(|b| b.is_ascii_digit() || b == b'_')
        {
            self.pos += 1;
        }
        // A fractional part only if the `.` is not a method call (`1.max`)
        // and not a range (`1..n`).
        if self.bytes.get(self.pos) == Some(&b'.') {
            let after = self.bytes.get(self.pos + 1).copied();
            let fractional = match after {
                Some(b) if b.is_ascii_digit() => true,
                Some(b) if is_ident_start(b) || b == b'.' => false,
                _ => true, // `2.` at expression end
            };
            if fractional {
                float = true;
                self.pos += 1;
                while self
                    .bytes
                    .get(self.pos)
                    .copied()
                    .is_some_and(|b| b.is_ascii_digit() || b == b'_')
                {
                    self.pos += 1;
                }
            }
        }
        // Exponent.
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            let mut j = self.pos + 1;
            if matches!(self.bytes.get(j), Some(b'+' | b'-')) {
                j += 1;
            }
            if self
                .bytes
                .get(j)
                .copied()
                .is_some_and(|b| b.is_ascii_digit())
            {
                float = true;
                self.pos = j;
                while self
                    .bytes
                    .get(self.pos)
                    .copied()
                    .is_some_and(|b| b.is_ascii_digit() || b == b'_')
                {
                    self.pos += 1;
                }
            }
        }
        // Type suffix (`f64`, `u32`, …) rides along with the literal.
        if self
            .bytes
            .get(self.pos)
            .copied()
            .is_some_and(is_ident_start)
        {
            let suffix_start = self.pos;
            while self.bytes.get(self.pos).copied().is_some_and(is_ident_char) {
                self.pos += 1;
            }
            if self.src[suffix_start..self.pos].starts_with('f') {
                float = true;
            }
        }
        self.token(
            if float {
                TokenKind::Float
            } else {
                TokenKind::Int
            },
            start,
            line,
        )
    }

    fn punct(&mut self) -> Token<'a> {
        let (start, line) = (self.pos, self.line);
        for op in PUNCTS {
            if self.src[self.pos..].starts_with(op) {
                self.pos += op.len();
                return self.token(TokenKind::Punct, start, line);
            }
        }
        // Single byte (or one UTF-8 scalar, so we never split a char).
        let len = self.src[self.pos..]
            .chars()
            .next()
            .map_or(1, char::len_utf8);
        self.pos += len;
        self.token(TokenKind::Punct, start, line)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_keywords_and_puncts() {
        let toks = kinds("unsafe fn f(x: u32) -> bool { x == 3 }");
        assert!(toks.contains(&(TokenKind::Ident, "unsafe")));
        assert!(toks.contains(&(TokenKind::Punct, "->")));
        assert!(toks.contains(&(TokenKind::Punct, "==")));
        assert!(toks.contains(&(TokenKind::Int, "3")));
    }

    #[test]
    fn maximal_munch_never_splits_operators() {
        let toks = kinds("a <= b >= c != d == e => f :: g += h ..= i");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|&(_, t)| t)
            .collect();
        assert_eq!(puncts, ["<=", ">=", "!=", "==", "=>", "::", "+=", "..="]);
    }

    #[test]
    fn strings_and_comments_are_single_tokens() {
        let toks = kinds("let s = \"panic! .unwrap()\"; // Ordering::Relaxed here");
        assert!(toks
            .iter()
            .any(|&(k, t)| k == TokenKind::Str && t.contains("panic!")));
        assert!(toks
            .iter()
            .any(|&(k, t)| k == TokenKind::LineComment && t.contains("Ordering::Relaxed")));
        // No Ident token carries the quarantined words.
        assert!(!toks
            .iter()
            .any(|&(k, t)| k == TokenKind::Ident && (t == "panic" || t == "Ordering")));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds("let x = r#\"unsafe \" inner\"#; let y = br##\"thread_rng()\"##;");
        let raws: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::RawStr)
            .map(|&(_, t)| t)
            .collect();
        assert_eq!(raws.len(), 2);
        assert!(raws[0].contains("unsafe"));
        assert!(raws[1].starts_with("br##"));
        assert!(!toks
            .iter()
            .any(|&(k, t)| k == TokenKind::Ident && t == "thread_rng"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ let a = 1;");
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert!(toks[0].1.ends_with("still comment */"));
        assert!(toks.iter().any(|&(k, t)| k == TokenKind::Ident && t == "a"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let u = '\\u{1F600}'; }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|&(_, t)| t)
            .collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        let chars: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|&(_, t)| t)
            .collect();
        assert_eq!(chars, ["'x'", "'\\u{1F600}'"]);
    }

    #[test]
    fn numbers_floats_and_tuple_access() {
        let toks = kinds(
            "let a = 1.0; let b = x.0; let c = 1e-3; let d = 2.; let e = 1.max(2); let f = 0xff;",
        );
        let floats: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Float)
            .map(|&(_, t)| t)
            .collect();
        assert_eq!(floats, ["1.0", "1e-3", "2."]);
        // `x.0` and `1.max` keep their integer parts.
        assert!(toks.iter().any(|&(k, t)| k == TokenKind::Int && t == "0"));
        assert!(toks.iter().any(|&(k, t)| k == TokenKind::Int && t == "1"));
        assert!(toks
            .iter()
            .any(|&(k, t)| k == TokenKind::Int && t == "0xff"));
    }

    #[test]
    fn float_suffixes_classify_as_float() {
        let toks = kinds("let a = 1f64; let b = 3u32; let c = 0.5f32;");
        assert!(toks
            .iter()
            .any(|&(k, t)| k == TokenKind::Float && t == "1f64"));
        assert!(toks
            .iter()
            .any(|&(k, t)| k == TokenKind::Int && t == "3u32"));
        assert!(toks
            .iter()
            .any(|&(k, t)| k == TokenKind::Float && t == "0.5f32"));
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let src = "let a = 1;\nlet s = \"two\nlines\";\nlet b = 2;\n";
        let toks = lex(src);
        let b = toks
            .iter()
            .find(|t| t.kind == TokenKind::Ident && t.text == "b")
            .unwrap();
        // The string occupies lines 2–3, so `let b` lands on line 4; the
        // string token itself reports the line it *starts* on.
        assert_eq!(b.line, 4);
        let s = toks.iter().find(|t| t.kind == TokenKind::Str).unwrap();
        assert_eq!(s.line, 2);
    }

    #[test]
    fn tokens_are_contiguous_source_slices() {
        // Every token's text must reappear verbatim, in order, in the
        // source — i.e. the lexer only ever skips whitespace.
        let src = "fn f() { let x = \"s\"; /* c */ x.len() + 1.5 }";
        let mut cursor = 0;
        for t in lex(src) {
            let at = src[cursor..].find(t.text).expect("token text in source") + cursor;
            assert!(src[cursor..at].chars().all(char::is_whitespace));
            cursor = at + t.text.len();
        }
        assert!(src[cursor..].chars().all(char::is_whitespace));
    }
}
