//! Library half of the `xtask` tool: the hand-rolled token [`lexer`] and
//! the token-aware [`lint`] engine. Split out of the binary so the
//! fixture corpus in `crates/xtask/tests/` can drive
//! [`lint::lint_source`] on in-memory snippets; the subcommand plumbing
//! (`ci`, `miri`, `schedules`) stays in the binary.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod lint;
