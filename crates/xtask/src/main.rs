//! Workspace tooling, invoked as `cargo xtask <command>` (the alias lives
//! in `.cargo/config.toml`).
//!
//! * `cargo xtask lint` — the token-aware LS3DF source analysis over all
//!   workspace sources (see [`xtask::lint`] for the rules and the
//!   allowlist format); writes `target/lint-report.json`;
//! * `cargo xtask miri` — the curated unsafe-core test filter under the
//!   Miri interpreter (skips loudly when the nightly component is not
//!   installed — the offline container cannot fetch it);
//! * `cargo xtask schedules` — the schedule-exploration gate: pool suite
//!   and SCF digest matrix under every adversarial work-selection order;
//! * `cargo xtask ci` — the tier-1 gate: fmt, clippy, lint, lint
//!   fixtures, the test suite under both scheduling regimes, zero-alloc,
//!   ckpt-resume, obs-report, schedules, miri — with an `--offline`
//!   fallback for each cargo step when the registry is unreachable.

#![forbid(unsafe_code)]

mod ci;
mod miri;
mod schedules;

use std::path::PathBuf;
use std::process::ExitCode;
use xtask::lint;

fn usage() -> &'static str {
    "usage: cargo xtask <command>\n\
     \n\
     commands:\n\
       lint       run the token-aware LS3DF source rules over the workspace\n\
                  (report: target/lint-report.json)\n\
       miri       run the curated unsafe-core test filter under Miri\n\
                  (skips loudly when the nightly component is unavailable)\n\
       schedules  run pool tests + an SCF digest matrix under every\n\
                  adversarial work-stealing schedule\n\
       ci         run the full tier-1 gate (fmt, clippy, lint, fixtures,\n\
                  tests, zero-alloc, ckpt-resume, obs-report, schedules,\n\
                  miri)\n"
}

/// Workspace root: xtask lives at `<root>/crates/xtask`.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = workspace_root();
    match args.first().map(String::as_str) {
        Some("lint") => match lint::run(&root) {
            Ok(0) => ExitCode::SUCCESS,
            Ok(n) => {
                eprintln!("xtask lint: {n} violation(s)");
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("xtask lint: {e}");
                ExitCode::FAILURE
            }
        },
        Some("miri") => match miri::run(&root) {
            // An unavailable Miri is a loud skip, not a failure: the
            // offline container cannot install nightly components.
            miri::Outcome::Passed | miri::Outcome::Unavailable(_) => ExitCode::SUCCESS,
            miri::Outcome::Failed => ExitCode::FAILURE,
        },
        Some("schedules") => {
            if schedules::run(&root) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Some("ci") => {
            if ci::run(&root) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`\n{}", usage());
            ExitCode::FAILURE
        }
        None => {
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}
