//! Workspace tooling, invoked as `cargo xtask <command>` (the alias lives
//! in `.cargo/config.toml`).
//!
//! * `cargo xtask lint` — the LS3DF-specific syntactic lint pass over all
//!   workspace sources (see [`lint`] for the rules and the allowlist
//!   format);
//! * `cargo xtask ci` — the tier-1 gate: `fmt --check`, `clippy -D
//!   warnings`, `xtask lint`, `cargo test -q`, with an `--offline`
//!   fallback for each cargo step when the registry is unreachable.

mod ci;
mod lint;

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: cargo xtask <command>\n\
     \n\
     commands:\n\
       lint    run the LS3DF source lint rules over the workspace\n\
       ci      run the full tier-1 gate (fmt, clippy, lint, test)\n"
}

/// Workspace root: xtask lives at `<root>/crates/xtask`.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = workspace_root();
    match args.first().map(String::as_str) {
        Some("lint") => match lint::run(&root) {
            Ok(0) => ExitCode::SUCCESS,
            Ok(n) => {
                eprintln!("xtask lint: {n} violation(s)");
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("xtask lint: {e}");
                ExitCode::FAILURE
            }
        },
        Some("ci") => {
            if ci::run(&root) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`\n{}", usage());
            ExitCode::FAILURE
        }
        None => {
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}
