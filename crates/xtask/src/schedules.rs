//! `cargo xtask schedules`: the deterministic schedule-exploration gate.
//!
//! The LS3DF determinism contract says the work-stealing pool is a pure
//! performance knob — *any* legal schedule must produce bit-identical
//! physics. The thread-matrix test already varies thread counts; this
//! gate varies the *work-selection order itself*, forcing adversarial
//! steal patterns the default policy never generates (see
//! `rayon::Schedule`: `lifo-starve`, `all-steal`, `reverse-park`).
//!
//! Two legs per run:
//!
//! 1. the rayon shim's own unit suite (`cargo test -p rayon`) once per
//!    schedule with `LS3DF_SCHEDULE` pinned — join correctness, nested-
//!    join deadlock freedom and panic propagation under each forced
//!    order, including for the lazily-created *global* pool the library
//!    drivers use;
//! 2. the digest matrix (`cargo test -p ls3df --test
//!    schedule_exploration`) — a short SCF re-executed in a subprocess
//!    per schedule, asserting the patched-density/history digest is
//!    bit-identical across every explored order *and* the sequential
//!    run.

use rayon::Schedule;
use std::path::Path;
use std::process::Command;

/// Runs both legs over every [`Schedule`]; returns `true` when all pass.
pub fn run(root: &Path) -> bool {
    println!("=== xtask schedules ===");
    let mut all_ok = true;
    let mut summary = Vec::new();
    for schedule in Schedule::ALL {
        let name = schedule.name();
        println!("--- schedules: pool suite under LS3DF_SCHEDULE={name} ---");
        let ok = run_cargo(
            root,
            &["test", "-p", "rayon", "-q"],
            &[("LS3DF_SCHEDULE", name)],
        );
        all_ok &= ok;
        summary.push((format!("pool suite [{name}]"), ok));
    }
    println!("--- schedules: SCF digest matrix across all schedules ---");
    let ok = run_cargo(
        root,
        &[
            "test",
            "-p",
            "ls3df",
            "--test",
            "schedule_exploration",
            "-q",
        ],
        &[],
    );
    all_ok &= ok;
    summary.push(("scf digest matrix".to_string(), ok));

    println!("--- schedules summary ---");
    for (name, ok) in &summary {
        println!("{name:<28} {}", if *ok { "ok" } else { "FAILED" });
    }
    println!(
        "xtask schedules: {} schedules explored, {}",
        Schedule::ALL.len(),
        if all_ok { "all passed" } else { "FAILED" }
    );
    all_ok
}

fn run_cargo(root: &Path, args: &[&str], env: &[(&str, &str)]) -> bool {
    let mut cmd = Command::new("cargo");
    cmd.args(args).current_dir(root);
    for (k, v) in env {
        cmd.env(k, v);
    }
    match cmd.status() {
        Ok(s) => s.success(),
        Err(e) => {
            eprintln!("cannot spawn cargo: {e}");
            false
        }
    }
}
