//! `cargo xtask miri`: the unsafe core under the Miri interpreter.
//!
//! Miri executes the tests in an interpreter that checks every pointer,
//! aliasing, initialization and data-race rule dynamically — the
//! strongest evidence available that the workspace's audited `unsafe`
//! surface (the work-stealing pool's `JobRef` lifecycle, the counting
//! global allocator's raw `GlobalAlloc` forwarding, the checkpoint
//! codec's byte-level corruption handling) is actually sound, not just
//! plausibly commented. The filter is curated: interpretation is ~100×
//! slower than native, so whole-SCF integration tests are out and the
//! unit suites of the three unsafe-adjacent targets are in.
//!
//! Miri ships only with the nightly toolchain. The offline build
//! container cannot install it (`rustup component add miri` needs the
//! network), so an unavailable Miri is reported as a SKIPPED step with a
//! visible notice — never silently, and never as a pass.

use std::path::Path;
use std::process::Command;

/// What a run amounted to. [`ci`](crate::ci) maps `Unavailable` to a
/// skipped (non-failing) step; the standalone subcommand exits 0 on it.
pub enum Outcome {
    /// Every curated target passed under Miri.
    Passed,
    /// Miri ran and at least one target failed.
    Failed,
    /// Miri (or the nightly toolchain) is not installed.
    Unavailable(String),
}

/// The curated unsafe-core filter. Each entry is `(label, cargo args)`;
/// all run under `cargo +nightly miri` with the flags from
/// [`MIRIFLAGS`].
const TARGETS: [(&str, &[&str]); 3] = [
    // JobRef lifecycle, join/steal/panic paths, the schedule matrix.
    ("pool", &["test", "-p", "rayon", "--lib"]),
    // Counting global allocator: raw GlobalAlloc forwarding + counter.
    (
        "alloc-count",
        &["test", "-p", "ls3df", "--features", "alloc-count", "--lib"],
    ),
    // Snapshot codec and its byte-mucking corruption tests.
    ("ckpt", &["test", "-p", "ls3df-ckpt", "--lib"]),
];

/// `-Zmiri-disable-isolation`: the pool tests read the clock (condvar
/// timeouts) and the ckpt tests touch the filesystem; both are host
/// facilities Miri only exposes with isolation off.
const MIRIFLAGS: &str = "-Zmiri-disable-isolation";

/// Runs the curated filter; prints a per-target summary.
pub fn run(root: &Path) -> Outcome {
    println!("=== xtask miri ===");
    if let Err(why) = probe(root) {
        println!("xtask miri: SKIPPED — {why}");
        println!(
            "xtask miri: install with `rustup +nightly component add miri` \
             (needs network access) to run this gate"
        );
        return Outcome::Unavailable(why);
    }
    let mut all_ok = true;
    for (label, args) in TARGETS {
        println!("--- miri: {label} ---");
        let status = Command::new("cargo")
            .arg("+nightly")
            .arg("miri")
            .args(args)
            .arg("-q")
            .env("MIRIFLAGS", MIRIFLAGS)
            .current_dir(root)
            .status();
        match status {
            Ok(s) if s.success() => println!("miri {label}: ok"),
            Ok(_) => {
                println!("miri {label}: FAILED");
                all_ok = false;
            }
            Err(e) => {
                println!("miri {label}: FAILED (cannot spawn cargo: {e})");
                all_ok = false;
            }
        }
    }
    if all_ok {
        Outcome::Passed
    } else {
        Outcome::Failed
    }
}

/// Checks that `cargo +nightly miri` exists at all, without running any
/// tests. Distinguishes "not installed" (skip) from "installed but
/// broken" (also skip, with the message preserved) — only test failures
/// from an actually-running Miri count as failures.
fn probe(root: &Path) -> Result<(), String> {
    let out = Command::new("cargo")
        .args(["+nightly", "miri", "--version"])
        .current_dir(root)
        .output()
        .map_err(|e| format!("cannot spawn cargo: {e}"))?;
    if out.status.success() {
        return Ok(());
    }
    let stderr = String::from_utf8_lossy(&out.stderr);
    Err(stderr
        .lines()
        .find(|l| !l.trim().is_empty())
        .unwrap_or("miri unavailable")
        .trim()
        .to_string())
}
