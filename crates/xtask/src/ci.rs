//! `cargo xtask ci`: the tier-1 gate, chaining
//!
//! 1. `cargo fmt --all -- --check`
//! 2. `cargo clippy --workspace --all-targets -- -D warnings`
//! 3. `cargo xtask lint` (in-process)
//! 4. `cargo test -q` twice: once with `LS3DF_THREADS=1` (exact
//!    sequential fallback) and once with the variable unset (work-stealing
//!    pool at the host's parallelism) — the determinism contract says both
//!    schedules must produce bit-identical physics, so both must pass.
//! 5. `cargo test -p ls3df --features alloc-count --test zero_alloc -q`
//!    under the same two scheduling regimes — the counting-allocator guard
//!    that a steady-state CG step and GENPOT solve stay heap-free (the
//!    batched-FFT equivalence suite in `crates/fft/tests/batched.rs` rides
//!    in step 4's full test passes).
//! 6. `cargo test -p ls3df --test ckpt_resume -q` — the checkpoint-resume
//!    smoke: a run snapshotted mid-SCF and resumed in a fresh process must
//!    reproduce the uninterrupted run bit-for-bit (it also rides in
//!    step 4; the dedicated step makes a checkpoint regression readable at
//!    a glance in the summary instead of buried in the full suite).
//! 7. `cargo test -p ls3df --test obs_report -q` twice: once with
//!    `--features obs,alloc-count` (a small instrumented SCF must emit a
//!    schema-valid run report with ≥95% wall-time attribution and the
//!    allocator probe feeding the metrics registry) and once with default
//!    features (the obs-off build must be a true no-op: zero-sized span
//!    guards, empty registries, reports flagged `obs_enabled: false`).
//!    Both feature states of the same test file must compile and pass.
//! 8. `cargo test -p ls3df --test scheme_contract --test scheme_digest -q`
//!    — the fragmentation-scheme gate: every registered scheme must meet
//!    its declared partition-of-unity tolerance across decompositions and
//!    buffers, and sign-alternating routed through the `FragmentScheme`
//!    trait must reproduce the pre-refactor SCF density digest
//!    bit-for-bit at LS3DF_THREADS ∈ {1, 2, max} (subprocess matrix).
//! 9. `cargo test -p ls3df --test kernel_tol -q` under the same two
//!    scheduling regimes — the kernel tolerance gate: the fast-kernel
//!    arithmetic (`LS3DF_KERNELS=fast`: packed r2c transforms, radix-4
//!    butterflies, the GEMM microkernel) must stay within the pinned
//!    per-kernel bounds of the reference arithmetic (DESIGN.md §6d).
//! 10. `cargo test -p ls3df --test group_balance --test dist_digest
//!     --test dist_fault -q` — the two-level distributed-execution gate:
//!     the fragment→group balancer properties (exactly-once assignment,
//!     heaviest-fragment imbalance bound, determinism), the subprocess
//!     digest matrix proving the SCF density bit-identical across
//!     `LS3DF_GROUPS ∈ {1, 2, 4}` × `LS3DF_THREADS ∈ {1, max}` against
//!     the pinned single-process golden, and the worker-kill robustness
//!     check (a dead rank surfaces as a typed `Ls3dfError::Comm` naming
//!     it, never a hang).
//! 11. `cargo test -p ls3df --features obs,alloc-count --test
//!     obs_dist_report --test dist_fault -q` — the rank-aware
//!     observability gate: an obs-enabled multi-group SCF must produce
//!     one merged schema-v2 report whose per-rank `fragment_solves`
//!     counters sum to the single-process total at `LS3DF_GROUPS ∈
//!     {1, 2, 4}`, a killed worker must surface as a `down` rank
//!     section (typed comm-error kind) with `telemetry_incomplete`
//!     set, and the committed `BENCH_fig5.json` must stay
//!     schema-valid.
//! 12. `cargo test -p xtask -q` — the lint engine's own gate: lexer and
//!     rule unit tests plus the fixture corpus in
//!     `crates/xtask/tests/fixtures/` (known-positive snippets must fire
//!     exactly their golden violations; known-negative snippets — unsafe
//!     in string literals, `Ordering::` in doc comments, raw strings —
//!     must stay silent).
//! 13. `cargo xtask schedules` (in-process) — pool suite + SCF digest
//!     matrix under every adversarial work-stealing schedule.
//! 14. `cargo xtask miri` (in-process) — the curated unsafe-core filter
//!     under Miri; reported as a loud SKIP when the nightly component is
//!     unavailable (the offline container cannot install it).
//!
//! Every cargo step retries with `--offline` when the first attempt fails
//! with a registry/network error (the build container has no registry
//! access; all workspace dependencies are path crates, so offline always
//! resolves). Steps whose tool component is not installed (e.g. a
//! toolchain without rustfmt) are reported as skipped, not failed —
//! offline containers must still be able to run the gate.

use crate::{miri, schedules};
use std::path::Path;
use std::process::Command;
use std::time::Instant;
use xtask::lint;

enum StepResult {
    Pass,
    Fail,
    Skip(String),
}

/// Environment overrides for one step: `Some(v)` sets the variable,
/// `None` removes it from the child's environment.
type StepEnv<'a> = &'a [(&'a str, Option<&'a str>)];

/// Runs the gate; returns `true` when every step passed (skips count as
/// passes, failures never do).
pub fn run(root: &Path) -> bool {
    let mut all_ok = true;
    let mut summary: Vec<(String, StepResult, f64)> = Vec::new();

    let steps: [(&str, &[&str]); 11] = [
        ("fmt", &["fmt", "--all", "--", "--check"]),
        (
            "clippy",
            &[
                "clippy",
                "--workspace",
                "--all-targets",
                "--",
                "-D",
                "warnings",
            ],
        ),
        ("test", &["test", "-q"]),
        (
            "zero-alloc",
            &[
                "test",
                "-p",
                "ls3df",
                "--features",
                "alloc-count",
                "--lib",
                "--test",
                "zero_alloc",
                "-q",
            ],
        ),
        (
            "ckpt-resume",
            &["test", "-p", "ls3df", "--test", "ckpt_resume", "-q"],
        ),
        (
            "obs-report [obs]",
            &[
                "test",
                "-p",
                "ls3df",
                "--features",
                "obs,alloc-count",
                "--test",
                "obs_report",
                "--test",
                "observer_order",
                "-q",
            ],
        ),
        (
            "obs-report [off]",
            &["test", "-p", "ls3df", "--test", "obs_report", "-q"],
        ),
        (
            "scheme",
            &[
                "test",
                "-p",
                "ls3df",
                "--test",
                "scheme_contract",
                "--test",
                "scheme_digest",
                "-q",
            ],
        ),
        (
            "kernel-tol",
            &["test", "-p", "ls3df", "--test", "kernel_tol", "-q"],
        ),
        (
            "dist",
            &[
                "test",
                "-p",
                "ls3df",
                "--test",
                "group_balance",
                "--test",
                "dist_digest",
                "--test",
                "dist_fault",
                "-q",
            ],
        ),
        (
            "obs-dist",
            &[
                "test",
                "-p",
                "ls3df",
                "--features",
                "obs,alloc-count",
                "--test",
                "obs_dist_report",
                "--test",
                "dist_fault",
                "-q",
            ],
        ),
    ];

    for (name, args) in [steps[0], steps[1]] {
        let (res, secs) = run_cargo_step(root, name, args, &[]);
        if matches!(res, StepResult::Fail) {
            all_ok = false;
        }
        summary.push((format!("cargo {name}"), res, secs));
    }

    // The lint pass runs in-process between clippy and the test suite.
    println!("\n=== xtask lint ===");
    let t = Instant::now();
    let lint_res = match lint::run(root) {
        Ok(0) => StepResult::Pass,
        Ok(_) => StepResult::Fail,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            StepResult::Fail
        }
    };
    if matches!(lint_res, StepResult::Fail) {
        all_ok = false;
    }
    summary.push((
        "xtask lint".to_string(),
        lint_res,
        t.elapsed().as_secs_f64(),
    ));

    // The lint engine's own tests: lexer + rule units and the fixture
    // corpus (golden expected-violation lists under tests/fixtures/).
    let (res, secs) = run_cargo_step(root, "lint-fixtures", &["test", "-p", "xtask", "-q"], &[]);
    if matches!(res, StepResult::Fail) {
        all_ok = false;
    }
    summary.push(("cargo lint-fixtures".to_string(), res, secs));

    // The test suite runs under both scheduling regimes: forced-sequential
    // (`LS3DF_THREADS=1`) and the default work-stealing pool (variable
    // removed so an operator's own setting can't mask either regime).
    let (_, args) = steps[2];
    let test_envs: [(&str, StepEnv<'_>); 2] = [
        ("test [LS3DF_THREADS=1]", &[("LS3DF_THREADS", Some("1"))]),
        ("test [pool]", &[("LS3DF_THREADS", None)]),
    ];
    for (name, env) in test_envs {
        let (res, secs) = run_cargo_step(root, name, args, env);
        if matches!(res, StepResult::Fail) {
            all_ok = false;
        }
        summary.push((format!("cargo {name}"), res, secs));
    }

    // The zero-allocation guard (counting global allocator, see
    // tests/zero_alloc.rs) also runs under both scheduling regimes.
    let (_, alloc_args) = steps[3];
    let alloc_envs: [(&str, StepEnv<'_>); 2] = [
        (
            "zero-alloc [LS3DF_THREADS=1]",
            &[("LS3DF_THREADS", Some("1"))],
        ),
        ("zero-alloc [pool]", &[("LS3DF_THREADS", None)]),
    ];
    for (name, env) in alloc_envs {
        let (res, secs) = run_cargo_step(root, name, alloc_args, env);
        if matches!(res, StepResult::Fail) {
            all_ok = false;
        }
        summary.push((format!("cargo {name}"), res, secs));
    }

    // Checkpoint-resume smoke (its subprocess legs pin their own
    // LS3DF_THREADS, so one invocation covers both regimes), then the
    // observability gate: the instrumented leg (obs + alloc-count,
    // schema-valid report with attribution/flop rates, hook-ordering
    // contract) and the obs-off leg (no-op contract — zero-sized span
    // guards, empty registries, reports flagged disabled), then the
    // fragmentation-scheme gate: the partition-of-unity contract sweep
    // plus the subprocess digest proving sign-alternating through the
    // `FragmentScheme` trait is bit-identical to the pre-refactor run
    // (the digest test pins its own LS3DF_THREADS matrix).
    for (name, args) in [steps[4], steps[5], steps[6], steps[7]] {
        let (res, secs) = run_cargo_step(root, name, args, &[]);
        if matches!(res, StepResult::Fail) {
            all_ok = false;
        }
        summary.push((format!("cargo {name}"), res, secs));
    }

    // The two-level distributed-execution gate (balancer properties,
    // cross-process digest matrix, worker-kill robustness). The digest
    // test pins its own LS3DF_GROUPS × LS3DF_THREADS matrix in the
    // subprocess legs, so one invocation covers every regime.
    let (_, dist_args) = steps[9];
    let (res, secs) = run_cargo_step(root, "dist", dist_args, &[]);
    if matches!(res, StepResult::Fail) {
        all_ok = false;
    }
    summary.push(("cargo dist".to_string(), res, secs));

    // The rank-aware observability gate: obs-enabled multi-group runs
    // must produce one merged schema-v2 report (per-rank counters
    // summing to the single-process total, straggler/imbalance/comm
    // sections), a killed worker must land as a `down` rank section,
    // and the committed BENCH_fig5.json must stay schema-valid.
    let (_, obs_dist_args) = steps[10];
    let (res, secs) = run_cargo_step(root, "obs-dist", obs_dist_args, &[]);
    if matches!(res, StepResult::Fail) {
        all_ok = false;
    }
    summary.push(("cargo obs-dist".to_string(), res, secs));

    // The kernel tolerance gate (tests/kernel_tol.rs): the fast-kernel
    // arithmetic (packed r2c 3-D transform, radix-4 butterflies, GEMM
    // microkernel, lane-split dots) must stay within its pinned
    // per-kernel bounds of the reference arithmetic. Runs under both
    // scheduling regimes — the kernels must be schedule-independent as
    // well as policy-gated.
    let (_, ktol_args) = steps[8];
    let ktol_envs: [(&str, StepEnv<'_>); 2] = [
        (
            "kernel-tol [LS3DF_THREADS=1]",
            &[("LS3DF_THREADS", Some("1"))],
        ),
        ("kernel-tol [pool]", &[("LS3DF_THREADS", None)]),
    ];
    for (name, env) in ktol_envs {
        let (res, secs) = run_cargo_step(root, name, ktol_args, env);
        if matches!(res, StepResult::Fail) {
            all_ok = false;
        }
        summary.push((format!("cargo {name}"), res, secs));
    }

    // Schedule exploration: the determinism contract under adversarial
    // work-selection orders (see shims/rayon Schedule and DESIGN.md §6b).
    let t = Instant::now();
    let sched_res = if schedules::run(root) {
        StepResult::Pass
    } else {
        all_ok = false;
        StepResult::Fail
    };
    summary.push((
        "xtask schedules".to_string(),
        sched_res,
        t.elapsed().as_secs_f64(),
    ));

    // Miri over the unsafe core. Unavailable ⇒ loud skip: the offline
    // container cannot install the nightly component, and the gate must
    // stay runnable there.
    let t = Instant::now();
    let miri_res = match miri::run(root) {
        miri::Outcome::Passed => StepResult::Pass,
        miri::Outcome::Failed => {
            all_ok = false;
            StepResult::Fail
        }
        miri::Outcome::Unavailable(why) => StepResult::Skip(format!("miri unavailable: {why}")),
    };
    summary.push((
        "xtask miri".to_string(),
        miri_res,
        t.elapsed().as_secs_f64(),
    ));

    println!("\n=== ci summary ===");
    for (name, res, secs) in &summary {
        let status = match res {
            StepResult::Pass => "ok".to_string(),
            StepResult::Fail => "FAILED".to_string(),
            StepResult::Skip(why) => format!("skipped ({why})"),
        };
        println!("{name:<32} {status:<24} {secs:7.1}s");
    }
    println!("ci: {}", if all_ok { "all steps passed" } else { "FAILED" });
    all_ok
}

/// `env` entries with `Some(value)` are set on the child; `None` entries
/// are removed (so the step sees a clean default even if the operator's
/// shell exported the variable).
fn run_cargo_step(root: &Path, name: &str, args: &[&str], env: StepEnv<'_>) -> (StepResult, f64) {
    println!("\n=== cargo {name} ===");
    let t = Instant::now();

    let run = |extra: &[&str]| -> Result<(bool, String), String> {
        let mut cmd = Command::new("cargo");
        cmd.args(args.iter().take(1))
            .args(extra)
            .args(args.iter().skip(1))
            .current_dir(root);
        for (key, value) in env {
            match value {
                Some(v) => {
                    cmd.env(key, v);
                }
                None => {
                    cmd.env_remove(key);
                }
            }
        }
        let output = cmd
            .output()
            .map_err(|e| format!("cannot spawn cargo: {e}"))?;
        let stderr = String::from_utf8_lossy(&output.stderr).into_owned();
        print!("{}", String::from_utf8_lossy(&output.stdout));
        eprint!("{stderr}");
        Ok((output.status.success(), stderr))
    };

    let result = match run(&[]) {
        Ok((true, _)) => StepResult::Pass,
        Ok((false, stderr)) if is_network_failure(&stderr) => {
            println!("=== cargo {name}: registry unreachable, retrying --offline ===");
            match run(&["--offline"]) {
                Ok((true, _)) => StepResult::Pass,
                Ok((false, stderr)) if is_missing_component(&stderr) => {
                    StepResult::Skip(format!("{name} not installed"))
                }
                Ok((false, _)) => StepResult::Fail,
                Err(e) => {
                    eprintln!("{e}");
                    StepResult::Fail
                }
            }
        }
        Ok((false, stderr)) if is_missing_component(&stderr) => {
            StepResult::Skip(format!("{name} not installed"))
        }
        Ok((false, _)) => StepResult::Fail,
        Err(e) => {
            eprintln!("{e}");
            StepResult::Fail
        }
    };
    (result, t.elapsed().as_secs_f64())
}

fn is_network_failure(stderr: &str) -> bool {
    [
        "failed to download",
        "Could not resolve host",
        "network failure",
        "failed to fetch",
    ]
    .iter()
    .any(|m| stderr.contains(m))
}

fn is_missing_component(stderr: &str) -> bool {
    [
        "no such command",
        "is not installed",
        "error: toolchain",
        "component",
    ]
    .iter()
    .any(|m| stderr.contains(m))
        && !stderr.contains("error[E")
}
