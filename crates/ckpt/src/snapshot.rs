//! The snapshot container format.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"LS3DFCKP"
//! 8       4     format version (= FORMAT_VERSION)
//! 12      4     section count
//! then per section:
//!         8     section id (ASCII, space-padded)
//!         8     payload length in bytes
//!         4     CRC32 of the payload
//!         len   payload
//! ```
//!
//! Every section is independently checksummed, so a flipped bit anywhere
//! in a multi-GB snapshot is caught at the section that suffered it and
//! reported by name — never silently resumed into physics. Unknown
//! section ids are preserved on read (forward compatibility: an older
//! build can rotate newer snapshots without understanding them), but
//! a version bump is required for layout changes inside known sections.

use crate::crc32::crc32;
use crate::CkptError;

/// Magic tag opening every snapshot file.
pub const MAGIC: [u8; 8] = *b"LS3DFCKP";

/// Format version this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;

/// Hard cap on a single section payload (64 GiB) — guards the reader
/// against allocating off a corrupt length field.
const MAX_SECTION_LEN: u64 = 64 << 30;

/// An 8-byte ASCII section identifier (shorter names space-padded).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SectionId(pub [u8; 8]);

impl SectionId {
    /// Builds an id from a short name (≤ 8 bytes; padded with spaces).
    /// Longer names are truncated — use distinct 8-byte prefixes.
    pub const fn new(name: &str) -> Self {
        let bytes = name.as_bytes();
        let mut id = [b' '; 8];
        let mut i = 0;
        while i < bytes.len() && i < 8 {
            id[i] = bytes[i];
            i += 1;
        }
        SectionId(id)
    }

    /// The trimmed ASCII name.
    pub fn name(&self) -> String {
        String::from_utf8_lossy(&self.0).trim_end().to_string()
    }
}

impl std::fmt::Debug for SectionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SectionId({})", self.name())
    }
}

/// One named, checksummed payload.
#[derive(Clone, Debug)]
pub struct Section {
    /// Identifier.
    pub id: SectionId,
    /// Raw payload bytes.
    pub payload: Vec<u8>,
}

/// An in-memory snapshot: an ordered list of sections.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Sections in file order.
    pub sections: Vec<Section>,
}

impl Snapshot {
    /// Empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a section (ids must be unique; duplicates are rejected at
    /// encode time).
    pub fn push(&mut self, id: SectionId, payload: Vec<u8>) -> &mut Self {
        self.sections.push(Section { id, payload });
        self
    }

    /// The payload of section `id`, if present.
    pub fn get(&self, id: SectionId) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|s| s.id == id)
            .map(|s| s.payload.as_slice())
    }

    /// The payload of section `id`, or a typed missing-section error.
    pub fn require(&self, id: SectionId) -> Result<&[u8], CkptError> {
        self.get(id)
            .ok_or_else(|| CkptError::MissingSection { section: id.name() })
    }

    /// Serializes the snapshot (magic, version, section table with
    /// per-section CRC32).
    pub fn encode(&self) -> Result<Vec<u8>, CkptError> {
        for (i, s) in self.sections.iter().enumerate() {
            if self.sections[..i].iter().any(|t| t.id == s.id) {
                return Err(CkptError::DuplicateSection {
                    section: s.id.name(),
                });
            }
        }
        let total: usize = 16
            + self
                .sections
                .iter()
                .map(|s| 20 + s.payload.len())
                .sum::<usize>();
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for s in &self.sections {
            out.extend_from_slice(&s.id.0);
            out.extend_from_slice(&(s.payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(&s.payload).to_le_bytes());
            out.extend_from_slice(&s.payload);
        }
        Ok(out)
    }

    /// Parses and CRC-verifies a serialized snapshot.
    pub fn decode(bytes: &[u8]) -> Result<Self, CkptError> {
        let mut r = crate::ByteReader::new(bytes);
        let magic = r.get_bytes(8, "magic tag")?;
        if magic != MAGIC {
            let mut got = [0u8; 8];
            got.copy_from_slice(magic);
            return Err(CkptError::BadMagic { got });
        }
        let version = r.get_u32("format version")?;
        if version != FORMAT_VERSION {
            return Err(CkptError::UnsupportedVersion {
                got: version,
                supported: FORMAT_VERSION,
            });
        }
        let n_sections = r.get_u32("section count")?;
        let mut sections = Vec::with_capacity(n_sections.min(1024) as usize);
        for i in 0..n_sections {
            let mut id = [0u8; 8];
            id.copy_from_slice(r.get_bytes(8, &format!("section {i} id"))?);
            let id = SectionId(id);
            let name = id.name();
            let len = r.get_u64(&format!("section `{name}` length"))?;
            if len > MAX_SECTION_LEN {
                return Err(CkptError::Malformed {
                    section: name,
                    detail: format!("implausible payload length {len}"),
                });
            }
            let stored = r.get_u32(&format!("section `{name}` checksum"))?;
            let payload = r.get_bytes(len as usize, &format!("section `{name}` payload"))?;
            let computed = crc32(payload);
            if computed != stored {
                return Err(CkptError::CrcMismatch {
                    section: name,
                    stored,
                    computed,
                });
            }
            if sections.iter().any(|s: &Section| s.id == id) {
                return Err(CkptError::DuplicateSection { section: name });
            }
            sections.push(Section {
                id,
                payload: payload.to_vec(),
            });
        }
        Ok(Snapshot { sections })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CkptErrorKind;

    fn sample() -> Snapshot {
        let mut s = Snapshot::new();
        s.push(SectionId::new("VIN"), vec![1, 2, 3, 4, 5]);
        s.push(
            SectionId::new("RHO"),
            (0..200u16).flat_map(|x| x.to_le_bytes()).collect(),
        );
        s.push(SectionId::new("MIXER"), Vec::new()); // empty payload is legal
        s
    }

    #[test]
    fn roundtrip() {
        let s = sample();
        let bytes = s.encode().unwrap();
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back.sections.len(), 3);
        assert_eq!(
            back.require(SectionId::new("VIN")).unwrap(),
            &[1, 2, 3, 4, 5]
        );
        assert_eq!(back.get(SectionId::new("MIXER")).unwrap().len(), 0);
        assert!(back.get(SectionId::new("NOPE")).is_none());
        assert_eq!(
            back.require(SectionId::new("NOPE")).unwrap_err().kind(),
            CkptErrorKind::MissingSection
        );
    }

    #[test]
    fn every_flipped_payload_byte_is_caught() {
        let bytes = sample().encode().unwrap();
        // Flip one byte inside each section's payload region and confirm
        // the CRC catches it and names the right section.
        let decoded = Snapshot::decode(&bytes).unwrap();
        let mut offset = 16usize;
        for s in &decoded.sections {
            offset += 20; // section header
            if !s.payload.is_empty() {
                let mut bad = bytes.clone();
                bad[offset + s.payload.len() / 2] ^= 0x40;
                match Snapshot::decode(&bad) {
                    Err(CkptError::CrcMismatch { section, .. }) => {
                        assert_eq!(section, s.id.name())
                    }
                    other => panic!("expected CrcMismatch for {:?}, got {other:?}", s.id),
                }
            }
            offset += s.payload.len();
        }
    }

    #[test]
    fn truncation_and_bad_magic_and_version() {
        let bytes = sample().encode().unwrap();
        for cut in [3, 10, 20, bytes.len() - 1] {
            let err = Snapshot::decode(&bytes[..cut]).unwrap_err();
            assert_eq!(err.kind(), CkptErrorKind::Truncated, "cut at {cut}");
        }
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(
            Snapshot::decode(&bad).unwrap_err().kind(),
            CkptErrorKind::BadMagic
        );
        let mut v2 = bytes.clone();
        v2[8] = 0xff; // version
        assert_eq!(
            Snapshot::decode(&v2).unwrap_err().kind(),
            CkptErrorKind::UnsupportedVersion
        );
    }

    #[test]
    fn duplicate_sections_rejected_both_ways() {
        let mut s = Snapshot::new();
        s.push(SectionId::new("A"), vec![1]);
        s.push(SectionId::new("A"), vec![2]);
        assert_eq!(
            s.encode().unwrap_err().kind(),
            CkptErrorKind::DuplicateSection
        );
    }

    #[test]
    fn section_ids_pad_and_trim() {
        let id = SectionId::new("SCFHIST");
        assert_eq!(id.0, *b"SCFHIST ");
        assert_eq!(id.name(), "SCFHIST");
    }
}
