//! Atomic snapshot placement and rotation.
//!
//! A crash mid-write must never destroy the previous good snapshot, so
//! all writes go through [`AtomicWrite`]: the bytes land in a temp file
//! in the *same directory* (rename across filesystems is not atomic),
//! are fsynced, and only then renamed over the final name. On POSIX the
//! rename is atomic, so readers observe either the old complete file or
//! the new complete file — never a torn one. The directory itself is
//! fsynced best-effort afterwards so the rename survives power loss.
//!
//! Rotation keeps the last K snapshots (`scf-NNNNNN.ls3df`), pruning
//! older ones only after the new write has fully committed.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::CkptError;

/// File extension used by rotated SCF snapshots.
pub const SNAPSHOT_EXT: &str = "ls3df";

/// Atomic replace-file writer (temp + fsync + rename).
pub struct AtomicWrite;

impl AtomicWrite {
    /// Atomically replaces `path` with `bytes`.
    ///
    /// This is the only sanctioned way to put snapshot bytes on disk;
    /// the `ckpt-atomic` workspace lint flags snapshot files created any
    /// other way.
    pub fn commit(path: &Path, bytes: &[u8]) -> Result<(), CkptError> {
        let dir = path.parent().unwrap_or_else(|| Path::new("."));
        let file_name = path
            .file_name()
            .ok_or_else(|| CkptError::Io {
                path: path.display().to_string(),
                detail: "snapshot path has no file name".to_string(),
            })?
            .to_string_lossy()
            .into_owned();
        let tmp = dir.join(format!(".{file_name}.tmp"));
        // ckpt-audit: this is the atomic writer itself — the temp file is
        // fsynced and renamed over the final path below.
        let mut f = fs::File::create(&tmp).map_err(|e| CkptError::io(&tmp, &e))?;
        f.write_all(bytes).map_err(|e| CkptError::io(&tmp, &e))?;
        f.sync_all().map_err(|e| CkptError::io(&tmp, &e))?;
        drop(f);
        if let Err(e) = fs::rename(&tmp, path) {
            let _ = fs::remove_file(&tmp);
            return Err(CkptError::io(path, &e));
        }
        // Best-effort directory fsync so the rename itself is durable;
        // some filesystems reject opening directories, which is fine.
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }
}

/// The rotated snapshot name for outer iteration `iteration`.
pub fn snapshot_name(iteration: usize) -> String {
    format!("scf-{iteration:06}.{SNAPSHOT_EXT}")
}

/// Parses an iteration index out of a `scf-NNNNNN.ls3df` file name.
fn parse_snapshot_name(name: &str) -> Option<usize> {
    let rest = name.strip_prefix("scf-")?;
    let digits = rest.strip_suffix(&format!(".{SNAPSHOT_EXT}"))?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Atomically writes `bytes` as the snapshot for `iteration` inside
/// `dir` (created if absent), then prunes all but the newest
/// `keep_last` snapshots. Returns the path written.
pub fn write_rotated(
    dir: &Path,
    iteration: usize,
    bytes: &[u8],
    keep_last: usize,
) -> Result<PathBuf, CkptError> {
    fs::create_dir_all(dir).map_err(|e| CkptError::io(dir, &e))?;
    let path = dir.join(snapshot_name(iteration));
    AtomicWrite::commit(&path, bytes)?;
    let keep = keep_last.max(1);
    let mut snaps = list_snapshots(dir)?;
    // list_snapshots sorts ascending by iteration; prune from the front.
    while snaps.len() > keep {
        let (_, old) = snaps.remove(0);
        // Never prune the file just written, even under a weird clock of
        // iteration indices (e.g. resume wrote a lower index).
        if old != path {
            let _ = fs::remove_file(&old);
        }
    }
    Ok(path)
}

/// All rotated snapshots in `dir`, sorted by iteration (ascending).
/// A missing directory is an empty list, not an error.
pub fn list_snapshots(dir: &Path) -> Result<Vec<(usize, PathBuf)>, CkptError> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(ref e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(CkptError::io(dir, &e)),
    };
    let mut out = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| CkptError::io(dir, &e))?;
        let name = entry.file_name();
        if let Some(iter) = parse_snapshot_name(&name.to_string_lossy()) {
            out.push((iter, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

/// The newest rotated snapshot in `dir`, if any.
pub fn latest_snapshot(dir: &Path) -> Result<Option<PathBuf>, CkptError> {
    Ok(list_snapshots(dir)?.pop().map(|(_, p)| p))
}

/// Reads a whole snapshot file, mapping I/O failures to [`CkptError`].
pub fn read_bytes(path: &Path) -> Result<Vec<u8>, CkptError> {
    fs::read(path).map_err(|e| CkptError::io(path, &e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("ls3df-ckpt-atomic-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn commit_replaces_without_tearing() {
        let d = tmpdir("commit");
        let p = d.join("snap.ls3df");
        AtomicWrite::commit(&p, b"first").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"first");
        AtomicWrite::commit(&p, b"second, longer payload").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"second, longer payload");
        // No temp litter left behind.
        let names: Vec<_> = fs::read_dir(&d)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["snap.ls3df".to_string()]);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn rotation_keeps_newest_k() {
        let d = tmpdir("rotate");
        for it in 1..=5 {
            write_rotated(&d, it, format!("iter {it}").as_bytes(), 2).unwrap();
        }
        let snaps = list_snapshots(&d).unwrap();
        let iters: Vec<usize> = snaps.iter().map(|(i, _)| *i).collect();
        assert_eq!(iters, vec![4, 5]);
        assert_eq!(
            latest_snapshot(&d).unwrap().unwrap(),
            d.join(snapshot_name(5))
        );
        assert_eq!(read_bytes(&d.join(snapshot_name(5))).unwrap(), b"iter 5");
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn keep_zero_still_keeps_the_new_snapshot() {
        let d = tmpdir("keep0");
        write_rotated(&d, 1, b"a", 0).unwrap();
        write_rotated(&d, 2, b"b", 0).unwrap();
        let snaps = list_snapshots(&d).unwrap();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].0, 2);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn listing_ignores_foreign_files_and_missing_dir() {
        let d = tmpdir("foreign");
        fs::write(d.join("notes.txt"), b"x").unwrap();
        fs::write(d.join("scf-abc.ls3df"), b"x").unwrap();
        fs::write(d.join("scf-000007.ls3df.bak"), b"x").unwrap();
        write_rotated(&d, 3, b"real", 5).unwrap();
        let snaps = list_snapshots(&d).unwrap();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].0, 3);
        assert!(list_snapshots(&d.join("does-not-exist"))
            .unwrap()
            .is_empty());
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn missing_file_reads_as_typed_io_error() {
        let e = read_bytes(Path::new("/definitely/not/here.ls3df")).unwrap_err();
        assert_eq!(e.kind(), crate::CkptErrorKind::Io);
    }
}
