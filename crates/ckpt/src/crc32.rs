//! CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.
//!
//! Dependency-free so the checkpoint layer works in the offline build
//! container. The table is built once at first use.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    })
}

/// CRC-32 of `bytes` (init `0xffff_ffff`, final xor `0xffff_ffff` — the
/// standard zlib convention, so values can be cross-checked externally).
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = t[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vectors for the IEEE polynomial.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let mut data = vec![0u8; 1024];
        data[512] = 0x55;
        let a = crc32(&data);
        data[512] ^= 0x01;
        assert_ne!(a, crc32(&data));
    }
}
