//! Little-endian byte codec for section payloads.
//!
//! [`ByteWriter`] appends primitives to a growing buffer; [`ByteReader`]
//! walks one, returning [`CkptError::Truncated`] (with the caller-named
//! context) the moment bytes run out — "unexpected EOF" alone is useless
//! in a multi-section, multi-GB snapshot.

use crate::CkptError;

/// Append-only little-endian encoder.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Fresh empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, x: u64) -> &mut Self {
        self.buf.extend_from_slice(&x.to_le_bytes());
        self
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, x: u32) -> &mut Self {
        self.buf.extend_from_slice(&x.to_le_bytes());
        self
    }

    /// Appends an `f64` bit pattern (bit-exact round trip).
    pub fn put_f64(&mut self, x: f64) -> &mut Self {
        self.buf.extend_from_slice(&x.to_bits().to_le_bytes());
        self
    }

    /// Appends a whole `f64` slice (length is *not* written; prefix with
    /// [`put_u64`](Self::put_u64) when the reader can't infer it).
    pub fn put_f64_slice(&mut self, xs: &[f64]) -> &mut Self {
        self.buf.reserve(xs.len() * 8);
        for &x in xs {
            self.buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        self
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(bytes);
        self
    }

    /// Consumes the writer, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Cursor over a byte slice with context-named truncation errors.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CkptError> {
        if self.remaining() < n {
            return Err(CkptError::Truncated {
                what: format!("{what} ({n} bytes needed, {} left)", self.remaining()),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u64`, naming `what` on truncation.
    pub fn get_u64(&mut self, what: &str) -> Result<u64, CkptError> {
        let s = self.take(8, what)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a `u32`, naming `what` on truncation.
    pub fn get_u32(&mut self, what: &str) -> Result<u32, CkptError> {
        let s = self.take(4, what)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(u32::from_le_bytes(b))
    }

    /// Reads an `f64` bit pattern, naming `what` on truncation.
    pub fn get_f64(&mut self, what: &str) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.get_u64(what)?))
    }

    /// Reads `n` doubles into a fresh vector.
    pub fn get_f64_vec(&mut self, n: usize, what: &str) -> Result<Vec<f64>, CkptError> {
        let s = self.take(n * 8, what)?;
        let mut out = Vec::with_capacity(n);
        for chunk in s.chunks_exact(8) {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            out.push(f64::from_bits(u64::from_le_bytes(b)));
        }
        Ok(out)
    }

    /// Reads exactly `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], CkptError> {
        self.take(n, what)
    }

    /// A `u64` that must fit a `usize` count bounded by `max` (guards
    /// against allocating gigabytes off a corrupt length field).
    pub fn get_count(&mut self, max: u64, what: &str) -> Result<usize, CkptError> {
        let n = self.get_u64(what)?;
        if n > max {
            return Err(CkptError::Malformed {
                section: String::new(),
                detail: format!("implausible count {n} for {what} (cap {max})"),
            });
        }
        Ok(n as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CkptErrorKind;

    #[test]
    fn roundtrip_primitives() {
        let mut w = ByteWriter::new();
        w.put_u64(42).put_u32(7).put_f64(-0.125);
        w.put_f64_slice(&[1.0, 2.0, f64::NAN]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u64("a").unwrap(), 42);
        assert_eq!(r.get_u32("b").unwrap(), 7);
        assert_eq!(r.get_f64("c").unwrap(), -0.125);
        let v = r.get_f64_vec(3, "d").unwrap();
        assert_eq!(v[0], 1.0);
        assert!(v[2].is_nan(), "NaN bit patterns survive");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_names_context() {
        let bytes = 5u64.to_le_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        let err = r.get_u64("mixer history length").unwrap_err();
        assert_eq!(err.kind(), CkptErrorKind::Truncated);
        assert!(err.to_string().contains("mixer history length"));
    }

    #[test]
    fn counts_are_bounded() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(
            r.get_count(1 << 20, "fragments").unwrap_err().kind(),
            CkptErrorKind::Malformed
        );
    }
}
