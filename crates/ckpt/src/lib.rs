//! # ls3df-ckpt
//!
//! Checkpoint/restart substrate for long LS3DF runs. The paper's
//! production calculations (ZnTe₁₋ₓOₓ on 131,072 BlueGene/P cores) are
//! multi-hour jobs; an interrupted SCF must be resumable, and a resumed
//! run must be **bit-identical** to an uninterrupted one. This crate owns
//! the machinery that makes that safe:
//!
//! * [`snapshot`] — the versioned container format: magic + format
//!   version + section table, CRC32 per section, so corruption is caught
//!   at the section that suffered it (never propagated into physics);
//! * [`atomic`] — write-temp + fsync + rename atomic replacement plus
//!   keep-last-K rotation, so a crash mid-write can never destroy the
//!   previous good snapshot;
//! * [`Fingerprint`] — FNV-1a digest accumulator used to fingerprint the
//!   physical options of a run, so a snapshot cannot silently resume
//!   under different physics;
//! * [`CheckpointPolicy`]/[`CheckpointConfig`] — when and where the SCF
//!   loop snapshots.
//!
//! The crate is deliberately dependency-free and knows nothing about
//! grids or wavefunctions: higher layers (`ls3df-grid`, `ls3df-core`)
//! encode their state into sections via [`codec`] and hand the bytes
//! here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomic;
pub mod codec;
mod crc32;
mod error;
pub mod snapshot;

pub use atomic::{
    latest_snapshot, list_snapshots, read_bytes, snapshot_name, write_rotated, AtomicWrite,
};
pub use codec::{ByteReader, ByteWriter};
pub use crc32::crc32;
pub use error::{CkptError, CkptErrorKind};
pub use snapshot::{Section, SectionId, Snapshot, FORMAT_VERSION, MAGIC};

use std::path::PathBuf;

/// When the SCF loop writes a snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckpointPolicy {
    /// Never snapshot (the default when no [`CheckpointConfig`] is set).
    Off,
    /// Snapshot after every `N`-th completed outer iteration, and once
    /// more when the run converges (so the final state is always on
    /// disk). `EveryN(0)` behaves like [`CheckpointPolicy::Off`].
    EveryN(usize),
    /// Snapshot only when the ΔV tolerance is reached.
    OnConvergence,
}

impl CheckpointPolicy {
    /// Should a snapshot be written after this completed iteration?
    pub fn wants_snapshot(self, iteration: usize, converged: bool) -> bool {
        match self {
            CheckpointPolicy::Off => false,
            CheckpointPolicy::EveryN(0) => false,
            CheckpointPolicy::EveryN(n) => converged || iteration.is_multiple_of(n),
            CheckpointPolicy::OnConvergence => converged,
        }
    }
}

/// Where and how often the SCF loop checkpoints.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Directory that receives rotated `scf-NNNNNN.ls3df` snapshots
    /// (created on first write).
    pub dir: PathBuf,
    /// Write cadence.
    pub policy: CheckpointPolicy,
    /// How many snapshots to keep; older ones are pruned after every
    /// successful write. `0` is treated as 1 (the snapshot just written
    /// is never deleted).
    pub keep_last: usize,
}

impl CheckpointConfig {
    /// Convenience constructor: snapshot into `dir` after every `n`-th
    /// iteration (and at convergence), keeping the last 3.
    pub fn every_n(dir: impl Into<PathBuf>, n: usize) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            policy: CheckpointPolicy::EveryN(n),
            keep_last: 3,
        }
    }
}

/// FNV-1a accumulator for options fingerprints. Field order is part of
/// the fingerprint: push values in one fixed, documented order and never
/// reorder without bumping the snapshot format version.
#[derive(Clone, Copy, Debug)]
pub struct Fingerprint(u64);

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    /// Starts a fresh digest (FNV-1a offset basis).
    pub fn new() -> Self {
        Fingerprint(0xcbf2_9ce4_8422_2325)
    }

    /// Folds raw bytes into the digest.
    pub fn push_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    /// Folds a `u64` (little-endian) into the digest.
    pub fn push_u64(&mut self, x: u64) -> &mut Self {
        self.push_bytes(&x.to_le_bytes())
    }

    /// Folds an `f64` bit pattern into the digest (bit-exact: two values
    /// fingerprint equal iff they are the same IEEE double).
    pub fn push_f64(&mut self, x: f64) -> &mut Self {
        self.push_bytes(&x.to_bits().to_le_bytes())
    }

    /// Folds a string (length-prefixed so `"ab","c"` ≠ `"a","bc"`).
    pub fn push_str(&mut self, s: &str) -> &mut Self {
        self.push_u64(s.len() as u64);
        self.push_bytes(s.as_bytes())
    }

    /// The digest value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_cadence() {
        assert!(!CheckpointPolicy::Off.wants_snapshot(5, true));
        assert!(!CheckpointPolicy::EveryN(0).wants_snapshot(5, false));
        let p = CheckpointPolicy::EveryN(3);
        assert!(!p.wants_snapshot(1, false));
        assert!(!p.wants_snapshot(2, false));
        assert!(p.wants_snapshot(3, false));
        assert!(p.wants_snapshot(6, false));
        assert!(p.wants_snapshot(7, true)); // convergence always snapshots
        let c = CheckpointPolicy::OnConvergence;
        assert!(!c.wants_snapshot(3, false));
        assert!(c.wants_snapshot(3, true));
    }

    #[test]
    fn fingerprint_is_order_sensitive_and_stable() {
        let mut a = Fingerprint::new();
        a.push_u64(1).push_f64(2.5).push_str("kerker");
        let mut b = Fingerprint::new();
        b.push_u64(1).push_f64(2.5).push_str("kerker");
        assert_eq!(a.finish(), b.finish());
        let mut c = Fingerprint::new();
        c.push_f64(2.5).push_u64(1).push_str("kerker");
        assert_ne!(a.finish(), c.finish());
        // Length prefixing: "ab"+"c" must differ from "a"+"bc".
        let mut d = Fingerprint::new();
        d.push_str("ab").push_str("c");
        let mut e = Fingerprint::new();
        e.push_str("a").push_str("bc");
        assert_ne!(d.finish(), e.finish());
    }

    #[test]
    fn fingerprint_distinguishes_nearby_doubles() {
        let mut a = Fingerprint::new();
        a.push_f64(0.1 + 0.2);
        let mut b = Fingerprint::new();
        b.push_f64(0.3);
        assert_ne!(a.finish(), b.finish(), "bit-exact, not approximate");
    }
}
