//! Typed checkpoint errors.
//!
//! Every failure mode of the snapshot pipeline is a distinct variant so
//! callers (and tests) can react per cause: a CRC mismatch means the file
//! is damaged and another rotation candidate should be tried; a
//! fingerprint mismatch means the *caller* changed the physics and must
//! not resume. I/O errors are rendered to strings at the boundary so the
//! error type stays `Clone + PartialEq + Eq` and can travel through
//! `Ls3dfError` without losing those derives.

/// Why a snapshot could not be written or restored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CkptError {
    /// Underlying filesystem failure (message rendered from
    /// `std::io::Error`).
    Io {
        /// Path involved.
        path: String,
        /// Rendered OS error.
        detail: String,
    },
    /// The file does not start with the snapshot magic.
    BadMagic {
        /// The 8 bytes actually found.
        got: [u8; 8],
    },
    /// The file's format version is newer (or older) than this build
    /// understands.
    UnsupportedVersion {
        /// Version stored in the file.
        got: u32,
        /// Version this build reads/writes.
        supported: u32,
    },
    /// The file ended before the named piece could be read.
    Truncated {
        /// What was being read when the bytes ran out.
        what: String,
    },
    /// A section's payload does not match its stored CRC32 — the bytes
    /// were damaged at rest or in flight.
    CrcMismatch {
        /// Section name.
        section: String,
        /// CRC stored in the section header.
        stored: u32,
        /// CRC computed over the payload actually read.
        computed: u32,
    },
    /// A required section is absent.
    MissingSection {
        /// Section name.
        section: String,
    },
    /// The same section id appears twice (ambiguous restore).
    DuplicateSection {
        /// Section name.
        section: String,
    },
    /// The snapshot was written under different physical options than
    /// the calculation trying to resume from it.
    FingerprintMismatch {
        /// Fingerprint stored in the snapshot.
        stored: u64,
        /// Fingerprint of the resuming calculation.
        current: u64,
        /// Fragmentation-scheme id the snapshot was written under
        /// (`"unknown"` for snapshots predating the scheme section).
        stored_scheme: String,
        /// Fragmentation-scheme id of the resuming calculation.
        current_scheme: String,
    },
    /// A section decoded structurally but its contents are inconsistent
    /// with the resuming calculation (wrong grid, wrong fragment count…).
    Malformed {
        /// Section name.
        section: String,
        /// What was inconsistent.
        detail: String,
    },
}

/// Data-free classification of a [`CkptError`] (stable across message
/// wording changes; what corruption tests match on).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // mirrors CkptError variant-for-variant
pub enum CkptErrorKind {
    Io,
    BadMagic,
    UnsupportedVersion,
    Truncated,
    CrcMismatch,
    MissingSection,
    DuplicateSection,
    FingerprintMismatch,
    Malformed,
}

impl CkptError {
    /// The variant, without its payload.
    pub fn kind(&self) -> CkptErrorKind {
        match self {
            CkptError::Io { .. } => CkptErrorKind::Io,
            CkptError::BadMagic { .. } => CkptErrorKind::BadMagic,
            CkptError::UnsupportedVersion { .. } => CkptErrorKind::UnsupportedVersion,
            CkptError::Truncated { .. } => CkptErrorKind::Truncated,
            CkptError::CrcMismatch { .. } => CkptErrorKind::CrcMismatch,
            CkptError::MissingSection { .. } => CkptErrorKind::MissingSection,
            CkptError::DuplicateSection { .. } => CkptErrorKind::DuplicateSection,
            CkptError::FingerprintMismatch { .. } => CkptErrorKind::FingerprintMismatch,
            CkptError::Malformed { .. } => CkptErrorKind::Malformed,
        }
    }

    /// Builds the I/O variant from an `std::io::Error` at the boundary.
    pub fn io(path: &std::path::Path, e: &std::io::Error) -> Self {
        CkptError::Io {
            path: path.display().to_string(),
            detail: e.to_string(),
        }
    }
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io { path, detail } => write!(f, "checkpoint I/O error on {path}: {detail}"),
            CkptError::BadMagic { got } => write!(
                f,
                "not an LS3DF snapshot: magic {:?}",
                String::from_utf8_lossy(got)
            ),
            CkptError::UnsupportedVersion { got, supported } => write!(
                f,
                "snapshot format version {got} not supported (this build reads {supported})"
            ),
            CkptError::Truncated { what } => {
                write!(f, "snapshot truncated while reading {what}")
            }
            CkptError::CrcMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "section `{section}` is corrupt: stored CRC32 {stored:08x}, \
                 payload hashes to {computed:08x}"
            ),
            CkptError::MissingSection { section } => {
                write!(f, "snapshot has no `{section}` section")
            }
            CkptError::DuplicateSection { section } => {
                write!(f, "snapshot carries `{section}` twice — ambiguous restore")
            }
            CkptError::FingerprintMismatch {
                stored,
                current,
                stored_scheme,
                current_scheme,
            } => {
                write!(
                    f,
                    "options fingerprint mismatch: snapshot written under {stored:016x}, \
                     this calculation is {current:016x} — refusing to resume under different physics"
                )?;
                if stored_scheme != current_scheme {
                    write!(
                        f,
                        " (snapshot used fragmentation scheme `{stored_scheme}`, \
                         this calculation uses `{current_scheme}`)"
                    )?;
                }
                Ok(())
            }
            CkptError::Malformed { section, detail } => {
                write!(f, "section `{section}` is inconsistent: {detail}")
            }
        }
    }
}

impl std::error::Error for CkptError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_match_variants_and_display_is_informative() {
        let e = CkptError::CrcMismatch {
            section: "RHO".into(),
            stored: 0xdead_beef,
            computed: 0x1234_5678,
        };
        assert_eq!(e.kind(), CkptErrorKind::CrcMismatch);
        let msg = e.to_string();
        assert!(msg.contains("RHO") && msg.contains("deadbeef"), "{msg}");

        let f = CkptError::FingerprintMismatch {
            stored: 1,
            current: 2,
            stored_scheme: "sign-alternating".into(),
            current_scheme: "overlapping".into(),
        };
        assert_eq!(f.kind(), CkptErrorKind::FingerprintMismatch);
        let msg = f.to_string();
        assert!(msg.contains("different physics"), "{msg}");
        // A cross-scheme refusal names both schemes…
        assert!(
            msg.contains("sign-alternating") && msg.contains("overlapping"),
            "{msg}"
        );
        // …while a same-scheme mismatch doesn't blame the scheme.
        let same = CkptError::FingerprintMismatch {
            stored: 1,
            current: 2,
            stored_scheme: "sign-alternating".into(),
            current_scheme: "sign-alternating".into(),
        };
        assert!(!same.to_string().contains("fragmentation scheme"));
    }
}
