//! Potential mixing for the self-consistent field loop.
//!
//! The paper mixes *potentials* between outer iterations ("After potential
//! mixing from previous iterations, the modified V_out is used as the input
//! for the next self-consistent iteration") and measures convergence by
//! `∫|V_out − V_in| d³r` (Fig. 6). Three mixers are provided:
//!
//! * [`Mixer::Linear`] — `V ← V_in + α(V_out − V_in)`;
//! * [`Mixer::Kerker`] — linear with the `G²/(G²+q₀²)` long-wavelength
//!   damping that prevents charge sloshing in large cells;
//! * [`Mixer::Pulay`] — DIIS over the potential-residual history.

use ls3df_fft::{Fft3, Fft3r, Fft3rWorkspace};
use ls3df_grid::RealField;
use ls3df_math::{c64, kernel_policy, KernelPolicy, Matrix};

/// Mixing scheme selector.
#[derive(Clone, Debug)]
pub enum Mixer {
    /// Simple linear mixing with factor `alpha`.
    Linear {
        /// Mixing fraction in (0, 1].
        alpha: f64,
    },
    /// Kerker-regularized linear mixing.
    Kerker {
        /// Mixing fraction in (0, 1].
        alpha: f64,
        /// Screening wavevector q₀ (Bohr⁻¹).
        q0: f64,
    },
    /// Pulay (DIIS) mixing over a sliding history window.
    Pulay {
        /// Linear fraction used for the first steps and as the DIIS
        /// preconditioner.
        alpha: f64,
        /// History depth.
        depth: usize,
    },
}

/// Fast-path Kerker engine, cached per grid geometry: the residual is
/// real, so the damping round-trip runs through the packed r2c/c2r
/// transform on the non-redundant half spectrum.
struct KerkerPacked {
    grid: ls3df_grid::Grid3,
    rfft: Fft3r,
    ws: Fft3rWorkspace,
    /// `α·G²/(G²+q₀²)` on the packed `(n1/2+1)·n2·n3` layout.
    factors: Vec<f64>,
    /// Real residual staging (`V_out − V_in`) and its packed spectrum.
    diff: Vec<f64>,
    spec: Vec<c64>,
}

/// Stateful mixer bound to one SCF run.
pub struct MixerState {
    scheme: Mixer,
    policy: KernelPolicy,
    /// (input potential, residual = output − input) history for Pulay.
    history: Vec<(Vec<f64>, Vec<f64>)>,
    /// Kerker damping factors `α·G²/(G²+q₀²)` cached per grid geometry —
    /// the reciprocal-space sweep then reads a flat table instead of
    /// recomputing `coords`/`g2` per point per iteration. (Reference
    /// path; the fast path caches [`KerkerPacked`] instead.)
    kerker: Option<(ls3df_grid::Grid3, Vec<f64>)>,
    kerker_packed: Option<KerkerPacked>,
    /// Complex scratch reused across the reference Kerker round-trips.
    scratch: Vec<c64>,
}

impl MixerState {
    /// Creates the state for a scheme under the process-wide kernel
    /// policy.
    pub fn new(scheme: Mixer) -> Self {
        Self::new_with(scheme, kernel_policy())
    }

    /// [`MixerState::new`] with an explicit [`KernelPolicy`].
    pub fn new_with(scheme: Mixer, policy: KernelPolicy) -> Self {
        MixerState {
            scheme,
            policy,
            history: Vec::new(),
            kerker: None,
            kerker_packed: None,
            scratch: Vec::new(),
        }
    }

    /// Produces the next input potential from the current `(V_in, V_out)`
    /// pair.
    pub fn mix(&mut self, v_in: &RealField, v_out: &RealField, fft: &Fft3) -> RealField {
        assert_eq!(v_in.grid(), v_out.grid(), "mix: grid mismatch");
        ls3df_obs::counter_add(ls3df_obs::Counter::MixerApplies, 1);
        match self.scheme {
            Mixer::Linear { alpha } => {
                let mut v = v_in.clone();
                let diff = v_out.diff(v_in);
                v.add_scaled(alpha, &diff);
                v
            }
            Mixer::Kerker { alpha, q0 } if self.policy == KernelPolicy::Fast => {
                let grid = v_in.grid();
                if !matches!(&self.kerker_packed, Some(kp) if kp.grid == *grid) {
                    let rfft = Fft3r::new_with(grid.dims, self.policy);
                    let h1 = rfft.packed_nx();
                    let mut factors = Vec::with_capacity(rfft.packed_len());
                    for iz in 0..grid.dims[2] {
                        for iy in 0..grid.dims[1] {
                            for ix in 0..h1 {
                                let g2 = grid.g2(ix, iy, iz);
                                let damp = if g2 == 0.0 { 1.0 } else { g2 / (g2 + q0 * q0) };
                                factors.push(alpha * damp);
                            }
                        }
                    }
                    self.kerker_packed = Some(KerkerPacked {
                        grid: grid.clone(),
                        ws: rfft.workspace(),
                        spec: vec![c64::ZERO; rfft.packed_len()],
                        diff: vec![0.0; grid.len()],
                        rfft,
                        factors,
                    });
                }
                let Some(kp) = &mut self.kerker_packed else {
                    unreachable!("cache built above")
                };
                for (d, (&o, &i)) in kp
                    .diff
                    .iter_mut()
                    .zip(v_out.as_slice().iter().zip(v_in.as_slice()))
                {
                    *d = o - i;
                }
                kp.rfft.forward(&kp.diff, &mut kp.spec, &mut kp.ws);
                for (v, &k) in kp.spec.iter_mut().zip(&kp.factors) {
                    *v = v.scale(k);
                }
                kp.rfft.inverse(&mut kp.spec, &mut kp.diff, &mut kp.ws);
                let mut v = v_in.clone();
                for (o, &d) in v.as_mut_slice().iter_mut().zip(&kp.diff) {
                    *o += d;
                }
                v
            }
            Mixer::Kerker { alpha, q0 } => {
                let grid = v_in.grid();
                if !matches!(&self.kerker, Some((g, _)) if g == grid) {
                    let factors = (0..grid.len())
                        .map(|idx| {
                            let (ix, iy, iz) = grid.coords(idx);
                            let g2 = grid.g2(ix, iy, iz);
                            let damp = if g2 == 0.0 { 1.0 } else { g2 / (g2 + q0 * q0) };
                            alpha * damp
                        })
                        .collect();
                    self.kerker = Some((grid.clone(), factors));
                }
                let Some((_, factors)) = &self.kerker else {
                    unreachable!("cache built above")
                };
                self.scratch.resize(grid.len(), c64::ZERO);
                for (s, (&o, &i)) in self
                    .scratch
                    .iter_mut()
                    .zip(v_out.as_slice().iter().zip(v_in.as_slice()))
                {
                    *s = c64::real(o - i);
                }
                fft.forward(&mut self.scratch);
                for (v, &k) in self.scratch.iter_mut().zip(factors) {
                    *v = v.scale(k);
                }
                fft.inverse(&mut self.scratch);
                let mut v = v_in.clone();
                for (o, d) in v.as_mut_slice().iter_mut().zip(&self.scratch) {
                    *o += d.re;
                }
                v
            }
            Mixer::Pulay { alpha, depth } => {
                let residual: Vec<f64> = v_out
                    .as_slice()
                    .iter()
                    .zip(v_in.as_slice())
                    .map(|(&o, &i)| o - i)
                    .collect();
                self.history.push((v_in.as_slice().to_vec(), residual));
                if self.history.len() > depth {
                    self.history.remove(0);
                }
                let m = self.history.len();
                if m < 2 {
                    let mut v = v_in.clone();
                    let diff = v_out.diff(v_in);
                    v.add_scaled(alpha, &diff);
                    return v;
                }
                // DIIS: minimize ‖Σ c_i r_i‖ subject to Σ c_i = 1 via the
                // bordered linear system.
                let dv = v_in.grid().dv();
                let mut a = Matrix::<f64>::zeros(m + 1, m + 1);
                for i in 0..m {
                    for j in 0..m {
                        let dot: f64 = self.history[i]
                            .1
                            .iter()
                            .zip(&self.history[j].1)
                            .map(|(&x, &y)| x * y)
                            .sum::<f64>()
                            * dv;
                        a[(i, j)] = dot;
                    }
                    a[(i, m)] = 1.0;
                    a[(m, i)] = 1.0;
                }
                let mut b = vec![0.0; m + 1];
                b[m] = 1.0;
                let coeffs = match ls3df_math::solve(&a, &b) {
                    Ok(c) => c,
                    Err(_) => {
                        // Degenerate history: fall back to linear mixing.
                        let mut v = v_in.clone();
                        let diff = v_out.diff(v_in);
                        v.add_scaled(alpha, &diff);
                        return v;
                    }
                };
                let n = v_in.grid().len();
                let mut out = vec![0.0_f64; n];
                for (i, (vin_i, r_i)) in self.history.iter().enumerate() {
                    let c = coeffs[i];
                    for k in 0..n {
                        out[k] += c * (vin_i[k] + alpha * r_i[k]);
                    }
                }
                RealField::from_vec(v_in.grid().clone(), out)
            }
        }
    }

    /// Clears accumulated history (e.g. when restarting an SCF loop).
    pub fn reset(&mut self) {
        self.history.clear();
    }

    /// The Pulay `(V_in, residual)` history, oldest first — the part of
    /// the mixer state that must survive a checkpoint/restart for the
    /// resumed run to mix bit-identically. (The Kerker factor table and
    /// FFT scratch are derived caches and rebuild on demand.)
    pub fn history(&self) -> &[(Vec<f64>, Vec<f64>)] {
        &self.history
    }

    /// Replaces the history with one restored from a checkpoint.
    pub fn restore_history(&mut self, history: Vec<(Vec<f64>, Vec<f64>)>) {
        self.history = history;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ls3df_grid::Grid3;

    fn fields() -> (RealField, RealField, Fft3) {
        let grid = Grid3::cubic(8, 4.0);
        let v_in = RealField::from_fn(grid.clone(), |r| r[0]);
        let v_out = RealField::from_fn(grid.clone(), |r| r[0] + 1.0 + 0.5 * r[1]);
        let fft = Fft3::new(8, 8, 8);
        (v_in, v_out, fft)
    }

    #[test]
    fn linear_mixing_interpolates() {
        let (v_in, v_out, fft) = fields();
        let mut m = MixerState::new(Mixer::Linear { alpha: 0.25 });
        let v = m.mix(&v_in, &v_out, &fft);
        for i in 0..v.as_slice().len() {
            let expect = v_in.as_slice()[i] + 0.25 * (v_out.as_slice()[i] - v_in.as_slice()[i]);
            assert!((v.as_slice()[i] - expect).abs() < 1e-13);
        }
    }

    #[test]
    fn linear_alpha_one_returns_output() {
        let (v_in, v_out, fft) = fields();
        let mut m = MixerState::new(Mixer::Linear { alpha: 1.0 });
        let v = m.mix(&v_in, &v_out, &fft);
        assert!(v.diff(&v_out).max_abs() < 1e-12);
    }

    #[test]
    fn kerker_damps_long_wavelength_only() {
        let grid = Grid3::cubic(16, 8.0);
        let fft = Fft3::new(16, 16, 16);
        let v_in = RealField::zeros(grid.clone());
        // Long-wavelength (k = 2π/L) residual.
        let g1 = 2.0 * std::f64::consts::PI / 8.0;
        let v_out_long = RealField::from_fn(grid.clone(), |r| (g1 * r[0]).cos());
        // Short-wavelength (k = 8π/L).
        let v_out_short = RealField::from_fn(grid.clone(), |r| (4.0 * g1 * r[0]).cos());
        let q0 = 1.0;
        let mut m = MixerState::new(Mixer::Kerker { alpha: 1.0, q0 });
        let long = m.mix(&v_in, &v_out_long, &fft);
        let short = m.mix(&v_in, &v_out_short, &fft);
        let damp_long = long.max_abs();
        let damp_short = short.max_abs();
        let expect_long = g1 * g1 / (g1 * g1 + q0 * q0);
        let g4 = 4.0 * g1;
        let expect_short = g4 * g4 / (g4 * g4 + q0 * q0);
        assert!((damp_long - expect_long).abs() < 1e-10);
        assert!((damp_short - expect_short).abs() < 1e-10);
        assert!(damp_long < damp_short);
    }

    #[test]
    fn kerker_fast_path_matches_reference() {
        // Packed-residual Kerker vs the complex-grid reference, across
        // even/odd/mixed x-extents, reusing one mixer so the second grid
        // exercises the cache-rebuild path.
        for dims in [[16usize, 8, 8], [9, 8, 8], [10, 8, 9]] {
            let grid = Grid3::new(dims, [6.0, 5.0, 5.5]);
            let fft = Fft3::new(dims[0], dims[1], dims[2]);
            let v_in = RealField::from_fn(grid.clone(), |r| (r[0] * 0.7).sin() + 0.1 * r[1]);
            let v_out =
                RealField::from_fn(grid.clone(), |r| (r[0] * 0.7).sin() + (r[2] * 1.3).cos());
            let scheme = Mixer::Kerker {
                alpha: 0.6,
                q0: 0.8,
            };
            let mut fast = MixerState::new_with(scheme.clone(), KernelPolicy::Fast);
            let mut reference = MixerState::new_with(scheme, KernelPolicy::Reference);
            // Twice: second mix runs on the warmed packed cache.
            let _ = fast.mix(&v_in, &v_out, &fft);
            let vf = fast.mix(&v_in, &v_out, &fft);
            let vr = reference.mix(&v_in, &v_out, &fft);
            let diff = vf.diff(&vr).max_abs();
            assert!(diff < 1e-11, "dims {dims:?}: fast vs reference {diff}");
        }
    }

    #[test]
    fn pulay_solves_linear_problem_fast() {
        // For the linear fixed-point map V_out = G·V* + (1−G)·V_in with a
        // scalar G, DIIS should land essentially on V* once it has 2+
        // history entries.
        let grid = Grid3::cubic(4, 2.0);
        let fft = Fft3::new(4, 4, 4);
        let target = RealField::from_fn(grid.clone(), |r| (r[0] - 1.0) * (r[1] - 0.5));
        let g = 0.6;
        let response = |v_in: &RealField| {
            let mut v = target.clone();
            v.scale(g);
            let mut rest = v_in.clone();
            rest.scale(1.0 - g);
            v.add_scaled(1.0, &rest);
            v
        };
        let mut mixer = MixerState::new(Mixer::Pulay {
            alpha: 0.5,
            depth: 5,
        });
        let mut v = RealField::zeros(grid);
        for _ in 0..6 {
            let out = response(&v);
            v = mixer.mix(&v, &out, &fft);
        }
        let err = v.diff(&target).max_abs();
        assert!(err < 1e-10, "Pulay residual {err}");
    }

    #[test]
    fn reset_clears_history() {
        let (v_in, v_out, fft) = fields();
        let mut m = MixerState::new(Mixer::Pulay {
            alpha: 0.3,
            depth: 4,
        });
        let _ = m.mix(&v_in, &v_out, &fft);
        assert_eq!(m.history.len(), 1);
        m.reset();
        assert!(m.history.is_empty());
    }
}
