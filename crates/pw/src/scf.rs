//! Self-consistent-field driver: the direct O(N³) DFT solver.
//!
//! This is the reproduction's stand-in for PEtot / PARATEC / VASP — the
//! conventional planewave codes the paper benchmarks against (§VI). LS3DF
//! reuses all the pieces (`Hamiltonian`, solvers, `effective_potential`)
//! per fragment; this module wires them into the standard global SCF loop
//! with potential mixing.

use crate::density::{compute_density, insulator_occupations};
use crate::hamiltonian::{Hamiltonian, NonlocalPotential};
use crate::hartree::HartreeSolver;
use crate::mixing::{Mixer, MixerState};
use crate::potential::{effective_potential_with, initial_density, ionic_potential, PwAtom};
use crate::solver::{
    solve_all_band_with, solve_band_by_band, CgWorkspace, SolveStats, SolverOptions,
};
use crate::{ewald, PwBasis};
use ls3df_grid::{Grid3, RealField};
use ls3df_math::{c64, Matrix};

/// Which eigensolver drives the SCF (the paper's BLAS-3 vs BLAS-2 story).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolverMethod {
    /// All bands at once; GEMM-shaped (optimized PEtot_F).
    AllBand,
    /// One band at a time; BLAS-1/2-shaped (original PEtot).
    BandByBand,
}

/// Options for an SCF run.
#[derive(Clone, Debug)]
pub struct ScfOptions {
    /// Extra empty bands above the occupied manifold.
    pub n_extra_bands: usize,
    /// Inner eigensolver options (per SCF iteration).
    pub solver: SolverOptions,
    /// Eigensolver flavor.
    pub method: SolverMethod,
    /// Potential mixing scheme.
    pub mixer: Mixer,
    /// Maximum SCF (outer) iterations.
    pub max_scf: usize,
    /// Convergence threshold on `∫|V_out − V_in| d³r` (Hartree·Bohr³ —
    /// the paper's Fig. 6 metric).
    pub tol: f64,
    /// Width (Bohr) of the Gaussian atomic charges in the initial density.
    pub init_width: f64,
}

impl Default for ScfOptions {
    fn default() -> Self {
        ScfOptions {
            n_extra_bands: 4,
            solver: SolverOptions {
                max_iter: 12,
                tol: 1e-6,
                ..Default::default()
            },
            method: SolverMethod::AllBand,
            mixer: Mixer::Kerker {
                alpha: 0.7,
                q0: 1.2,
            },
            max_scf: 60,
            tol: 1e-4,
            init_width: 1.4,
        }
    }
}

/// A complete planewave DFT problem specification.
pub struct DftSystem {
    /// The real-space grid / periodic cell.
    pub grid: Grid3,
    /// Planewave cutoff (Hartree).
    pub ecut: f64,
    /// Atoms (positions + pseudopotentials).
    pub atoms: Vec<PwAtom>,
}

impl DftSystem {
    /// Total valence electrons (= Σ ionic charges; neutral cell).
    pub fn n_electrons(&self) -> f64 {
        self.atoms.iter().map(|a| a.local.z).sum()
    }

    /// Number of doubly-occupied bands.
    pub fn n_occupied(&self) -> usize {
        (self.n_electrons() / 2.0).round() as usize
    }

    /// Ion–ion Ewald energy for this cell.
    pub fn ewald_energy(&self) -> f64 {
        let pos: Vec<[f64; 3]> = self.atoms.iter().map(|a| a.pos).collect();
        let q: Vec<f64> = self.atoms.iter().map(|a| a.local.z).collect();
        ewald::ewald_energy(&pos, &q, self.grid.lengths)
    }
}

/// One SCF iteration record (drives paper Fig. 6).
#[derive(Clone, Copy, Debug)]
pub struct ScfStep {
    /// Iteration number (1-based).
    pub iteration: usize,
    /// `∫|V_out − V_in| d³r`.
    pub dv_integral: f64,
    /// Total energy estimate at this step (Hartree).
    pub total_energy: f64,
    /// Inner eigensolver residual.
    pub band_residual: f64,
}

/// Result of a converged (or stopped) SCF run.
pub struct ScfResult {
    /// Eigenvalues of the final iteration (Hartree, ascending).
    pub eigenvalues: Vec<f64>,
    /// Final wavefunctions `(n_bands × n_pw)`.
    pub psi: Matrix<c64>,
    /// Final (output) density.
    pub rho: RealField,
    /// Final self-consistent effective potential (the `V_in` of the last
    /// iteration — what LS3DF would hand to post-processing).
    pub v_eff: RealField,
    /// Final total energy (Hartree).
    pub total_energy: f64,
    /// Per-iteration history.
    pub history: Vec<ScfStep>,
    /// Whether the potential difference dropped below tolerance.
    pub converged: bool,
    /// Occupations used.
    pub occupations: Vec<f64>,
}

impl ScfResult {
    /// Band gap between the highest occupied and lowest unoccupied
    /// computed band, if any empty bands were requested.
    pub fn band_gap(&self) -> Option<f64> {
        let homo = self.occupations.iter().rposition(|&f| f > 0.0)?;
        let lumo = homo + 1;
        if lumo < self.eigenvalues.len() {
            Some(self.eigenvalues[lumo] - self.eigenvalues[homo])
        } else {
            None
        }
    }
}

/// Builds the basis, nonlocal projectors and starting state for a system.
/// `init_width` is the Gaussian width (Bohr) of the superposed atomic
/// charges in the starting density.
pub fn setup(
    system: &DftSystem,
    init_width: f64,
) -> (PwBasis, NonlocalPotential, RealField, RealField) {
    let basis = PwBasis::new(system.grid.clone(), system.ecut);
    let positions: Vec<[f64; 3]> = system.atoms.iter().map(|a| a.pos).collect();
    let e_kb: Vec<f64> = system.atoms.iter().map(|a| a.kb_energy).collect();
    let widths: Vec<f64> = system.atoms.iter().map(|a| a.kb_rb).collect();
    let nonlocal = NonlocalPotential::new(
        &basis,
        &positions,
        |a, q| (-q * q * widths[a] * widths[a] / 2.0).exp(),
        &e_kb,
    );
    let v_ion = ionic_potential(&basis, &system.atoms);
    let rho0 = initial_density(&basis, &system.atoms, init_width);
    (basis, nonlocal, v_ion, rho0)
}

/// Deterministic random starting wavefunctions (seeded, so runs are
/// reproducible).
pub fn random_start(n_bands: usize, basis: &PwBasis, seed: u64) -> Matrix<c64> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
    };
    // Weight low-G components more: better overlap with smooth low states.
    let g2 = basis.g2().to_vec();
    Matrix::from_fn(n_bands, basis.len(), |_, j| {
        let damp = 1.0 / (1.0 + g2[j]);
        c64::new(next() * damp, next() * damp)
    })
}

/// Runs the full self-consistent loop for `system`.
pub fn scf(system: &DftSystem, opts: &ScfOptions) -> ScfResult {
    let (basis, nonlocal, v_ion, rho0) = setup(system, opts.init_width);
    let n_occ = system.n_occupied();
    let n_bands = n_occ + opts.n_extra_bands;
    let occupations = insulator_occupations(n_bands, system.n_electrons());
    let mut psi = random_start(n_bands, &basis, 12345);
    let e_ii = system.ewald_energy();

    // Per-geometry caches shared by every SCF iteration: the Poisson
    // solver (FFT plan + reciprocal kernel) and the CG block scratch.
    let hartree = HartreeSolver::new(basis.grid().clone());
    let mut cg_ws: Option<CgWorkspace> = None;
    let (mut v_in, _) = effective_potential_with(&basis, &v_ion, &rho0, &hartree);
    let mut mixer = MixerState::new(opts.mixer.clone());
    let mut history: Vec<ScfStep> = Vec::new();
    let mut converged = false;
    let mut rho = rho0;
    let mut eigenvalues = Vec::new();

    for iteration in 1..=opts.max_scf {
        // Solve the bands in the current potential.
        let h = Hamiltonian::new(&basis, v_in.clone(), &nonlocal);
        let stats: SolveStats = match opts.method {
            SolverMethod::AllBand => {
                let ws = cg_ws.get_or_insert_with(|| CgWorkspace::new(&h, psi.rows()));
                solve_all_band_with(&h, &mut psi, &opts.solver, ws)
            }
            SolverMethod::BandByBand => solve_band_by_band(&h, &mut psi, &opts.solver),
        };
        eigenvalues = stats.eigenvalues.clone();

        // New density and output potential.
        rho = compute_density(&basis, &psi, &occupations);
        let (v_out, energies) = effective_potential_with(&basis, &v_ion, &rho, &hartree);

        // Total energy: E = Σfε − ∫V_in ρ + ∫V_ion ρ + E_H + E_xc + E_II.
        let band_energy: f64 = eigenvalues
            .iter()
            .zip(&occupations)
            .map(|(&e, &f)| f * e)
            .sum();
        let vin_rho: f64 = v_in
            .as_slice()
            .iter()
            .zip(rho.as_slice())
            .map(|(&v, &r)| v * r)
            .sum::<f64>()
            * basis.grid().dv();
        let total_energy =
            band_energy - vin_rho + energies.ion_rho + energies.hartree + energies.xc + e_ii;

        let dv_integral = v_out.diff(&v_in).integrate_abs();
        history.push(ScfStep {
            iteration,
            dv_integral,
            total_energy,
            band_residual: stats.residual,
        });
        if dv_integral < opts.tol {
            converged = true;
            v_in = v_out;
            break;
        }
        v_in = mixer.mix(&v_in, &v_out, basis.fft());
    }

    let total_energy = history.last().map(|s| s.total_energy).unwrap_or(0.0);
    ScfResult {
        eigenvalues,
        psi,
        rho,
        v_eff: v_in,
        total_energy,
        history,
        converged,
        occupations,
    }
}

/// Chooses a grid that supports planewaves up to `2·G_max` (density
/// resolution) for a box of the given lengths, rounding each axis up to an
/// even count.
pub fn grid_for(lengths: [f64; 3], ecut: f64) -> Grid3 {
    let g_max = (2.0 * ecut).sqrt();
    let dims: [usize; 3] = std::array::from_fn(|k| {
        let n = (2.0 * g_max * lengths[k] / std::f64::consts::PI).ceil() as usize;
        (n + n % 2).max(4)
    });
    Grid3::new(dims, lengths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ls3df_pseudo::LocalPotential;

    /// A tiny 2-electron "helium-like" system: one attractive Gaussian
    /// pseudo-atom in a box.
    fn tiny_system() -> DftSystem {
        let lengths = [8.0, 8.0, 8.0];
        let ecut = 1.5;
        let grid = grid_for(lengths, ecut);
        DftSystem {
            grid,
            ecut,
            atoms: vec![PwAtom {
                pos: [4.0, 4.0, 4.0],
                local: LocalPotential {
                    z: 2.0,
                    rc: 0.9,
                    a: 0.0,
                    w: 1.0,
                },
                kb_rb: 1.0,
                kb_energy: 0.0,
            }],
        }
    }

    #[test]
    fn grid_for_supports_density_resolution() {
        let g = grid_for([10.0, 5.0, 7.5], 2.0);
        let gmax = 2.0_f64;
        for ax in 0..3 {
            let nyquist = std::f64::consts::PI * g.dims[ax] as f64 / g.lengths[ax];
            assert!(nyquist >= 2.0 * gmax - 1e-9, "axis {ax}");
            assert_eq!(g.dims[ax] % 2, 0);
        }
    }

    #[test]
    fn scf_converges_on_tiny_atom() {
        let sys = tiny_system();
        let opts = ScfOptions {
            max_scf: 60,
            tol: 1e-4,
            n_extra_bands: 3,
            ..Default::default()
        };
        let res = scf(&sys, &opts);
        assert!(
            res.converged,
            "SCF did not converge: {:?}",
            res.history.last()
        );
        // Electron count preserved.
        assert!((res.rho.integrate() - 2.0).abs() < 1e-8);
        // Bound ground state.
        assert!(res.eigenvalues[0] < 0.0);
        // Convergence history decays overall.
        let first = res.history.first().unwrap().dv_integral;
        let last = res.history.last().unwrap().dv_integral;
        assert!(last < first * 0.1, "ΔV: first {first}, last {last}");
    }

    #[test]
    fn total_energy_stabilizes() {
        let sys = tiny_system();
        let res = scf(
            &sys,
            &ScfOptions {
                max_scf: 40,
                tol: 1e-6,
                ..Default::default()
            },
        );
        let n = res.history.len();
        assert!(n >= 3);
        let e_last = res.history[n - 1].total_energy;
        let e_prev = res.history[n - 2].total_energy;
        assert!(
            (e_last - e_prev).abs() < 1e-4,
            "energy still moving: {e_prev} → {e_last}"
        );
        assert!(e_last.is_finite());
    }

    #[test]
    fn both_solver_methods_reach_same_ground_state() {
        let sys = tiny_system();
        let mut opts = ScfOptions {
            max_scf: 50,
            tol: 1e-4,
            ..Default::default()
        };
        opts.method = SolverMethod::AllBand;
        let a = scf(&sys, &opts);
        opts.method = SolverMethod::BandByBand;
        let b = scf(&sys, &opts);
        assert!(a.converged && b.converged);
        assert!(
            (a.total_energy - b.total_energy).abs() < 1e-3,
            "all-band {} vs band-by-band {}",
            a.total_energy,
            b.total_energy
        );
        assert!((a.eigenvalues[0] - b.eigenvalues[0]).abs() < 1e-3);
    }
}
